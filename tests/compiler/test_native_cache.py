"""On-disk kernel cache: naming, host-ISA keying, and LRU pruning.

Codegen-v2 artifact names encode everything that must invalidate a
cached kernel — dtype, codegen revision, thread-runtime tag, and a
host-ISA fingerprint (or ``portable``) — so one shared cache dir can
serve machines with different CPUs.  The cache is bounded by
:func:`~repro.compiler.native_build.prune_native_cache`, which evicts
whole artifact groups least-recently-*used* first (cache hits refresh
mtime).
"""

import os
import time

import numpy as np
import pytest

from repro.compiler.cgen import CODEGEN_VERSION
from repro.compiler.native_build import (
    DEFAULT_CACHE_MAX_BYTES,
    build_kernel,
    clear_native_kernels,
    compiler_command,
    native_cache_dir,
    native_cache_stats,
    native_thread_mode,
    prune_native_cache,
)
from repro.spn import compile_plan, random_spn

needs_cc = pytest.mark.skipif(
    compiler_command() is None, reason="no C compiler on this host"
)


@pytest.fixture(autouse=True)
def _isolated_native_cache(tmp_path, monkeypatch):
    """Route kernel artifacts to a throwaway dir and drop the memo."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_NATIVE_PORTABLE", raising=False)
    clear_native_kernels()
    yield
    clear_native_kernels()


def _plan(seed):
    return compile_plan(random_spn(3, depth=2, n_bins=4, seed=seed))


def _backdate(cache, stem, age_seconds):
    """Shift every file of one artifact group into the past."""
    then = time.time() - age_seconds
    for path in cache.iterdir():
        if path.name.startswith(stem):
            os.utime(path, (then, then))


# ---------------------------------------------------------------------------
# Artifact naming
# ---------------------------------------------------------------------------


@needs_cc
def test_artifact_name_encodes_mode_and_isa():
    """The filename carries the codegen revision, the probed thread
    runtime, and a host-ISA fingerprint tag."""
    path = build_kernel(_plan(40), np.float64)
    name = path.name
    assert f"cg{CODEGEN_VERSION}" in name
    tag = {"openmp": "omp", "pthreads": "pth", "serial": "st"}[
        native_thread_mode()
    ]
    assert f"-{tag}-" in name
    # ``-march=native`` builds key by an 8-hex ISA fingerprint; hosts
    # where the probe fails key as portable instead.
    assert "-portable-" in name or any(
        part
        and len(part) == 8
        and all(c in "0123456789abcdef" for c in part)
        for part in name.split("-")
    )


@needs_cc
def test_portable_opt_out_yields_distinct_artifact(monkeypatch):
    """``REPRO_NATIVE_PORTABLE=1`` drops ``-march=native`` and keys
    the artifact separately from the ISA-tuned build."""
    plan = _plan(41)
    tuned = build_kernel(plan, np.float64)
    clear_native_kernels()
    monkeypatch.setenv("REPRO_NATIVE_PORTABLE", "1")
    portable = build_kernel(plan, np.float64)
    assert "-portable-" in portable.name
    assert portable != tuned


# ---------------------------------------------------------------------------
# Stats and LRU pruning
# ---------------------------------------------------------------------------


def test_stats_and_prune_on_empty_cache():
    stats = native_cache_stats()
    assert stats["artifacts"] == 0 and stats["bytes"] == 0
    report = prune_native_cache(0)
    assert report == {
        "removed": 0,
        "removed_bytes": 0,
        "kept": 0,
        "kept_bytes": 0,
    }
    assert DEFAULT_CACHE_MAX_BYTES > 0


@needs_cc
def test_cache_stats_counts_groups():
    build_kernel(_plan(42), np.float64)
    build_kernel(_plan(43), np.float64)
    stats = native_cache_stats()
    assert stats["artifacts"] == 2
    assert stats["bytes"] > 0
    assert stats["path"] == str(native_cache_dir())


@needs_cc
def test_prune_evicts_oldest_group_first():
    """Under budget pressure the stalest artifact group goes first,
    and eviction takes the whole group (.so and .c together)."""
    old = build_kernel(_plan(44), np.float64)
    new = build_kernel(_plan(45), np.float64)
    cache = native_cache_dir()
    _backdate(cache, old.name[: -len(".so")], 3600)
    keep_bytes = sum(
        p.stat().st_size
        for p in cache.iterdir()
        if p.name.startswith(new.name[: -len(".so")])
    )
    report = prune_native_cache(keep_bytes)
    assert report["removed"] == 1 and report["kept"] == 1
    assert not old.exists()
    assert not old.with_suffix(".c").exists()
    assert new.exists()


@needs_cc
def test_cache_hit_refreshes_recency():
    """A cache hit bumps the artifact's mtime, so recently *used*
    kernels outlive recently *built* ones under pruning."""
    hot = build_kernel(_plan(46), np.float64)
    cold = build_kernel(_plan(47), np.float64)
    cache = native_cache_dir()
    _backdate(cache, hot.name[: -len(".so")], 3600)
    _backdate(cache, cold.name[: -len(".so")], 1800)
    clear_native_kernels()
    assert build_kernel(_plan(46), np.float64) == hot  # hit -> touch
    keep_bytes = sum(
        p.stat().st_size
        for p in cache.iterdir()
        if p.name.startswith(hot.name[: -len(".so")])
    )
    report = prune_native_cache(keep_bytes)
    assert report["removed"] == 1
    assert hot.exists() and not cold.exists()


@needs_cc
def test_prune_to_zero_clears_cache():
    build_kernel(_plan(48), np.float64)
    report = prune_native_cache(0)
    assert report["kept"] == 0 and report["kept_bytes"] == 0
    assert native_cache_stats()["artifacts"] == 0
