"""Unit tests for pipeline scheduling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import (
    CFP_LIBRARY,
    FLOAT64_LIBRARY,
    HWOp,
    build_datapath,
    schedule_datapath,
)
from repro.spn import SPN, HistogramLeaf, ProductNode, SumNode, random_spn


def _hist(var, bins=4):
    masses = np.full(bins, 1.0 / bins)
    return HistogramLeaf(var, np.arange(bins + 1, dtype=float), masses)


def test_single_lookup_depth():
    dp = build_datapath(SPN(_hist(0)))
    sched = schedule_datapath(dp, CFP_LIBRARY)
    assert sched.depth == CFP_LIBRARY.latency(HWOp.LOOKUP)
    assert sched.balance_registers == 0


def test_product_chain_depth():
    spn = SPN(ProductNode([_hist(0), _hist(1)]))
    dp = build_datapath(spn)
    sched = schedule_datapath(dp, CFP_LIBRARY)
    expected = CFP_LIBRARY.latency(HWOp.LOOKUP) + CFP_LIBRARY.latency(HWOp.MUL)
    assert sched.depth == expected


def test_initiation_interval_is_one():
    dp = build_datapath(random_spn(8, depth=3, seed=1))
    sched = schedule_datapath(dp, CFP_LIBRARY)
    assert sched.initiation_interval == 1
    assert sched.samples_per_cycle == 1.0


def test_balanced_inputs_need_no_registers():
    # A perfectly balanced product tree over same-latency leaves has
    # zero slack anywhere.
    spn = SPN(ProductNode([_hist(v) for v in range(4)]))
    dp = build_datapath(spn)
    sched = schedule_datapath(dp, CFP_LIBRARY)
    assert sched.balance_registers == 0


def test_unbalanced_tree_counts_slack():
    # 3 inputs: the odd leaf skips one mul level and needs balancing
    # registers equal to one MUL latency.
    spn = SPN(ProductNode([_hist(0), _hist(1), _hist(2)]))
    dp = build_datapath(spn)
    sched = schedule_datapath(dp, CFP_LIBRARY)
    assert sched.balance_registers == CFP_LIBRARY.latency(HWOp.MUL)


def test_deeper_latency_library_gives_deeper_pipeline():
    dp = build_datapath(random_spn(10, depth=3, seed=5))
    shallow = schedule_datapath(dp, CFP_LIBRARY)
    deep = schedule_datapath(dp, FLOAT64_LIBRARY)
    assert deep.depth > shallow.depth
    assert deep.balance_registers >= shallow.balance_registers


def test_ready_follows_start_plus_latency():
    dp = build_datapath(random_spn(6, depth=3, seed=7))
    sched = schedule_datapath(dp, CFP_LIBRARY)
    for node in dp.nodes:
        assert (
            sched.ready_stage[node.index]
            == sched.start_stage[node.index] + CFP_LIBRARY.latency(node.op)
        )


def test_no_operator_starts_before_inputs_ready():
    dp = build_datapath(random_spn(9, depth=4, seed=11))
    sched = schedule_datapath(dp, CFP_LIBRARY)
    for node in dp.nodes:
        for source in node.inputs:
            assert sched.start_stage[node.index] >= sched.ready_stage[source]


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), n_vars=st.integers(1, 10))
def test_depth_equals_critical_path(seed, n_vars):
    dp = build_datapath(random_spn(n_vars, depth=3, seed=seed))
    sched = schedule_datapath(dp, CFP_LIBRARY)
    assert sched.depth == max(sched.ready_stage)
    assert sched.depth == sched.ready_stage[dp.output]
