"""Unit tests for SPN-to-datapath lowering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import HWOp, build_datapath
from repro.compiler.datapath import Datapath, DatapathNode
from repro.errors import CompilerError
from repro.spn import (
    SPN,
    GaussianLeaf,
    HistogramLeaf,
    ProductNode,
    SumNode,
    compute_stats,
    random_spn,
)


def _hist(var, bins=4):
    masses = np.full(bins, 1.0 / bins)
    return HistogramLeaf(var, np.arange(bins + 1, dtype=float), masses)


def test_single_leaf_becomes_input_plus_lookup():
    dp = build_datapath(SPN(_hist(0, bins=8)))
    assert dp.count(HWOp.INPUT) == 1
    assert dp.count(HWOp.LOOKUP) == 1
    assert dp.nodes[dp.output].op is HWOp.LOOKUP
    assert dp.total_table_entries == 8


def test_product_becomes_mul_tree():
    spn = SPN(ProductNode([_hist(v) for v in range(5)]))
    dp = build_datapath(spn)
    assert dp.count(HWOp.MUL) == 4  # n-1 for n=5
    assert dp.count(HWOp.LOOKUP) == 5
    assert dp.count(HWOp.CONST_MUL) == 0


def test_sum_becomes_weight_muls_plus_add_tree():
    spn = SPN(SumNode([_hist(0), _hist(0), _hist(0)], [1, 1, 1]))
    dp = build_datapath(spn)
    assert dp.count(HWOp.CONST_MUL) == 3
    assert dp.count(HWOp.ADD) == 2
    consts = [n.constant for n in dp.nodes if n.op is HWOp.CONST_MUL]
    assert consts == pytest.approx([1 / 3] * 3)


def test_balanced_tree_depth_is_logarithmic():
    spn = SPN(ProductNode([_hist(v) for v in range(16)]))
    dp = build_datapath(spn)
    # Depth of the mul tree = log2(16) = 4 levels; verify via longest
    # input chain.
    depth = {i: 0 for i in range(len(dp.nodes))}
    for node in dp.nodes:
        if node.inputs:
            depth[node.index] = 1 + max(depth[i] for i in node.inputs)
    # INPUT -> LOOKUP -> 4 MUL levels = 5.
    assert depth[dp.output] == 5


def test_input_taps_shared_per_variable():
    # Two leaves on the same variable share one INPUT tap.
    spn = SPN(SumNode([_hist(0), _hist(0)], [0.5, 0.5]))
    dp = build_datapath(spn)
    assert dp.count(HWOp.INPUT) == 1
    assert dp.n_inputs == 1


def test_shared_spn_subgraph_stays_shared():
    shared = _hist(1)
    a = ProductNode([_hist(0), shared])
    b = ProductNode([_hist(2), shared])
    spn = SPN(SumNode([a, b], [0.5, 0.5]), validate=False)
    dp = build_datapath(spn)
    # 4 leaves in the SPN but only 3 distinct lookup instances.
    assert dp.count(HWOp.LOOKUP) == 3


def test_gaussian_leaf_discretised():
    spn = SPN(GaussianLeaf(0, 0.0, 1.0))
    dp = build_datapath(spn)
    assert dp.count(HWOp.LOOKUP) == 1
    assert dp.total_table_entries == 64


def test_operator_counts_match_spn_stats():
    spn = random_spn(12, depth=4, seed=3)
    stats = compute_stats(spn)
    dp = build_datapath(spn)
    assert dp.count(HWOp.ADD) == stats.n_adders
    assert dp.count(HWOp.CONST_MUL) + dp.count(HWOp.MUL) == stats.n_multipliers
    assert dp.count(HWOp.LOOKUP) == stats.n_leaves
    assert dp.total_table_entries == stats.n_table_entries


def test_topological_invariant_enforced():
    nodes = [
        DatapathNode(index=0, op=HWOp.INPUT, variable=0),
        DatapathNode(index=1, op=HWOp.LOOKUP, inputs=(2,)),  # forward ref
        DatapathNode(index=2, op=HWOp.LOOKUP, inputs=(0,)),
    ]
    with pytest.raises(CompilerError):
        Datapath(nodes, output=1)


def test_dense_indexing_enforced():
    nodes = [DatapathNode(index=5, op=HWOp.INPUT, variable=0)]
    with pytest.raises(CompilerError):
        Datapath(nodes, output=0)


def test_empty_datapath_rejected():
    with pytest.raises(CompilerError):
        Datapath([], output=0)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), n_vars=st.integers(1, 12))
def test_lowering_always_topological(seed, n_vars):
    spn = random_spn(n_vars, depth=3, seed=seed)
    dp = build_datapath(spn)  # constructor enforces the invariants
    assert dp.nodes[dp.output] is dp.nodes[-1] or dp.output < len(dp)
    assert dp.n_inputs == n_vars
