"""Tests for the netlist interpreter (lowering verification)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arith import PAPER_CFP
from repro.arith.spn_eval import evaluate_spn_in_format
from repro.compiler import build_datapath
from repro.compiler.interpreter import extract_lookup_tables, interpret_datapath
from repro.errors import CompilerError
from repro.spn import likelihood, nips_spn, random_spn
from repro.spn.inference import MISSING_VALUE, log_likelihood_with_missing


def _setup(seed=1, n_vars=5, n_bins=8):
    spn = random_spn(n_vars, depth=3, n_bins=n_bins, seed=seed)
    datapath = build_datapath(spn)
    tables = extract_lookup_tables(datapath, spn)
    return spn, datapath, tables


def test_interpreter_matches_spn_likelihood():
    spn, datapath, tables = _setup()
    rng = np.random.default_rng(1)
    data = rng.integers(0, 8, size=(100, 5))
    got = interpret_datapath(datapath, data, tables)
    np.testing.assert_allclose(got, likelihood(spn, data.astype(float)), rtol=1e-12)


def test_interpreter_with_format_matches_hardware_twin():
    spn, datapath, tables = _setup(seed=2)
    rng = np.random.default_rng(2)
    data = rng.integers(0, 8, size=(50, 5))
    got = interpret_datapath(datapath, data, tables, fmt=PAPER_CFP)
    twin = evaluate_spn_in_format(
        spn, data.astype(float), PAPER_CFP, return_linear=True
    )
    np.testing.assert_array_equal(got, twin)


def test_reserved_byte_marginalises():
    """Feature byte 255 must act as 'missing' through the tables."""
    spn, datapath, tables = _setup(seed=3)
    data = np.array([[1, 255, 2, 255, 0]])
    got = interpret_datapath(datapath, data, tables)
    expected = np.exp(
        log_likelihood_with_missing(
            spn, data.astype(float), missing_value=MISSING_VALUE
        )
    )
    np.testing.assert_allclose(got, expected, rtol=1e-12)


def test_out_of_support_features_hit_floor():
    spn, datapath, tables = _setup(seed=4)
    data = np.array([[200, 1, 1, 1, 1]])  # 200 is outside 8 bins
    got = interpret_datapath(datapath, data, tables)
    assert got[0] > 0  # floored, not zero
    in_support = interpret_datapath(datapath, np.array([[1, 1, 1, 1, 1]]), tables)
    assert got[0] < in_support[0]


def test_nips_benchmark_tables_extract():
    spn = nips_spn("NIPS10")
    datapath = build_datapath(spn)
    tables = extract_lookup_tables(datapath, spn)
    assert len(tables) == sum(1 for n in spn.leaves)
    for table in tables.values():
        assert table.shape == (256,)
        assert table[255] == 1.0


def test_wrong_spn_rejected():
    spn_a, datapath_a, _ = _setup(seed=5)
    spn_b = random_spn(7, depth=3, seed=6)
    with pytest.raises(CompilerError):
        extract_lookup_tables(datapath_a, spn_b)


def test_invalid_inputs_rejected():
    spn, datapath, tables = _setup(seed=7)
    with pytest.raises(CompilerError):
        interpret_datapath(datapath, np.zeros(5), tables)
    with pytest.raises(CompilerError):
        interpret_datapath(datapath, np.full((1, 5), 300), tables)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), n_vars=st.integers(1, 8))
def test_lowering_correct_property(seed, n_vars):
    """For any generated SPN, executing the netlist reproduces the
    model's likelihood — the compiler's core correctness property."""
    spn = random_spn(n_vars, depth=3, n_bins=4, seed=seed)
    datapath = build_datapath(spn)
    tables = extract_lookup_tables(datapath, spn)
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 4, size=(16, n_vars))
    got = interpret_datapath(datapath, data, tables)
    np.testing.assert_allclose(
        got, likelihood(spn, data.astype(float)), rtol=1e-10
    )
