"""Tests for netlist export/import and design reports."""

import json

import pytest

from repro.compiler import build_datapath, compile_core, compose_design
from repro.compiler.export import (
    datapath_from_json,
    datapath_to_dot,
    datapath_to_json,
    design_report,
)
from repro.compiler.operators import HWOp
from repro.errors import CompilerError
from repro.platforms.specs import XUPVVH_HBM_PLATFORM
from repro.spn import nips_spn, random_spn


@pytest.fixture(scope="module")
def datapath():
    return build_datapath(random_spn(6, depth=3, n_bins=5, seed=41))


class TestJsonNetlist:
    def test_round_trip_preserves_structure(self, datapath):
        again = datapath_from_json(datapath_to_json(datapath))
        assert len(again) == len(datapath)
        assert again.output == datapath.output
        for a, b in zip(again.nodes, datapath.nodes):
            assert a.op is b.op
            assert a.inputs == b.inputs
            assert a.variable == b.variable
            assert a.table_entries == b.table_entries
            assert a.constant == pytest.approx(b.constant) if b.constant else a.constant is None

    def test_json_is_valid_and_versioned(self, datapath):
        doc = json.loads(datapath_to_json(datapath))
        assert doc["version"] == 1
        assert len(doc["nodes"]) == len(datapath)

    def test_malformed_json_rejected(self):
        with pytest.raises(CompilerError):
            datapath_from_json("{not json")

    def test_wrong_version_rejected(self, datapath):
        doc = json.loads(datapath_to_json(datapath))
        doc["version"] = 99
        with pytest.raises(CompilerError):
            datapath_from_json(json.dumps(doc))

    def test_bad_op_rejected(self, datapath):
        doc = json.loads(datapath_to_json(datapath))
        doc["nodes"][0]["op"] = "frobnicate"
        with pytest.raises(CompilerError):
            datapath_from_json(json.dumps(doc))


class TestDot:
    def test_dot_contains_all_nodes_and_edges(self, datapath):
        dot = datapath_to_dot(datapath)
        assert dot.startswith("digraph")
        assert dot.count("label=") == len(datapath) + 1  # + output marker
        n_edges = sum(len(n.inputs) for n in datapath.nodes) + 1
        assert dot.count("->") == n_edges

    def test_lookup_label_shows_table_depth(self, datapath):
        dot = datapath_to_dot(datapath)
        assert "LUT[" in dot


class TestDesignReport:
    def test_report_mentions_key_quantities(self):
        core = compile_core(nips_spn("NIPS10"), "cfp")
        design = compose_design(core, 4, XUPVVH_HBM_PLATFORM)
        report = design_report(design)
        assert "NIPS10x4" in report
        assert "225.0 MHz" in report
        assert "pipeline depth" in report
        assert "dsp" in report
        assert "%" in report
