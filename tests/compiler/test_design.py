"""Unit tests for resource vectors, designs and frequency model."""

import pytest

from repro.compiler import (
    AcceleratorDesign,
    DeviceResources,
    ResourceVector,
    compile_core,
    compose_design,
)
from repro.compiler.frequency import achievable_frequency
from repro.errors import CompilerError, ResourceFitError
from repro.platforms.specs import (
    AWS_F1_PLATFORM,
    F1_CORE_INFRASTRUCTURE,
    VU37P,
    XUPVVH_HBM_PLATFORM,
)
from repro.spn import nips_spn, random_spn


class TestResourceVector:
    def test_addition(self):
        a = ResourceVector(1, 2, 3, 4, 5)
        b = ResourceVector(10, 20, 30, 40, 50)
        total = a + b
        assert total.as_dict() == {
            "luts_logic": 11,
            "luts_mem": 22,
            "registers": 33,
            "bram": 44,
            "dsp": 55,
        }

    def test_scalar_multiplication(self):
        v = 3 * ResourceVector(dsp=2, bram=1)
        assert v.dsp == 6
        assert v.bram == 3

    def test_total(self):
        vs = [ResourceVector(dsp=1)] * 4
        assert ResourceVector.total(vs).dsp == 4


class TestDeviceFit:
    def test_utilisation_fractions(self):
        device = DeviceResources("d", ResourceVector(100, 100, 100, 100, 100))
        util = device.utilisation(ResourceVector(50, 25, 10, 0, 100))
        assert util["luts_logic"] == 0.5
        assert util["dsp"] == 1.0

    def test_fits_respects_limit(self):
        device = DeviceResources("d", ResourceVector(100, 100, 100, 100, 100))
        assert device.fits(ResourceVector(80, 0, 0, 0, 0), max_utilisation=0.85)
        assert not device.fits(ResourceVector(90, 0, 0, 0, 0), max_utilisation=0.85)

    def test_check_fit_names_columns(self):
        device = DeviceResources("d", ResourceVector(100, 100, 100, 100, 100))
        with pytest.raises(ResourceFitError, match="dsp"):
            device.check_fit(ResourceVector(dsp=200))


class TestFrequency:
    def test_small_design_hits_target(self):
        fmax = achievable_frequency(
            320.0, ResourceVector(luts_logic=100_000), VU37P, target_mhz=225.0
        )
        assert fmax == 225.0

    def test_congestion_derates_large_designs(self):
        small = achievable_frequency(320.0, ResourceVector(luts_logic=100_000), VU37P)
        big = achievable_frequency(320.0, ResourceVector(luts_logic=1_000_000), VU37P)
        assert big < small

    def test_soft_controllers_cost_frequency(self):
        used = ResourceVector(luts_logic=400_000)
        without = achievable_frequency(250.0, used, VU37P, soft_memory_controllers=0)
        with_four = achievable_frequency(250.0, used, VU37P, soft_memory_controllers=4)
        assert with_four < without
        # Four controllers cost ~22% (0.94^4).
        assert with_four / without == pytest.approx(0.94**4)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(CompilerError):
            achievable_frequency(0.0, ResourceVector(), VU37P)
        with pytest.raises(CompilerError):
            achievable_frequency(100.0, ResourceVector(), VU37P, soft_memory_controllers=-1)


class TestCompileCore:
    def test_core_has_positive_resources(self):
        core = compile_core(nips_spn("NIPS10"), "cfp")
        assert core.datapath_resources.dsp > 0
        assert core.resources.luts_logic > core.datapath_resources.luts_logic

    def test_pipeline_depth_positive(self):
        core = compile_core(nips_spn("NIPS10"), "cfp")
        assert core.pipeline_depth > 0

    def test_format_changes_costs(self):
        spn = nips_spn("NIPS10")
        cfp = compile_core(spn, "cfp")
        f64 = compile_core(spn, "float64")
        assert f64.datapath_resources.dsp > cfp.datapath_resources.dsp
        assert f64.pipeline_depth > cfp.pipeline_depth


class TestComposeDesign:
    def test_resources_scale_with_cores(self):
        core = compile_core(nips_spn("NIPS10"), "cfp")
        one = compose_design(core, 1, XUPVVH_HBM_PLATFORM)
        four = compose_design(core, 4, XUPVVH_HBM_PLATFORM)
        per_core = core.resources.dsp
        assert four.total_resources.dsp - one.total_resources.dsp == pytest.approx(
            3 * per_core
        )

    def test_hbm_design_runs_at_225(self):
        core = compile_core(nips_spn("NIPS40"), "cfp")
        design = compose_design(core, 4, XUPVVH_HBM_PLATFORM)
        assert design.clock_mhz == 225.0
        assert design.samples_per_second_per_core == 225e6

    def test_nips80_fits_eight_cores_on_hbm_but_not_f1(self):
        """The paper's headline capacity claim: 8 NIPS80 cores on the
        VU37P versus 2 on the F1 (§V-A)."""
        hbm_core = compile_core(nips_spn("NIPS80"), "cfp")
        compose_design(hbm_core, 8, XUPVVH_HBM_PLATFORM)  # must fit
        f1_core = compile_core(
            nips_spn("NIPS80"), "float64", core_infrastructure=F1_CORE_INFRASTRUCTURE
        )
        compose_design(f1_core, 2, AWS_F1_PLATFORM, n_memory_controllers=2)  # fits
        with pytest.raises(ResourceFitError):
            compose_design(f1_core, 4, AWS_F1_PLATFORM, n_memory_controllers=4)

    def test_soft_controllers_slow_f1_clock(self):
        core = compile_core(
            nips_spn("NIPS10"), "float64", core_infrastructure=F1_CORE_INFRASTRUCTURE
        )
        few = compose_design(core, 2, AWS_F1_PLATFORM, n_memory_controllers=1)
        many = compose_design(core, 2, AWS_F1_PLATFORM, n_memory_controllers=4)
        assert many.clock_mhz < few.clock_mhz

    def test_invalid_core_count_rejected(self):
        core = compile_core(nips_spn("NIPS10"), "cfp")
        with pytest.raises(CompilerError):
            compose_design(core, 0, XUPVVH_HBM_PLATFORM)

    def test_design_name(self):
        core = compile_core(nips_spn("NIPS20"), "cfp")
        design = compose_design(core, 4, XUPVVH_HBM_PLATFORM)
        assert design.name == "NIPS20x4"


class TestTableOneShape:
    """The qualitative Table I findings must hold in the model."""

    def test_new_uses_fewer_resources_overall(self):
        for name in ("NIPS10", "NIPS40"):
            spn = nips_spn(name)
            new = compose_design(compile_core(spn, "cfp"), 4, XUPVVH_HBM_PLATFORM)
            old = compose_design(
                compile_core(
                    spn, "float64", core_infrastructure=F1_CORE_INFRASTRUCTURE
                ),
                4,
                AWS_F1_PLATFORM,
            )
            assert new.total_resources.luts_logic < old.total_resources.luts_logic
            assert new.total_resources.registers < old.total_resources.registers
            assert new.total_resources.bram < old.total_resources.bram
            assert new.total_resources.dsp < old.total_resources.dsp

    def test_dsp_ratio_roughly_three(self):
        spn = nips_spn("NIPS40")
        new = compose_design(compile_core(spn, "cfp"), 4, XUPVVH_HBM_PLATFORM)
        old = compose_design(
            compile_core(spn, "float64", core_infrastructure=F1_CORE_INFRASTRUCTURE),
            4,
            AWS_F1_PLATFORM,
        )
        ratio = old.total_resources.dsp / new.total_resources.dsp
        assert 2.5 < ratio < 3.5

    def test_old_design_uses_fewer_lut_mem(self):
        """Paper: "the accelerators used in [8] generally require fewer
        LUTs used as Memory"."""
        spn = nips_spn("NIPS10")
        new = compose_design(compile_core(spn, "cfp"), 4, XUPVVH_HBM_PLATFORM)
        old = compose_design(
            compile_core(spn, "float64", core_infrastructure=F1_CORE_INFRASTRUCTURE),
            4,
            AWS_F1_PLATFORM,
        )
        assert old.total_resources.luts_mem < new.total_resources.luts_mem
