"""Structural checks on the emitted Verilog."""

import re

import pytest

from repro.compiler import build_datapath
from repro.compiler.operators import CFP_LIBRARY, FLOAT64_LIBRARY, HWOp
from repro.compiler.verilog import datapath_to_verilog
from repro.errors import CompilerError
from repro.spn import SPN, HistogramLeaf, ProductNode, SumNode, nips_spn, random_spn


@pytest.fixture(scope="module")
def verilog_and_datapath():
    datapath = build_datapath(random_spn(6, depth=3, n_bins=5, seed=8))
    return datapath_to_verilog(datapath, CFP_LIBRARY), datapath


def test_module_endmodule_balance(verilog_and_datapath):
    text, _ = verilog_and_datapath
    assert len(re.findall(r"^\s*module\s", text, re.M)) == len(
        re.findall(r"^\s*endmodule", text, re.M)
    )


def test_one_instance_per_non_input_operator(verilog_and_datapath):
    text, datapath = verilog_and_datapath
    instances = re.findall(r"^\s*spn_(lookup|mul|const_mul|add) #", text, re.M)
    expected = sum(1 for n in datapath.nodes if n.op is not HWOp.INPUT)
    assert len(instances) == expected


def test_wires_declared_before_used(verilog_and_datapath):
    text, _ = verilog_and_datapath
    declared = set(re.findall(r"wire \[\d+:\d+\] (\w+);", text))
    used = set(re.findall(r"\.(?:a|b|d)\((\w+)\)", text))
    wire_uses = {u for u in used if u.startswith("w")}
    assert wire_uses <= declared


def test_feature_ports_match_variables(verilog_and_datapath):
    text, datapath = verilog_and_datapath
    ports = set(re.findall(r"input \[7:0\] (feature_v\d+)", text))
    variables = {
        f"feature_v{n.variable}" for n in datapath.nodes if n.op is HWOp.INPUT
    }
    assert ports == variables


def test_result_assigned_from_output_wire(verilog_and_datapath):
    text, datapath = verilog_and_datapath
    assert f"assign result = w{datapath.output};" in text


def test_balancing_delays_emitted_where_slack_exists():
    # A 3-ary product has one leaf skipping a mul level -> slack.
    spn = SPN(
        ProductNode(
            [
                HistogramLeaf(v, [0.0, 1.0, 2.0], [0.5, 0.5])
                for v in range(3)
            ]
        )
    )
    text = datapath_to_verilog(build_datapath(spn), CFP_LIBRARY)
    assert "spn_delay" in text
    stages = re.search(r"spn_delay #\(\.WIDTH\(\d+\), \.STAGES\((\d+)\)\)", text)
    assert stages and int(stages.group(1)) == CFP_LIBRARY.latency(HWOp.MUL)


def test_latencies_follow_library():
    datapath = build_datapath(random_spn(4, depth=2, n_bins=4, seed=2))
    cfp = datapath_to_verilog(datapath, CFP_LIBRARY)
    f64 = datapath_to_verilog(datapath, FLOAT64_LIBRARY)
    assert ".LAT(2))" in cfp or ".LAT(2)," in cfp
    assert ".LAT(9)" in f64  # float64 mul latency


def test_const_mul_carries_coefficient_bits(verilog_and_datapath):
    text, datapath = verilog_and_datapath
    coeffs = re.findall(r"\.COEFF\(64'h([0-9a-f]{16})\)", text)
    expected = sum(1 for n in datapath.nodes if n.op is HWOp.CONST_MUL)
    assert len(coeffs) == expected
    assert any(int(c, 16) != 0 for c in coeffs)


def test_nips_benchmark_emits(tmp_path):
    text = datapath_to_verilog(build_datapath(nips_spn("NIPS10")), CFP_LIBRARY)
    out = tmp_path / "nips10.v"
    out.write_text(text)
    assert out.stat().st_size > 10_000


def test_invalid_width_rejected():
    datapath = build_datapath(random_spn(3, depth=2, seed=1))
    with pytest.raises(CompilerError):
        datapath_to_verilog(datapath, CFP_LIBRARY, width=0)
