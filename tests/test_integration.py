"""Cross-module integration tests: the full toolflow end to end."""

import io

import numpy as np
import pytest

from repro import (
    InferenceJobConfig,
    InferenceRuntime,
    PAPER_CFP,
    SimulatedDevice,
    XUPVVH_HBM_PLATFORM,
    compile_core,
    compose_design,
    dumps,
    learn_spn,
    loads,
    log_likelihood,
    nips_benchmark,
    NipsCorpusConfig,
    synthesize_nips_corpus,
)
from repro.arith import evaluate_spn_in_format
from repro.baselines import naive_log_likelihood, run_cpu_baseline


class TestFullToolflow:
    """data -> learn -> text -> compile -> simulate -> verify."""

    @pytest.fixture(scope="class")
    def flow(self):
        data = synthesize_nips_corpus(NipsCorpusConfig(n_words=8, seed=99))
        spn = learn_spn(data.astype(np.float64), seed=99, name="it")
        spn = loads(dumps(spn), name="it")  # force the text round-trip
        core = compile_core(spn, "cfp")
        design = compose_design(core, 2, XUPVVH_HBM_PLATFORM)
        device = SimulatedDevice(design)
        runtime = InferenceRuntime(device, InferenceJobConfig(block_bytes=2048))
        return spn, data, runtime

    def test_device_matches_software_matches_oracle(self, flow):
        spn, data, runtime = flow
        queries = data[:200]
        device_out, _ = runtime.run(queries)
        software = log_likelihood(spn, queries.astype(np.float64))
        oracle = naive_log_likelihood(spn, queries[:40].astype(np.float64))
        np.testing.assert_allclose(device_out, software)
        np.testing.assert_allclose(software[:40], oracle, rtol=1e-10)

    def test_cpu_baseline_agrees(self, flow):
        spn, data, runtime = flow
        baseline = run_cpu_baseline(spn, data[:200].astype(np.float64))
        software = log_likelihood(spn, data[:200].astype(np.float64))
        np.testing.assert_allclose(baseline.results, software)

    def test_runtime_reusable_across_runs(self, flow):
        spn, data, runtime = flow
        first, _ = runtime.run(data[:50])
        second, _ = runtime.run(data[:50])
        np.testing.assert_array_equal(first, second)


class TestHardwareFormatOnDevice:
    def test_cfp_device_matches_cfp_software_twin(self):
        """A device built with the CFP compute format must agree with
        the standalone format-semantics evaluator bit for bit."""
        bench = nips_benchmark("NIPS10")
        core = compile_core(bench.spn, "cfp")
        design = compose_design(core, 1, XUPVVH_HBM_PLATFORM)
        device = SimulatedDevice(design, compute_format=PAPER_CFP)
        runtime = InferenceRuntime(device, InferenceJobConfig(block_bytes=4096))
        rng = np.random.default_rng(123)
        data = rng.integers(0, 30, size=(300, 10)).astype(np.uint8)
        device_out, _ = runtime.run(data)
        twin = evaluate_spn_in_format(bench.spn, data.astype(np.float64), PAPER_CFP)
        np.testing.assert_array_equal(device_out, twin)

    def test_cfp_device_close_to_float64(self):
        bench = nips_benchmark("NIPS10")
        core = compile_core(bench.spn, "cfp")
        design = compose_design(core, 1, XUPVVH_HBM_PLATFORM)
        device = SimulatedDevice(design, compute_format=PAPER_CFP)
        runtime = InferenceRuntime(device, InferenceJobConfig(block_bytes=4096))
        rng = np.random.default_rng(5)
        data = rng.integers(0, 30, size=(200, 10)).astype(np.uint8)
        device_out, _ = runtime.run(data)
        reference = log_likelihood(bench.spn, data.astype(np.float64))
        assert np.max(np.abs(device_out - reference)) < 1e-5


class TestDesVsAnalyticConsistency:
    """The DES and the closed-form models must tell the same story."""

    def test_pcie_bound_emerges_in_des(self):
        from repro.platforms.specs import PCIE_GEN3_X16

        bench = nips_benchmark("NIPS20")
        core = compile_core(bench.spn, "cfp")
        design = compose_design(core, 8, XUPVVH_HBM_PLATFORM)
        device = SimulatedDevice(design)
        runtime = InferenceRuntime(device, InferenceJobConfig(threads_per_pe=1))
        measured = runtime.run_timing_only(4_000_000).samples_per_second
        analytic = PCIE_GEN3_X16.bound_samples_per_second(
            bench.input_bytes_per_sample, bench.result_bytes_per_sample
        )
        assert measured == pytest.approx(analytic, rel=0.05)

    def test_compute_bound_emerges_in_des(self):
        bench = nips_benchmark("NIPS10")
        core = compile_core(bench.spn, "cfp")
        design = compose_design(core, 1, XUPVVH_HBM_PLATFORM)
        device = SimulatedDevice(design)
        runtime = InferenceRuntime(device, InferenceJobConfig(threads_per_pe=1))
        measured = runtime.run_on_device_only(2_000_000).samples_per_second
        # Steady state: block_samples / (dispatch + block_samples/clock).
        from repro.host.runtime import JOB_DISPATCH_OVERHEAD

        block = runtime.samples_per_block
        analytic = block / (JOB_DISPATCH_OVERHEAD + block / 225e6)
        # The DES additionally pays first-burst load, pipeline fill and
        # final store flush per block (~3%), so it runs slightly below.
        assert measured == pytest.approx(analytic, rel=0.05)
        assert measured < analytic


class TestLnsOnDevice:
    def test_lns_device_matches_lns_twin(self):
        """The LNS datapath configuration runs end to end on the
        simulated device (the [11] alternative format)."""
        from repro.arith import PAPER_LNS

        bench = nips_benchmark("NIPS10")
        core = compile_core(bench.spn, "lns")
        design = compose_design(core, 1, XUPVVH_HBM_PLATFORM)
        device = SimulatedDevice(design, compute_format=PAPER_LNS)
        runtime = InferenceRuntime(device, InferenceJobConfig(block_bytes=4096))
        rng = np.random.default_rng(9)
        data = rng.integers(0, 30, size=(150, 10)).astype(np.uint8)
        device_out, _ = runtime.run(data)
        twin = evaluate_spn_in_format(
            bench.spn, data.astype(np.float64), PAPER_LNS,
            missing_value=255.0,
        )
        np.testing.assert_array_equal(device_out, twin)
        reference = log_likelihood(bench.spn, data.astype(np.float64))
        assert np.max(np.abs(device_out - reference)) < 1e-3

    def test_lns_design_uses_fewer_dsps(self):
        bench = nips_benchmark("NIPS10")
        lns = compose_design(compile_core(bench.spn, "lns"), 4, XUPVVH_HBM_PLATFORM)
        cfp = compose_design(compile_core(bench.spn, "cfp"), 4, XUPVVH_HBM_PLATFORM)
        assert lns.total_resources.dsp < 0.25 * cfp.total_resources.dsp
