"""Tests for the Fig. 4 and Fig. 5 experiment harnesses."""

import pytest

from repro.experiments import PAPER, format_fig4, format_fig5, run_fig4, run_fig5


@pytest.fixture(scope="module")
def fig4():
    # Two benchmarks and fewer PE points keep the DES affordable in CI;
    # the benchmark suite runs the full sweep.
    return run_fig4(
        benchmarks=("NIPS10", "NIPS80"),
        pe_counts=(1, 2, 4, 6, 8),
        samples_per_core=600_000,
    )


class TestFig4:
    def test_without_transfers_scales_linearly(self, fig4):
        for name, series in fig4.without_transfers.items():
            per_core = [
                rate / n for rate, n in zip(series, fig4.pe_counts)
            ]
            assert max(per_core) / min(per_core) < 1.05, name

    def test_with_transfers_skewed_by_pcie(self, fig4):
        """The paper's Fig. 4 caption: including transfer time leads to
        severely skewed scaling."""
        for name in fig4.with_transfers:
            with_t = fig4.with_transfers[name][-1]
            without_t = fig4.without_transfers[name][-1]
            assert with_t < 0.5 * without_t

    def test_nips10_plateaus_by_five_pes(self, fig4):
        series = fig4.with_transfers["NIPS10"]
        # Gain from 6 to 8 PEs is marginal.
        assert (series[-1] - series[-2]) / series[-2] < 0.06

    def test_nips80_with_transfers_hits_paper_rate(self, fig4):
        assert fig4.with_transfers["NIPS80"][-1] == pytest.approx(
            PAPER.nips80_rate, rel=0.06
        )

    def test_format_has_both_panels(self, fig4):
        text = format_fig4(fig4)
        assert "w/o host transfers" in text
        assert "end-to-end" in text
        assert "utilization" not in text  # not collected by default

    def test_collect_utilization_attaches_reports(self):
        result = run_fig4(
            benchmarks=("NIPS10",),
            pe_counts=(1, 2),
            samples_per_core=200_000,
            collect_utilization=True,
        )
        report = result.utilization["NIPS10"]
        assert len(report.pes) == 2  # instrumented at the largest count
        assert report.channels
        text = format_fig4(result)
        assert "utilization at 2 PEs" in text
        assert "of plateau" in text

    def test_export_trace_writes_merged_trace(self, tmp_path):
        import json

        path = tmp_path / "fig4.perfetto.json"
        result = run_fig4(
            benchmarks=("NIPS10",),
            pe_counts=(1, 2),
            samples_per_core=100_000,
            export_trace=str(path),
        )
        assert result.with_transfers["NIPS10"]  # rates unaffected
        trace = json.loads(path.read_text())
        tracks = {
            (event["pid"], event["args"]["name"])
            for event in trace["traceEvents"]
            if event["ph"] == "M" and event["name"] == "thread_name"
        }
        # Simulated-clock tracks (pid 1) from the instrumented run...
        assert any(pid == 1 and name.startswith("pe") for pid, name in tracks)
        # ...and wall-clock sweep-pool point spans (pid 2).
        assert any(
            pid == 2 and name.startswith("fig4 sweep worker")
            for pid, name in tracks
        )


@pytest.fixture(scope="module")
def fig5():
    return run_fig5()


class TestFig5:
    def test_64_cores_supported_for_all_benchmarks(self, fig5):
        """Paper: HBM could serve 64 instances for all benchmarks."""
        for name in fig5.demand_gib:
            if name == "NIPS80":
                continue  # 80-var demand exceeds max_p above 32 cores
            assert fig5.max_cores_within(name, fig5.practical_total_gib) >= 64

    def test_nips10_reaches_128_cores(self, fig5):
        """Paper: up to 128 NIPS10 instances fit the HBM bandwidth."""
        assert fig5.max_cores_within("NIPS10", fig5.practical_total_gib) == 128

    def test_single_channel_limit_near_12_gib(self, fig5):
        assert fig5.single_channel_gib == pytest.approx(12.0, rel=0.05)

    def test_limit_lines_match_paper(self, fig5):
        assert fig5.practical_total_gib == pytest.approx(384, rel=0.01)
        assert fig5.theoretical_total_gib == pytest.approx(428, rel=0.01)

    def test_demand_linear_in_cores(self, fig5):
        series = fig5.demand_gib["NIPS40"]
        assert series[-1] / series[0] == pytest.approx(128.0)

    def test_nips10_demand_matches_paper_accounting(self, fig5):
        """Paper: 128 NIPS10 cores demand 285 GiB/s."""
        idx = fig5.core_counts.index(128)
        assert fig5.demand_gib["NIPS10"][idx] == pytest.approx(285, rel=0.02)

    def test_format_mentions_limits(self, fig5):
        text = format_fig5(fig5)
        assert "max_p" in text and "max_t" in text
