"""Tests for the design-choice ablation studies."""

import pytest

from repro.experiments.ablations import (
    format_ablation,
    run_block_size_ablation,
    run_crossbar_ablation,
    run_thread_ablation,
)
from repro.units import KIB, MIB


@pytest.fixture(scope="module")
def block():
    return run_block_size_ablation(
        benchmark="NIPS10",
        n_cores=2,
        block_sizes=(64 * KIB, 1 * MIB, 4 * MIB),
        n_samples=1_000_000,
    )


@pytest.fixture(scope="module")
def threads():
    return run_thread_ablation(
        core_counts=(1, 6), thread_counts=(1, 2), samples_per_core=800_000
    )


class TestBlockSizeAblation:
    def test_tiny_blocks_hurt(self, block):
        """64 KiB blocks pay the dispatch overhead ~16x as often."""
        rates = dict(zip(block.block_bytes, block.samples_per_second))
        assert rates[64 * KIB] < 0.75 * rates[1 * MIB]

    def test_paper_block_size_near_optimal(self, block):
        """The paper's 1 MiB block is within ~10% of the best swept."""
        rates = dict(zip(block.block_bytes, block.samples_per_second))
        assert rates[1 * MIB] >= 0.90 * max(rates.values())


class TestThreadAblation:
    def test_second_thread_helps_one_core(self, threads):
        assert threads[1][2] > 1.2 * threads[1][1]

    def test_second_thread_irrelevant_at_six_cores(self, threads):
        assert threads[6][2] < 1.10 * threads[6][1]


class TestCrossbarAblation:
    def test_crossbar_always_costs(self):
        result = run_crossbar_ablation()
        for size, (direct, routed) in result.items():
            assert routed < direct

    def test_loss_shrinks_with_request_size(self):
        result = run_crossbar_ablation(request_sizes=(16 * KIB, 1 * MIB))
        losses = {
            size: 1 - routed / direct for size, (direct, routed) in result.items()
        }
        assert losses[1 * MIB] < losses[16 * KIB]


def test_format_combines_all_tables(block, threads):
    text = format_ablation(block, threads, run_crossbar_ablation())
    assert "block size" in text
    assert "control threads" in text
    assert "crossbar" in text
