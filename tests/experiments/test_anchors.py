"""§V-B text anchors: the quoted throughput numbers must emerge from
the simulated system (DESIGN.md experiment id *text-v-b*)."""

import pytest

from repro.compiler import compile_core, compose_design
from repro.host import InferenceJobConfig, InferenceRuntime, SimulatedDevice
from repro.platforms.specs import XUPVVH_HBM_PLATFORM
from repro.spn import nips_benchmark
from repro.units import GIB


def _rate(benchmark, n_cores, threads=1, samples_per_core=1_500_000):
    bench = nips_benchmark(benchmark)
    core = compile_core(bench.spn, "cfp")
    device = SimulatedDevice(compose_design(core, n_cores, XUPVVH_HBM_PLATFORM))
    runtime = InferenceRuntime(device, InferenceJobConfig(threads_per_pe=threads))
    return runtime.run_timing_only(samples_per_core * n_cores)


def test_nips10_single_core_anchor():
    """Paper: 133,139,305 samples/s with one accelerator."""
    stats = _rate("NIPS10", 1)
    assert stats.samples_per_second == pytest.approx(133_139_305, rel=0.05)


def test_nips10_single_core_bandwidth():
    """Paper: one NIPS10 core requires ~2.23 GiB/s of bandwidth."""
    stats = _rate("NIPS10", 1)
    gib = stats.samples_per_second * 18 / GIB
    assert gib == pytest.approx(2.23, rel=0.06)


def test_nips10_five_core_anchor():
    """Paper: 614,654,595 samples/s with five accelerators."""
    stats = _rate("NIPS10", 5)
    assert stats.samples_per_second == pytest.approx(614_654_595, rel=0.08)


def test_nips10_five_core_moves_ten_gib():
    """Paper: the 5-core run needs ~10.3 GiB/s of PCIe traffic."""
    stats = _rate("NIPS10", 5)
    gib = stats.samples_per_second * 18 / GIB
    assert gib == pytest.approx(10.3, rel=0.08)


def test_nips80_eight_core_anchor():
    """Paper: 116,565,604 samples/s for NIPS80 (8 cores)."""
    stats = _rate("NIPS80", 8, samples_per_core=400_000)
    assert stats.samples_per_second == pytest.approx(116_565_604, rel=0.05)


def test_extra_threads_only_help_below_four_cores():
    """Paper §V-B: more than one control thread only improves
    performance for fewer than four accelerators."""
    small_gain = (
        _rate("NIPS10", 2, threads=2).samples_per_second
        / _rate("NIPS10", 2, threads=1).samples_per_second
    )
    large_gain = (
        _rate("NIPS10", 6, threads=2).samples_per_second
        / _rate("NIPS10", 6, threads=1).samples_per_second
    )
    assert small_gain > 1.25
    assert large_gain < 1.10
