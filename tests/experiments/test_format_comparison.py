"""Tests for the number-format design-space study."""

import pytest

from repro.experiments.format_comparison import (
    format_format_comparison,
    run_format_comparison,
)


@pytest.fixture(scope="module")
def study():
    return run_format_comparison(benchmark="NIPS10", n_samples=400)


def test_adopted_cfp_is_acceptable(study):
    cfp = next(r for r in study if r.format_name.startswith("cfp(10,25"))
    assert cfp.acceptable
    assert cfp.max_log_error < 1e-6


def test_lns_trades_dsps_for_luts(study):
    """[11]'s headline: LNS multipliers need no DSPs."""
    cfp = next(r for r in study if r.format_name.startswith("cfp(10,25"))
    lns = next(r for r in study if r.format_name.startswith("lns"))
    assert lns.dsp < 0.2 * cfp.dsp
    assert lns.luts_logic_k > cfp.luts_logic_k


def test_narrow_exponents_underflow(study):
    narrow = next(r for r in study if r.format_name.startswith("cfp(6,12"))
    assert not narrow.acceptable
    assert narrow.underflow_fraction > 0


def test_float32_costs_most_dsps(study):
    f32 = next(r for r in study if r.format_name == "float32")
    others = [r.dsp for r in study if r.dsp is not None and r.format_name != "float32"]
    assert f32.dsp > max(others)


def test_posit_has_library_costs(study):
    posit = next(r for r in study if r.format_name.startswith("posit"))
    assert posit.dsp is not None
    assert posit.acceptable  # 32-bit posit accuracy suffices


def test_formatting(study):
    text = format_format_comparison(study, benchmark="NIPS10")
    assert "design space" in text
    assert "cfp(10,25" in text
