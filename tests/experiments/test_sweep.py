"""Tests for the process-parallel sweep runner and compile caches."""

import os

import pytest

from repro.experiments.cache import benchmark_core
from repro.experiments.sweep import parallel_map, sweep_worker_count


def _square(x):
    return x * x


def _maybe_fail(x):
    if x == 3:
        raise ValueError("boom")
    return x


class TestWorkerCount:
    def test_clamped_to_items(self):
        assert sweep_worker_count(2, workers=16) == 2

    def test_explicit_workers_win(self):
        assert sweep_worker_count(100, workers=3) == 3

    def test_at_least_one(self):
        assert sweep_worker_count(0, workers=4) == 1

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "2")
        assert sweep_worker_count(100) == 2

    def test_default_is_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_WORKERS", raising=False)
        assert sweep_worker_count(1000) == (os.cpu_count() or 1)

    def test_non_integer_env_is_a_config_error(self, monkeypatch):
        """Regression: a typo'd REPRO_SWEEP_WORKERS crashed with a bare
        ValueError; it must raise a configuration error naming the
        variable and the offending value."""
        from repro.errors import RuntimeConfigError

        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "four")
        with pytest.raises(
            RuntimeConfigError, match=r"REPRO_SWEEP_WORKERS.*'four'"
        ):
            sweep_worker_count(100)


class TestParallelMap:
    def test_order_preserved_serial(self):
        assert parallel_map(_square, range(6), workers=1) == [0, 1, 4, 9, 16, 25]

    def test_order_preserved_parallel(self):
        assert parallel_map(_square, range(6), workers=2) == [0, 1, 4, 9, 16, 25]

    def test_empty(self):
        assert parallel_map(_square, [], workers=4) == []

    def test_exceptions_propagate(self):
        with pytest.raises(ValueError):
            parallel_map(_maybe_fail, range(6), workers=1)


class TestBenchmarkCoreCache:
    def test_memoised_identity(self):
        first = benchmark_core("NIPS10", "cfp")
        second = benchmark_core("NIPS10", "cfp")
        assert first is second

    def test_matches_direct_compile(self):
        from repro.compiler import compile_core
        from repro.spn.nips import nips_spn

        cached = benchmark_core("NIPS10", "cfp")
        direct = compile_core(nips_spn("NIPS10"), "cfp")
        assert cached.pipeline_depth == direct.pipeline_depth
        assert cached.resources == direct.resources
