"""Tests for reporting helpers and the paper-reference table."""

import math

import pytest

from repro.experiments import PAPER, format_series, format_table, geometric_mean


class TestFormatTable:
    def test_alignment_and_header(self):
        text = format_table(["name", "value"], [["a", 1.5], ["bb", 22.0]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_title_prepended(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_large_numbers_comma_separated(self):
        text = format_table(["rate"], [[133_139_305.0]])
        assert "133,139,305" in text

    def test_column_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])


class TestFormatSeries:
    def test_series_columns(self):
        text = format_series("x", [1, 2], {"y1": [10, 20], "y2": [30, 40]})
        assert "y1" in text and "y2" in text
        assert "40" in text


class TestPaperReference:
    def test_fig6_hbm_matches_quoted_anchors(self):
        """The derived Fig. 6 HBM series must pass through the two
        directly quoted anchor measurements."""
        assert PAPER.fig6_hbm["NIPS10"] == pytest.approx(
            PAPER.nips10_five_core_rate, rel=0.001
        )
        assert PAPER.fig6_hbm["NIPS80"] == pytest.approx(PAPER.nips80_rate, rel=0.001)

    def test_fig6_cpu_consistent_with_quoted_speedups(self):
        assert PAPER.fig6_hbm["NIPS20"] / PAPER.fig6_cpu["NIPS20"] == pytest.approx(
            PAPER.speedup_vs_cpu_nips20
        )
        assert PAPER.fig6_hbm["NIPS80"] / PAPER.fig6_cpu["NIPS80"] == pytest.approx(
            PAPER.speedup_vs_cpu_max
        )

    def test_fig6_gpu_series_honours_quoted_bounds(self):
        ratios = [PAPER.fig6_hbm[n] / PAPER.fig6_gpu[n] for n in PAPER.fig6_gpu]
        assert max(ratios) == pytest.approx(PAPER.speedup_vs_gpu_max, rel=0.01)
        assert geometric_mean(ratios) == pytest.approx(
            PAPER.speedup_vs_gpu_geomean, rel=0.05
        )

    def test_fig6_f1_series_honours_quoted_bounds(self):
        ratios = [PAPER.fig6_hbm[n] / PAPER.fig6_f1[n] for n in PAPER.fig6_f1]
        assert max(ratios) == pytest.approx(PAPER.speedup_vs_f1_max, rel=0.05)
        assert geometric_mean(ratios) == pytest.approx(
            PAPER.speedup_vs_f1_geomean, rel=0.03
        )

    def test_nips10_bits_per_sample(self):
        assert PAPER.nips10_bits_per_sample == 144

    def test_table1_rows_complete(self):
        assert set(PAPER.table1_new) == set(PAPER.table1_old) == {
            "NIPS10", "NIPS20", "NIPS30", "NIPS40",
        }

    def test_streaming_numbers_self_consistent(self):
        """140,748,580 samples/s follows from 99.078 Gbit/s / 88 B."""
        derived = PAPER.streaming_line_rate_gbit * 1e9 / (8 * 88)
        assert derived == pytest.approx(PAPER.streaming_nips80_rate, rel=1e-4)
