"""Tests for the roofline analysis."""

import pytest

from repro.experiments.roofline import format_roofline, run_roofline


@pytest.fixture(scope="module")
def points():
    return run_roofline()


def test_intensity_grows_with_benchmark_size(points):
    """Broad trend: larger SPNs pack more ops per transferred byte
    (exact monotonicity depends on learned structure density)."""
    intensities = [p.intensity for p in points]
    assert intensities[-1] > intensities[0]
    assert max(intensities) == intensities[-1]


def test_intensity_is_low_single_digits(points):
    """The paper's premise: SPN inference has low arithmetic intensity
    (~10 ops/byte, far left of a GPU's ridge point)."""
    for point in points:
        assert point.intensity < 20


def test_gpu_always_compute_bound(points):
    """The V100 ridge sits near 19 ops/B (~17 Gop/s / 900 GB/s x1000);
    every benchmark lands left of it -> the GPU never reaches its
    bandwidth, matching the paper's 'unsuitable' verdict."""
    for point in points:
        samples, memory_bound = point.bounds["Tesla V100"]
        assert not memory_bound  # compute(effective)-bound
        assert samples < 150e6


def test_fpga_bound_far_above_measured(points):
    """The FPGA's spatial datapath makes its compute roof enormous:
    the roofline bound must exceed the measured end-to-end rates by a
    wide margin (PCIe, not the roofline, is the wall)."""
    measured = {"NIPS10": 614e6, "NIPS80": 116.6e6}
    for point in points:
        if point.benchmark in measured:
            bound, _ = point.bounds["HBM FPGA (8 cores)"]
            assert bound > 2.5 * measured[point.benchmark]


def test_nips80_fpga_memory_bound(points):
    """The largest benchmark saturates its HBM channels before its
    pipelines — visible as the only 'mem' entry in the FPGA column."""
    nips80 = next(p for p in points if p.benchmark == "NIPS80")
    _, memory_bound = nips80.bounds["HBM FPGA (8 cores)"]
    assert memory_bound


def test_roofline_tracks_v100_model(points):
    """Roofline bounds should approximate the calibrated V100 model
    (same physics, independent formulation)."""
    from repro.platforms.gpu_model import TESLA_V100
    from repro.spn import nips_spn

    for point in points:
        bound, _ = point.bounds["Tesla V100"]
        model = TESLA_V100.samples_per_second(nips_spn(point.benchmark))
        assert bound == pytest.approx(model, rel=0.45)


def test_formatting(points):
    text = format_roofline(points)
    assert "Roofline" in text
    assert "(mem)" in text
