"""Tests for Fig. 6, the §V-D speedups and the §V-C outlook."""

import pytest

from repro.errors import ReproError
from repro.experiments import (
    PAPER,
    format_fig6,
    format_outlook,
    format_speedups,
    geometric_mean,
    run_fig6,
    run_outlook,
    run_speedups,
)


@pytest.fixture(scope="module")
def fig6():
    return run_fig6(samples_per_core=500_000)


@pytest.fixture(scope="module")
def speedups(fig6):
    return run_speedups(fig6)


class TestFig6:
    def test_cpu_wins_only_nips10(self, fig6):
        assert fig6.winner("NIPS10") == "CPU"
        for name in ("NIPS20", "NIPS30", "NIPS40", "NIPS80"):
            assert fig6.winner(name) == "HBM"

    def test_gpu_always_slowest(self, fig6):
        for name in fig6.benchmarks:
            others = (fig6.hbm[name], fig6.f1[name], fig6.cpu[name])
            assert fig6.gpu[name] < min(others)

    def test_hbm_matches_reconstructed_paper_series(self, fig6):
        for name in fig6.benchmarks:
            assert fig6.hbm[name] == pytest.approx(PAPER.fig6_hbm[name], rel=0.06)

    def test_hbm_beats_f1_everywhere(self, fig6):
        for name in fig6.benchmarks:
            assert fig6.hbm[name] > fig6.f1[name]

    def test_format_lists_winners(self, fig6):
        assert "winners:" in format_fig6(fig6)

    def test_collect_utilization_attaches_reports(self):
        result = run_fig6(
            benchmarks=("NIPS10",),
            samples_per_core=200_000,
            collect_utilization=True,
        )
        report = result.utilization["NIPS10"]
        assert report.channels
        assert report.dma.busy_fraction > 0
        text = format_fig6(result)
        assert "HBM utilization" in text
        assert "of plateau" in text


class TestSpeedups:
    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([3.0]) == pytest.approx(3.0)
        with pytest.raises(ReproError):
            geometric_mean([])
        with pytest.raises(ReproError):
            geometric_mean([1.0, -1.0])

    def test_vs_cpu_bounds(self, speedups):
        """Paper: max 2.46x; our model anchors that exactly.  The
        geometric mean lands below the paper's 1.6x because our learned
        NIPS30/40 structures are lighter than the originals (see
        EXPERIMENTS.md) — assert the reproduced range."""
        assert speedups.vs_cpu_max == pytest.approx(PAPER.speedup_vs_cpu_max, rel=0.05)
        assert 1.3 < speedups.vs_cpu_geomean < 1.7
        assert speedups.cpu_wins_nips10

    def test_vs_gpu_bounds(self, speedups):
        assert speedups.vs_gpu_max == pytest.approx(PAPER.speedup_vs_gpu_max, rel=0.05)
        assert speedups.vs_gpu_geomean == pytest.approx(
            PAPER.speedup_vs_gpu_geomean, rel=0.06
        )

    def test_vs_f1_bounds(self, speedups):
        assert speedups.vs_f1_max == pytest.approx(PAPER.speedup_vs_f1_max, rel=0.06)
        assert speedups.vs_f1_geomean == pytest.approx(
            PAPER.speedup_vs_f1_geomean, rel=0.05
        )

    def test_nips80_is_the_f1_outlier(self, speedups):
        """The 1.5x NIPS80 speedup comes from [8] fitting only 2 cores."""
        others = [
            v for k, v in speedups.per_benchmark_vs_f1.items() if k != "NIPS80"
        ]
        assert speedups.per_benchmark_vs_f1["NIPS80"] > max(others) * 1.1

    def test_streaming_beats_hbm_by_17_percent(self, speedups):
        """Paper: the streaming architecture delivers ~17-21% more on
        NIPS80 (140.7M vs 116.6M)."""
        assert speedups.streaming_nips80 == pytest.approx(
            PAPER.streaming_nips80_rate, rel=1e-3
        )
        assert 1.1 < speedups.streaming_advantage < 1.3

    def test_format_contains_all_metrics(self, speedups):
        text = format_speedups(speedups)
        for token in ("vs CPU max", "vs V100 geo-mean", "streaming/HBM"):
            assert token in text


class TestOutlook:
    @pytest.fixture(scope="class")
    def outlook(self):
        return run_outlook()

    def test_nips80_input_demand(self, outlook):
        assert outlook.nips80_input_gib == pytest.approx(
            PAPER.nips80_input_gib, rel=0.02
        )

    def test_128_core_demand_within_hbm(self, outlook):
        assert outlook.nips10_128core_demand_gib == pytest.approx(
            PAPER.nips10_128core_demand_gib, rel=0.02
        )
        assert outlook.hbm_headroom_ok

    def test_generations_double_projected_rates(self, outlook):
        gen3 = outlook.projected_rates["pcie3-x16"]["NIPS40"]
        gen6 = outlook.projected_rates["pcie6-x16"]["NIPS40"]
        assert gen6 / gen3 == pytest.approx(8.0, rel=0.01)

    def test_practical_gib_match_paper_quotes(self, outlook):
        for name, value in PAPER.pcie_outlook_gib.items():
            assert outlook.pcie_practical_gib[name] == pytest.approx(value, rel=0.02)

    def test_format_contains_accounting(self, outlook):
        text = format_outlook(outlook)
        assert "NIPS80 input demand" in text
        assert "pcie6-x16" in text
