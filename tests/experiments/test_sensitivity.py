"""Tests for the calibration-sensitivity analysis."""

import pytest

from repro.experiments.sensitivity import (
    format_sensitivity,
    run_sensitivity,
)


@pytest.fixture(scope="module")
def result():
    return run_sensitivity()


def test_all_conclusions_hold_at_nominal(result):
    for by_factor in result.verdicts.values():
        assert by_factor[1.0] == (True, True, True)


def test_pcie_bottleneck_fully_robust(result):
    """Conclusion 1 (PCIe is the wall) must survive every +-20%
    perturbation — it is the paper's central claim."""
    for by_factor in result.verdicts.values():
        for verdict in by_factor.values():
            assert verdict[0], "PCIe-bottleneck conclusion flipped"


def test_dispatch_overhead_never_changes_conclusions(result):
    """The job-dispatch calibration only shifts per-core rates far from
    any decision boundary."""
    for verdict in result.verdicts["job dispatch overhead"].values():
        assert verdict == (True, True, True)


def test_crossover_is_margin_limited(result):
    """The CPU/HBM crossover flips somewhere within +-20% — matching
    the paper's own ~5% NIPS10 margin.  (If this ever becomes fully
    robust, the CPU model drifted away from the paper's close call.)"""
    crossover_verdicts = [
        verdict[2]
        for by_factor in result.verdicts.values()
        for verdict in by_factor.values()
    ]
    assert not all(crossover_verdicts)
    assert any(crossover_verdicts)


def test_formatting_names_robust_findings(result):
    text = format_sensitivity(result)
    assert "Sensitivity" in text
    assert "PCIe" in text
    assert "margin-limited" in text or "every perturbation" in text


def test_custom_factors():
    tiny = run_sensitivity(factors=(1.0,))
    assert tiny.all_conclusions_robust()
