"""Tests for the Fig. 2 and Table I experiment harnesses."""

import pytest

from repro.experiments import PAPER, format_fig2, format_table1, run_fig2, run_table1
from repro.units import KIB, MIB


@pytest.fixture(scope="module")
def fig2():
    return run_fig2(n_requests=16)


@pytest.fixture(scope="module")
def table1():
    return run_table1()


class TestFig2:
    def test_plateau_matches_paper(self, fig2):
        assert fig2.plateau_gib == pytest.approx(PAPER.hbm_channel_gib, rel=0.05)

    def test_saturation_at_one_mib(self, fig2):
        assert fig2.saturation_bytes == PAPER.hbm_saturation_bytes

    def test_configurations_equivalent(self, fig2):
        """Fig. 2's second insight: conversion costs no bandwidth."""
        for native, converted in zip(fig2.native_450mhz, fig2.converted_225mhz):
            assert abs(native - converted) / native < 0.04

    def test_des_matches_analytic(self, fig2):
        for measured, analytic in zip(fig2.native_450mhz, fig2.analytic_native):
            assert measured == pytest.approx(analytic, rel=0.03)

    def test_monotone_series(self, fig2):
        assert list(fig2.native_450mhz) == sorted(fig2.native_450mhz)

    def test_format_contains_series(self, fig2):
        text = format_fig2(fig2)
        assert "Fig. 2" in text
        assert "450MHz native" in text
        assert "1024 KiB" in text


class TestTable1:
    @pytest.mark.parametrize(
        "column,tolerance",
        [
            ("luts_logic_k", 0.15),
            ("luts_mem_k", 0.10),
            ("registers_k", 0.10),
            ("bram", 0.10),
        ],
    )
    def test_new_columns_within_tolerance(self, table1, column, tolerance):
        for name, design in table1.new_designs.items():
            got = getattr(table1.as_row(design), column)
            ref = getattr(PAPER.table1_new[name], column)
            assert got == pytest.approx(ref, rel=tolerance), (name, column)

    def test_new_dsp_shape(self, table1):
        """DSP is the loosest column (structure-dependent); the shape —
        monotone growth, right magnitude — must hold."""
        got = [table1.as_row(table1.new_designs[n]).dsp for n in table1.new_designs]
        ref = [PAPER.table1_new[n].dsp for n in table1.new_designs]
        assert got == sorted(got)
        for g, r in zip(got, ref):
            assert g == pytest.approx(r, rel=0.40)

    def test_old_columns_within_tolerance(self, table1):
        for name, design in table1.old_designs.items():
            got = table1.as_row(design)
            ref = PAPER.table1_old[name]
            assert got.luts_logic_k == pytest.approx(ref.luts_logic_k, rel=0.10)
            assert got.registers_k == pytest.approx(ref.registers_k, rel=0.10)

    def test_headline_resource_reduction(self, table1):
        """Paper: this work needs roughly a third of the DSPs and far
        fewer logic LUTs/registers than [8]."""
        for name in table1.new_designs:
            new = table1.as_row(table1.new_designs[name])
            old = table1.as_row(table1.old_designs[name])
            assert 2.5 < old.dsp / new.dsp < 3.5
            assert old.luts_logic_k > 1.8 * new.luts_logic_k
            assert old.registers_k > 1.7 * new.registers_k
            assert old.bram > 2.5 * new.bram

    def test_format_mentions_both_platforms(self, table1):
        text = format_table1(table1)
        assert "this work" in text
        assert "prior work" in text
