"""Integration tests for the device façade and inference runtime."""

import numpy as np
import pytest

from repro.compiler import compile_core, compose_design
from repro.errors import RuntimeConfigError
from repro.host import InferenceJobConfig, InferenceRuntime, SimulatedDevice
from repro.host.runtime import RunStatistics
from repro.platforms.specs import XUPVVH_HBM_PLATFORM
from repro.spn import log_likelihood, nips_benchmark, random_spn
from repro.spn.nips import nips_dataset
from repro.units import MIB


def _device(n_cores=2, spn=None):
    if spn is None:
        spn = random_spn(8, depth=3, n_bins=16, seed=77)
    core = compile_core(spn, "cfp")
    design = compose_design(core, n_cores, XUPVVH_HBM_PLATFORM)
    return SimulatedDevice(design), spn


class TestDevice:
    def test_pe_enumeration(self):
        device, _ = _device(n_cores=3)
        assert device.n_pes == 3

    def test_pe_configuration_query(self):
        device, spn = _device()
        config = device.pe_configuration(0)
        assert config["n_variables"] == spn.n_variables
        assert config["clock_mhz"] == 225

    def test_too_many_cores_rejected(self):
        spn = random_spn(4, depth=2, seed=1)
        core = compile_core(spn, "cfp")
        design = compose_design(core, 33, XUPVVH_HBM_PLATFORM, check_fit=False)
        with pytest.raises(RuntimeConfigError):
            SimulatedDevice(design)

    def test_copy_roundtrip(self):
        device, _ = _device()
        payload = bytes(range(256))

        def proc():
            yield device.copy_to_device(0, 4096, payload)
            data = yield device.copy_from_device(0, 4096, 256)
            return data

        got = device.env.run(until_event=device.env.process(proc()))
        assert got == payload

    def test_invalid_pe_rejected(self):
        device, _ = _device()
        with pytest.raises(RuntimeConfigError):
            device.launch(7, 0, 0, 1)


class TestRuntimeFunctional:
    def test_results_match_reference_and_order(self):
        device, spn = _device(n_cores=2)
        runtime = InferenceRuntime(
            device, InferenceJobConfig(block_bytes=2048, threads_per_pe=2)
        )
        rng = np.random.default_rng(5)
        data = rng.integers(0, 16, size=(700, 8)).astype(np.uint8)
        results, stats = runtime.run(data)
        np.testing.assert_allclose(results, log_likelihood(spn, data.astype(float)))
        assert stats.n_samples == 700
        assert stats.elapsed_seconds > 0

    def test_nips_benchmark_end_to_end(self):
        bench = nips_benchmark("NIPS10")
        core = compile_core(bench.spn, "cfp")
        device = SimulatedDevice(compose_design(core, 2, XUPVVH_HBM_PLATFORM))
        runtime = InferenceRuntime(device, InferenceJobConfig(block_bytes=4096))
        data = nips_dataset("NIPS10")[:500]
        results, stats = runtime.run(data)
        np.testing.assert_allclose(
            results, log_likelihood(bench.spn, data.astype(float))
        )

    def test_work_distributed_across_pes(self):
        device, _ = _device(n_cores=2)
        runtime = InferenceRuntime(device, InferenceJobConfig(block_bytes=1024))
        rng = np.random.default_rng(6)
        data = rng.integers(0, 16, size=(1000, 8)).astype(np.uint8)
        _, stats = runtime.run(data)
        assert set(stats.samples_per_pe) == {0, 1}
        assert sum(stats.samples_per_pe.values()) == 1000

    def test_wrong_shape_rejected(self):
        device, _ = _device()
        runtime = InferenceRuntime(device)
        with pytest.raises(RuntimeConfigError):
            runtime.run(np.zeros((10, 3), dtype=np.uint8))

    def test_shape_checked_against_variables_not_encoded_bytes(self):
        """Regression: with a wide sample format (one variable encodes
        to more than one byte) the input shape must be validated
        against the PE's variable count, not its encoded byte count."""

        class WideFormatDevice:
            def pe_configuration(self, pe):
                return {"n_variables": 4, "sample_bytes": 8, "result_bytes": 8}

        # The runtime self-configures purely from the register file.
        runtime = InferenceRuntime(WideFormatDevice())
        assert runtime.n_variables == 4
        assert runtime.sample_bytes == 8

        # A (n, sample_bytes) matrix used to slip through; it must be
        # rejected with a message naming the variable count.
        with pytest.raises(RuntimeConfigError, match=r"\(n, 4\)"):
            runtime.run(np.zeros((10, 8), dtype=np.uint8))

        # A (n, n_variables) matrix passes validation and reaches
        # execution.
        calls = {}

        def fake_execute(n_samples, data=None, results=None, transfers=True):
            calls["n_samples"] = n_samples
            return RunStatistics(n_samples=n_samples)

        runtime._execute = fake_execute
        results, stats = runtime.run(np.zeros((10, 4), dtype=np.uint8))
        assert calls["n_samples"] == 10
        assert stats.n_samples == 10

    def test_memory_released_after_run(self):
        device, _ = _device()
        runtime = InferenceRuntime(device, InferenceJobConfig(block_bytes=1024))
        rng = np.random.default_rng(7)
        data = rng.integers(0, 16, size=(300, 8)).astype(np.uint8)
        runtime.run(data)
        for block in range(device.n_pes):
            assert device.memory_manager.allocator(block).bytes_allocated == 0


class TestRuntimeTiming:
    def test_dma_traffic_accounted(self):
        bench = nips_benchmark("NIPS10")
        core = compile_core(bench.spn, "cfp")
        device = SimulatedDevice(compose_design(core, 1, XUPVVH_HBM_PLATFORM))
        runtime = InferenceRuntime(device)
        stats = runtime.run_timing_only(1_000_000)
        assert stats.bytes_to_device == 1_000_000 * 10
        assert stats.bytes_from_device == 1_000_000 * 8

    def test_single_core_nips10_anchor(self):
        """§V-B: one core processes 133,139,305 samples/s end to end."""
        bench = nips_benchmark("NIPS10")
        core = compile_core(bench.spn, "cfp")
        device = SimulatedDevice(compose_design(core, 1, XUPVVH_HBM_PLATFORM))
        runtime = InferenceRuntime(device, InferenceJobConfig(threads_per_pe=1))
        stats = runtime.run_timing_only(2_000_000)
        assert stats.samples_per_second == pytest.approx(133_139_305, rel=0.05)

    def test_two_threads_help_single_core(self):
        """§IV-B/§V-B: a second control thread overlaps transfers with
        compute and raises single-core throughput."""
        bench = nips_benchmark("NIPS10")
        core = compile_core(bench.spn, "cfp")

        def rate(threads):
            device = SimulatedDevice(compose_design(core, 1, XUPVVH_HBM_PLATFORM))
            runtime = InferenceRuntime(
                device, InferenceJobConfig(threads_per_pe=threads)
            )
            return runtime.run_timing_only(2_000_000).samples_per_second

        assert rate(2) > 1.25 * rate(1)

    def test_on_device_only_scales_linearly(self):
        """Fig. 4 left: without transfers, scaling is almost linear."""
        bench = nips_benchmark("NIPS10")
        core = compile_core(bench.spn, "cfp")

        def rate(n):
            device = SimulatedDevice(compose_design(core, n, XUPVVH_HBM_PLATFORM))
            runtime = InferenceRuntime(device, InferenceJobConfig(threads_per_pe=1))
            return runtime.run_on_device_only(1_000_000 * n).samples_per_second

        one, eight = rate(1), rate(8)
        assert eight / one == pytest.approx(8.0, rel=0.05)

    def test_with_transfers_plateaus(self):
        """Fig. 4 right: with transfers, adding cores beyond ~5 stops
        helping for NIPS10 (PCIe saturated)."""
        bench = nips_benchmark("NIPS10")
        core = compile_core(bench.spn, "cfp")

        def rate(n):
            device = SimulatedDevice(compose_design(core, n, XUPVVH_HBM_PLATFORM))
            runtime = InferenceRuntime(device, InferenceJobConfig(threads_per_pe=1))
            return runtime.run_timing_only(2_000_000 * n).samples_per_second

        five, eight = rate(5), rate(8)
        assert (eight - five) / five < 0.10
