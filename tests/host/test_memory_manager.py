"""Unit + concurrency tests for the device memory manager."""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AllocationError
from repro.host import DeviceMemoryManager, MemoryBlockAllocator
from repro.host.memory_manager import ALLOCATION_ALIGNMENT


class TestAllocator:
    def test_alloc_returns_aligned_addresses(self):
        alloc = MemoryBlockAllocator(0, 1 << 20)
        for _ in range(10):
            addr = alloc.alloc(100)
            assert addr % ALLOCATION_ALIGNMENT == 0

    def test_allocations_disjoint(self):
        alloc = MemoryBlockAllocator(0, 1 << 20)
        spans = []
        for _ in range(20):
            addr = alloc.alloc(5000)
            size = 8192  # 5000 rounded up
            for other_addr, other_size in spans:
                assert addr + size <= other_addr or other_addr + other_size <= addr
            spans.append((addr, size))

    def test_free_then_realloc_reuses_space(self):
        alloc = MemoryBlockAllocator(0, 8192)
        a = alloc.alloc(4096)
        b = alloc.alloc(4096)
        with pytest.raises(AllocationError):
            alloc.alloc(1)
        alloc.free(a)
        c = alloc.alloc(4096)
        assert c == a

    def test_coalescing_recovers_large_range(self):
        alloc = MemoryBlockAllocator(0, 3 * 4096)
        blocks = [alloc.alloc(4096) for _ in range(3)]
        for addr in blocks:
            alloc.free(addr)
        # Full capacity available again as one range.
        assert alloc.largest_free == 3 * 4096
        assert alloc.alloc(3 * 4096) == 0

    def test_double_free_rejected(self):
        alloc = MemoryBlockAllocator(0, 1 << 16)
        addr = alloc.alloc(4096)
        alloc.free(addr)
        with pytest.raises(AllocationError):
            alloc.free(addr)

    def test_exhaustion_raises(self):
        alloc = MemoryBlockAllocator(0, 8192)
        alloc.alloc(8192)
        with pytest.raises(AllocationError):
            alloc.alloc(1)

    def test_accounting(self):
        alloc = MemoryBlockAllocator(0, 1 << 16)
        a = alloc.alloc(4096)
        assert alloc.bytes_allocated == 4096
        assert alloc.bytes_free == (1 << 16) - 4096
        alloc.free(a)
        assert alloc.bytes_allocated == 0

    def test_invalid_requests_rejected(self):
        alloc = MemoryBlockAllocator(0, 1 << 16)
        with pytest.raises(AllocationError):
            alloc.alloc(0)
        with pytest.raises(AllocationError):
            alloc.free(12345)

    def test_thread_safety_under_contention(self):
        """Hammer one allocator from 8 real threads; every allocation
        must be disjoint and the books must balance (§IV-B requires a
        *thread-safe* manager)."""
        alloc = MemoryBlockAllocator(0, 8 << 20)
        errors = []
        seen = []
        lock = threading.Lock()

        def worker():
            try:
                held = []
                for _ in range(100):
                    addr = alloc.alloc(4096)
                    with lock:
                        seen.append(addr)
                    held.append(addr)
                    if len(held) > 4:
                        alloc.free(held.pop(0))
                for addr in held:
                    alloc.free(addr)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert alloc.bytes_allocated == 0
        assert alloc.bytes_free == 8 << 20

    @settings(max_examples=30, deadline=None)
    @given(
        sizes=st.lists(st.integers(1, 50_000), min_size=1, max_size=30),
        free_order=st.randoms(),
    )
    def test_property_alloc_free_restores_capacity(self, sizes, free_order):
        capacity = 16 << 20
        alloc = MemoryBlockAllocator(0, capacity)
        addrs = []
        for size in sizes:
            addrs.append(alloc.alloc(size))
        free_order.shuffle(addrs)
        for addr in addrs:
            alloc.free(addr)
        assert alloc.bytes_free == capacity
        assert alloc.largest_free == capacity


class TestDeviceMemoryManager:
    def test_per_block_isolation(self):
        mgr = DeviceMemoryManager(n_blocks=4, block_capacity=8192)
        a0 = mgr.alloc(0, 8192)
        # Block 0 is full but block 1 is untouched.
        with pytest.raises(AllocationError):
            mgr.alloc(0, 1)
        a1 = mgr.alloc(1, 8192)
        assert a0 == a1 == 0  # same local address space per block

    def test_free_routed_to_block(self):
        mgr = DeviceMemoryManager(n_blocks=2, block_capacity=8192)
        addr = mgr.alloc(1, 4096)
        with pytest.raises(AllocationError):
            mgr.free(0, addr)  # wrong block
        mgr.free(1, addr)

    def test_invalid_block_rejected(self):
        mgr = DeviceMemoryManager(n_blocks=2, block_capacity=8192)
        with pytest.raises(AllocationError):
            mgr.alloc(2, 64)
        with pytest.raises(AllocationError):
            mgr.alloc(-1, 64)
