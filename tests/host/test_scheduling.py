"""Tests for the block-scheduling strategies."""

import numpy as np
import pytest

from repro.compiler import compile_core, compose_design
from repro.errors import RuntimeConfigError
from repro.host import InferenceJobConfig, InferenceRuntime, SimulatedDevice
from repro.platforms.specs import XUPVVH_HBM_PLATFORM
from repro.spn import log_likelihood, random_spn


@pytest.fixture(scope="module")
def setup():
    spn = random_spn(6, depth=3, n_bins=8, seed=71)
    core = compile_core(spn, "cfp")
    rng = np.random.default_rng(71)
    data = rng.integers(0, 8, size=(800, 6)).astype(np.uint8)
    reference = log_likelihood(spn, data.astype(np.float64))
    return core, data, reference


def _run(core, data, scheduling, n_cores=3, block_bytes=512):
    device = SimulatedDevice(compose_design(core, n_cores, XUPVVH_HBM_PLATFORM))
    runtime = InferenceRuntime(
        device,
        InferenceJobConfig(block_bytes=block_bytes, scheduling=scheduling),
    )
    return runtime.run(data)


def test_both_schedulers_exact(setup):
    core, data, reference = setup
    for scheduling in ("static", "shared"):
        results, _ = _run(core, data, scheduling)
        np.testing.assert_allclose(results, reference)


def test_shared_covers_all_samples(setup):
    core, data, _ = setup
    _, stats = _run(core, data, "shared")
    assert sum(stats.samples_per_pe.values()) == len(data)


def test_shared_no_slower_on_uneven_tails(setup):
    """With a block count that divides unevenly over the PEs, the
    shared queue should finish at least as fast as static dealing."""
    core, data, _ = setup
    # 800 samples at 85/block -> 10 blocks over 3 PEs: 4/3/3 static.
    _, static_stats = _run(core, data, "static")
    _, shared_stats = _run(core, data, "shared")
    assert shared_stats.elapsed_seconds <= static_stats.elapsed_seconds * 1.02


def test_invalid_scheduling_rejected():
    with pytest.raises(RuntimeConfigError):
        InferenceJobConfig(scheduling="magic")
