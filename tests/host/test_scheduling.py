"""Tests for the block-scheduling strategies."""

import numpy as np
import pytest

from repro.compiler import compile_core, compose_design
from repro.errors import RuntimeConfigError
from repro.host import InferenceJobConfig, InferenceRuntime, SimulatedDevice
from repro.platforms.specs import XUPVVH_HBM_PLATFORM
from repro.spn import log_likelihood, random_spn


@pytest.fixture(scope="module")
def setup():
    spn = random_spn(6, depth=3, n_bins=8, seed=71)
    core = compile_core(spn, "cfp")
    rng = np.random.default_rng(71)
    data = rng.integers(0, 8, size=(800, 6)).astype(np.uint8)
    reference = log_likelihood(spn, data.astype(np.float64))
    return core, data, reference


def _run(core, data, scheduling, n_cores=3, block_bytes=512):
    device = SimulatedDevice(compose_design(core, n_cores, XUPVVH_HBM_PLATFORM))
    runtime = InferenceRuntime(
        device,
        InferenceJobConfig(block_bytes=block_bytes, scheduling=scheduling),
    )
    return runtime.run(data)


def test_both_schedulers_exact(setup):
    core, data, reference = setup
    for scheduling in ("static", "shared"):
        results, _ = _run(core, data, scheduling)
        np.testing.assert_allclose(results, reference)


def test_shared_covers_all_samples(setup):
    core, data, _ = setup
    _, stats = _run(core, data, "shared")
    assert sum(stats.samples_per_pe.values()) == len(data)


def test_shared_no_slower_on_uneven_tails(setup):
    """With a block count that divides unevenly over the PEs, the
    shared queue should finish at least as fast as static dealing."""
    core, data, _ = setup
    # 800 samples at 85/block -> 10 blocks over 3 PEs: 4/3/3 static.
    _, static_stats = _run(core, data, "static")
    _, shared_stats = _run(core, data, "shared")
    assert shared_stats.elapsed_seconds <= static_stats.elapsed_seconds * 1.02


def test_invalid_scheduling_rejected():
    with pytest.raises(RuntimeConfigError):
        InferenceJobConfig(scheduling="magic")


class TestSharedAllocationFailure:
    """A control thread whose buffer allocation fails while sibling
    threads hold the PE's memory must wait for the next free and
    retry — transient pressure is not an error and must not retire
    the thread (or, worse, strand unprocessed blocks)."""

    def _tight_runtime(
        self, core, capacity, *, threads=2, scheduling="shared", metrics=None
    ):
        from repro.host.memory_manager import DeviceMemoryManager

        device = SimulatedDevice(compose_design(core, 1, XUPVVH_HBM_PLATFORM))
        device.memory_manager = DeviceMemoryManager(
            n_blocks=1, block_capacity=capacity, metrics=metrics
        )
        if metrics is not None:
            device.metrics = metrics
        return InferenceRuntime(
            device,
            InferenceJobConfig(
                block_bytes=512, threads_per_pe=threads, scheduling=scheduling
            ),
        )

    def test_input_alloc_failure_waits_and_retries(self, setup):
        core, data, reference = setup
        # Allocations are 4 KiB-aligned: one thread's input+result fill
        # the two slots exactly, so the second thread's input allocation
        # fails transiently; it must park until the sibling frees and
        # then process its share.
        runtime = self._tight_runtime(core, capacity=2 * 4096)
        results, stats = runtime.run(data)
        np.testing.assert_allclose(results, reference)
        assert sum(stats.samples_per_pe.values()) == len(data)

    def test_result_alloc_failure_frees_input_and_retries(self, setup):
        core, data, reference = setup
        # Three 4 KiB slots: the second thread's input fits but its
        # result buffer does not; it must free the input, park, and
        # retry both allocations after the next free.
        runtime = self._tight_runtime(core, capacity=3 * 4096)
        results, stats = runtime.run(data)
        np.testing.assert_allclose(results, reference)
        assert sum(stats.samples_per_pe.values()) == len(data)

    def test_transient_failures_recovered_not_fatal(self, setup):
        """The run completes exactly even though the metrics prove
        transient allocation failures actually happened."""
        from repro.obs.metrics import MetricsRegistry

        core, data, reference = setup
        metrics = MetricsRegistry()
        runtime = self._tight_runtime(core, capacity=2 * 4096, metrics=metrics)
        results, stats = runtime.run(data)
        np.testing.assert_allclose(results, reference)
        assert metrics.value("mem.block0.alloc_failures") > 0

    def test_static_scheduling_also_waits_out_pressure(self, setup):
        """Static dealing with two threads per PE hits the same
        transient pressure; those threads must retry too, not crash."""
        core, data, reference = setup
        runtime = self._tight_runtime(
            core, capacity=2 * 4096, scheduling="static"
        )
        results, stats = runtime.run(data)
        np.testing.assert_allclose(results, reference)
        assert sum(stats.samples_per_pe.values()) == len(data)

    def test_unprocessable_blocks_raise(self, setup):
        from repro.errors import AllocationError

        core, data, _ = setup
        # No thread can ever fit a single block's buffers: the run must
        # fail loudly instead of silently dropping samples.
        runtime = self._tight_runtime(core, capacity=256, threads=1)
        with pytest.raises(AllocationError):
            runtime.run(data)

    def test_static_alloc_failure_still_raises(self, setup):
        from repro.errors import AllocationError

        core, data, _ = setup
        runtime = self._tight_runtime(
            core, capacity=256, threads=1, scheduling="static"
        )
        with pytest.raises(AllocationError):
            runtime.run(data)
