"""Tests for the F1 DES device and its XDMA model."""

import numpy as np
import pytest

from repro.compiler import compile_core, compose_design
from repro.errors import RuntimeConfigError
from repro.host import F1DmaEngine, F1SimulatedDevice, InferenceJobConfig, InferenceRuntime
from repro.platforms.f1_model import AWS_F1_SYSTEM
from repro.platforms.specs import AWS_F1_PLATFORM, F1_CORE_INFRASTRUCTURE
from repro.sim import Engine
from repro.spn import log_likelihood, nips_benchmark, random_spn
from repro.units import GIB, MIB


def _f1_device(name="NIPS10", n_cores=4, spn=None):
    if spn is None:
        spn = nips_benchmark(name).spn
    core = compile_core(spn, "float64", core_infrastructure=F1_CORE_INFRASTRUCTURE)
    design = compose_design(core, n_cores, AWS_F1_PLATFORM, n_memory_controllers=min(n_cores, 4))
    return F1SimulatedDevice(design, n_memory_controllers=min(n_cores, 4))


class TestXdma:
    def test_per_queue_bandwidth_cap(self):
        env = Engine()
        dma = F1DmaEngine(env, n_queues=4)

        def proc():
            yield dma.transfer(0, 64 * MIB, to_device=True)

        env.run(until_event=env.process(proc()))
        rate = 64 * MIB / env.now
        # One queue alone is queue-bound (3 GiB/s), not aggregate-bound.
        assert rate == pytest.approx(AWS_F1_SYSTEM.per_queue_bandwidth, rel=0.02)

    def test_aggregate_cap_binds_many_queues(self):
        env = Engine()
        dma = F1DmaEngine(env, n_queues=4)

        def proc(q):
            yield dma.transfer(q, 64 * MIB, to_device=True)

        done = env.all_of([env.process(proc(q)) for q in range(4)])
        env.run(until_event=done)
        total_rate = 4 * 64 * MIB / env.now
        # 4 x 3 GiB/s = 12 GiB/s demanded, but the aggregate weighted
        # capacity (7.55 GiB/s) binds.
        assert total_rate == pytest.approx(
            AWS_F1_SYSTEM.weighted_pcie_capacity, rel=0.03
        )

    def test_invalid_queue_rejected(self):
        dma = F1DmaEngine(Engine(), n_queues=2)
        with pytest.raises(RuntimeConfigError):
            dma.transfer(5, 100, to_device=True)


class TestF1Device:
    def test_cores_share_controllers(self):
        device = _f1_device(n_cores=4)
        assert device.n_controllers == 4
        device2 = _f1_device(n_cores=4)
        assert device2.controller_of(0) == device2.controller_of(0)

    def test_functional_results_match_reference(self):
        spn = random_spn(6, depth=3, n_bins=8, seed=51)
        device = _f1_device(spn=spn, n_cores=2)
        runtime = InferenceRuntime(device, InferenceJobConfig(block_bytes=2048))
        rng = np.random.default_rng(51)
        data = rng.integers(0, 8, size=(400, 6)).astype(np.uint8)
        results, _ = runtime.run(data)
        np.testing.assert_allclose(results, log_likelihood(spn, data.astype(float)))

    def test_des_matches_analytic_small_benchmarks(self):
        """The simulated F1 must land near the calibrated analytic
        model (which reproduces the paper's F1 series)."""
        device = _f1_device("NIPS40", n_cores=4)
        runtime = InferenceRuntime(device, InferenceJobConfig(threads_per_pe=4))
        measured = runtime.run_timing_only(4_000_000).samples_per_second
        analytic = AWS_F1_SYSTEM.samples_per_second("NIPS40", 40, 8)
        assert measured == pytest.approx(analytic, rel=0.05)

    def test_nips80_two_cores_queue_bound(self):
        device = _f1_device("NIPS80", n_cores=2)
        runtime = InferenceRuntime(device, InferenceJobConfig(threads_per_pe=4))
        measured = runtime.run_timing_only(1_500_000).samples_per_second
        # Near the paper's 77.7 M/s (= 116.6 / 1.5x), well under the
        # HBM system's 116.6 M/s.
        assert 65e6 < measured < 85e6

    def test_hbm_beats_f1_in_simulation(self):
        """The headline comparison, both sides simulated."""
        from repro.host import SimulatedDevice
        from repro.platforms.specs import XUPVVH_HBM_PLATFORM

        bench = nips_benchmark("NIPS40")
        f1 = _f1_device("NIPS40", n_cores=4)
        f1_rate = InferenceRuntime(
            f1, InferenceJobConfig(threads_per_pe=4)
        ).run_timing_only(2_000_000).samples_per_second
        hbm_core = compile_core(bench.spn, "cfp")
        hbm = SimulatedDevice(compose_design(hbm_core, 8, XUPVVH_HBM_PLATFORM))
        hbm_rate = InferenceRuntime(
            hbm, InferenceJobConfig(threads_per_pe=1)
        ).run_timing_only(4_000_000).samples_per_second
        assert 1.1 < hbm_rate / f1_rate < 1.5

    def test_invalid_configs_rejected(self):
        spn = random_spn(4, depth=2, seed=1)
        core = compile_core(spn, "float64")
        design = compose_design(core, 2, AWS_F1_PLATFORM, check_fit=False)
        with pytest.raises(RuntimeConfigError):
            F1SimulatedDevice(design, n_memory_controllers=0)


class TestSparseChannelMemory:
    def test_large_region_stays_sparse(self):
        from repro.accel import ChannelMemory

        memory = ChannelMemory(16 * GIB)
        memory.write(12 * GIB, b"deep write")
        assert memory.read(12 * GIB, 10) == b"deep write"
        assert memory.resident_bytes < 1 * MIB

    def test_untouched_space_reads_zero(self):
        from repro.accel import ChannelMemory

        memory = ChannelMemory(1 * GIB)
        assert memory.read(500 * 1024 * 1024, 16) == bytes(16)

    def test_cross_page_write(self):
        from repro.accel import ChannelMemory

        memory = ChannelMemory(1 * MIB)
        payload = bytes(range(256)) * 1024  # 256 KiB spanning pages
        memory.write(1000, payload)
        assert memory.read(1000, len(payload)) == payload
