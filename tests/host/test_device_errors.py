"""Error-path and robustness tests for the simulated devices."""

import numpy as np
import pytest

from repro.compiler import compile_core, compose_design
from repro.errors import AllocationError, MemoryModelError, RuntimeConfigError
from repro.host import InferenceJobConfig, InferenceRuntime, SimulatedDevice
from repro.platforms.specs import XUPVVH_HBM_PLATFORM
from repro.spn import random_spn


@pytest.fixture()
def device():
    spn = random_spn(4, depth=2, n_bins=4, seed=5)
    return SimulatedDevice(compose_design(compile_core(spn, "cfp"), 2, XUPVVH_HBM_PLATFORM))


def test_copy_beyond_capacity_rejected(device):
    capacity = device.memories[0].capacity

    def proc():
        yield device.copy_to_device(0, capacity - 2, b"toolong")

    with pytest.raises(MemoryModelError):
        device.env.run(until_event=device.env.process(proc()))


def test_allocation_exhaustion_surfaces(device):
    block = device.memory_manager.allocator(0)
    block.alloc(block.capacity)  # fill the PE's HBM slice completely
    with pytest.raises(AllocationError):
        device.alloc(0, 1)


def test_free_wrong_address_rejected(device):
    with pytest.raises(AllocationError):
        device.free(0, 0x5000)


def test_pe_configuration_bad_index(device):
    with pytest.raises(RuntimeConfigError):
        device.pe_configuration(9)


def test_runtime_zero_samples_rejected(device):
    runtime = InferenceRuntime(device)
    with pytest.raises(RuntimeConfigError):
        runtime.run_timing_only(0)
    with pytest.raises(RuntimeConfigError):
        runtime.run_on_device_only(-5)


def test_runtime_survives_multiple_engine_reuse(device):
    """Repeated runs on one device share the engine; time accumulates
    monotonically and statistics stay per-run."""
    runtime = InferenceRuntime(device, InferenceJobConfig(block_bytes=2048))
    first = runtime.run_timing_only(10_000)
    t_after_first = device.env.now
    second = runtime.run_timing_only(10_000)
    assert device.env.now > t_after_first
    assert first.n_samples == second.n_samples == 10_000
    assert second.elapsed_seconds == pytest.approx(first.elapsed_seconds, rel=0.2)


def test_single_sample_run(device):
    runtime = InferenceRuntime(device)
    stats = runtime.run_timing_only(1)
    assert stats.n_samples == 1
    assert stats.n_blocks == 1
    assert stats.elapsed_seconds > 0


def test_block_smaller_than_sample_still_works(device):
    # block_bytes=1 with 4-byte samples -> one sample per block.
    runtime = InferenceRuntime(device, InferenceJobConfig(block_bytes=1))
    data = np.random.default_rng(1).integers(0, 4, size=(7, 4)).astype(np.uint8)
    results, stats = runtime.run(data)
    assert stats.n_blocks == 7
    assert len(results) == 7
