"""Unit tests for the PCIe DMA engine model."""

import pytest

from repro.errors import RuntimeConfigError
from repro.host import DmaEngine
from repro.platforms.specs import (
    PCIE_GEN3_X16,
    PCIE_GEN4_X16,
    PCIE_GEN5_X16,
    PCIE_GEN6_X16,
)
from repro.sim import Engine
from repro.units import GIB, MIB


def _run_transfer(spec, n_bytes, to_device=True, repeats=1):
    env = Engine()
    dma = DmaEngine(env, spec)

    def proc():
        for _ in range(repeats):
            if to_device:
                yield dma.copy_to_device(n_bytes)
            else:
                yield dma.copy_from_device(n_bytes)

    env.run(until_event=env.process(proc()))
    return env.now, dma


def test_large_h2d_rate_matches_weighted_capacity():
    elapsed, _ = _run_transfer(PCIE_GEN3_X16, 256 * MIB)
    rate = 256 * MIB / elapsed
    assert rate == pytest.approx(PCIE_GEN3_X16.weighted_capacity, rel=0.01)


def test_d2h_cheaper_than_h2d():
    """D2H bytes cost d2h_weight of engine time."""
    h2d, _ = _run_transfer(PCIE_GEN3_X16, 64 * MIB, to_device=True)
    d2h, _ = _run_transfer(PCIE_GEN3_X16, 64 * MIB, to_device=False)
    assert d2h < h2d
    # Removing setup latency, the ratio approaches the weight.
    setup = PCIE_GEN3_X16.transfer_setup_latency
    assert (d2h - setup) / (h2d - setup) == pytest.approx(
        PCIE_GEN3_X16.d2h_weight, rel=0.02
    )


def test_setup_latency_dominates_tiny_transfers():
    elapsed, _ = _run_transfer(PCIE_GEN3_X16, 64)
    assert elapsed >= PCIE_GEN3_X16.transfer_setup_latency


def test_generations_scale_roughly_2x():
    rates = []
    for spec in (PCIE_GEN3_X16, PCIE_GEN4_X16, PCIE_GEN5_X16, PCIE_GEN6_X16):
        elapsed, _ = _run_transfer(spec, 256 * MIB)
        rates.append(256 * MIB / elapsed)
    for slower, faster in zip(rates, rates[1:]):
        assert faster / slower == pytest.approx(2.0, rel=0.05)


def test_bound_samples_per_second_anchors():
    """The calibrated weighted capacity reproduces both paper anchors."""
    nips10 = PCIE_GEN3_X16.bound_samples_per_second(10, 8)
    assert nips10 == pytest.approx(614_654_595, rel=0.01)
    nips80 = PCIE_GEN3_X16.bound_samples_per_second(80, 8)
    assert nips80 == pytest.approx(116_565_604, rel=0.01)


def test_byte_accounting():
    _, dma = _run_transfer(PCIE_GEN3_X16, 1 * MIB, to_device=True, repeats=3)
    assert dma.bytes_to_device == 3 * MIB
    assert dma.bytes_from_device == 0


def test_invalid_transfer_rejected():
    env = Engine()
    dma = DmaEngine(env)
    with pytest.raises(RuntimeConfigError):
        dma.copy_to_device(0)
