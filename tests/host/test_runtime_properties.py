"""Property-based tests of runtime invariants.

Whatever the block size, thread count or batch length, the runtime
must produce exactly the software-reference results in order, release
all device memory, and account every DMA byte.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import compile_core, compose_design
from repro.host import InferenceJobConfig, InferenceRuntime, SimulatedDevice
from repro.platforms.specs import XUPVVH_HBM_PLATFORM
from repro.spn import log_likelihood, random_spn

_SPN = random_spn(6, depth=3, n_bins=8, seed=404)
_CORE = compile_core(_SPN, "cfp")
_REFERENCE_DATA = np.random.default_rng(404).integers(0, 8, size=(600, 6)).astype(np.uint8)
_REFERENCE_LL = log_likelihood(_SPN, _REFERENCE_DATA.astype(np.float64))


@settings(max_examples=12, deadline=None)
@given(
    block_bytes=st.integers(64, 8192),
    threads=st.integers(1, 3),
    n_cores=st.integers(1, 3),
    n_rows=st.integers(1, 600),
)
def test_runtime_invariants(block_bytes, threads, n_cores, n_rows):
    design = compose_design(_CORE, n_cores, XUPVVH_HBM_PLATFORM)
    device = SimulatedDevice(design)
    runtime = InferenceRuntime(
        device,
        InferenceJobConfig(block_bytes=block_bytes, threads_per_pe=threads),
    )
    data = _REFERENCE_DATA[:n_rows]
    results, stats = runtime.run(data)

    # 1. Exact results in input order.
    np.testing.assert_allclose(results, _REFERENCE_LL[:n_rows])
    # 2. All device memory released.
    for block in range(device.n_pes):
        assert device.memory_manager.allocator(block).bytes_allocated == 0
    # 3. Byte accounting: every input byte out, every result byte back.
    assert stats.bytes_to_device == n_rows * 6
    assert stats.bytes_from_device == n_rows * 8
    # 4. Sample accounting across PEs.
    assert sum(stats.samples_per_pe.values()) == n_rows
    # 5. Time moved forward.
    assert stats.elapsed_seconds > 0
