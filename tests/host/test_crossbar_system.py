"""System-level crossbar ablation tests."""

import numpy as np
import pytest

from repro.compiler import compile_core, compose_design
from repro.host import InferenceJobConfig, InferenceRuntime, SimulatedDevice
from repro.platforms.specs import XUPVVH_HBM_PLATFORM
from repro.spn import log_likelihood, nips_benchmark, random_spn


def _rate(crossbar, n_cores=4, samples=1_000_000):
    core = compile_core(nips_benchmark("NIPS80").spn, "cfp")
    device = SimulatedDevice(
        compose_design(core, n_cores, XUPVVH_HBM_PLATFORM), crossbar=crossbar
    )
    runtime = InferenceRuntime(device, InferenceJobConfig(threads_per_pe=1))
    return runtime.run_on_device_only(samples).samples_per_second


def test_crossbar_costs_on_device_throughput():
    """§II-B: the crossbar "comes at the cost of additional latency
    and decreased performance" — visible at system level."""
    direct = _rate(False)
    routed = _rate(True)
    assert routed < direct
    assert routed > 0.80 * direct  # latency-class penalty, not collapse


def test_crossbar_device_still_functionally_correct():
    spn = random_spn(6, depth=3, n_bins=8, seed=61)
    core = compile_core(spn, "cfp")
    device = SimulatedDevice(compose_design(core, 2, XUPVVH_HBM_PLATFORM), crossbar=True)
    runtime = InferenceRuntime(device, InferenceJobConfig(block_bytes=2048))
    rng = np.random.default_rng(61)
    data = rng.integers(0, 8, size=(300, 6)).astype(np.uint8)
    results, _ = runtime.run(data)
    np.testing.assert_allclose(results, log_likelihood(spn, data.astype(float)))
