"""Unit tests for telemetry export: SLO math, Prometheus, writer, HTTP."""

import json
import urllib.request

import pytest

from repro.errors import ReproError
from repro.obs.exporter import (
    PeriodicTelemetryWriter,
    SLOTracker,
    TelemetryServer,
    TelemetrySnapshotter,
    prometheus_name,
)
from repro.obs.metrics import MetricsRegistry


def _registry():
    metrics = MetricsRegistry()
    metrics.counter("serving.requests").add(100)
    metrics.gauge("serving.queue_rows").set(7)
    metrics.time_stat("q").update(2.0, now=0.0)
    metrics.time_stat("q").update(0.0, now=1.0)
    hist = metrics.histogram("serving.e2e")
    for v in (0.001, 0.002, 0.004, 0.008):
        hist.record(v)
    return metrics


class TestSLOTracker:
    def test_burn_rate_follows_the_sre_convention(self):
        # target 99% -> 1% budget. 2 violations in 100 requests is a
        # 2% violation rate = burning budget at 2x.
        tracker = SLOTracker(10.0, target=0.99, window_s=60.0)
        for i in range(98):
            tracker.record(0.005, now=float(i) * 0.1)
        tracker.record(0.050, now=9.8)
        tracker.record(0.050, now=9.9)
        state = tracker.state(now=10.0)
        assert state["window_requests"] == 100
        assert state["window_violations"] == 2
        assert state["violation_rate"] == pytest.approx(0.02)
        assert state["burn_rate"] == pytest.approx(2.0)
        assert state["budget_remaining"] == 0.0

    def test_sheds_burn_budget(self):
        tracker = SLOTracker(10.0, target=0.99)
        tracker.record(0.001, now=0.0)
        tracker.record_shed(now=0.1)
        state = tracker.state(now=0.2)
        assert state["window_violations"] == 1
        assert state["violation_rate"] == pytest.approx(0.5)

    def test_window_prunes_old_events(self):
        tracker = SLOTracker(10.0, window_s=5.0)
        tracker.record(0.050, now=0.0)  # violation, will age out
        tracker.record(0.001, now=4.0)
        state = tracker.state(now=8.0)  # horizon is 3.0
        assert state["window_requests"] == 1
        assert state["window_violations"] == 0
        assert state["burn_rate"] == 0.0

    def test_empty_window_is_zero_burn(self):
        state = SLOTracker(10.0).state(now=0.0)
        assert state["window_requests"] == 0
        assert state["burn_rate"] == 0.0
        assert state["budget_remaining"] == 1.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ReproError, match="slo_ms"):
            SLOTracker(0.0)
        with pytest.raises(ReproError, match="target"):
            SLOTracker(10.0, target=1.0)
        with pytest.raises(ReproError, match="window_s"):
            SLOTracker(10.0, window_s=0.0)


class TestSnapshotter:
    def test_json_snapshot_round_trips(self):
        snapshotter = TelemetrySnapshotter(_registry())
        payload = json.loads(snapshotter.to_json())
        assert payload["schema_version"] == 1
        assert payload["uptime_seconds"] >= 0.0
        assert payload["metrics"]["counters"]["serving.requests"] == 100
        assert payload["metrics"]["histograms"]["serving.e2e"]["count"] == 4
        assert payload["slo"] is None

    def test_slo_state_rides_along(self):
        tracker = SLOTracker(10.0)
        tracker.record(0.001)  # real clock: stays inside the window
        payload = TelemetrySnapshotter(_registry(), slo=tracker).snapshot()
        assert payload["slo"]["window_requests"] == 1

    def test_prometheus_text_exposition(self):
        tracker = SLOTracker(10.0)
        tracker.record(0.050, now=0.0)
        text = TelemetrySnapshotter(_registry(), slo=tracker).to_prometheus()
        assert "# TYPE repro_serving_requests counter" in text
        assert "repro_serving_requests 100" in text
        assert "# TYPE repro_serving_e2e summary" in text
        assert 'repro_serving_e2e{quantile="0.5"}' in text
        assert "repro_serving_e2e_count 4" in text
        assert "repro_slo_burn_rate" in text
        # Every line is either a comment or `name[labels] value`.
        for line in text.strip().splitlines():
            assert line.startswith("# TYPE") or len(line.split(" ")) == 2

    def test_empty_histograms_emit_no_nan_samples(self):
        metrics = MetricsRegistry()
        metrics.histogram("serving.e2e")  # registered, never recorded
        text = TelemetrySnapshotter(metrics).to_prometheus()
        assert "nan" not in text.lower()
        assert "repro_serving_e2e_count 0" in text

    def test_prometheus_name_sanitises(self):
        assert prometheus_name("serving.e2e") == "repro_serving_e2e"
        assert prometheus_name("hbm.ch0.bytes-read") == "repro_hbm_ch0_bytes_read"


class TestPeriodicWriter:
    def test_initial_and_final_snapshots_always_land(self, tmp_path):
        path = tmp_path / "telemetry.json"
        metrics = _registry()
        writer = PeriodicTelemetryWriter(
            TelemetrySnapshotter(metrics), str(path), interval_s=3600.0
        )
        with writer:
            metrics.counter("serving.requests").add(1)
        # Interval never elapsed, but start+stop wrote twice and the
        # file reflects the end state.
        assert writer.n_writes == 2
        payload = json.loads(path.read_text())
        assert payload["metrics"]["counters"]["serving.requests"] == 101

    def test_invalid_interval_rejected(self, tmp_path):
        with pytest.raises(ReproError, match="interval_s"):
            PeriodicTelemetryWriter(
                TelemetrySnapshotter(_registry()),
                str(tmp_path / "t.json"),
                interval_s=0.0,
            )


class TestTelemetryServer:
    def test_serves_prometheus_and_json_on_a_free_port(self):
        with TelemetryServer(TelemetrySnapshotter(_registry()), port=0) as server:
            assert server.port > 0
            with urllib.request.urlopen(f"{server.url}/metrics") as resp:
                assert resp.status == 200
                assert "text/plain" in resp.headers["Content-Type"]
                body = resp.read().decode()
            assert "repro_serving_requests 100" in body
            with urllib.request.urlopen(f"{server.url}/telemetry") as resp:
                payload = json.loads(resp.read())
            assert payload["metrics"]["counters"]["serving.requests"] == 100

    def test_unknown_path_is_404(self):
        with TelemetryServer(TelemetrySnapshotter(_registry()), port=0) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(f"{server.url}/nope")
            assert excinfo.value.code == 404
