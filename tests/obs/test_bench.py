"""Benchmark trajectory recorder tests.

Covers the `repro bench` contract: --record appends schema-versioned
samples stamped with the host fingerprint (incl. git SHA), --check
gates the newest sample against the median of prior same-fingerprint
samples and fails (CLI exits nonzero) on an injected regression.
"""

import json

import pytest

from repro.errors import ReproError
from repro.obs import bench
from repro.obs.bench import (
    SCHEMA_VERSION,
    BenchScenario,
    check_scenarios,
    env_fingerprint,
    fingerprint_key,
    history_path,
    load_history,
    record_scenarios,
)


@pytest.fixture()
def fake_scenario(monkeypatch):
    """A deterministic, instant scenario injected into the suite."""
    values = iter([100.0, 101.0, 99.0, 100.5, 42.0])

    scenario = BenchScenario(
        name="fake",
        unit="widgets/s",
        higher_is_better=True,
        tolerance=0.25,
        description="deterministic test scenario",
        runner=lambda: (next(values), 0.01),
    )
    monkeypatch.setitem(bench.SCENARIOS, "fake", scenario)
    return scenario


class TestFingerprint:
    def test_fingerprint_carries_host_identity_and_git_sha(self):
        fingerprint = env_fingerprint()
        for key in ("cpu_count", "python", "numpy", "machine", "git_sha"):
            assert key in fingerprint
        assert fingerprint["cpu_count"] >= 1
        assert fingerprint["git_sha"]  # short SHA in a repo, else "unknown"

    def test_key_groups_by_machine_cpus_and_python_minor(self):
        base = {"machine": "x86_64", "cpu_count": 8, "python": "3.11.7"}
        patch_bump = dict(base, python="3.11.9", git_sha="other")
        assert fingerprint_key(base) == fingerprint_key(patch_bump)
        assert fingerprint_key(base) != fingerprint_key(
            dict(base, cpu_count=4)
        )
        assert fingerprint_key(base) != fingerprint_key(
            dict(base, python="3.12.1")
        )


class TestRecord:
    def test_record_creates_then_appends(self, tmp_path, fake_scenario):
        (first,) = record_scenarios(["fake"], bench_dir=str(tmp_path))
        (second,) = record_scenarios(["fake"], bench_dir=str(tmp_path))
        history = load_history(str(tmp_path), "fake")
        assert history["schema_version"] == SCHEMA_VERSION
        assert history["scenario"] == "fake"
        assert history["unit"] == "widgets/s"
        assert history["tolerance"] == 0.25
        assert [s["value"] for s in history["samples"]] == [
            first.value,
            second.value,
        ]
        for sample in history["samples"]:
            assert sample["fingerprint"]["git_sha"]
            assert sample["recorded_at"]
            assert sample["wall_seconds"] == 0.01

    def test_unknown_scenario_rejected(self, tmp_path):
        with pytest.raises(ReproError, match="unknown bench scenario"):
            record_scenarios(["nope"], bench_dir=str(tmp_path))

    def test_future_schema_rejected(self, tmp_path, fake_scenario):
        record_scenarios(["fake"], bench_dir=str(tmp_path))
        path = history_path(str(tmp_path), "fake")
        history = json.loads(path.read_text())
        history["schema_version"] = SCHEMA_VERSION + 1
        path.write_text(json.dumps(history))
        with pytest.raises(ReproError, match="schema_version"):
            load_history(str(tmp_path), "fake")


class TestCheck:
    def test_no_samples_fails_with_hint(self, tmp_path, fake_scenario):
        (result,) = check_scenarios(["fake"], bench_dir=str(tmp_path))
        assert not result.ok
        assert "--record" in result.message

    def test_first_sample_passes_without_baseline(self, tmp_path, fake_scenario):
        record_scenarios(["fake"], bench_dir=str(tmp_path))
        (result,) = check_scenarios(["fake"], bench_dir=str(tmp_path))
        assert result.ok
        assert "no comparable baseline" in result.message

    def test_steady_samples_pass(self, tmp_path, fake_scenario):
        for _ in range(4):
            record_scenarios(["fake"], bench_dir=str(tmp_path))
        (result,) = check_scenarios(["fake"], bench_dir=str(tmp_path))
        assert result.ok
        assert result.baseline == pytest.approx(100.0)  # median of 100,101,99

    def test_injected_regression_fails(self, tmp_path, fake_scenario):
        for _ in range(5):  # the fifth fake value is 42.0: a regression
            record_scenarios(["fake"], bench_dir=str(tmp_path))
        (result,) = check_scenarios(["fake"], bench_dir=str(tmp_path))
        assert not result.ok
        assert "REGRESSION" in result.message
        assert result.newest == pytest.approx(42.0)

    def test_other_hosts_samples_are_not_a_baseline(self, tmp_path, fake_scenario):
        for _ in range(3):
            record_scenarios(["fake"], bench_dir=str(tmp_path))
        # Rewrite all prior samples as if they came from another host.
        path = history_path(str(tmp_path), "fake")
        history = json.loads(path.read_text())
        for sample in history["samples"][:-1]:
            sample["fingerprint"]["cpu_count"] = 4096
        path.write_text(json.dumps(history))
        (result,) = check_scenarios(["fake"], bench_dir=str(tmp_path))
        assert result.ok
        assert "no baseline (fingerprint changed)" in result.message
        assert "not gated" in result.message
        assert result.skipped_fingerprint

    def test_fingerprint_change_exits_zero_with_explicit_note(
        self, tmp_path, fake_scenario, capsys
    ):
        """CI contract: a gate skipped for a fingerprint change exits 0
        but says so per scenario — distinguishable from 'fast enough'."""
        from repro.cli import main

        for _ in range(3):
            record_scenarios(["fake"], bench_dir=str(tmp_path))
        path = history_path(str(tmp_path), "fake")
        history = json.loads(path.read_text())
        for sample in history["samples"][:-1]:
            sample["fingerprint"]["machine"] = "riscv128"
        path.write_text(json.dumps(history))
        code = main(
            ["bench", "--check", "--scenarios", "fake",
             "--bench-dir", str(tmp_path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "fake: no baseline (fingerprint changed)" in out
        assert "skipped (fingerprint-key mismatch, not gated): fake" in out
        assert "PASS" in out


class TestCli:
    def test_record_then_check_exit_zero(self, tmp_path, fake_scenario, capsys):
        from repro.cli import main

        code = main(
            [
                "bench",
                "--record",
                "--check",
                "--scenarios",
                "fake",
                "--bench-dir",
                str(tmp_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "recorded" in out and "PASS" in out

    def test_injected_regression_exits_nonzero(
        self, tmp_path, fake_scenario, capsys
    ):
        from repro.cli import main

        for _ in range(4):
            record_scenarios(["fake"], bench_dir=str(tmp_path))
        # Inject a synthetic regression as the newest sample.
        path = history_path(str(tmp_path), "fake")
        history = json.loads(path.read_text())
        bad = dict(history["samples"][-1])
        bad["value"] = history["samples"][-1]["value"] * 0.1
        history["samples"].append(bad)
        path.write_text(json.dumps(history))
        code = main(
            ["bench", "--check", "--scenarios", "fake", "--bench-dir", str(tmp_path)]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "REGRESSION" in out and "FAIL" in out

    def test_bench_without_flags_is_an_error(self, capsys):
        from repro.cli import main

        assert main(["bench"]) == 2
        assert "--record" in capsys.readouterr().out

    def test_unknown_scenario_exits_two(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            ["bench", "--check", "--scenarios", "zzz", "--bench-dir", str(tmp_path)]
        )
        assert code == 2
        assert "unknown bench scenario" in capsys.readouterr().out


class TestRealScenario:
    def test_des_events_scenario_records_a_real_sample(self, tmp_path):
        (sample,) = record_scenarios(["des_events"], bench_dir=str(tmp_path))
        assert sample.value > 0
        assert sample.wall_seconds > 0
        history = load_history(str(tmp_path), "des_events")
        assert history["samples"][0]["value"] == sample.value
        assert history["higher_is_better"] is True
