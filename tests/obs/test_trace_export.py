"""Chrome/Perfetto trace-export acceptance tests.

Covers the exporter's contract: every emitted event carries the
mandatory Chrome Trace Event Format fields, simulated-clock and host
wall-clock events live in separate process groups with the clock
domain announced in metadata, and export is strictly observational —
simulated elapsed times are bit-identical with and without it.
"""

import json
import struct

import pytest

from repro.errors import ReproError
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace_export import (
    HOST_PID,
    SIM_PID,
    ChromeTraceBuilder,
    HostSpan,
    HostSpanRecorder,
    export_run_trace,
)

MANDATORY_FIELDS = ("name", "ph", "ts", "pid", "tid")


def _thread_names(trace: dict) -> dict:
    """pid -> list of announced thread (track) names."""
    names: dict = {}
    for event in trace["traceEvents"]:
        if event["ph"] == "M" and event["name"] == "thread_name":
            names.setdefault(event["pid"], []).append(event["args"]["name"])
    return names


class TestHostSpanRecorder:
    def test_normalises_against_epoch(self):
        recorder = HostSpanRecorder(epoch=100.0)
        recorder.record("w0", "shard0", 100.5, 101.25)
        (span,) = recorder.spans
        assert span.begin == pytest.approx(0.5)
        assert span.end == pytest.approx(1.25)
        assert span.duration == pytest.approx(0.75)
        assert recorder.tracks() == ["w0"]

    def test_span_context_manager_times_its_body(self):
        recorder = HostSpanRecorder()
        with recorder.span("pool", "task"):
            pass
        (span,) = recorder.spans
        assert span.track == "pool"
        assert span.end >= span.begin >= 0.0

    def test_backwards_span_rejected(self):
        recorder = HostSpanRecorder(epoch=0.0)
        with pytest.raises(ReproError, match="ends before it begins"):
            recorder.record("w", "x", 2.0, 1.0)


class TestChromeTraceBuilder:
    def test_tracks_get_stable_tids_per_process(self):
        builder = ChromeTraceBuilder()
        builder.add_span(SIM_PID, "pe0", "job", 0.0, 1.0, category="sim")
        builder.add_span(SIM_PID, "dma", "xfer", 0.0, 1.0, category="sim")
        builder.add_span(SIM_PID, "pe0", "job2", 1.0, 2.0, category="sim")
        builder.add_span(HOST_PID, "pe0", "other-clock", 0.0, 1.0, category="host")
        spans = [e for e in builder.to_dict()["traceEvents"] if e["ph"] == "X"]
        assert spans[0]["tid"] == spans[2]["tid"]  # same (pid, track)
        assert spans[0]["tid"] != spans[1]["tid"]  # different track
        # The same track name in another process is another thread.
        assert spans[3]["pid"] == HOST_PID

    def test_timestamps_are_microseconds(self):
        builder = ChromeTraceBuilder()
        builder.add_span(SIM_PID, "t", "x", 0.5, 2.0, category="sim")
        (span,) = [e for e in builder.to_dict()["traceEvents"] if e["ph"] == "X"]
        assert span["ts"] == pytest.approx(0.5e6)
        assert span["dur"] == pytest.approx(1.5e6)

    def test_counter_events_carry_values(self):
        builder = ChromeTraceBuilder()
        builder.add_counter(SIM_PID, "bytes", 4096.0, at_seconds=1.0)
        (counter,) = [e for e in builder.to_dict()["traceEvents"] if e["ph"] == "C"]
        assert counter["args"]["value"] == 4096.0
        assert counter["ts"] == pytest.approx(1e6)


class TestExportRunTrace:
    def test_needs_at_least_one_source(self, tmp_path):
        with pytest.raises(ReproError, match="needs a tracer"):
            export_run_trace(str(tmp_path / "t.json"))

    def test_metrics_need_elapsed_seconds(self, tmp_path):
        with pytest.raises(ReproError, match="elapsed_seconds"):
            export_run_trace(str(tmp_path / "t.json"), metrics=MetricsRegistry())

    def test_host_only_export_uses_host_process_group(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("executor.rows").add(100)
        path = tmp_path / "host.json"
        export_run_trace(
            str(path),
            metrics=registry,
            elapsed_seconds=0.5,
            host_spans=[HostSpan("executor worker0", "shard0", 0.0, 0.5)],
        )
        trace = json.loads(path.read_text())
        pids = {e["pid"] for e in trace["traceEvents"]}
        assert pids == {HOST_PID}


@pytest.fixture(scope="module")
def exported_sim_trace(tmp_path_factory):
    """One instrumented simulation run exported through run_utilization."""
    from repro.experiments.utilization import run_utilization

    path = tmp_path_factory.mktemp("trace") / "sim.perfetto.json"
    report = run_utilization(
        "NIPS10",
        2,
        threads_per_pe=2,
        samples_per_core=100_000,
        export_trace=str(path),
    )
    return report, json.loads(path.read_text())


class TestExportedTraceSchema:
    def test_every_event_has_mandatory_fields(self, exported_sim_trace):
        _, trace = exported_sim_trace
        assert trace["traceEvents"], "trace must not be empty"
        for event in trace["traceEvents"]:
            for field in MANDATORY_FIELDS:
                assert field in event, f"event missing {field}: {event}"
            assert event["ph"] in {"X", "C", "M"}
            if event["ph"] == "X":
                assert event["dur"] >= 0
            if event["ph"] == "C":
                assert "value" in event["args"]

    def test_sim_spans_cover_dma_pe_and_hbm_tracks(self, exported_sim_trace):
        _, trace = exported_sim_trace
        sim_tracks = set(_thread_names(trace).get(SIM_PID, []))
        assert "dma h2d" in sim_tracks
        assert "dma d2h" in sim_tracks
        assert any(track.startswith("pe") for track in sim_tracks)
        assert any(track.startswith("hbm ch") for track in sim_tracks)

    def test_clock_domains_are_announced(self, exported_sim_trace):
        _, trace = exported_sim_trace
        domains = trace["otherData"]["clock_domains"]
        assert f"pid {SIM_PID}" in domains
        assert "sim" in domains[f"pid {SIM_PID}"]
        process_names = [
            event["args"]["name"]
            for event in trace["traceEvents"]
            if event["ph"] == "M" and event["name"] == "process_name"
        ]
        assert any("sim clock" in name for name in process_names)

    def test_metric_counters_present(self, exported_sim_trace):
        _, trace = exported_sim_trace
        counters = {
            event["name"]
            for event in trace["traceEvents"]
            if event["ph"] == "C"
        }
        assert any(name.startswith("hbm.") for name in counters)


class TestMergedTraceHasBothClockDomains:
    def test_host_executor_spans_join_sim_spans(self, tmp_path):
        from repro.experiments.utilization import (
            run_traced_host_utilization,
            run_traced_utilization,
        )

        sim = run_traced_utilization(
            "NIPS10", 1, threads_per_pe=1, samples_per_core=50_000
        )
        host = run_traced_host_utilization("NIPS10", n_samples=20_000)
        assert host.host_spans, "executor must record worker spans"
        path = tmp_path / "merged.json"
        export_run_trace(
            str(path),
            tracer=sim.tracer,
            metrics=sim.metrics,
            elapsed_seconds=sim.elapsed_seconds,
            host_spans=host.host_spans,
        )
        trace = json.loads(path.read_text())
        tracks = _thread_names(trace)
        assert any(t.startswith("pe") for t in tracks[SIM_PID])
        assert any(t.startswith("executor worker") for t in tracks[HOST_PID])
        # Sim and host events never share a process group.
        for event in trace["traceEvents"]:
            assert event["pid"] in (SIM_PID, HOST_PID)


class TestFlowEvents:
    def test_flow_phase_validated(self):
        builder = ChromeTraceBuilder()
        with pytest.raises(ReproError, match="flow phase"):
            builder.add_flow(HOST_PID, "t", "x", 0.0, flow_id=1, phase="q")

    def test_finish_step_terminates_at_the_binding_span(self):
        builder = ChromeTraceBuilder()
        builder.add_flow(HOST_PID, "a", "req0", 0.0, flow_id=1, phase="s")
        builder.add_flow(HOST_PID, "b", "req0", 1.0, flow_id=1, phase="f")
        start, finish = [
            e for e in builder.to_dict()["traceEvents"] if e["ph"] in "sf"
        ]
        assert start["id"] == finish["id"] == 1
        assert "bp" not in start
        assert finish["bp"] == "e"

    def test_async_span_emits_begin_end_pair(self):
        builder = ChromeTraceBuilder()
        builder.add_async_span(HOST_PID, "requests", "request 0", 0.0, 0.5,
                               async_id=0)
        begin, end = [
            e for e in builder.to_dict()["traceEvents"] if e["ph"] in "be"
        ]
        assert begin["ph"] == "b" and end["ph"] == "e"
        assert begin["id"] == end["id"]
        assert end["ts"] > begin["ts"]

    def test_backwards_async_span_rejected(self):
        builder = ChromeTraceBuilder()
        with pytest.raises(ReproError, match="ends before it begins"):
            builder.add_async_span(HOST_PID, "t", "x", 2.0, 1.0, async_id=0)

    def test_write_summary_counts_flows(self, tmp_path):
        builder = ChromeTraceBuilder()
        builder.add_span(HOST_PID, "a", "s", 0.0, 1.0, category="host")
        builder.add_flow(HOST_PID, "a", "req0", 0.5, flow_id=1, phase="s")
        builder.add_flow(HOST_PID, "a", "req0", 0.7, flow_id=1, phase="f")
        summary = builder.write(str(tmp_path / "t.json"))
        assert summary["n_flows"] == 2
        assert summary["n_spans"] == 1


class TestMergedTraceWithRequestFlows:
    """Satellite check: one merged trace holding simulated-clock spans
    (pid 1), host-clock spans (pid 2) and request flow arrows whose
    every step binds inside a span that actually exists."""

    def test_flows_reference_only_existing_spans(self, tmp_path):
        from repro.experiments.utilization import run_traced_utilization
        from repro.obs.rtrace import RequestTrace, add_request_flows
        from repro.obs.trace_export import HostSpanRecorder

        sim = run_traced_utilization(
            "NIPS10", 1, threads_per_pe=1, samples_per_core=50_000
        )
        builder = ChromeTraceBuilder()
        builder.add_tracer(sim.tracer)

        # Host-clock lane + worker spans, then a request flow whose
        # stamps land inside them.
        recorder = HostSpanRecorder(epoch=1000.0)
        recorder.record("serving lane0", "batch0", 1000.002, 1000.010)
        recorder.record("executor worker0", "batch0 rows", 1000.004, 1000.009)
        builder.add_host_spans(recorder.spans)

        trace = RequestTrace(0)
        trace.stamp("enqueue", 1000.000)
        trace.stamp("batch_seal", 1000.001)
        trace.stamp("dispatch", 1000.003)
        trace.stamp("kernel_start", 1000.005)
        trace.stamp("kernel_end", 1000.008)
        trace.stamp("complete", 1000.011)
        trace.lane = 0
        trace.worker_track = "executor worker0"
        assert add_request_flows(
            builder, [trace], epoch=recorder.epoch
        ) == 1

        path = tmp_path / "merged.json"
        summary = builder.write(str(path))
        assert summary["n_flows"] == 4
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]

        # Both clock domains present, never sharing a process group.
        pids = {e["pid"] for e in events if e["ph"] != "M"}
        assert pids == {SIM_PID, HOST_PID}

        # Every flow step's timestamp lies inside an "X" span on the
        # same (pid, tid) — Perfetto silently drops dangling arrows.
        spans = [e for e in events if e["ph"] == "X"]
        for flow in (e for e in events if e["ph"] in ("s", "t", "f")):
            assert flow["pid"] == HOST_PID  # request path is host-clock
            assert any(
                s["pid"] == flow["pid"]
                and s["tid"] == flow["tid"]
                and s["ts"] <= flow["ts"] <= s["ts"] + s["dur"]
                for s in spans
            ), f"dangling flow step: {flow}"


class TestZeroPerturbation:
    def test_simulated_elapsed_bit_identical_with_export(self, tmp_path):
        from repro.experiments.utilization import run_utilization

        bare = run_utilization(
            "NIPS10", 1, threads_per_pe=2, samples_per_core=100_000
        )
        exported = run_utilization(
            "NIPS10",
            1,
            threads_per_pe=2,
            samples_per_core=100_000,
            export_trace=str(tmp_path / "run.json"),
        )
        assert struct.pack("<d", bare.elapsed_seconds) == struct.pack(
            "<d", exported.elapsed_seconds
        )
        assert (tmp_path / "run.json").exists()
