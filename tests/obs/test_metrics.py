"""Unit tests for the metrics primitives and registry."""

import json
import threading

import pytest

from repro.obs.hist import LogHistogram
from repro.obs.metrics import Counter, Gauge, MetricsRegistry, TimeWeightedStat


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("x")
        assert counter.value == 0.0
        counter.add()
        counter.add(2.5)
        assert counter.value == 3.5

    def test_rejects_negative_increments(self):
        counter = Counter("x")
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.add(-1.0)


class TestGauge:
    def test_set_tracks_high_water_mark(self):
        gauge = Gauge("depth")
        gauge.set(4.0)
        gauge.set(1.0)
        assert gauge.value == 1.0
        assert gauge.maximum == 4.0

    def test_add_moves_relative_and_may_go_negative(self):
        gauge = Gauge("delta")
        gauge.add(3.0)
        gauge.add(-5.0)
        assert gauge.value == -2.0
        assert gauge.maximum == 3.0


class TestTimeWeightedStat:
    def test_mean_integrates_levels_over_time(self):
        stat = TimeWeightedStat("queue")
        stat.update(2.0, now=0.0)
        stat.update(4.0, now=1.0)  # level 2 held for 1s
        stat.update(0.0, now=3.0)  # level 4 held for 2s
        assert stat.mean() == pytest.approx((2.0 * 1 + 4.0 * 2) / 3)
        assert stat.maximum == 4.0

    def test_mean_is_zero_before_any_interval(self):
        stat = TimeWeightedStat("queue")
        assert stat.mean() == 0.0
        stat.update(7.0, now=5.0)
        assert stat.mean() == 0.0  # no elapsed window yet
        assert stat.maximum == 7.0


class TestMetricsRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.time_stat("t") is registry.time_stat("t")
        assert registry.histogram("h") is registry.histogram("h")

    def test_histogram_is_a_registered_kind(self):
        from repro.errors import ReproError

        registry = MetricsRegistry()
        hist = registry.histogram("serving.e2e")
        assert isinstance(hist, LogHistogram)
        assert registry.has("serving.e2e")
        assert "serving.e2e" in list(registry.names())
        with pytest.raises(ReproError, match="already registered as a histogram"):
            registry.counter("serving.e2e")
        registry.counter("serving.requests")
        with pytest.raises(ReproError, match="cannot re-register it as a histogram"):
            registry.histogram("serving.requests")

    def test_histogram_kwargs_configure_first_creation_only(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", min_value=1e-3, max_value=10.0)
        assert hist.min_value == 1e-3
        # Later lookups ignore layout kwargs and return the same object.
        assert registry.histogram("h", min_value=1.0) is hist

    def test_value_reads_counters_and_gauges(self):
        registry = MetricsRegistry()
        registry.counter("c").add(2)
        registry.gauge("g").set(5)
        assert registry.value("c") == 2
        assert registry.value("g") == 5
        assert registry.value("missing", default=-1) == -1

    def test_maximum_reads_gauges_and_time_stats(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(9)
        registry.gauge("g").set(1)
        stat = registry.time_stat("t")
        stat.update(3.0, now=0.0)
        assert registry.maximum("g") == 9
        assert registry.maximum("t") == 3.0
        assert registry.maximum("missing", default=-1) == -1

    def test_has_and_names_cover_all_kinds(self):
        registry = MetricsRegistry()
        registry.counter("c")
        registry.gauge("g")
        registry.time_stat("t")
        assert registry.has("c") and registry.has("g") and registry.has("t")
        assert not registry.has("zzz")
        assert sorted(registry.names()) == ["c", "g", "t"]

    def test_name_collision_across_kinds_rejected(self):
        from repro.errors import ReproError

        registry = MetricsRegistry()
        registry.counter("hbm.ch0.bytes_read")
        with pytest.raises(ReproError, match="already registered as a counter"):
            registry.gauge("hbm.ch0.bytes_read")
        with pytest.raises(ReproError, match="cannot re-register it as a time_stat"):
            registry.time_stat("hbm.ch0.bytes_read")
        registry.gauge("depth")
        with pytest.raises(ReproError, match="already registered as a gauge"):
            registry.counter("depth")
        registry.time_stat("queue")
        with pytest.raises(ReproError, match="already registered as a time_stat"):
            registry.gauge("queue")

    def test_same_kind_reregistration_is_not_a_collision(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.add(2)
        assert registry.counter("c") is counter
        assert registry.counter("c").value == 2

    def test_snapshot_round_trips_through_json(self):
        registry = MetricsRegistry()
        registry.counter("hbm.ch0.requests").add(3)
        registry.gauge("mem.block0.allocated_bytes").set(4096)
        registry.time_stat("hbm.ch0.queue_depth").update(1.0, now=0.0)
        registry.time_stat("hbm.ch0.queue_depth").update(0.0, now=2.0)
        registry.histogram("serving.e2e").record(0.004)
        snapshot = json.loads(registry.to_json())
        assert snapshot == registry.snapshot()
        assert snapshot["counters"]["hbm.ch0.requests"] == 3
        assert snapshot["gauges"]["mem.block0.allocated_bytes"]["max"] == 4096
        assert snapshot["time_stats"]["hbm.ch0.queue_depth"]["mean"] == 1.0
        assert snapshot["histograms"]["serving.e2e"]["count"] == 1

    def test_empty_histogram_snapshot_is_strict_json(self):
        # NaN percentiles become None so strict JSON parsers accept it.
        registry = MetricsRegistry()
        registry.histogram("serving.e2e")
        payload = json.loads(registry.to_json(), parse_constant=lambda c: (
            pytest.fail(f"non-strict JSON constant {c!r} in snapshot")
        ))
        summary = payload["histograms"]["serving.e2e"]
        assert summary["count"] == 0
        assert summary["p99"] is None and summary["mean"] is None


class TestConcurrentLaneCompletion:
    """Regression: dispatch-lane threads update shared instruments
    concurrently; every increment must land exactly once."""

    N_THREADS = 4
    ROUNDS = 5_000

    def _hammer(self, work):
        threads = [
            threading.Thread(target=work, args=(t,))
            for t in range(self.N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    def test_two_lane_counter_hammer_loses_no_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("serving.rows")

        def work(_):
            for _ in range(self.ROUNDS):
                counter.add(1)

        self._hammer(work)
        assert counter.value == self.N_THREADS * self.ROUNDS

    def test_mixed_instrument_hammer_stays_consistent(self):
        registry = MetricsRegistry()
        counter = registry.counter("serving.batches")
        gauge = registry.gauge("serving.arenas_busy")
        hist = registry.histogram("serving.e2e")

        def work(_):
            for _ in range(self.ROUNDS):
                counter.add(1)
                gauge.add(1)
                hist.record(0.002)
                gauge.add(-1)

        self._hammer(work)
        total = self.N_THREADS * self.ROUNDS
        assert counter.value == total
        assert gauge.value == 0
        assert hist.count == total

    def test_snapshot_during_hammer_is_consistent(self):
        # Snapshots taken mid-flight under the registry lock must see
        # a consistent cut (counter == histogram count per round).
        registry = MetricsRegistry()
        counter = registry.counter("serving.requests")
        hist = registry.histogram("serving.e2e")
        stop = threading.Event()
        errors = []

        def work(_):
            for _ in range(self.ROUNDS):
                with registry._lock:
                    counter.add(1)
                    hist.record(0.001)

        def snapshotter():
            while not stop.is_set():
                snap = registry.snapshot()
                if (snap["counters"]["serving.requests"]
                        != snap["histograms"]["serving.e2e"]["count"]):
                    errors.append(snap)

        watcher = threading.Thread(target=snapshotter)
        watcher.start()
        self._hammer(work)
        stop.set()
        watcher.join()
        assert not errors
        assert counter.value == self.N_THREADS * self.ROUNDS
