"""Unit tests for the metrics primitives and registry."""

import json

import pytest

from repro.obs.metrics import Counter, Gauge, MetricsRegistry, TimeWeightedStat


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("x")
        assert counter.value == 0.0
        counter.add()
        counter.add(2.5)
        assert counter.value == 3.5

    def test_rejects_negative_increments(self):
        counter = Counter("x")
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.add(-1.0)


class TestGauge:
    def test_set_tracks_high_water_mark(self):
        gauge = Gauge("depth")
        gauge.set(4.0)
        gauge.set(1.0)
        assert gauge.value == 1.0
        assert gauge.maximum == 4.0

    def test_add_moves_relative_and_may_go_negative(self):
        gauge = Gauge("delta")
        gauge.add(3.0)
        gauge.add(-5.0)
        assert gauge.value == -2.0
        assert gauge.maximum == 3.0


class TestTimeWeightedStat:
    def test_mean_integrates_levels_over_time(self):
        stat = TimeWeightedStat("queue")
        stat.update(2.0, now=0.0)
        stat.update(4.0, now=1.0)  # level 2 held for 1s
        stat.update(0.0, now=3.0)  # level 4 held for 2s
        assert stat.mean() == pytest.approx((2.0 * 1 + 4.0 * 2) / 3)
        assert stat.maximum == 4.0

    def test_mean_is_zero_before_any_interval(self):
        stat = TimeWeightedStat("queue")
        assert stat.mean() == 0.0
        stat.update(7.0, now=5.0)
        assert stat.mean() == 0.0  # no elapsed window yet
        assert stat.maximum == 7.0


class TestMetricsRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.time_stat("t") is registry.time_stat("t")

    def test_value_reads_counters_and_gauges(self):
        registry = MetricsRegistry()
        registry.counter("c").add(2)
        registry.gauge("g").set(5)
        assert registry.value("c") == 2
        assert registry.value("g") == 5
        assert registry.value("missing", default=-1) == -1

    def test_maximum_reads_gauges_and_time_stats(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(9)
        registry.gauge("g").set(1)
        stat = registry.time_stat("t")
        stat.update(3.0, now=0.0)
        assert registry.maximum("g") == 9
        assert registry.maximum("t") == 3.0
        assert registry.maximum("missing", default=-1) == -1

    def test_has_and_names_cover_all_kinds(self):
        registry = MetricsRegistry()
        registry.counter("c")
        registry.gauge("g")
        registry.time_stat("t")
        assert registry.has("c") and registry.has("g") and registry.has("t")
        assert not registry.has("zzz")
        assert sorted(registry.names()) == ["c", "g", "t"]

    def test_name_collision_across_kinds_rejected(self):
        from repro.errors import ReproError

        registry = MetricsRegistry()
        registry.counter("hbm.ch0.bytes_read")
        with pytest.raises(ReproError, match="already registered as a counter"):
            registry.gauge("hbm.ch0.bytes_read")
        with pytest.raises(ReproError, match="cannot re-register it as a time_stat"):
            registry.time_stat("hbm.ch0.bytes_read")
        registry.gauge("depth")
        with pytest.raises(ReproError, match="already registered as a gauge"):
            registry.counter("depth")
        registry.time_stat("queue")
        with pytest.raises(ReproError, match="already registered as a time_stat"):
            registry.gauge("queue")

    def test_same_kind_reregistration_is_not_a_collision(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.add(2)
        assert registry.counter("c") is counter
        assert registry.counter("c").value == 2

    def test_snapshot_round_trips_through_json(self):
        registry = MetricsRegistry()
        registry.counter("hbm.ch0.requests").add(3)
        registry.gauge("mem.block0.allocated_bytes").set(4096)
        registry.time_stat("hbm.ch0.queue_depth").update(1.0, now=0.0)
        registry.time_stat("hbm.ch0.queue_depth").update(0.0, now=2.0)
        snapshot = json.loads(registry.to_json())
        assert snapshot == registry.snapshot()
        assert snapshot["counters"]["hbm.ch0.requests"] == 3
        assert snapshot["gauges"]["mem.block0.allocated_bytes"]["max"] == 4096
        assert snapshot["time_stats"]["hbm.ch0.queue_depth"]["mean"] == 1.0
