"""Unit tests for the log-bucketed latency histogram.

The satellite acceptance check lives in ``TestMatchesNearestRank``:
the histogram's percentiles must agree with the loadgen's exact
nearest-rank ``percentile_summary`` to within one bucket's relative
width across the degenerate and heavy-tailed sample shapes the serving
sweeps actually produce.
"""

import math
import threading

import pytest

from repro.errors import ReproError
from repro.obs.hist import (
    DEFAULT_GROWTH,
    DEFAULT_MAX_VALUE,
    DEFAULT_MIN_VALUE,
    LogHistogram,
)
from repro.serving.loadgen import percentile_summary


class TestGeometry:
    def test_bucket_count_is_fixed_at_construction(self):
        hist = LogHistogram("lat")
        expected = math.ceil(
            math.log(DEFAULT_MAX_VALUE / DEFAULT_MIN_VALUE)
            / math.log(DEFAULT_GROWTH)
        ) + 1
        assert hist.n_buckets == expected
        for _ in range(10_000):
            hist.record(0.003)
        assert hist.n_buckets == expected  # memory never grows
        assert hist.relative_error == pytest.approx(DEFAULT_GROWTH - 1.0)

    def test_values_clamp_into_the_edge_buckets(self):
        hist = LogHistogram("edges", min_value=1e-3, max_value=1.0)
        hist.record(1e-9)   # below min -> bucket 0
        hist.record(-5.0)   # negative clamps to zero -> bucket 0
        hist.record(50.0)   # beyond max -> last bucket, exact max kept
        buckets = hist.nonzero_buckets()
        assert len(buckets) == 2
        assert hist.max == 50.0
        assert hist.min == 0.0
        assert hist.count == 3

    def test_invalid_layout_rejected(self):
        with pytest.raises(ReproError, match="min_value"):
            LogHistogram("x", min_value=0.0)
        with pytest.raises(ReproError, match="max_value"):
            LogHistogram("x", min_value=1.0, max_value=0.5)
        with pytest.raises(ReproError, match="growth"):
            LogHistogram("x", growth=1.0)

    def test_empty_histogram_reports_nan(self):
        hist = LogHistogram("empty")
        assert math.isnan(hist.p50)
        assert math.isnan(hist.mean)
        assert math.isnan(hist.min) and math.isnan(hist.max)
        assert hist.count == 0

    def test_bad_quantile_rejected(self):
        hist = LogHistogram("q")
        hist.record(1.0)
        with pytest.raises(ReproError, match="q must be in"):
            hist.percentile(101.0)


class TestMerge:
    def test_merge_adds_bucket_counts_and_extrema(self):
        a = LogHistogram("lane0")
        b = LogHistogram("lane1")
        for v in (0.001, 0.002, 0.004):
            a.record(v)
        for v in (0.008, 0.1):
            b.record(v)
        a.merge(b)
        assert a.count == 5
        assert a.total == pytest.approx(0.115)
        assert a.min == 0.001 and a.max == 0.1
        # Merged percentiles match recording everything into one.
        direct = LogHistogram("all")
        for v in (0.001, 0.002, 0.004, 0.008, 0.1):
            direct.record(v)
        assert a.p50 == direct.p50
        assert a.p99 == direct.p99

    def test_merge_rejects_mismatched_layout(self):
        a = LogHistogram("a")
        b = LogHistogram("b", min_value=1e-3)
        with pytest.raises(ReproError, match="bucket layouts differ"):
            a.merge(b)
        c = LogHistogram("c", growth=2.0)
        with pytest.raises(ReproError, match="bucket layouts differ"):
            a.merge(c)


class TestMatchesNearestRank:
    """Satellite check: histogram quantiles vs exact nearest-rank."""

    CASES = {
        "n1": [7.25],
        "n2": [9.0, 1.0],
        "heavy_tail": [0.001] * 99 + [5.0],
        "all_equal": [4.0] * 5,
    }

    @pytest.mark.parametrize("case", sorted(CASES))
    def test_within_one_bucket_width(self, case):
        samples = self.CASES[case]
        hist = LogHistogram(case)
        for v in samples:
            hist.record(v)
        exact = percentile_summary(samples)
        for key, q in (("p50", 50.0), ("p95", 95.0), ("p99", 99.0)):
            got = hist.percentile(q)
            # Never below the exact nearest-rank value, never more than
            # one bucket's relative width above it.
            assert got >= exact[key] or got == pytest.approx(exact[key])
            assert got <= exact[key] * (1.0 + hist.relative_error)
        assert hist.mean == pytest.approx(exact["mean"])
        assert hist.max == exact["max"]

    def test_degenerate_samples_are_exact(self):
        # n=1 and all-equal must be *exact*, not just within a bucket.
        single = LogHistogram("one")
        single.record(7.25)
        assert single.p50 == single.p99 == single.p999 == 7.25
        equal = LogHistogram("same")
        for _ in range(5):
            equal.record(4.0)
        assert equal.p50 == equal.p99 == 4.0


class TestExport:
    def test_summary_and_to_dict_are_json_native(self):
        import json

        hist = LogHistogram("lat")
        for v in (0.001, 0.002, 0.004, 0.008):
            hist.record(v)
        payload = json.loads(json.dumps(hist.to_dict()))
        assert payload["count"] == 4
        assert payload["name"] == "lat"
        assert len(payload["buckets"]) == len(hist.nonzero_buckets())
        assert sum(n for _, n in payload["buckets"]) == 4

    def test_shared_lock_keeps_concurrent_records_atomic(self):
        lock = threading.RLock()
        hist = LogHistogram("shared", lock=lock)
        n, rounds = 4, 5_000

        def hammer():
            for _ in range(rounds):
                hist.record(0.002)

        threads = [threading.Thread(target=hammer) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert hist.count == n * rounds
        assert hist.total == pytest.approx(n * rounds * 0.002)
