"""Utilization-report acceptance tests.

Covers the paper-facing claims the observability layer exists for:
per-channel achieved bandwidth within 5% of the Fig. 2 plateau at
1 MiB streaming blocks, DMA↔compute overlap under two control threads
per PE (§IV-B), and the zero-perturbation invariant — simulated
timings bit-identical with and without a registry attached.
"""

import json
import pickle
import struct

import pytest

from repro.compiler.design import compose_design
from repro.experiments.cache import benchmark_core
from repro.experiments.utilization import format_utilization, run_utilization
from repro.host.device import SimulatedDevice
from repro.host.runtime import InferenceJobConfig, InferenceRuntime
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import UtilizationReport
from repro.platforms.specs import XUPVVH_HBM_PLATFORM
from repro.sim.trace import Tracer
from repro.units import GIB, MIB


@pytest.fixture(scope="module")
def report() -> UtilizationReport:
    """One instrumented fig4-style run: NIPS10, 2 cores, 2 threads/PE."""
    return run_utilization(
        "NIPS10",
        2,
        threads_per_pe=2,
        samples_per_core=400_000,
        block_bytes=1 * MIB,
    )


class TestUtilizationReport:
    def test_channels_within_5pct_of_fig2_plateau(self, report):
        assert report.channels, "active channels must be reported"
        for channel in report.channels:
            assert channel.plateau_bandwidth == pytest.approx(12.0 * GIB, rel=0.01)
            assert channel.plateau_fraction >= 0.95
            assert channel.achieved_bandwidth <= channel.plateau_bandwidth

    def test_dma_compute_overlap_with_two_threads(self, report):
        assert report.dma_compute_overlap_seconds is not None
        assert report.dma_compute_overlap_seconds > 0
        assert 0 < report.dma_compute_overlap_fraction <= 1

    def test_pe_and_dma_sections_are_populated(self, report):
        assert len(report.pes) == 2
        for pe in report.pes:
            assert pe.jobs > 0
            assert pe.samples > 0
            assert 0 < pe.busy_fraction <= 1
            assert pe.dispatch_seconds > 0
        assert report.dma.requests_h2d > 0
        assert report.dma.requests_d2h > 0
        assert 0 < report.dma.busy_fraction <= 1

    def test_memory_sections_track_high_water(self, report):
        assert report.memory
        for block in report.memory:
            assert block.allocs > 0
            assert block.high_water_bytes > 0
            assert block.transient_failures == 0

    def test_json_round_trip(self, report):
        decoded = json.loads(report.to_json())
        assert decoded == report.to_dict()
        assert decoded["elapsed_seconds"] == report.elapsed_seconds
        assert len(decoded["channels"]) == len(report.channels)

    def test_to_dict_uses_only_json_native_types(self, report):
        """Regression guard for the exporters: every leaf of to_dict()
        (and of MetricsRegistry.snapshot()) must be a JSON-native type,
        not e.g. a numpy scalar that json.dumps would reject."""

        def walk(value, path):
            if isinstance(value, dict):
                for key, child in value.items():
                    assert type(key) is str, f"non-str key at {path}: {key!r}"
                    walk(child, f"{path}.{key}")
            elif isinstance(value, (list, tuple)):
                for index, child in enumerate(value):
                    walk(child, f"{path}[{index}]")
            else:
                assert value is None or type(value) in (bool, int, float, str), (
                    f"non-JSON leaf at {path}: {type(value).__name__}"
                )

        walk(report.to_dict(), "report")
        registry = MetricsRegistry()
        registry.counter("c").add(2)
        registry.gauge("g").set(1.5)
        registry.time_stat("t").update(1.0, now=0.0)
        walk(registry.snapshot(), "snapshot")
        assert json.loads(json.dumps(registry.snapshot())) == registry.snapshot()

    def test_report_is_picklable(self, report):
        clone = pickle.loads(pickle.dumps(report))
        assert clone == report

    def test_render_helpers(self, report):
        text = format_utilization(report, benchmark="NIPS10")
        assert "NIPS10" in text
        assert "plateau" in text
        assert "overlap" in text
        summary = report.summary_line()
        assert "of plateau" in summary
        assert "overlap" in summary

    def test_overlap_is_none_without_tracer(self):
        untraced = run_utilization(
            "NIPS10", 1, threads_per_pe=1, samples_per_core=200_000, trace=False
        )
        assert untraced.dma_compute_overlap_seconds is None
        assert untraced.dma_compute_overlap_fraction is None
        assert untraced.channels


def _elapsed(metrics, *, trace=False, **config):
    core = benchmark_core("NIPS20", "cfp")
    design = compose_design(core, 2, XUPVVH_HBM_PLATFORM)
    device = SimulatedDevice(design, metrics=metrics)
    tracer = Tracer(device.env) if trace else None
    runtime = InferenceRuntime(
        device, InferenceJobConfig(**config), tracer=tracer
    )
    return runtime.run_timing_only(300_000).elapsed_seconds


class TestZeroPerturbation:
    """Metrics must not move a single event: timings bit-identical."""

    @pytest.mark.parametrize(
        "config",
        [
            {"threads_per_pe": 1},
            {"threads_per_pe": 2},
            {"scheduling": "shared"},
        ],
        ids=["fast-forward", "two-threads", "shared"],
    )
    def test_fast_forward_paths(self, config):
        bare = _elapsed(None, **config)
        instrumented = _elapsed(MetricsRegistry(), **config)
        assert struct.pack("<d", bare) == struct.pack("<d", instrumented)

    def test_burst_granular_path(self):
        # A tracer forces the burst-granular core model, exercising the
        # per-request callbacks instead of the analytic fast path.
        bare = _elapsed(None, trace=True, threads_per_pe=2)
        instrumented = _elapsed(MetricsRegistry(), trace=True, threads_per_pe=2)
        assert struct.pack("<d", bare) == struct.pack("<d", instrumented)

    def test_fast_forward_and_granular_metrics_agree(self):
        # The analytic fast path accounts the same totals the granular
        # callbacks would (busy time telescopes to the per-request sum).
        fast = MetricsRegistry()
        granular = MetricsRegistry()
        _elapsed(fast, threads_per_pe=1)
        _elapsed(granular, trace=True, threads_per_pe=1)
        for name in ("requests", "bytes_read", "bytes_written"):
            assert fast.value(f"hbm.ch0.{name}") == granular.value(
                f"hbm.ch0.{name}"
            )
        assert fast.value("hbm.ch0.busy_seconds") == pytest.approx(
            granular.value("hbm.ch0.busy_seconds")
        )


class TestHostExecutorSection:
    """The executor.* metrics fuse into a host-CPU report section."""

    def _registry(self) -> MetricsRegistry:
        metrics = MetricsRegistry()
        metrics.counter("executor.submits").add(2)
        metrics.counter("executor.rows").add(1000)
        metrics.counter("executor.shards").add(8)
        metrics.counter("executor.bytes_in").add(64_000)
        metrics.counter("executor.bytes_out").add(8_000)
        metrics.counter("executor.pickled_array_bytes")
        metrics.counter("executor.dispatch_seconds").add(0.01)
        metrics.counter("executor.compute_seconds").add(0.09)
        metrics.counter("executor.worker0.busy_seconds").add(0.05)
        metrics.counter("executor.worker1.busy_seconds").add(0.04)
        return metrics

    def test_executor_discovered_from_metrics(self):
        report = UtilizationReport.from_run(self._registry(), 0.1)
        ex = report.executor
        assert ex is not None
        assert ex.submits == 2 and ex.rows == 1000 and ex.shards == 8
        assert ex.bytes_in == 64_000 and ex.bytes_out == 8_000
        assert ex.pickled_array_bytes == 0
        assert len(ex.workers) == 2
        assert ex.workers[0].busy_fraction == pytest.approx(0.5)
        assert ex.workers[1].busy_fraction == pytest.approx(0.4)

    def test_absent_without_executor_metrics(self):
        report = UtilizationReport.from_run(MetricsRegistry(), 0.1)
        assert report.executor is None

    def test_host_only_rendering_and_export(self):
        report = UtilizationReport.from_run(self._registry(), 0.1)
        text = report.format_text()
        assert "host CPU executor" in text
        assert "worker1" in text
        # Host-only reports skip the empty simulated-hardware tables.
        assert "HBM channels" not in text
        summary = report.summary_line()
        assert "host workers busy" in summary
        assert "DMA" not in summary
        exported = json.loads(report.to_json())
        assert exported["executor"]["workers"][1]["index"] == 1


class TestServingSection:
    """The report's serving-broker section (``serving.*`` metrics)."""

    @staticmethod
    def _registry():
        metrics = MetricsRegistry()
        metrics.counter("serving.requests").add(100)
        metrics.counter("serving.rejected").add(4)
        metrics.counter("serving.batches").add(10)
        metrics.counter("serving.rows").add(100)
        for stage, value in (
            ("batch_form", 0.001),
            ("kernel", 0.002),
            ("e2e", 0.004),
        ):
            hist = metrics.histogram(f"serving.{stage}")
            for _ in range(96):
                hist.record(value)
        return metrics

    def test_section_built_from_serving_metrics(self):
        report = UtilizationReport.from_run(self._registry(), 0.5)
        sv = report.serving
        assert sv is not None
        assert sv.requests == 100 and sv.rejected == 4
        assert sv.mean_batch_rows == pytest.approx(10.0)
        stages = {s.stage: s for s in sv.stages}
        # Only recorded histograms appear, in path order.
        assert list(stages) == ["batch_form", "kernel", "e2e"]
        assert stages["e2e"].count == 96
        assert stages["e2e"].p50_ms == pytest.approx(4.0, rel=0.05)

    def test_absent_without_serving_metrics(self):
        report = UtilizationReport.from_run(MetricsRegistry(), 0.1)
        assert report.serving is None

    def test_rendering_and_json_export(self):
        report = UtilizationReport.from_run(self._registry(), 0.5)
        text = report.format_text()
        assert "serving broker:" in text
        assert "100 requests (4 shed)" in text
        assert "e2e: p50" in text
        assert "serving 100 reqs (4 shed)" in report.summary_line()
        exported = json.loads(report.to_json())
        assert exported["serving"]["stages"][0]["stage"] == "batch_form"
