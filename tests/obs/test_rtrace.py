"""Unit tests for request-scoped tracing (sampling, stamps, flows)."""

import pytest

from repro.errors import ReproError
from repro.obs.rtrace import (
    REQUEST_STAGES,
    STAGE_HISTOGRAMS,
    RequestTrace,
    RequestTraceRecorder,
    add_request_flows,
)
from repro.obs.trace_export import HOST_PID, ChromeTraceBuilder


def _completed_trace(trace_id=0, *, lane=0, worker=None, base=100.0):
    trace = RequestTrace(trace_id)
    for offset, stage in enumerate(REQUEST_STAGES):
        trace.stamp(stage, base + offset * 0.001)
    trace.lane = lane
    trace.worker_track = worker
    return trace


class TestRequestTrace:
    def test_stage_seconds_partition_e2e_exactly(self):
        trace = _completed_trace()
        stages = trace.stage_seconds()
        assert set(stages) == {name for name, _, _ in STAGE_HISTOGRAMS}
        assert sum(stages.values()) == pytest.approx(
            trace.complete - trace.enqueue, abs=1e-12
        )

    def test_unknown_stage_rejected(self):
        trace = RequestTrace(0)
        with pytest.raises(ReproError, match="unknown request stage"):
            trace.stamp("teleport", 1.0)

    def test_incomplete_trace_refuses_stage_seconds(self):
        trace = RequestTrace(0)
        trace.stamp("enqueue", 1.0)
        assert not trace.is_complete
        with pytest.raises(ReproError, match="incomplete"):
            trace.stage_seconds()

    def test_shed_trace_is_never_complete(self):
        trace = _completed_trace()
        assert trace.is_complete
        trace.shed = True
        assert not trace.is_complete

    def test_to_dict_is_json_native(self):
        import json

        payload = json.loads(json.dumps(_completed_trace(7).to_dict()))
        assert payload["trace_id"] == 7
        assert payload["shed"] is False
        assert all(stage in payload for stage in REQUEST_STAGES)


class TestRecorder:
    def test_samples_first_request_and_every_nth(self):
        recorder = RequestTraceRecorder(sample_every=4)
        hits = [recorder.sample() is not None for _ in range(12)]
        assert hits == [True, False, False, False] * 3
        assert recorder.seen == 12
        assert recorder.sampled == 3

    def test_sample_every_one_samples_everything(self):
        recorder = RequestTraceRecorder(sample_every=1)
        assert all(recorder.sample() is not None for _ in range(5))

    def test_ring_is_bounded_and_keeps_newest(self):
        recorder = RequestTraceRecorder(capacity=3, sample_every=1)
        for i in range(10):
            recorder.add(_completed_trace(i))
        assert len(recorder) == 3
        assert [t.trace_id for t in recorder.traces] == [7, 8, 9]

    def test_completed_filters_partial_and_shed(self):
        recorder = RequestTraceRecorder(sample_every=1)
        recorder.add(_completed_trace(0))
        partial = RequestTrace(1)
        partial.stamp("enqueue", 1.0)
        recorder.add(partial)
        shed = _completed_trace(2)
        shed.shed = True
        recorder.add(shed)
        assert [t.trace_id for t in recorder.completed()] == [0]

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ReproError, match="capacity"):
            RequestTraceRecorder(0)
        with pytest.raises(ReproError, match="sample_every"):
            RequestTraceRecorder(sample_every=0)


class TestAddRequestFlows:
    def test_complete_trace_exports_one_flow_chain(self):
        builder = ChromeTraceBuilder()
        n = add_request_flows(
            builder,
            [_completed_trace(0, lane=1, worker="executor worker0")],
            epoch=100.0,
        )
        assert n == 1
        events = builder.to_dict()["traceEvents"]
        flows = [e for e in events if e["ph"] in ("s", "t", "f")]
        # s on loadgen, t on broker, t on lane, f on the worker.
        assert [e["ph"] for e in flows] == ["s", "t", "t", "f"]
        assert flows[-1]["bp"] == "e"
        assert len({e["id"] for e in flows}) == 1
        asyncs = [e for e in events if e["ph"] in ("b", "e")]
        assert len(asyncs) == 2

    def test_laneless_trace_finishes_on_the_broker(self):
        builder = ChromeTraceBuilder()
        assert add_request_flows(
            builder, [_completed_trace(0, lane=None)], epoch=100.0
        ) == 1
        flows = [
            e for e in builder.to_dict()["traceEvents"]
            if e["ph"] in ("s", "t", "f")
        ]
        assert [e["ph"] for e in flows] == ["s", "t", "f"]

    def test_shed_trace_exports_marker_not_flow(self):
        builder = ChromeTraceBuilder()
        shed = RequestTrace(3)
        shed.stamp("enqueue", 100.0)
        shed.stamp("complete", 100.002)
        shed.shed = True
        assert add_request_flows(builder, [shed], epoch=100.0) == 0
        events = builder.to_dict()["traceEvents"]
        assert not [e for e in events if e["ph"] in ("s", "t", "f")]
        (marker,) = [e for e in events if e["ph"] == "X"]
        assert "SHED" in marker["name"]

    def test_incomplete_trace_skipped(self):
        builder = ChromeTraceBuilder()
        partial = RequestTrace(0)
        partial.stamp("enqueue", 1.0)
        assert add_request_flows(builder, [partial], epoch=0.0) == 0
        assert builder.to_dict()["traceEvents"] == []

    def test_flows_land_in_the_host_clock_domain(self):
        builder = ChromeTraceBuilder()
        add_request_flows(builder, [_completed_trace(0)], epoch=100.0)
        events = [
            e for e in builder.to_dict()["traceEvents"] if e["ph"] != "M"
        ]
        assert events and all(e["pid"] == HOST_PID for e in events)
        # Stamps are normalised against the epoch (microseconds).
        start = [e for e in events if e["ph"] == "s"]
        assert start[0]["ts"] == pytest.approx(0.0)
