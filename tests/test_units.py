"""Unit tests for unit constants and conversion helpers."""

import pytest

from repro import units


def test_binary_prefixes():
    assert units.KIB == 1024
    assert units.MIB == 1024**2
    assert units.GIB == 1024**3
    assert units.TIB == 1024**4


def test_si_prefixes_differ_from_binary():
    assert units.GB == 1_000_000_000
    assert units.GIB > units.GB


def test_bits_to_bytes():
    assert units.bytes_per_second_from_bits(100e9) == pytest.approx(12.5e9)


def test_gib_and_gb_views():
    assert units.gib_per_s(units.GIB) == 1.0
    assert units.gb_per_s(units.GB) == 1.0
    # The paper's 460 GB/s is ~428 GiB/s.
    assert units.gib_per_s(460 * units.GB) == pytest.approx(428.4, rel=0.01)


def test_cycle_time_conversions_inverse():
    assert units.cycles_to_seconds(225, 225e6) == pytest.approx(1e-6)
    assert units.seconds_to_cycles(1e-6, 225e6) == pytest.approx(225)
    with pytest.raises(ValueError):
        units.cycles_to_seconds(1, 0)
    with pytest.raises(ValueError):
        units.seconds_to_cycles(1, -1)


def test_align_up_down():
    assert units.align_up(1, 4096) == 4096
    assert units.align_up(4096, 4096) == 4096
    assert units.align_up(4097, 4096) == 8192
    assert units.align_down(4097, 4096) == 4096
    assert units.align_down(4095, 4096) == 0
    with pytest.raises(ValueError):
        units.align_up(1, 0)
    with pytest.raises(ValueError):
        units.align_down(1, -2)


def test_is_power_of_two():
    assert units.is_power_of_two(1)
    assert units.is_power_of_two(4096)
    assert not units.is_power_of_two(0)
    assert not units.is_power_of_two(3)
    assert not units.is_power_of_two(-8)
