"""Tests for structure transformations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SPNStructureError
from repro.spn import (
    SPN,
    HistogramLeaf,
    ProductNode,
    SumNode,
    compute_stats,
    log_likelihood,
    random_spn,
)
from repro.spn.transform import contract, prune


def _hist(var, masses=(0.5, 0.5)):
    return HistogramLeaf(var, np.arange(len(masses) + 1, dtype=float), masses)


class TestPrune:
    def test_drops_negligible_children(self):
        spn = SPN(SumNode([_hist(0), _hist(0), _hist(0)], [0.498, 0.498, 0.004]))
        pruned = prune(spn, weight_threshold=0.01)
        assert len(pruned.root.children) == 2
        assert pruned.root.weights.sum() == pytest.approx(1.0)

    def test_keeps_heaviest_when_all_below_threshold(self):
        spn = SPN(SumNode([_hist(0), _hist(0)], [0.6, 0.4]))
        pruned = prune(spn, weight_threshold=0.99)
        assert len(pruned.root.children) == 1

    def test_distribution_barely_changes(self):
        spn = random_spn(4, depth=3, n_bins=4, seed=11)
        pruned = prune(spn, weight_threshold=1e-4)
        rng = np.random.default_rng(11)
        data = rng.integers(0, 4, size=(100, 4)).astype(float)
        before = log_likelihood(spn, data)
        after = log_likelihood(pruned, data)
        assert np.max(np.abs(np.exp(after) - np.exp(before))) < 1e-3

    def test_invalid_threshold_rejected(self):
        spn = SPN(_hist(0))
        with pytest.raises(SPNStructureError):
            prune(spn, weight_threshold=1.0)

    def test_result_valid(self):
        pruned = prune(random_spn(5, depth=3, seed=3), weight_threshold=0.05)
        pruned.validate()


class TestContract:
    def test_nested_sums_flatten(self):
        inner = SumNode([_hist(0), _hist(0)], [0.5, 0.5])
        outer = SumNode([inner, _hist(0)], [0.4, 0.6])
        contracted = contract(SPN(outer))
        assert isinstance(contracted.root, SumNode)
        assert len(contracted.root.children) == 3
        # Effective weights: 0.4*0.5, 0.4*0.5, 0.6.
        assert sorted(contracted.root.weights) == pytest.approx([0.2, 0.2, 0.6])

    def test_nested_products_flatten(self):
        inner = ProductNode([_hist(0), _hist(1)])
        outer = ProductNode([inner, _hist(2)])
        contracted = contract(SPN(outer))
        assert len(contracted.root.children) == 3

    def test_single_child_sum_removed(self):
        spn = SPN(SumNode([_hist(0)], [1.0]))
        contracted = contract(spn)
        assert isinstance(contracted.root, HistogramLeaf)

    def test_likelihood_preserved_exactly(self):
        inner = SumNode([_hist(0, (0.3, 0.7)), _hist(0, (0.8, 0.2))], [0.25, 0.75])
        outer = SumNode([inner, _hist(0, (0.5, 0.5))], [0.6, 0.4])
        spn = SPN(outer)
        contracted = contract(spn)
        grid = np.array([[0.0], [1.0]])
        np.testing.assert_allclose(
            log_likelihood(contracted, grid), log_likelihood(spn, grid), rtol=1e-12
        )

    def test_contract_reduces_depth_of_chains(self):
        node = _hist(0)
        for _ in range(5):
            node = SumNode([node], [1.0])
        contracted = contract(SPN(node))
        assert contracted.depth() == 0


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_contract_preserves_distribution_property(seed):
    spn = random_spn(4, depth=4, n_bins=3, seed=seed)
    contracted = contract(spn)
    contracted.validate()
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 3, size=(30, 4)).astype(float)
    np.testing.assert_allclose(
        log_likelihood(contracted, data), log_likelihood(spn, data), rtol=1e-9
    )
    # Contraction never grows the network.
    assert compute_stats(contracted).n_nodes <= compute_stats(spn).n_nodes
