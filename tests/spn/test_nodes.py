"""Unit tests for SPN node types."""

import math

import numpy as np
import pytest

from repro.errors import SPNStructureError
from repro.spn import (
    CategoricalLeaf,
    GaussianLeaf,
    HistogramLeaf,
    ProductNode,
    SumNode,
)


def _hist(var=0, masses=(0.25, 0.75)):
    breaks = np.arange(len(masses) + 1, dtype=float)
    return HistogramLeaf(var, breaks, masses)


class TestSumNode:
    def test_weights_normalised(self):
        node = SumNode([_hist(), _hist()], [2.0, 6.0])
        assert node.weights == pytest.approx([0.25, 0.75])

    def test_log_weights_consistent(self):
        node = SumNode([_hist(), _hist()], [1.0, 3.0])
        assert node.log_weights == pytest.approx(np.log(node.weights))

    def test_empty_children_rejected(self):
        with pytest.raises(SPNStructureError):
            SumNode([], [])

    def test_weight_count_mismatch_rejected(self):
        with pytest.raises(SPNStructureError):
            SumNode([_hist()], [0.5, 0.5])

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(SPNStructureError):
            SumNode([_hist(), _hist()], [1.0, 0.0])

    def test_nan_weight_rejected(self):
        with pytest.raises(SPNStructureError):
            SumNode([_hist(), _hist()], [1.0, float("nan")])

    def test_scope_from_children(self):
        node = SumNode([_hist(3), _hist(3)], [1, 1])
        assert node.scope == (3,)


class TestProductNode:
    def test_scope_is_sorted_union(self):
        node = ProductNode([_hist(4), _hist(1), _hist(2)])
        assert node.scope == (1, 2, 4)

    def test_empty_children_rejected(self):
        with pytest.raises(SPNStructureError):
            ProductNode([])


class TestHistogramLeaf:
    def test_density_normalised_over_support(self):
        leaf = HistogramLeaf(0, [0.0, 1.0, 2.0], [3.0, 1.0])
        # Unit-width bins: densities normalise to sum 1.
        assert leaf.densities == pytest.approx([0.75, 0.25])

    def test_log_density_inside_bins(self):
        leaf = HistogramLeaf(0, [0.0, 1.0, 2.0], [0.25, 0.75])
        values = np.array([0.0, 0.5, 1.0, 1.99])
        expected = np.log([0.25, 0.25, 0.75, 0.75])
        assert leaf.log_density(values) == pytest.approx(expected)

    def test_out_of_support_gets_floor(self):
        leaf = HistogramLeaf(0, [0.0, 1.0], [1.0], floor=1e-6)
        out = leaf.log_density(np.array([-1.0, 5.0]))
        assert out == pytest.approx([math.log(1e-6)] * 2)

    def test_upper_break_is_exclusive(self):
        leaf = HistogramLeaf(0, [0.0, 1.0], [1.0], floor=1e-6)
        assert leaf.log_density(np.array([1.0]))[0] == pytest.approx(math.log(1e-6))

    def test_nonuniform_bin_widths(self):
        leaf = HistogramLeaf(0, [0.0, 1.0, 3.0], [0.5, 0.25])
        # Total mass: 0.5*1 + 0.25*2 = 1.0 already normalised.
        assert leaf.log_density(np.array([2.0]))[0] == pytest.approx(math.log(0.25))

    def test_mass_renormalised(self):
        leaf = HistogramLeaf(0, [0.0, 1.0, 2.0], [2.0, 2.0])
        assert leaf.densities == pytest.approx([0.5, 0.5])

    def test_invalid_breaks_rejected(self):
        with pytest.raises(SPNStructureError):
            HistogramLeaf(0, [0.0, 0.0, 1.0], [0.5, 0.5])

    def test_break_density_length_mismatch_rejected(self):
        with pytest.raises(SPNStructureError):
            HistogramLeaf(0, [0.0, 1.0], [0.5, 0.5])

    def test_zero_mass_rejected(self):
        with pytest.raises(SPNStructureError):
            HistogramLeaf(0, [0.0, 1.0], [0.0])

    def test_negative_variable_rejected(self):
        with pytest.raises(SPNStructureError):
            HistogramLeaf(-1, [0.0, 1.0], [1.0])

    def test_bin_log_probs_match_densities(self):
        leaf = HistogramLeaf(0, [0.0, 1.0, 2.0], [0.25, 0.75])
        assert leaf.bin_log_probs() == pytest.approx(np.log([0.25, 0.75]))

    def test_n_bins(self):
        assert _hist(masses=(0.1, 0.2, 0.7)).n_bins == 3


class TestGaussianLeaf:
    def test_matches_closed_form(self):
        leaf = GaussianLeaf(0, mean=1.0, stdev=2.0)
        x = np.array([1.0])
        expected = -0.5 * math.log(2 * math.pi * 4.0)
        assert leaf.log_density(x)[0] == pytest.approx(expected)

    def test_integrates_to_one(self):
        leaf = GaussianLeaf(0, mean=0.0, stdev=1.0)
        xs = np.linspace(-8, 8, 20001)
        mass = np.trapezoid(np.exp(leaf.log_density(xs)), xs)
        assert mass == pytest.approx(1.0, abs=1e-6)

    def test_invalid_stdev_rejected(self):
        with pytest.raises(SPNStructureError):
            GaussianLeaf(0, 0.0, 0.0)

    def test_nonfinite_mean_rejected(self):
        with pytest.raises(SPNStructureError):
            GaussianLeaf(0, float("inf"), 1.0)


class TestCategoricalLeaf:
    def test_masses_normalised(self):
        leaf = CategoricalLeaf(0, [1.0, 3.0])
        assert leaf.probabilities == pytest.approx([0.25, 0.75])

    def test_log_density_lookup(self):
        leaf = CategoricalLeaf(0, [0.5, 0.5])
        assert leaf.log_density(np.array([1.0]))[0] == pytest.approx(math.log(0.5))

    def test_out_of_range_gets_floor(self):
        leaf = CategoricalLeaf(0, [0.5, 0.5], floor=1e-9)
        out = leaf.log_density(np.array([7.0, -1.0]))
        assert out == pytest.approx([math.log(1e-9)] * 2)

    def test_noninteger_value_gets_floor(self):
        leaf = CategoricalLeaf(0, [0.5, 0.5], floor=1e-9)
        assert leaf.log_density(np.array([0.5]))[0] == pytest.approx(math.log(1e-9))

    def test_empty_rejected(self):
        with pytest.raises(SPNStructureError):
            CategoricalLeaf(0, [])


def test_node_ids_unique():
    nodes = [_hist() for _ in range(10)]
    assert len({n.id for n in nodes}) == 10
