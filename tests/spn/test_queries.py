"""Unit and property tests for range/expectation queries."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SPNStructureError
from repro.spn import (
    SPN,
    GaussianLeaf,
    HistogramLeaf,
    ProductNode,
    SumNode,
    expectation,
    likelihood,
    probability_of_box,
    random_spn,
    sample,
)


def _hist(var, masses):
    return HistogramLeaf(var, np.arange(len(masses) + 1, dtype=float), masses)


class TestBoxProbability:
    def test_full_domain_is_one(self):
        spn = random_spn(4, depth=3, n_bins=4, seed=1)
        box = {v: (-np.inf, np.inf) for v in range(4)}
        assert probability_of_box(spn, box) == pytest.approx(1.0)

    def test_empty_box_is_zero(self):
        spn = random_spn(3, depth=2, n_bins=4, seed=2)
        assert probability_of_box(spn, {0: (2.0, 2.0)}) == 0.0

    def test_single_leaf_interval(self):
        spn = SPN(_hist(0, [0.25, 0.5, 0.25]))
        assert probability_of_box(spn, {0: (0.0, 2.0)}) == pytest.approx(0.75)

    def test_partial_bin_overlap(self):
        spn = SPN(_hist(0, [1.0]))
        assert probability_of_box(spn, {0: (0.25, 0.75)}) == pytest.approx(0.5)

    def test_independent_product_multiplies(self):
        spn = SPN(ProductNode([_hist(0, [0.5, 0.5]), _hist(1, [0.25, 0.75])]))
        got = probability_of_box(spn, {0: (0.0, 1.0), 1: (1.0, 2.0)})
        assert got == pytest.approx(0.5 * 0.75)

    def test_gaussian_interval(self):
        spn = SPN(GaussianLeaf(0, 0.0, 1.0))
        # Central +-1 sigma ~ 0.6827.
        assert probability_of_box(spn, {0: (-1.0, 1.0)}) == pytest.approx(0.6827, abs=1e-3)

    def test_unknown_variable_rejected(self):
        spn = SPN(_hist(0, [1.0]))
        with pytest.raises(SPNStructureError):
            probability_of_box(spn, {3: (0.0, 1.0)})

    def test_matches_empirical_selectivity(self):
        """The DeepDB use case: predicted selectivity of a range
        predicate vs the empirical fraction of sampled rows."""
        spn = random_spn(3, depth=3, n_bins=4, seed=5)
        box = {0: (0.0, 2.0), 2: (1.0, 3.0)}
        predicted = probability_of_box(spn, box)
        draws = sample(spn, 100_000, seed=6)
        hits = (
            (draws[:, 0] >= 0.0)
            & (draws[:, 0] < 2.0)
            & (draws[:, 2] >= 1.0)
            & (draws[:, 2] < 3.0)
        )
        assert hits.mean() == pytest.approx(predicted, abs=0.01)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_additivity_property(self, seed):
        """P(a<=x<c) == P(a<=x<b) + P(b<=x<c) for any split point."""
        spn = random_spn(2, depth=2, n_bins=4, seed=seed)
        whole = probability_of_box(spn, {0: (0.0, 4.0)})
        left = probability_of_box(spn, {0: (0.0, 2.0)})
        right = probability_of_box(spn, {0: (2.0, 4.0)})
        assert left + right == pytest.approx(whole, rel=1e-9)


class TestExpectation:
    def test_single_histogram_expectation(self):
        spn = SPN(_hist(0, [0.5, 0.5]))  # bins [0,1), [1,2) -> centres .5/1.5
        assert expectation(spn, 0) == pytest.approx(1.0)

    def test_gaussian_expectation_is_mean(self):
        spn = SPN(ProductNode([GaussianLeaf(0, 4.2, 2.0), _hist(1, [1.0])]))
        assert expectation(spn, 0) == pytest.approx(4.2, abs=1e-9)

    def test_mixture_expectation_weighted(self):
        a = _hist(0, [1.0, 1e-12])  # ~0.5
        b = _hist(0, [1e-12, 1.0])  # ~1.5
        spn = SPN(SumNode([a, b], [0.25, 0.75]))
        assert expectation(spn, 0) == pytest.approx(0.25 * 0.5 + 0.75 * 1.5, abs=1e-6)

    def test_matches_sampling_estimate(self):
        spn = random_spn(3, depth=3, n_bins=4, seed=8)
        analytic = expectation(spn, 1)
        draws = sample(spn, 200_000, seed=9)
        assert draws[:, 1].mean() == pytest.approx(analytic, abs=0.02)

    def test_conditional_expectation_shifts(self):
        spn = SPN(_hist(0, [0.5, 0.5]))
        conditioned = expectation(spn, 0, box={0: (1.0, 2.0)})
        assert conditioned == pytest.approx(1.5)

    def test_conditioning_on_other_variable(self):
        # x0 and x1 coupled through the mixture: conditioning on x1
        # must move E[x0].
        a = ProductNode([_hist(0, [0.9, 0.1]), _hist(1, [0.9, 0.1])])
        b = ProductNode([_hist(0, [0.1, 0.9]), _hist(1, [0.1, 0.9])])
        spn = SPN(SumNode([a, b], [0.5, 0.5]))
        low = expectation(spn, 0, box={1: (0.0, 1.0)})
        high = expectation(spn, 0, box={1: (1.0, 2.0)})
        assert high > low

    def test_zero_probability_box_rejected(self):
        spn = SPN(_hist(0, [1.0]))
        with pytest.raises(SPNStructureError):
            expectation(spn, 0, box={0: (5.0, 6.0)})

    def test_unknown_variable_rejected(self):
        spn = SPN(_hist(0, [1.0]))
        with pytest.raises(SPNStructureError):
            expectation(spn, 3)
