"""Cross-backend property tests for the native compiled-kernel backend.

The per-plan C kernels (:mod:`repro.compiler.cgen` /
:mod:`repro.compiler.native_build`) must be *indistinguishable* from
the numpy plan evaluator at the root: float64 kernels agree to within
a few ULP (libm vs numpy rounding), float32 kernels to within the
documented ``rtol=1e-6 / atol=1e-4`` envelope, across all three query
types (full likelihood, marginal, missing-value), odd chunk-boundary
batch sizes, and single-row batches.  The suite also locks in the
operational contract: no-compiler environments degrade to the numpy
plan backend with a single loud warning (and raise only on explicit
``backend="native"`` requests), the on-disk cache is keyed by dtype
and codegen version, and ``inference_backend`` restores the previous
process-wide backend on exit.
"""

import os
import warnings

import numpy as np
import pytest

from repro.compiler.cgen import kernel_block_size
from repro.compiler.native_build import (
    build_kernel,
    clear_native_kernels,
    compiler_command,
    get_native_kernel,
    load_kernel,
    native_log_likelihood,
    native_or_plan_log_likelihood,
    set_native_observability,
)
from repro.errors import NativeBackendError, ReproError
from repro.obs.metrics import MetricsRegistry
from repro.spn import (
    SPN,
    CategoricalLeaf,
    GaussianLeaf,
    HistogramLeaf,
    ProductNode,
    SumNode,
    compile_plan,
    get_inference_backend,
    get_plan,
    inference_backend,
    log_likelihood,
    log_likelihood_with_missing,
    marginal_log_likelihood,
    nips_benchmark,
    plan_log_likelihood,
    random_spn,
    set_inference_backend,
)

#: float64 kernels only differ from numpy through libm-vs-numpy ULP
#: divergence in exp/log; observed max ~1.4e-14 relative on NIPS-scale
#: plans.
F64_RTOL, F64_ATOL = 1e-12, 1e-12
#: float32 storage carries ~1 ULP relative error at the root (the
#: documented envelope, dominated by relative error at large |LL|).
F32_RTOL, F32_ATOL = 1e-6, 1e-4

needs_cc = pytest.mark.skipif(
    compiler_command() is None, reason="no C compiler on this host"
)


@pytest.fixture(autouse=True)
def _isolated_native_cache(tmp_path, monkeypatch):
    """Route kernel artifacts to a throwaway dir and drop the memo."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    clear_native_kernels()
    yield
    clear_native_kernels()


def _mixed_spn():
    """One SPN exercising every leaf family the codegen emits.

    Variable 3's histograms have irregular bin widths, forcing them
    through the generic-leaf path rather than the composite table.
    """
    return SPN(
        SumNode(
            [
                ProductNode(
                    [
                        HistogramLeaf(
                            0,
                            np.arange(7, dtype=float),
                            np.array([0.1, 0.2, 0.3, 0.2, 0.1, 0.1]),
                        ),
                        GaussianLeaf(1, 1.0, 2.0),
                        CategoricalLeaf(2, [0.2, 0.3, 0.5]),
                        HistogramLeaf(
                            3,
                            np.array([0.0, 2.5, 5.0]),
                            np.array([0.3, 0.1]),
                        ),
                    ]
                ),
                ProductNode(
                    [
                        HistogramLeaf(
                            0,
                            np.arange(7, dtype=float),
                            np.array([0.3, 0.1, 0.1, 0.1, 0.2, 0.2]),
                        ),
                        GaussianLeaf(1, -1.0, 0.5),
                        CategoricalLeaf(2, [0.6, 0.3, 0.1]),
                        HistogramLeaf(
                            3,
                            np.array([1.0, 4.0]),
                            np.array([1.0 / 3.0]),
                        ),
                    ]
                ),
            ],
            [0.4, 0.6],
        )
    )


def _batch(plan, n_rows, seed, high=6):
    rng = np.random.default_rng(seed)
    return rng.integers(0, high, size=(n_rows, plan.n_data_columns)).astype(
        np.float64
    )


# ---------------------------------------------------------------------------
# Root agreement with the numpy plan backend
# ---------------------------------------------------------------------------


@needs_cc
@pytest.mark.parametrize("seed", [0, 7, 23])
def test_native_matches_plan_on_random_spns(seed):
    """float64 kernels agree with numpy near bit-for-bit."""
    spn = random_spn(4, depth=3, n_bins=5, seed=seed)
    plan = compile_plan(spn)
    kernel = get_native_kernel(plan, np.float64, require=True)
    data = _batch(plan, 257, seed + 1, high=5)
    np.testing.assert_allclose(
        kernel.log_likelihood(data),
        plan_log_likelihood(plan, data),
        rtol=F64_RTOL,
        atol=F64_ATOL,
    )


@needs_cc
@pytest.mark.parametrize("dtype", [np.float64, np.float32])
def test_native_all_query_types_mixed_leaves(dtype):
    """Likelihood, marginal and missing-value queries on every leaf
    family (incl. the generic irregular-histogram path), both dtypes."""
    plan = compile_plan(_mixed_spn())
    kernel = get_native_kernel(plan, dtype, require=True)
    rng = np.random.default_rng(5)
    data = rng.uniform(-2.0, 6.0, size=(301, plan.n_data_columns))
    data[rng.random(data.shape) < 0.15] = 255.0
    rtol, atol = (
        (F64_RTOL, F64_ATOL) if dtype is np.float64 else (F32_RTOL, F32_ATOL)
    )
    for kwargs in (
        {},
        {"marginalized": [1, 3]},
        {"missing_value": 255.0},
        {"marginalized": [0], "missing_value": 255.0},
    ):
        np.testing.assert_allclose(
            kernel.log_likelihood(data, **kwargs),
            plan_log_likelihood(plan, data, dtype=dtype, **kwargs),
            rtol=rtol,
            atol=atol,
            err_msg=f"query {kwargs!r} dtype {np.dtype(dtype).name}",
        )


@needs_cc
@pytest.mark.parametrize("dtype", [np.float64, np.float32])
def test_native_matches_plan_on_nips_scale(dtype):
    """NIPS10-scale agreement across all three query types."""
    plan = get_plan(nips_benchmark("NIPS10").spn)
    kernel = get_native_kernel(plan, dtype, require=True)
    data = _batch(plan, 2000, 11, high=2)
    rtol, atol = (
        (F64_RTOL, F64_ATOL) if dtype is np.float64 else (F32_RTOL, F32_ATOL)
    )
    for kwargs in ({}, {"marginalized": [0, 5, 9]}, {"missing_value": 255.0}):
        np.testing.assert_allclose(
            kernel.log_likelihood(data, **kwargs),
            plan_log_likelihood(plan, data, dtype=dtype, **kwargs),
            rtol=rtol,
            atol=atol,
            err_msg=f"query {kwargs!r} dtype {np.dtype(dtype).name}",
        )


@needs_cc
def test_native_chunk_boundaries_and_single_row():
    """Batch sizes straddling the kernel's internal block size (and a
    single-row batch) all agree — no off-by-one at chunk seams."""
    spn = random_spn(3, depth=2, n_bins=4, seed=3)
    plan = compile_plan(spn)
    kernel = get_native_kernel(plan, np.float64, require=True)
    block = kernel_block_size(plan, np.float64)
    data = _batch(plan, 2 * block + 3, 4, high=4)
    for n in (1, 2, block - 1, block, block + 1, 2 * block + 3):
        np.testing.assert_allclose(
            kernel.log_likelihood(data[:n]),
            plan_log_likelihood(plan, data[:n]),
            rtol=F64_RTOL,
            atol=F64_ATOL,
            err_msg=f"batch size {n} (block {block})",
        )


@needs_cc
def test_backend_switch_routes_inference_api():
    """The process-wide ``native`` backend answers through the kernel
    and matches the plan backend on the public inference functions."""
    spn = random_spn(3, depth=2, n_bins=4, seed=9)
    data = _batch(get_plan(spn), 64, 10, high=4)
    expected = log_likelihood(spn, data)
    expected_marg = marginal_log_likelihood(spn, data, [1])
    expected_missing = log_likelihood_with_missing(spn, data)
    with inference_backend("native"):
        np.testing.assert_allclose(
            log_likelihood(spn, data), expected, rtol=F64_RTOL, atol=F64_ATOL
        )
        np.testing.assert_allclose(
            marginal_log_likelihood(spn, data, [1]),
            expected_marg,
            rtol=F64_RTOL,
            atol=F64_ATOL,
        )
        np.testing.assert_allclose(
            log_likelihood_with_missing(spn, data),
            expected_missing,
            rtol=F64_RTOL,
            atol=F64_ATOL,
        )


# ---------------------------------------------------------------------------
# Backend selection and the context manager
# ---------------------------------------------------------------------------


def test_inference_backend_context_manager_restores():
    assert get_inference_backend() == "plan"
    with inference_backend("reference"):
        assert get_inference_backend() == "reference"
    assert get_inference_backend() == "plan"
    with pytest.raises(ReproError):
        with inference_backend("reference"):
            raise ReproError("boom")
    assert get_inference_backend() == "plan"


def test_inference_backend_rejects_unknown():
    with pytest.raises(ReproError, match="backend"):
        set_inference_backend("fpga")
    with pytest.raises(ReproError, match="backend"):
        with inference_backend("nativ"):
            pass  # pragma: no cover - never entered


# ---------------------------------------------------------------------------
# No-compiler degradation
# ---------------------------------------------------------------------------


@pytest.fixture()
def _no_compiler(monkeypatch):
    """Mask the toolchain the way the no-cc CI leg does."""
    monkeypatch.setenv("REPRO_NATIVE_CC", "/nonexistent/repro-no-cc")
    from repro.compiler import native_build

    monkeypatch.setattr(native_build, "_WARNED", set())


def test_no_compiler_graceful_fallback(_no_compiler):
    """Implicit native requests warn once and fall back to numpy."""
    spn = random_spn(3, depth=2, n_bins=4, seed=14)
    plan = compile_plan(spn)
    data = _batch(plan, 32, 15, high=4)
    with pytest.warns(RuntimeWarning, match="no C compiler"):
        kernel = get_native_kernel(plan, np.float64)
    assert kernel is None
    expected = plan_log_likelihood(plan, data)
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # second request must stay silent
        got = native_or_plan_log_likelihood(plan, data)
    np.testing.assert_allclose(got, expected, rtol=1e-15)
    with inference_backend("native"):
        np.testing.assert_allclose(
            log_likelihood(spn, data), expected, rtol=1e-15
        )


def test_no_compiler_explicit_requests_raise(_no_compiler):
    """Explicit ``native`` asks fail loudly instead of degrading."""
    spn = random_spn(3, depth=2, n_bins=4, seed=16)
    plan = compile_plan(spn)
    data = _batch(plan, 8, 17, high=4)
    with pytest.raises(NativeBackendError, match="no C compiler"):
        native_log_likelihood(plan, data)
    with pytest.raises(NativeBackendError, match="no C compiler"):
        get_native_kernel(plan, np.float64, require=True)
    from repro.baselines import ParallelPlanExecutor

    with pytest.raises(NativeBackendError, match="no C compiler"):
        ParallelPlanExecutor(spn, n_workers=1, backend="native")


# ---------------------------------------------------------------------------
# Build cache keying and observability
# ---------------------------------------------------------------------------


@needs_cc
def test_cache_hit_and_dtype_keyed_artifacts():
    """Rebuilding the same plan is a cache hit; dtype and codegen
    version are visible in the on-disk artifact name."""
    plan = compile_plan(random_spn(3, depth=2, n_bins=4, seed=20))
    registry = MetricsRegistry()
    previous = set_native_observability(registry)
    try:
        path64 = build_kernel(plan, np.float64)
        again = build_kernel(plan, np.float64)
        path32 = build_kernel(plan, np.float32)
    finally:
        set_native_observability(*previous)
    assert again == path64
    assert path32 != path64
    assert "float64" in path64.name and "float32" in path32.name
    from repro.compiler.cgen import CODEGEN_VERSION

    assert f"cg{CODEGEN_VERSION}" in path64.name
    assert registry.value("native.cache_hits") == 1
    assert registry.value("native.cache_misses") == 2
    assert registry.value("native.build_seconds") > 0.0


@needs_cc
def test_load_kernel_reuses_artifact_without_compiler(monkeypatch):
    """Workers dlopen a prebuilt artifact even with the toolchain
    masked — the never-rebuild-per-fork contract."""
    plan = compile_plan(random_spn(3, depth=2, n_bins=4, seed=21))
    path = build_kernel(plan, np.float64)
    monkeypatch.setenv("REPRO_NATIVE_CC", "/nonexistent/repro-no-cc")
    kernel = load_kernel(path, plan, np.float64)
    data = _batch(plan, 40, 22, high=4)
    np.testing.assert_allclose(
        kernel.log_likelihood(data),
        plan_log_likelihood(plan, data),
        rtol=F64_RTOL,
        atol=F64_ATOL,
    )


# ---------------------------------------------------------------------------
# Executor integration
# ---------------------------------------------------------------------------


@needs_cc
@pytest.mark.parametrize("n_workers", [1, 2])
def test_executor_native_backend(n_workers):
    """Explicit ``backend="native"`` executors answer through the
    kernel (serial and forked-worker paths) and match the plan."""
    from repro.baselines import ParallelPlanExecutor

    spn = random_spn(3, depth=2, n_bins=4, seed=25)
    plan = get_plan(spn)
    data = _batch(plan, 5000, 26, high=4)
    expected = plan_log_likelihood(plan, data)
    with ParallelPlanExecutor(
        spn, n_workers=n_workers, backend="native"
    ) as executor:
        assert executor.backend == "native"
        got = executor.submit(data)
    np.testing.assert_allclose(got, expected, rtol=F64_RTOL, atol=F64_ATOL)


@needs_cc
def test_executor_defaults_to_plan_backend():
    from repro.baselines import ParallelPlanExecutor

    spn = random_spn(3, depth=2, n_bins=4, seed=27)
    with ParallelPlanExecutor(spn, n_workers=1) as executor:
        assert executor.backend == "plan"
    with pytest.raises(ReproError, match="backend"):
        ParallelPlanExecutor(spn, n_workers=1, backend="fpga")
