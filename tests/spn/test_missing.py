"""Tests for per-sample missing-feature inference."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spn import (
    MISSING_VALUE,
    log_likelihood,
    log_likelihood_with_missing,
    marginal_log_likelihood,
    random_spn,
)


def test_no_missing_matches_plain_likelihood():
    spn = random_spn(5, depth=3, n_bins=6, seed=1)
    rng = np.random.default_rng(1)
    data = rng.integers(0, 6, size=(40, 5)).astype(float)
    np.testing.assert_allclose(
        log_likelihood_with_missing(spn, data), log_likelihood(spn, data)
    )


def test_uniform_missing_matches_marginal_query():
    spn = random_spn(4, depth=3, n_bins=4, seed=2)
    rng = np.random.default_rng(2)
    data = rng.integers(0, 4, size=(30, 4)).astype(float)
    masked = data.copy()
    masked[:, [1, 3]] = MISSING_VALUE
    np.testing.assert_allclose(
        log_likelihood_with_missing(spn, masked),
        marginal_log_likelihood(spn, data, marginalized=[1, 3]),
    )


def test_per_row_masks_differ():
    spn = random_spn(3, depth=3, n_bins=4, seed=3)
    rows = np.array(
        [
            [1.0, 2.0, 3.0],
            [MISSING_VALUE, 2.0, 3.0],
            [1.0, MISSING_VALUE, MISSING_VALUE],
        ]
    )
    out = log_likelihood_with_missing(spn, rows)
    # More marginalisation -> higher (less specific) log-probability.
    assert out[1] > out[0]
    assert out[2] > out[0]


def test_all_missing_gives_probability_one():
    spn = random_spn(4, depth=3, n_bins=4, seed=4)
    rows = np.full((3, 4), MISSING_VALUE)
    np.testing.assert_allclose(log_likelihood_with_missing(spn, rows), 0.0, atol=1e-12)


def test_custom_missing_value():
    spn = random_spn(2, depth=2, n_bins=4, seed=5)
    rows = np.array([[1.0, -1.0]])
    got = log_likelihood_with_missing(spn, rows, missing_value=-1.0)
    expected = marginal_log_likelihood(spn, np.array([[1.0, 0.0]]), [1])
    np.testing.assert_allclose(got, expected)


def test_accelerator_computes_missing_queries():
    """The simulated device handles the reserved byte natively."""
    from repro.compiler import compile_core, compose_design
    from repro.host import InferenceJobConfig, InferenceRuntime, SimulatedDevice
    from repro.platforms.specs import XUPVVH_HBM_PLATFORM

    spn = random_spn(6, depth=3, n_bins=8, seed=6)
    device = SimulatedDevice(compose_design(compile_core(spn, "cfp"), 1, XUPVVH_HBM_PLATFORM))
    runtime = InferenceRuntime(device, InferenceJobConfig(block_bytes=2048))
    rng = np.random.default_rng(6)
    data = rng.integers(0, 8, size=(200, 6)).astype(np.uint8)
    data[:50, 2] = int(MISSING_VALUE)  # missing feature in some rows
    results, _ = runtime.run(data)
    reference = log_likelihood_with_missing(spn, data.astype(np.float64))
    np.testing.assert_allclose(results, reference)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_missing_increases_likelihood_property(seed):
    """Marginalising a feature can only increase the log-probability
    (integrating out mass >= any single slice)."""
    spn = random_spn(3, depth=2, n_bins=4, seed=seed)
    rng = np.random.default_rng(seed)
    row = rng.integers(0, 4, size=(1, 3)).astype(float)
    full = log_likelihood_with_missing(spn, row)[0]
    masked = row.copy()
    masked[0, 0] = MISSING_VALUE
    partial = log_likelihood_with_missing(spn, masked)[0]
    assert partial >= full - 1e-9
