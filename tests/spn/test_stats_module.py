"""Direct tests for the structural-statistics module."""

import numpy as np
import pytest

from repro.spn import (
    SPN,
    CategoricalLeaf,
    GaussianLeaf,
    HistogramLeaf,
    ProductNode,
    SumNode,
    compute_stats,
)


def _hist(var, bins=4):
    return HistogramLeaf(var, np.arange(bins + 1, dtype=float), np.full(bins, 1 / bins))


def test_single_leaf_stats():
    stats = compute_stats(SPN(_hist(0, bins=7)))
    assert stats.n_nodes == 1
    assert stats.n_leaves == 1
    assert stats.n_histograms == 1
    assert stats.n_table_entries == 7
    assert stats.n_adders == 0
    assert stats.n_multipliers == 0
    assert stats.depth == 0
    assert stats.n_arithmetic_ops == 0


def test_sum_node_operator_convention():
    """n-ary sum: n weight multipliers plus n-1 adders."""
    spn = SPN(SumNode([_hist(0), _hist(0), _hist(0), _hist(0)], [1, 1, 1, 1]))
    stats = compute_stats(spn)
    assert stats.n_adders == 3
    assert stats.n_multipliers == 4
    assert stats.max_fanin == 4


def test_product_node_operator_convention():
    """n-ary product: n-1 multipliers, no weight constants."""
    spn = SPN(ProductNode([_hist(v) for v in range(5)]))
    stats = compute_stats(spn)
    assert stats.n_adders == 0
    assert stats.n_multipliers == 4


def test_mixed_leaf_kinds_counted():
    spn = SPN(
        ProductNode(
            [
                _hist(0, bins=3),
                CategoricalLeaf(1, [0.5, 0.25, 0.25]),
                GaussianLeaf(2, 0.0, 1.0),
            ]
        )
    )
    stats = compute_stats(spn)
    assert stats.n_leaves == 3
    assert stats.n_histograms == 1
    # Histogram bins + categorical categories; Gaussians have no table
    # until the compiler discretises them.
    assert stats.n_table_entries == 6


def test_shared_nodes_counted_once():
    shared = _hist(1)
    spn = SPN(
        SumNode(
            [ProductNode([_hist(0), shared]), ProductNode([_hist(2), shared])],
            [0.5, 0.5],
        ),
        validate=False,
    )
    stats = compute_stats(spn)
    assert stats.n_leaves == 3


def test_stats_are_frozen():
    stats = compute_stats(SPN(_hist(0)))
    with pytest.raises(AttributeError):
        stats.n_nodes = 99  # type: ignore[misc]
