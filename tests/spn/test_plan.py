"""Property and unit tests for compiled inference plans.

The plan compiler/evaluator (:mod:`repro.spn.plan`,
:mod:`repro.spn.plan_eval`) is validated three ways: against the
independent scalar oracle ``naive_log_likelihood``, against the
reference per-node graph walk on randomized SPNs (marginal and
missing-value queries included), and on the structural edge cases the
fused kernels must not mishandle (all ``-inf`` sum rows, degenerate
single-node graphs, stale-plan invalidation).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.cpu import naive_log_likelihood
from repro.errors import ReproError, SPNStructureError
from repro.spn import (
    SPN,
    CategoricalLeaf,
    GaussianLeaf,
    HistogramLeaf,
    ProductNode,
    SumNode,
    clear_plan_cache,
    compile_plan,
    evaluate_plan,
    get_inference_backend,
    get_plan,
    log_likelihood,
    log_likelihood_with_missing,
    marginal_log_likelihood,
    plan_cache_info,
    plan_log_likelihood,
    random_spn,
    set_inference_backend,
)
from repro.spn.inference import node_log_values, reference_node_log_values
from repro.spn.plan_eval import plan_node_log_values


def _hist(var, masses):
    return HistogramLeaf(var, np.arange(len(masses) + 1, dtype=float), masses)


def _random_data(spn, n_rows, seed, high=6):
    rng = np.random.default_rng(seed)
    width = max(spn.scope) + 1
    return rng.integers(0, high, size=(n_rows, width)).astype(np.float64)


# ---------------------------------------------------------------------------
# Agreement with the independent scalar oracle
# ---------------------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_variables=st.integers(min_value=1, max_value=6),
    depth=st.integers(min_value=1, max_value=4),
)
def test_plan_matches_naive_oracle(seed, n_variables, depth):
    spn = random_spn(n_variables, depth=depth, n_bins=4, seed=seed)
    data = _random_data(spn, 17, seed + 1, high=5)
    expected = naive_log_likelihood(spn, data)
    got = plan_log_likelihood(compile_plan(spn), data)
    np.testing.assert_allclose(got, expected, rtol=1e-10)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_plan_marginal_matches_reference(seed):
    spn = random_spn(5, depth=3, n_bins=4, seed=seed)
    data = _random_data(spn, 13, seed)
    rng = np.random.default_rng(seed)
    scope = sorted(spn.scope)
    marg = [v for v in scope if rng.random() < 0.4]
    expected = reference_node_log_values(spn, data, marginalized=marg)[spn.root.id]
    got = plan_log_likelihood(compile_plan(spn), data, marginalized=marg)
    np.testing.assert_allclose(got, expected, rtol=1e-10)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_plan_missing_matches_reference(seed):
    spn = random_spn(5, depth=3, n_bins=4, seed=seed)
    data = _random_data(spn, 13, seed)
    rng = np.random.default_rng(seed + 7)
    data[rng.random(data.shape) < 0.3] = 255.0
    missing = data == 255.0
    expected = reference_node_log_values(spn, data, missing_mask=missing)[spn.root.id]
    got = plan_log_likelihood(compile_plan(spn), data, missing_value=255.0)
    np.testing.assert_allclose(got, expected, rtol=1e-10)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_plan_node_values_match_reference(seed):
    spn = random_spn(4, depth=3, n_bins=4, seed=seed)
    data = _random_data(spn, 9, seed)
    expected = reference_node_log_values(spn, data)
    got = plan_node_log_values(compile_plan(spn), data)
    assert set(got) == set(expected)
    for node_id, values in expected.items():
        np.testing.assert_allclose(got[node_id], values, rtol=1e-10)


# ---------------------------------------------------------------------------
# Public-API dispatch (plan is the default backend)
# ---------------------------------------------------------------------------


def test_default_backend_is_plan():
    assert get_inference_backend() == "plan"


def test_backend_toggle_roundtrip():
    spn = random_spn(4, depth=3, n_bins=4, seed=3)
    data = _random_data(spn, 21, 3)
    via_plan = log_likelihood(spn, data)
    set_inference_backend("reference")
    try:
        assert get_inference_backend() == "reference"
        via_walk = log_likelihood(spn, data)
    finally:
        set_inference_backend("plan")
    np.testing.assert_allclose(via_plan, via_walk, rtol=1e-12)


def test_unknown_backend_rejected():
    with pytest.raises(ReproError):
        set_inference_backend("simd")


def test_public_api_shapes_and_types():
    spn = random_spn(4, depth=3, n_bins=4, seed=5)
    data = _random_data(spn, 11, 5)
    ll = log_likelihood(spn, data)
    assert isinstance(ll, np.ndarray) and ll.shape == (11,)
    marg = marginal_log_likelihood(spn, data, [0])
    assert isinstance(marg, np.ndarray) and marg.shape == (11,)
    assert np.all(marg >= ll - 1e-12)
    missing = log_likelihood_with_missing(spn, data)
    assert isinstance(missing, np.ndarray) and missing.shape == (11,)
    values = node_log_values(spn, data)
    assert isinstance(values, dict)
    assert set(values) == {node.id for node in spn.nodes}
    np.testing.assert_allclose(values[spn.root.id], ll, rtol=1e-12)


def test_data_wider_than_scope_is_accepted():
    spn = random_spn(3, depth=2, n_bins=4, seed=11)
    data = _random_data(spn, 8, 11)
    padded = np.hstack([data, np.full((8, 2), 99.0)])
    np.testing.assert_allclose(
        log_likelihood(spn, padded), log_likelihood(spn, data), rtol=1e-12
    )


def test_single_sample_row_vector():
    spn = random_spn(3, depth=2, n_bins=4, seed=2)
    row = _random_data(spn, 1, 2)[0]
    assert log_likelihood(spn, row).shape == (1,)


# ---------------------------------------------------------------------------
# Structural edge cases
# ---------------------------------------------------------------------------


def test_single_leaf_spn():
    spn = SPN(_hist(0, [0.25, 0.75]))
    plan = compile_plan(spn)
    assert plan.n_nodes == 1
    data = np.array([[0.0], [1.0], [7.0]])
    np.testing.assert_allclose(
        plan_log_likelihood(plan, data),
        naive_log_likelihood(spn, data),
        rtol=1e-12,
    )


def test_single_sum_over_leaves():
    spn = SPN(SumNode([_hist(0, [0.5, 0.5]), _hist(0, [0.9, 0.1])], [0.3, 0.7]))
    data = np.array([[0.0], [1.0]])
    np.testing.assert_allclose(
        plan_log_likelihood(compile_plan(spn), data),
        naive_log_likelihood(spn, data),
        rtol=1e-12,
    )


def test_all_neginf_sum_rows_stay_neginf():
    # A Gaussian at z ~ 1e200 underflows to log-density -inf, so every
    # child of the sum node is -inf for that row: the stable segment
    # logsumexp must produce -inf, not NaN, exactly like the reference.
    gauss = SPN(
        SumNode(
            [GaussianLeaf(0, 0.0, 1.0), GaussianLeaf(0, 0.0, 1.0)], [0.5, 0.5]
        )
    )
    extreme = np.array([[1e200], [0.0]])
    with np.errstate(over="ignore"):
        out = plan_log_likelihood(compile_plan(gauss), extreme)
        ref = reference_node_log_values(gauss, extreme)[gauss.root.id]
    assert np.isneginf(out[0]) and np.isneginf(ref[0])
    assert np.isfinite(out[1])
    np.testing.assert_allclose(out[1], ref[1], rtol=1e-12)


def test_mixed_leaf_families_match_naive():
    # One product mixing all three fused leaf families plus the
    # non-unit-bin histogram that takes the generic fallback kernel.
    wide = HistogramLeaf(3, np.array([0.0, 2.5, 5.0]), np.array([0.3, 0.1]))
    spn = SPN(
        SumNode(
            [
                ProductNode(
                    [
                        _hist(0, [0.5, 0.5]),
                        GaussianLeaf(1, 1.0, 2.0),
                        CategoricalLeaf(2, [0.2, 0.3, 0.5]),
                        wide,
                    ]
                ),
                ProductNode(
                    [
                        _hist(0, [0.9, 0.1]),
                        GaussianLeaf(1, -1.0, 0.5),
                        CategoricalLeaf(2, [0.6, 0.3, 0.1]),
                        HistogramLeaf(3, np.array([1.0, 4.0]), np.array([1.0 / 3.0])),
                    ]
                ),
            ],
            [0.4, 0.6],
        )
    )
    rng = np.random.default_rng(12)
    data = np.column_stack(
        [
            rng.integers(0, 2, 40),
            rng.normal(0, 2, 40),
            rng.integers(0, 3, 40),
            rng.uniform(-1, 6, 40),
        ]
    ).astype(np.float64)
    np.testing.assert_allclose(
        plan_log_likelihood(compile_plan(spn), data),
        naive_log_likelihood(spn, data),
        rtol=1e-10,
    )


def test_nan_input_matches_reference_floor_semantics():
    spn = random_spn(3, depth=2, n_bins=4, seed=9)
    data = _random_data(spn, 4, 9)
    data[1, 0] = np.nan
    got = plan_log_likelihood(compile_plan(spn), data)
    expected = reference_node_log_values(spn, data)[spn.root.id]
    np.testing.assert_allclose(got, expected, rtol=1e-12)


def test_unknown_marginal_variable_rejected():
    spn = random_spn(3, depth=2, n_bins=4, seed=4)
    with pytest.raises(SPNStructureError):
        plan_log_likelihood(compile_plan(spn), _random_data(spn, 3, 4), marginalized=[17])


def test_evaluate_plan_matrix_contract():
    spn = random_spn(4, depth=3, n_bins=4, seed=6)
    plan = compile_plan(spn)
    data = _random_data(spn, 7, 6)
    matrix = evaluate_plan(plan, data)
    assert matrix.shape == (plan.n_nodes, 7)
    reference = reference_node_log_values(spn, data)
    for row, node_id in enumerate(plan.node_ids):
        np.testing.assert_allclose(matrix[row], reference[int(node_id)], rtol=1e-10)


# ---------------------------------------------------------------------------
# Plan caching and invalidation
# ---------------------------------------------------------------------------


def test_plan_cache_reuses_compiled_plan():
    clear_plan_cache()
    spn = random_spn(4, depth=3, n_bins=4, seed=8)
    first = get_plan(spn)
    second = get_plan(spn)
    assert first is second
    info = plan_cache_info()
    assert info["hits"] >= 1 and info["misses"] >= 1 and info["size"] >= 1


def test_mutated_spn_does_not_reuse_stale_plan():
    spn = SPN(SumNode([_hist(0, [0.5, 0.5]), _hist(0, [0.9, 0.1])], [0.3, 0.7]))
    data = np.array([[0.0], [1.0]])
    before = log_likelihood(spn, data)
    # In-place parameter mutation: same graph object, new distribution.
    root = spn.root
    root.weights = np.array([0.9, 0.1])
    root.log_weights = np.log(root.weights)
    after = log_likelihood(spn, data)
    assert not np.allclose(before, after)
    np.testing.assert_allclose(after, naive_log_likelihood(spn, data), rtol=1e-12)


def test_mutated_leaf_table_invalidates_plan():
    leaf = _hist(0, [0.5, 0.5])
    spn = SPN(leaf)
    before = log_likelihood(spn, np.array([[0.0]]))
    leaf.densities = np.array([0.2, 0.8])
    after = log_likelihood(spn, np.array([[0.0]]))
    assert not np.allclose(before, after)
    np.testing.assert_allclose(after, np.log([0.2]), rtol=1e-12)


def test_clear_plan_cache_resets_counters():
    clear_plan_cache()
    info = plan_cache_info()
    assert info["size"] == 0 and info["hits"] == 0 and info["misses"] == 0


# ---------------------------------------------------------------------------
# Chunk boundaries and storage precision (dtype=)
# ---------------------------------------------------------------------------


@pytest.fixture()
def tiny_chunks(monkeypatch):
    """Force the evaluator's chunk to its 256-row floor so modest
    batches span several chunks (600 rows -> 256 + 256 + 88)."""
    monkeypatch.setattr("repro.spn.plan_eval.DEFAULT_CHUNK_BYTES", 1)


@pytest.mark.parametrize("dtype,tol", [(np.float64, 1e-12), (np.float32, 1e-4)])
def test_marginal_query_across_chunk_boundaries(tiny_chunks, dtype, tol):
    """Marginalisation state must survive the chunked column walk —
    600 rows do not divide into 256-row chunks evenly."""
    spn = random_spn(6, depth=3, n_bins=6, seed=19)
    data = _random_data(spn, 600, seed=20)
    marg = [1, 3]
    expected = reference_node_log_values(spn, data, marginalized=marg)[spn.root.id]
    got = plan_log_likelihood(
        compile_plan(spn), data, marginalized=marg, dtype=dtype
    )
    np.testing.assert_allclose(got, expected, atol=tol, rtol=1e-10)


@pytest.mark.parametrize("dtype,tol", [(np.float64, 1e-12), (np.float32, 1e-4)])
def test_missing_values_across_chunk_boundaries(tiny_chunks, dtype, tol):
    spn = random_spn(6, depth=3, n_bins=6, seed=21)
    data = _random_data(spn, 600, seed=22)
    data[5::7, 2] = 255.0  # sentinel rows in every chunk
    expected = reference_node_log_values(
        spn, data, missing_mask=data == 255.0
    )[spn.root.id]
    got = plan_log_likelihood(
        compile_plan(spn), data, missing_value=255.0, dtype=dtype
    )
    np.testing.assert_allclose(got, expected, atol=tol, rtol=1e-10)


@pytest.mark.parametrize("dtype", [np.float64, np.float32])
def test_degenerate_batches(tiny_chunks, dtype):
    """batch == 0 and batch == 1 through the chunked path."""
    spn = random_spn(5, depth=3, n_bins=5, seed=23)
    plan = compile_plan(spn)
    width = max(spn.scope) + 1
    empty = plan_log_likelihood(plan, np.empty((0, width)), dtype=dtype)
    assert empty.shape == (0,) and empty.dtype == np.float64
    single = _random_data(spn, 1, seed=24)
    got = plan_log_likelihood(plan, single, dtype=dtype)
    np.testing.assert_allclose(
        got, naive_log_likelihood(spn, single), atol=1e-4, rtol=1e-10
    )


def test_chunked_equals_unchunked(monkeypatch):
    """Chunk splits are invisible in float64 — bit-identical results."""
    spn = random_spn(6, depth=3, n_bins=6, seed=25)
    data = _random_data(spn, 600, seed=26)
    whole = plan_log_likelihood(compile_plan(spn), data)
    monkeypatch.setattr("repro.spn.plan_eval.DEFAULT_CHUNK_BYTES", 1)
    chunked = plan_log_likelihood(compile_plan(spn), data)
    assert np.array_equal(whole, chunked)


def test_float32_input_accepted_without_upcast():
    """float32 data with dtype=float32 must evaluate directly (the
    executor's zero-copy path) and match the float64 answer closely."""
    spn = random_spn(6, depth=3, n_bins=6, seed=27)
    data = _random_data(spn, 257, seed=28)
    plan = compile_plan(spn)
    exact = plan_log_likelihood(plan, data)
    via32 = plan_log_likelihood(plan, data.astype(np.float32), dtype=np.float32)
    np.testing.assert_allclose(via32, exact, atol=1e-4)


def test_invalid_dtype_rejected():
    spn = random_spn(4, depth=2, n_bins=4, seed=29)
    with pytest.raises(SPNStructureError):
        plan_log_likelihood(
            compile_plan(spn), _random_data(spn, 3, seed=30), dtype=np.int64
        )
