"""Unit and statistical tests for ancestral sampling."""

import numpy as np
import pytest

from repro.errors import SPNStructureError
from repro.spn import (
    SPN,
    GaussianLeaf,
    HistogramLeaf,
    ProductNode,
    SumNode,
    likelihood,
    random_spn,
    sample,
)


def _hist(var, masses):
    return HistogramLeaf(var, np.arange(len(masses) + 1, dtype=float), masses)


def test_shape_and_determinism():
    spn = random_spn(5, depth=3, n_bins=4, seed=2)
    a = sample(spn, 100, seed=7)
    b = sample(spn, 100, seed=7)
    assert a.shape == (100, 5)
    np.testing.assert_array_equal(a, b)


def test_samples_within_leaf_support():
    spn = random_spn(4, depth=3, n_bins=4, seed=3)
    draws = sample(spn, 2000, seed=1)
    assert draws.min() >= 0.0
    assert draws.max() <= 4.0


def test_marginal_frequencies_match_model():
    leaf = _hist(0, [0.7, 0.2, 0.1])
    spn = SPN(leaf)
    draws = np.floor(sample(spn, 50_000, seed=5))[:, 0]
    freq = np.bincount(draws.astype(int), minlength=3) / 50_000
    assert freq == pytest.approx([0.7, 0.2, 0.1], abs=0.01)


def test_mixture_routing_frequencies():
    # Disjoint components: x0 in bin 0 for comp A, bin 1 for comp B.
    a = _hist(0, [1.0, 1e-9])
    b = _hist(0, [1e-9, 1.0])
    spn = SPN(SumNode([a, b], [0.25, 0.75]))
    draws = np.floor(sample(spn, 40_000, seed=9))[:, 0]
    assert np.mean(draws == 1) == pytest.approx(0.75, abs=0.01)


def test_joint_frequency_matches_likelihood():
    spn = random_spn(3, depth=3, n_bins=3, seed=11)
    draws = np.floor(sample(spn, 150_000, seed=12))
    target = np.array([0.0, 1.0, 2.0])
    p_model = float(likelihood(spn, target[np.newaxis, :] + 0.5)[0])
    p_emp = float(np.mean(np.all(draws == target, axis=1)))
    assert p_emp == pytest.approx(p_model, rel=0.2, abs=0.002)


def test_gaussian_leaf_sampling():
    spn = SPN(GaussianLeaf(0, mean=3.0, stdev=0.5))
    draws = sample(spn, 20_000, seed=13)[:, 0]
    assert draws.mean() == pytest.approx(3.0, abs=0.02)
    assert draws.std() == pytest.approx(0.5, abs=0.02)


def test_invalid_count_rejected():
    spn = SPN(_hist(0, [1.0]))
    with pytest.raises(SPNStructureError):
        sample(spn, 0)


def test_rng_injection():
    spn = SPN(_hist(0, [0.5, 0.5]))
    rng = np.random.default_rng(1)
    first = sample(spn, 10, rng=rng)
    second = sample(spn, 10, rng=rng)  # advances the same stream
    assert not np.array_equal(first, second)
