"""Unit and property tests for the SPFlow-compatible text format."""

import io

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SPNFormatError
from repro.spn import (
    SPN,
    CategoricalLeaf,
    GaussianLeaf,
    HistogramLeaf,
    ProductNode,
    SumNode,
    dump,
    dumps,
    load,
    loads,
    log_likelihood,
    random_spn,
)


def _hist(var, masses=(0.25, 0.75)):
    return HistogramLeaf(var, np.arange(len(masses) + 1, dtype=float), masses)


class TestSerialise:
    def test_histogram_leaf_format(self):
        text = dumps(SPN(_hist(0)))
        assert text.startswith("Histogram(V0|[")
        assert ";" in text

    def test_gaussian_leaf_format(self):
        text = dumps(SPN(GaussianLeaf(2, 1.5, 0.5)))
        assert text == "Gaussian(V2|1.5;0.5)"

    def test_categorical_leaf_format(self):
        text = dumps(SPN(CategoricalLeaf(1, [0.5, 0.5])))
        assert text == "Categorical(V1|[0.5,0.5])"

    def test_product_uses_stars(self):
        spn = SPN(ProductNode([_hist(0), _hist(1)]))
        text = dumps(spn)
        assert text.count(" * ") == 1
        assert text.startswith("(") and text.endswith(")")

    def test_sum_uses_weighted_terms(self):
        spn = SPN(SumNode([_hist(0), _hist(0)], [0.25, 0.75]))
        text = dumps(spn)
        assert "0.25*" in text and "0.75*" in text and " + " in text


class TestParse:
    def test_parse_gaussian(self):
        spn = loads("Gaussian(V3|0.5;1.25)")
        leaf = spn.root
        assert isinstance(leaf, GaussianLeaf)
        assert leaf.variable == 3
        assert leaf.mean == 0.5
        assert leaf.stdev == 1.25

    def test_parse_histogram(self):
        spn = loads("Histogram(V0|[0.0,1.0,2.0];[0.25,0.75])")
        leaf = spn.root
        assert isinstance(leaf, HistogramLeaf)
        assert leaf.n_bins == 2

    def test_parse_categorical(self):
        spn = loads("Categorical(V1|[0.2,0.3,0.5])")
        assert isinstance(spn.root, CategoricalLeaf)
        assert spn.root.n_categories == 3

    def test_parse_product(self):
        spn = loads("(Histogram(V0|[0,1];[1.0]) * Histogram(V1|[0,1];[1.0]))")
        assert isinstance(spn.root, ProductNode)
        assert spn.n_variables == 2

    def test_parse_sum(self):
        spn = loads(
            "(0.3*Histogram(V0|[0,1,2];[0.5,0.5]) + 0.7*Histogram(V0|[0,1,2];[0.1,0.9]))"
        )
        assert isinstance(spn.root, SumNode)
        assert spn.root.weights == pytest.approx([0.3, 0.7])

    def test_whitespace_insensitive(self):
        spn = loads(
            "( 0.5 * Histogram( V0 | [0,1] ; [1.0] )\n + 0.5*Histogram(V0|[0,1];[1.0]) )"
        )
        assert isinstance(spn.root, SumNode)

    def test_scientific_notation(self):
        spn = loads("Gaussian(V0|1e-3;2.5E2)")
        assert spn.root.mean == pytest.approx(1e-3)
        assert spn.root.stdev == pytest.approx(250.0)

    def test_nested_structure(self):
        text = (
            "(0.5*(Histogram(V0|[0,1];[1.0]) * Histogram(V1|[0,1];[1.0]))"
            " + 0.5*(Histogram(V0|[0,1];[1.0]) * Histogram(V1|[0,1];[1.0])))"
        )
        spn = loads(text)
        assert isinstance(spn.root, SumNode)
        assert all(isinstance(c, ProductNode) for c in spn.root.children)

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "   ",
            "Histogram(V0|[0,1];[1.0]",  # missing paren
            "Unknown(V0|[0,1];[1.0])",
            "(Histogram(V0|[0,1];[1.0]) + Histogram(V1|[0,1];[1.0]))",  # sum w/o weights
            "Histogram(X0|[0,1];[1.0])",  # bad variable ref
            "(Histogram(V0|[0,1];[1.0]) * Histogram(V1|[0,1];[1.0])) junk",
            "(0.5*Histogram(V0|[0,1];[1.0]) * Histogram(V1|[0,1];[1.0]))",  # mixed ops
        ],
    )
    def test_malformed_inputs_rejected(self, bad):
        with pytest.raises(SPNFormatError):
            loads(bad)

    def test_invalid_structure_still_checked(self):
        # Parses fine but is not decomposable.
        text = "(Histogram(V0|[0,1];[1.0]) * Histogram(V0|[0,1];[1.0]))"
        from repro.errors import SPNStructureError

        with pytest.raises(SPNStructureError):
            loads(text)
        assert loads(text, validate=False) is not None


class TestRoundTrip:
    def test_file_round_trip(self):
        spn = SPN(SumNode([_hist(0), _hist(0)], [0.4, 0.6]))
        buffer = io.StringIO()
        dump(spn, buffer)
        buffer.seek(0)
        again = load(buffer)
        assert dumps(again) == dumps(spn)

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        n_vars=st.integers(1, 10),
        depth=st.integers(1, 4),
    )
    def test_random_spn_round_trip_preserves_likelihood(self, seed, n_vars, depth):
        spn = random_spn(n_vars, depth=depth, n_bins=5, seed=seed)
        again = loads(dumps(spn))
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 5, size=(8, n_vars)).astype(float)
        np.testing.assert_allclose(
            log_likelihood(spn, data), log_likelihood(again, data), rtol=1e-12
        )

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_double_round_trip_is_fixed_point(self, seed):
        spn = random_spn(6, depth=3, n_bins=4, seed=seed)
        once = dumps(loads(dumps(spn)))
        twice = dumps(loads(once))
        assert once == twice
