"""Thread-parallel native kernel: determinism, config, and fallback.

The codegen-v2 kernels carry an in-process thread driver (OpenMP,
pthread pool, or serial, probed at build time).  The load-bearing
contract is *bit-identical results for every thread count*: the row
partition splits on fixed compile-time block boundaries, so threading
never reorders a reduction.  This suite locks that in across dtypes,
query types, and chunk-seam batch sizes, plus the configuration
surface around it: ``threads=`` / ``REPRO_NATIVE_THREADS`` validation
(:class:`~repro.errors.RuntimeConfigError` naming the offending
source), per-thread observability, the ``inference_backend`` context
manager's exception-safety, and the no-compiler degradation of a
threaded ask.
"""

import os
import warnings

import numpy as np
import pytest

from repro.compiler.cgen import MAX_KERNEL_THREADS, kernel_block_size
from repro.compiler.native_build import (
    clear_native_kernels,
    compiler_command,
    get_native_kernel,
    native_or_plan_log_likelihood,
    resolve_native_threads,
    set_native_observability,
)
from repro.errors import ReproError, RuntimeConfigError
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace_export import HostSpanRecorder
from repro.spn import (
    compile_plan,
    get_inference_backend,
    inference_backend,
    log_likelihood,
    plan_log_likelihood,
    random_spn,
    set_inference_backend,
)

needs_cc = pytest.mark.skipif(
    compiler_command() is None, reason="no C compiler on this host"
)

#: Thread counts exercised against the single-thread baseline: an even
#: split, a count coprime with the block grid, and whatever this host
#: actually has.
THREAD_COUNTS = sorted({2, 7, os.cpu_count() or 1})


@pytest.fixture(autouse=True)
def _isolated_native_cache(tmp_path, monkeypatch):
    """Route kernel artifacts to a throwaway dir and drop the memo."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_NATIVE_THREADS", raising=False)
    clear_native_kernels()
    yield
    clear_native_kernels()


def _plan_and_batch(n_rows, seed=3):
    spn = random_spn(4, depth=3, n_bins=5, seed=seed)
    plan = compile_plan(spn)
    rng = np.random.default_rng(seed + 1)
    data = rng.integers(0, 5, size=(n_rows, plan.n_data_columns)).astype(
        np.float64
    )
    data[rng.random(data.shape) < 0.1] = 255.0
    return plan, data


# ---------------------------------------------------------------------------
# Bit-identical results for every thread count
# ---------------------------------------------------------------------------


@needs_cc
@pytest.mark.parametrize("dtype", [np.float64, np.float32])
def test_thread_count_invariance_all_query_types(dtype):
    """Every thread count reproduces the 1-thread root bit-for-bit,
    for both storage dtypes and all three query flavours."""
    plan, data = _plan_and_batch(20001)
    kernel = get_native_kernel(plan, dtype, require=True)
    for kwargs in (
        {},
        {"marginalized": [1, 3]},
        {"missing_value": 255.0},
    ):
        baseline = kernel.log_likelihood(data, threads=1, **kwargs)
        for nt in THREAD_COUNTS:
            got = kernel.log_likelihood(data, threads=nt, **kwargs)
            assert np.array_equal(baseline, got), (
                f"threads={nt} diverged from threads=1 for query "
                f"{kwargs!r} dtype {np.dtype(dtype).name}"
            )


@needs_cc
def test_thread_count_invariance_at_chunk_seams():
    """Batch sizes straddling the block grid (and single-row batches)
    stay bit-identical when threaded — thread chunks split on block
    boundaries, so seams are where an off-by-one would show."""
    plan, data = _plan_and_batch(0)
    kernel = get_native_kernel(plan, np.float64, require=True)
    block = kernel_block_size(plan, np.float64)
    _, data = _plan_and_batch(2 * block + 3)
    for n in (1, 2, block - 1, block, block + 1, 2 * block + 3):
        baseline = kernel.log_likelihood(data[:n], threads=1)
        for nt in THREAD_COUNTS:
            got = kernel.log_likelihood(data[:n], threads=nt)
            assert np.array_equal(baseline, got), (
                f"batch size {n} (block {block}) diverged at "
                f"threads={nt}"
            )


@needs_cc
def test_env_var_thread_count_matches_explicit(monkeypatch):
    """``REPRO_NATIVE_THREADS`` routes through the same resolution as
    ``threads=`` and produces the same (bit-identical) results."""
    plan, data = _plan_and_batch(9001)
    kernel = get_native_kernel(plan, np.float64, require=True)
    baseline = kernel.log_likelihood(data, threads=1)
    monkeypatch.setenv("REPRO_NATIVE_THREADS", "3")
    assert np.array_equal(baseline, kernel.log_likelihood(data))
    # An explicit argument beats the environment.
    assert np.array_equal(
        baseline, kernel.log_likelihood(data, threads=1)
    )


# ---------------------------------------------------------------------------
# Thread-count validation
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("bad", [0, -3, 2.5, "two"])
def test_threads_argument_validation(bad):
    with pytest.raises(RuntimeConfigError, match="threads="):
        resolve_native_threads(bad)


@pytest.mark.parametrize("bad", ["0", "-3", "two", "2.5"])
def test_threads_env_validation(bad, monkeypatch):
    monkeypatch.setenv("REPRO_NATIVE_THREADS", bad)
    with pytest.raises(
        RuntimeConfigError, match="REPRO_NATIVE_THREADS"
    ):
        resolve_native_threads()


def test_threads_resolution_order_and_clamp(monkeypatch):
    monkeypatch.delenv("REPRO_NATIVE_THREADS", raising=False)
    assert resolve_native_threads() == 1
    assert resolve_native_threads(5) == 5
    monkeypatch.setenv("REPRO_NATIVE_THREADS", "6")
    assert resolve_native_threads() == 6
    assert resolve_native_threads(2) == 2  # argument wins
    # Absurd asks clamp to the generated driver's hard cap instead of
    # overflowing its fixed-size chunk table.
    assert resolve_native_threads(10**6) == MAX_KERNEL_THREADS


# ---------------------------------------------------------------------------
# Per-thread observability
# ---------------------------------------------------------------------------


@needs_cc
def test_per_thread_busy_counters_and_spans():
    """Multi-threaded calls surface per-chunk busy counters and spans
    (when the kernel was built with a threaded runtime)."""
    plan, _ = _plan_and_batch(0)
    kernel = get_native_kernel(plan, np.float64, require=True)
    if not kernel.supports_threads:
        pytest.skip("kernel built in serial mode (no OpenMP/pthread)")
    block = kernel_block_size(plan, np.float64)
    _, data = _plan_and_batch(2 * block)  # exactly two chunks
    registry = MetricsRegistry()
    tracer = HostSpanRecorder()
    previous = set_native_observability(registry, tracer)
    try:
        kernel.log_likelihood(data, threads=2)
    finally:
        set_native_observability(*previous)
    assert registry.value("native.thread0.busy_seconds") > 0.0
    assert registry.value("native.thread1.busy_seconds") > 0.0
    tracks = tracer.tracks()
    assert "native thread0" in tracks and "native thread1" in tracks


# ---------------------------------------------------------------------------
# inference_backend context-manager exception safety
# ---------------------------------------------------------------------------


def test_backend_cm_restores_on_foreign_exception():
    """Non-ReproError exceptions restore the previous backend too."""
    assert get_inference_backend() == "plan"
    with pytest.raises(ValueError):
        with inference_backend("reference"):
            raise ValueError("boom")
    assert get_inference_backend() == "plan"


def test_backend_cm_restores_over_body_switches():
    """A body that switches backends itself and then raises still
    lands back on the original selection."""
    assert get_inference_backend() == "plan"
    with pytest.raises(RuntimeError):
        with inference_backend("reference"):
            set_inference_backend("plan")
            raise RuntimeError("boom")
    assert get_inference_backend() == "plan"


def test_backend_cm_invalid_name_leaves_selection_untouched():
    """An invalid name raises before switching anything."""
    with inference_backend("reference"):
        with pytest.raises(ReproError, match="backend"):
            with inference_backend("fpga"):
                pass  # pragma: no cover - never entered
        assert get_inference_backend() == "reference"


# ---------------------------------------------------------------------------
# No-compiler degradation of a threaded ask
# ---------------------------------------------------------------------------


@pytest.fixture()
def _no_compiler(monkeypatch):
    """Mask the toolchain the way the no-cc CI leg does."""
    monkeypatch.setenv("REPRO_NATIVE_CC", "/nonexistent/repro-no-cc")
    from repro.compiler import native_build

    monkeypatch.setattr(native_build, "_WARNED", set())


def test_threaded_ask_degrades_with_single_warning(
    _no_compiler, monkeypatch
):
    """``REPRO_NATIVE_THREADS`` on a host without a toolchain degrades
    exactly like the single-threaded ask: plan results, one warning."""
    monkeypatch.setenv("REPRO_NATIVE_THREADS", "4")
    spn = random_spn(3, depth=2, n_bins=4, seed=31)
    plan = compile_plan(spn)
    rng = np.random.default_rng(32)
    data = rng.integers(0, 4, size=(32, plan.n_data_columns)).astype(
        np.float64
    )
    expected = plan_log_likelihood(plan, data)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        with inference_backend("native"):
            got = log_likelihood(spn, data)
            again = log_likelihood(spn, data)
    np.testing.assert_allclose(got, expected, rtol=1e-15)
    assert np.array_equal(got, again)
    fallbacks = [
        w for w in caught if "no C compiler" in str(w.message)
    ]
    assert len(fallbacks) == 1, [str(w.message) for w in caught]


def test_threaded_ask_still_validated_without_compiler(
    _no_compiler, monkeypatch
):
    """An invalid thread count raises loudly even when the kernel
    would have fallen back to numpy anyway — config errors must never
    be masked by degradation."""
    monkeypatch.setenv("REPRO_NATIVE_THREADS", "zero")
    plan, data = _plan_and_batch(8)
    with pytest.raises(
        RuntimeConfigError, match="REPRO_NATIVE_THREADS"
    ):
        native_or_plan_log_likelihood(plan, data)
