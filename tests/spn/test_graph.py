"""Unit tests for the SPN graph container and validation."""

import numpy as np
import pytest

from repro.errors import SPNStructureError
from repro.spn import SPN, HistogramLeaf, ProductNode, SumNode


def _hist(var):
    return HistogramLeaf(var, [0.0, 1.0, 2.0], [0.5, 0.5])


def _small_spn():
    left = ProductNode([_hist(0), _hist(1)])
    right = ProductNode([_hist(0), _hist(1)])
    return SPN(SumNode([left, right], [0.4, 0.6]), name="small")


def test_topological_order_children_first():
    spn = _small_spn()
    seen = set()
    for node in spn:
        for child in node.children:
            assert child.id in seen
        seen.add(node.id)


def test_node_counts():
    spn = _small_spn()
    assert len(spn) == 7
    assert len(spn.leaves) == 4
    assert len(spn.sum_nodes) == 1
    assert len(spn.product_nodes) == 2


def test_scope_and_n_variables():
    spn = _small_spn()
    assert spn.scope == (0, 1)
    assert spn.n_variables == 2


def test_depth():
    assert _small_spn().depth() == 2
    assert SPN(_hist(0)).depth() == 0


def test_shared_subgraph_visited_once():
    shared = _hist(1)
    left = ProductNode([_hist(0), shared])
    right = ProductNode([_hist(0), shared])
    spn = SPN(SumNode([left, right], [0.5, 0.5]))
    # 2 roots' products + 1 sum + 2 distinct var-0 leaves + 1 shared leaf
    assert len(spn) == 6


def test_cycle_detected():
    leaf = _hist(0)
    prod = ProductNode([leaf])
    # Force a cycle behind the constructor's back.
    prod.children.append(prod)
    with pytest.raises(SPNStructureError, match="cycle"):
        SPN(prod, validate=False)


def test_non_smooth_sum_rejected():
    bad = SumNode.__new__(SumNode)
    # Bypass SumNode's constructor checks to build a non-smooth sum.
    SumNode.__init__(bad, [_hist(0), _hist(1)], [0.5, 0.5])
    with pytest.raises(SPNStructureError, match="not smooth"):
        SPN(bad)


def test_non_decomposable_product_rejected():
    bad = ProductNode([_hist(0), _hist(0)])
    with pytest.raises(SPNStructureError, match="not decomposable"):
        SPN(bad)


def test_validate_false_skips_checks():
    bad = ProductNode([_hist(0), _hist(0)])
    spn = SPN(bad, validate=False)
    assert not spn.is_decomposable()
    assert spn.is_smooth()


def test_is_smooth_flags_bad_sum():
    bad = SumNode.__new__(SumNode)
    SumNode.__init__(bad, [_hist(0), _hist(1)], [0.5, 0.5])
    spn = SPN(bad, validate=False)
    assert not spn.is_smooth()
    assert spn.is_decomposable()


def test_root_must_be_node():
    with pytest.raises(SPNStructureError):
        SPN("not a node")  # type: ignore[arg-type]


def test_to_networkx_structure():
    spn = _small_spn()
    graph = spn.to_networkx()
    assert graph.number_of_nodes() == len(spn)
    assert graph.number_of_edges() == 6
    root_edges = list(graph.out_edges(spn.root.id, data=True))
    assert sorted(e[2]["weight"] for e in root_edges) == pytest.approx([0.4, 0.6])


def test_to_networkx_is_dag():
    import networkx as nx

    graph = _small_spn().to_networkx()
    assert nx.is_directed_acyclic_graph(graph)


def test_single_leaf_spn_valid():
    spn = SPN(_hist(0))
    assert spn.n_variables == 1
    assert len(spn) == 1


def test_deep_chain_does_not_recurse():
    # The iterative topological sort must handle graphs deeper than the
    # Python recursion limit.
    node = _hist(0)
    for _ in range(5000):
        node = SumNode([node], [1.0])
    spn = SPN(node)
    assert len(spn) == 5001
