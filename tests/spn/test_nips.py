"""Tests for the NIPS benchmark SPN builders."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.spn import NIPS_BENCHMARKS, compute_stats, log_likelihood, nips_benchmark, nips_spn
from repro.spn.nips import nips_dataset


def test_benchmark_names():
    assert NIPS_BENCHMARKS == ("NIPS10", "NIPS20", "NIPS30", "NIPS40", "NIPS80")


def test_unknown_benchmark_rejected():
    with pytest.raises(ReproError):
        nips_spn("NIPS55")


@pytest.mark.parametrize("name", NIPS_BENCHMARKS)
def test_scope_matches_word_count(name):
    bench = nips_benchmark(name)
    n = int(name[4:])
    assert bench.n_variables == n
    assert bench.spn.scope == tuple(range(n))


def test_transfer_geometry_matches_paper():
    # Paper §V-B: NIPS10 moves 144 bits per sample (10 B in, 8 B out).
    bench = nips_benchmark("NIPS10")
    assert bench.input_bytes_per_sample == 10
    assert bench.result_bytes_per_sample == 8
    assert bench.transfer_bits_per_sample == 144
    # §V-C: NIPS80 moves 88 bytes per sample.
    assert nips_benchmark("NIPS80").total_bytes_per_sample == 88


def test_structures_cached_and_deterministic():
    assert nips_spn("NIPS10") is nips_spn("NIPS10")


def test_structure_sizes_grow_with_word_count():
    sizes = [compute_stats(nips_spn(n)).n_nodes for n in NIPS_BENCHMARKS]
    assert sizes == sorted(sizes)
    assert sizes[0] < sizes[-1]


def test_benchmarks_are_valid_spns():
    for name in ("NIPS10", "NIPS20"):
        nips_spn(name).validate()


def test_inference_on_own_corpus_is_finite():
    bench = nips_benchmark("NIPS10")
    data = nips_dataset("NIPS10").astype(np.float64)
    ll = log_likelihood(bench.spn, data[:200])
    assert np.all(np.isfinite(ll))
    assert np.all(ll < 0)


def test_dataset_is_single_byte_counts():
    data = nips_dataset("NIPS20")
    assert data.dtype == np.uint8
    assert data.shape[1] == 20


def test_zipfian_marginals():
    """Frequent (low-index) words should have larger mean counts."""
    data = nips_dataset("NIPS40").astype(np.float64)
    means = data.mean(axis=0)
    first_decile = means[:4].mean()
    last_decile = means[-4:].mean()
    assert first_decile > 4 * last_decile


class TestDiskCache:
    """The on-disk SPN cache must round-trip equal structures and be
    fully disableable."""

    def test_round_trip_identical_likelihoods(self, tmp_path, monkeypatch):
        from repro.spn import nips as nips_module

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_SPN_CACHE", raising=False)
        monkeypatch.setattr(nips_module, "_spn_cache", {})
        learned = nips_spn("NIPS10")
        path = nips_module._disk_cache_path("NIPS10")
        assert path is not None and path.startswith(str(tmp_path))
        import os
        assert os.path.exists(path)
        # A fresh in-process cache must now load from disk...
        monkeypatch.setattr(nips_module, "_spn_cache", {})
        reloaded = nips_spn("NIPS10")
        assert reloaded is not learned
        # ...and evaluate identically.
        data = nips_dataset("NIPS10").astype(np.float64)[:64]
        np.testing.assert_array_equal(
            log_likelihood(learned, data), log_likelihood(reloaded, data)
        )

    def test_cache_disabled_by_env(self, tmp_path, monkeypatch):
        from repro.spn import nips as nips_module

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_SPN_CACHE", "0")
        assert nips_module._disk_cache_path("NIPS10") is None
        monkeypatch.setattr(nips_module, "_spn_cache", {})
        nips_spn("NIPS10").validate()
        assert not (tmp_path / "spn").exists()

    def test_corrupt_cache_file_ignored(self, tmp_path, monkeypatch):
        from repro.spn import nips as nips_module

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_SPN_CACHE", raising=False)
        path = nips_module._disk_cache_path("NIPS10")
        import os
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "wb") as handle:
            handle.write(b"not a pickle")
        monkeypatch.setattr(nips_module, "_spn_cache", {})
        nips_spn("NIPS10").validate()
