"""Unit tests for max-product inference and MPE completion."""

import numpy as np
import pytest

from repro.errors import SPNStructureError
from repro.spn import (
    SPN,
    GaussianLeaf,
    HistogramLeaf,
    ProductNode,
    SumNode,
    log_likelihood,
    max_log_likelihood,
    mpe,
    random_spn,
)


def _hist(var, masses):
    return HistogramLeaf(var, np.arange(len(masses) + 1, dtype=float), masses)


def _mixture():
    # Component 0 concentrates on (0, 1); component 1 on (1, 0).
    c0 = ProductNode([_hist(0, [0.9, 0.1]), _hist(1, [0.1, 0.9])])
    c1 = ProductNode([_hist(0, [0.1, 0.9]), _hist(1, [0.9, 0.1])])
    return SPN(SumNode([c0, c1], [0.5, 0.5]))


def test_fully_observed_max_ll_le_sum_ll():
    """Max-product root <= sum-product root (one term vs the sum)."""
    spn = random_spn(6, depth=3, n_bins=4, seed=4)
    rng = np.random.default_rng(4)
    data = rng.integers(0, 4, size=(50, 6)).astype(float)
    maxed = max_log_likelihood(spn, data)
    summed = log_likelihood(spn, data)
    assert np.all(maxed <= summed + 1e-9)


def test_mpe_completion_picks_consistent_mode():
    spn = _mixture()
    # Observing x0 = 0 routes through component 0 -> x1 should be 1.
    completed = mpe(spn, np.array([[0.0, 99.0]]), observed=[0])
    assert completed[0, 1] == pytest.approx(1.5)  # bin [1,2) midpoint
    # Observing x0 = 1 routes through component 1 -> x1 should be 0.
    completed = mpe(spn, np.array([[1.0, 99.0]]), observed=[0])
    assert completed[0, 1] == pytest.approx(0.5)


def test_mpe_keeps_observed_columns():
    spn = _mixture()
    data = np.array([[1.0, 0.0]])
    completed = mpe(spn, data, observed=[0])
    assert completed[0, 0] == 1.0


def test_mpe_completion_beats_other_assignments():
    """The MPE completion must score at least as high as any other
    discrete completion under the max-product semantics (MPE is exact
    for the max-product circuit, approximate for the true posterior)."""
    spn = random_spn(3, depth=3, n_bins=3, seed=9)
    evidence = np.array([[1.0, 0.0, 0.0]])
    completed = mpe(spn, evidence, observed=[0])
    best = max_log_likelihood(spn, completed)[0]
    for v1 in range(3):
        for v2 in range(3):
            candidate = np.array([[1.0, v1 + 0.5, v2 + 0.5]])
            assert max_log_likelihood(spn, candidate)[0] <= best + 1e-9


def test_gaussian_mode_is_mean():
    spn = SPN(ProductNode([GaussianLeaf(0, 2.5, 1.0), _hist(1, [1.0])]))
    completed = mpe(spn, np.zeros((1, 2)), observed=[1])
    assert completed[0, 0] == pytest.approx(2.5)


def test_batch_mpe_independent_rows():
    spn = _mixture()
    data = np.array([[0.0, 99.0], [1.0, 99.0]])
    completed = mpe(spn, data, observed=[0])
    assert completed[0, 1] != completed[1, 1]


def test_unknown_observed_variable_rejected():
    spn = _mixture()
    with pytest.raises(SPNStructureError):
        mpe(spn, np.zeros((1, 2)), observed=[5])
    with pytest.raises(SPNStructureError):
        max_log_likelihood(spn, np.zeros((1, 2)), observed=[5])


def test_all_observed_equals_plain_max_semantics():
    spn = _mixture()
    data = np.array([[0.0, 1.0]])
    default = max_log_likelihood(spn, data)
    explicit = max_log_likelihood(spn, data, observed=[0, 1])
    np.testing.assert_array_equal(default, explicit)
