"""Unit and property tests for SPN inference."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SPNStructureError
from repro.spn import (
    SPN,
    GaussianLeaf,
    HistogramLeaf,
    ProductNode,
    SumNode,
    likelihood,
    log_likelihood,
    marginal_log_likelihood,
    random_spn,
)
from repro.spn.inference import node_log_values


def _hist(var, masses):
    return HistogramLeaf(var, np.arange(len(masses) + 1, dtype=float), masses)


def _two_var_mixture():
    c0 = ProductNode([_hist(0, [0.8, 0.2]), _hist(1, [0.3, 0.7])])
    c1 = ProductNode([_hist(0, [0.1, 0.9]), _hist(1, [0.6, 0.4])])
    return SPN(SumNode([c0, c1], [0.5, 0.5]))


def test_hand_computed_likelihood():
    spn = _two_var_mixture()
    # P(x0=0, x1=1) = 0.5*0.8*0.7 + 0.5*0.1*0.4 = 0.28 + 0.02 = 0.30
    got = likelihood(spn, np.array([[0.0, 1.0]]))
    assert got[0] == pytest.approx(0.30)


def test_distribution_sums_to_one():
    spn = _two_var_mixture()
    grid = np.array([[a, b] for a in (0.0, 1.0) for b in (0.0, 1.0)])
    assert likelihood(spn, grid).sum() == pytest.approx(1.0)


def test_batch_matches_single_sample_loop():
    spn = _two_var_mixture()
    rng = np.random.default_rng(1)
    data = rng.integers(0, 2, size=(50, 2)).astype(float)
    batched = log_likelihood(spn, data)
    looped = np.array([log_likelihood(spn, row[np.newaxis, :])[0] for row in data])
    np.testing.assert_allclose(batched, looped)


def test_1d_input_treated_as_single_sample():
    spn = _two_var_mixture()
    single = log_likelihood(spn, np.array([0.0, 1.0]))
    assert single.shape == (1,)
    assert single[0] == pytest.approx(math.log(0.30))


def test_marginal_of_all_variables_is_one():
    spn = _two_var_mixture()
    data = np.zeros((3, 2))
    out = marginal_log_likelihood(spn, data, marginalized=[0, 1])
    assert out == pytest.approx([0.0, 0.0, 0.0])


def test_marginal_matches_explicit_summation():
    spn = _two_var_mixture()
    # P(x1=1) by marginalising x0 must equal sum over x0 values.
    marg = np.exp(marginal_log_likelihood(spn, np.array([[0.0, 1.0]]), [0]))[0]
    total = likelihood(spn, np.array([[0.0, 1.0], [1.0, 1.0]])).sum()
    assert marg == pytest.approx(total)


def test_marginal_unknown_variable_rejected():
    spn = _two_var_mixture()
    with pytest.raises(SPNStructureError):
        marginal_log_likelihood(spn, np.zeros((1, 2)), [7])


def test_too_few_columns_rejected():
    spn = _two_var_mixture()
    with pytest.raises(SPNStructureError):
        log_likelihood(spn, np.zeros((4, 1)))


def test_node_log_values_covers_every_node():
    spn = _two_var_mixture()
    values = node_log_values(spn, np.zeros((2, 2)))
    assert set(values) == {n.id for n in spn}
    for arr in values.values():
        assert arr.shape == (2,)


def test_gaussian_product_factorises():
    g0 = GaussianLeaf(0, 0.0, 1.0)
    g1 = GaussianLeaf(1, 2.0, 0.5)
    spn = SPN(ProductNode([g0, g1]))
    x = np.array([[0.3, 1.9]])
    expected = g0.log_density(x[:, 0]) + g1.log_density(x[:, 1])
    assert log_likelihood(spn, x) == pytest.approx(expected)


def test_sum_of_identical_children_is_identity():
    leaf_masses = [0.25, 0.75]
    children = [
        ProductNode([_hist(0, leaf_masses)]),
        ProductNode([_hist(0, leaf_masses)]),
    ]
    spn = SPN(SumNode(children, [0.3, 0.7]))
    got = likelihood(spn, np.array([[1.0]]))
    assert got[0] == pytest.approx(0.75)


def test_deeply_negative_logs_stay_finite():
    # Many tiny leaf probabilities multiplied: linear domain would
    # underflow; log domain must not.
    leaves = [_hist(v, [1e-12, 1.0 - 1e-12]) for v in range(64)]
    spn = SPN(ProductNode(leaves))
    ll = log_likelihood(spn, np.zeros((1, 64)))
    assert np.isfinite(ll[0])
    assert ll[0] == pytest.approx(64 * math.log(1e-12), rel=1e-6)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    n_vars=st.integers(1, 12),
    depth=st.integers(1, 4),
)
def test_random_spn_likelihood_properties(seed, n_vars, depth):
    """Any generated SPN yields finite, <=0 log-likelihoods in-support."""
    spn = random_spn(n_vars, depth=depth, n_bins=4, seed=seed)
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 4, size=(16, n_vars)).astype(float)
    ll = log_likelihood(spn, data)
    assert ll.shape == (16,)
    assert np.all(np.isfinite(ll))
    # Histogram leaves over unit bins are proper PMFs: joint <= 1.
    assert np.all(ll <= 1e-9)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_random_spn_total_mass_is_one(seed):
    """Summing the joint over the full discrete support gives 1."""
    n_vars, n_bins = 3, 3
    spn = random_spn(n_vars, depth=3, n_bins=n_bins, seed=seed)
    grid = np.stack(
        np.meshgrid(*[np.arange(n_bins)] * n_vars, indexing="ij"), axis=-1
    ).reshape(-1, n_vars).astype(float)
    total = likelihood(spn, grid).sum()
    assert total == pytest.approx(1.0, rel=1e-9)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), marg_var=st.integers(0, 2))
def test_marginalisation_consistency_property(seed, marg_var):
    """Marginal query equals explicit summation over the marged variable."""
    n_vars, n_bins = 3, 3
    spn = random_spn(n_vars, depth=3, n_bins=n_bins, seed=seed)
    rng = np.random.default_rng(seed + 1)
    row = rng.integers(0, n_bins, size=n_vars).astype(float)
    marg = np.exp(marginal_log_likelihood(spn, row[np.newaxis, :], [marg_var]))[0]
    rows = np.tile(row, (n_bins, 1))
    rows[:, marg_var] = np.arange(n_bins)
    explicit = likelihood(spn, rows).sum()
    assert marg == pytest.approx(explicit, rel=1e-9)
