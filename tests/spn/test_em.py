"""Unit and property tests for EM parameter learning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SPNStructureError
from repro.spn import (
    SPN,
    HistogramLeaf,
    ProductNode,
    SumNode,
    em_step,
    fit_em,
    log_likelihood,
    random_spn,
    sample,
)


def _hist(var, masses):
    return HistogramLeaf(var, np.arange(len(masses) + 1, dtype=float), masses)


def _train_data(seed=0, rows=600, n_vars=4, levels=4):
    rng = np.random.default_rng(seed)
    return rng.integers(0, levels, size=(rows, n_vars)).astype(float)


def test_em_step_returns_new_structure():
    spn = random_spn(4, depth=3, n_bins=4, seed=1)
    updated = em_step(spn, _train_data())
    assert updated is not spn
    assert len(updated) == len(spn)
    assert updated.scope == spn.scope


def test_em_improves_likelihood():
    spn = random_spn(4, depth=3, n_bins=4, seed=2)
    data = _train_data(seed=2)
    before = log_likelihood(spn, data).mean()
    after = log_likelihood(em_step(spn, data), data).mean()
    assert after > before


def test_fit_em_history_monotone():
    spn = random_spn(4, depth=3, n_bins=4, seed=3)
    data = _train_data(seed=3)
    _, history = fit_em(spn, data, iterations=6, smoothing=0.01)
    assert all(b >= a - 1e-9 for a, b in zip(history, history[1:]))


def test_em_recovers_mixture_weights():
    """Data generated from a known mixture: EM should move the weights
    toward the generating proportions."""
    a = _hist(0, [1.0, 1e-9])
    b = _hist(0, [1e-9, 1.0])
    truth = SPN(SumNode([a, b], [0.2, 0.8]))
    data = np.floor(sample(truth, 4000, seed=5))
    start = SPN(SumNode([_hist(0, [1.0, 1e-9]), _hist(0, [1e-9, 1.0])], [0.5, 0.5]))
    fitted, _ = fit_em(start, data, iterations=10, smoothing=0.01)
    weights = fitted.root.weights
    assert weights[1] == pytest.approx(0.8, abs=0.03)


def test_em_recovers_histogram_shape():
    truth = SPN(ProductNode([_hist(0, [0.7, 0.3]), _hist(1, [0.1, 0.9])]))
    data = np.floor(sample(truth, 6000, seed=6))
    start = SPN(ProductNode([_hist(0, [0.5, 0.5]), _hist(1, [0.5, 0.5])]))
    fitted, _ = fit_em(start, data, iterations=3, smoothing=0.01)
    leaf0 = [n for n in fitted.leaves if n.variable == 0][0]
    assert leaf0.densities[0] == pytest.approx(0.7, abs=0.03)


def test_em_result_remains_valid_spn():
    spn = random_spn(5, depth=3, n_bins=4, seed=7)
    fitted, _ = fit_em(spn, _train_data(seed=7, n_vars=5), iterations=2)
    fitted.validate()
    ll = log_likelihood(fitted, _train_data(seed=8, n_vars=5))
    assert np.all(np.isfinite(ll))


def test_invalid_inputs_rejected():
    spn = random_spn(3, depth=2, seed=0)
    with pytest.raises(SPNStructureError):
        em_step(spn, np.zeros((0, 3)))
    with pytest.raises(SPNStructureError):
        em_step(spn, _train_data(n_vars=3), smoothing=0.0)
    with pytest.raises(SPNStructureError):
        fit_em(spn, _train_data(n_vars=3), iterations=0)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_em_never_decreases_likelihood_property(seed):
    spn = random_spn(3, depth=2, n_bins=3, seed=seed)
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 3, size=(200, 3)).astype(float)
    before = log_likelihood(spn, data).mean()
    after = log_likelihood(em_step(spn, data, smoothing=0.01), data).mean()
    assert after >= before - 1e-6
