"""Unit tests for LearnSPN-style structure learning."""

import numpy as np
import pytest

from repro.errors import SPNStructureError
from repro.spn import LearnSPNConfig, learn_spn, log_likelihood
from repro.spn.learning import fit_histogram
from repro.spn.nodes import HistogramLeaf, ProductNode, SumNode


class TestFitHistogram:
    def test_integer_data_gets_unit_bins(self):
        values = np.array([0, 1, 1, 2, 2, 2], dtype=float)
        leaf = fit_histogram(values, 0, smoothing=0.0)
        assert leaf.n_bins == 3
        np.testing.assert_allclose(leaf.breaks, [0, 1, 2, 3])
        assert leaf.densities == pytest.approx([1 / 6, 2 / 6, 3 / 6])

    def test_smoothing_keeps_all_bins_positive(self):
        values = np.array([0, 0, 2, 2], dtype=float)
        leaf = fit_histogram(values, 0, smoothing=1.0)
        assert np.all(leaf.densities > 0)

    def test_wide_range_rebinned(self):
        values = np.linspace(0, 1000, 500)
        leaf = fit_histogram(values, 0, max_bins=16)
        assert leaf.n_bins == 16

    def test_max_value_falls_in_top_bin(self):
        values = np.array([0.0, 0.5, 1.0]) * 1000
        leaf = fit_histogram(values, 0, max_bins=4, smoothing=0.0)
        # The top edge is made inclusive, so 1000.0 is in-support.
        assert np.isfinite(leaf.log_density(np.array([1000.0]))[0])
        assert leaf.log_density(np.array([1000.0]))[0] > np.log(leaf.floor)

    def test_constant_column_supported(self):
        leaf = fit_histogram(np.full(10, 3.0), 0)
        assert np.isfinite(leaf.log_density(np.array([3.0]))[0])

    def test_empty_rejected(self):
        with pytest.raises(SPNStructureError):
            fit_histogram(np.array([]), 0)


def _independent_data(rng, rows=600):
    a = rng.integers(0, 4, size=rows)
    b = rng.integers(0, 4, size=rows)
    return np.stack([a, b], axis=1).astype(float)


def _dependent_data(rng, rows=600):
    a = rng.integers(0, 4, size=rows)
    b = (a + rng.integers(0, 2, size=rows)) % 4  # strongly coupled
    return np.stack([a, b], axis=1).astype(float)


def test_independent_variables_yield_product_root():
    rng = np.random.default_rng(7)
    spn = learn_spn(_independent_data(rng), seed=7)
    assert isinstance(spn.root, ProductNode)


def test_dependent_variables_yield_sum_root():
    rng = np.random.default_rng(7)
    spn = learn_spn(_dependent_data(rng), seed=7)
    assert isinstance(spn.root, SumNode)


def test_learned_spn_is_valid_and_full_scope():
    rng = np.random.default_rng(3)
    data = rng.integers(0, 5, size=(500, 6)).astype(float)
    spn = learn_spn(data, seed=3)
    assert spn.scope == tuple(range(6))
    spn.validate()  # must not raise


def test_single_variable_gives_leaf():
    rng = np.random.default_rng(0)
    data = rng.integers(0, 3, size=(200, 1)).astype(float)
    spn = learn_spn(data, seed=0)
    assert isinstance(spn.root, HistogramLeaf)


def test_min_rows_forces_factorisation():
    rng = np.random.default_rng(1)
    data = _dependent_data(rng, rows=20)
    config = LearnSPNConfig(min_rows=64)
    spn = learn_spn(data, config=config, seed=1)
    assert isinstance(spn.root, ProductNode)
    assert all(isinstance(c, HistogramLeaf) for c in spn.root.children)


def test_learning_is_deterministic_under_seed():
    from repro.spn import dumps

    rng = np.random.default_rng(5)
    data = rng.integers(0, 6, size=(400, 4)).astype(float)
    spn_a = learn_spn(data, seed=42)
    spn_b = learn_spn(data, seed=42)
    assert dumps(spn_a) == dumps(spn_b)


def test_learned_model_beats_uniform_on_train_data():
    """The learned density should out-score a uniform baseline."""
    rng = np.random.default_rng(11)
    # Peaked data: most mass on small counts.
    data = rng.poisson(1.0, size=(800, 3)).astype(float)
    data = np.minimum(data, 7)
    spn = learn_spn(data, seed=11)
    mean_ll = log_likelihood(spn, data).mean()
    uniform_ll = 3 * np.log(1.0 / 8.0)
    assert mean_ll > uniform_ll


def test_likelihoods_finite_even_off_distribution():
    rng = np.random.default_rng(13)
    data = rng.integers(0, 4, size=(300, 3)).astype(float)
    spn = learn_spn(data, seed=13)
    weird = np.full((5, 3), 200.0)
    ll = log_likelihood(spn, weird)
    assert np.all(np.isfinite(ll))


def test_invalid_inputs_rejected():
    with pytest.raises(SPNStructureError):
        learn_spn(np.zeros((0, 3)))
    with pytest.raises(SPNStructureError):
        learn_spn(np.zeros(10))
