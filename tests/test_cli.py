"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_accepts_all_artifacts():
    parser = build_parser()
    for name in ("fig2", "table1", "fig4", "fig5", "fig6", "speedups", "outlook", "ablations", "formats", "sensitivity", "roofline", "plans", "report", "trace", "bench", "cache", "serve", "all"):
        args = parser.parse_args([name])
        assert args.artifact == name


def test_parser_rejects_unknown_artifact():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["fig99"])


def test_fig5_command_prints_table(capsys):
    assert main(["fig5"]) == 0
    out = capsys.readouterr().out
    assert "Fig. 5" in out
    assert "max_p" in out


def test_outlook_command_prints_accounting(capsys):
    assert main(["outlook"]) == 0
    out = capsys.readouterr().out
    assert "NIPS80 input demand" in out


def test_fig2_command_respects_requests_flag(capsys):
    assert main(["fig2", "--requests", "4"]) == 0
    out = capsys.readouterr().out
    assert "Fig. 2" in out
    assert "GiB/s" in out


def test_plans_command_prints_speedups(capsys):
    assert main(["plans", "--samples", "50000"]) == 0
    out = capsys.readouterr().out
    assert "Compiled-plan inference" in out
    assert "speedup" in out


def test_table1_command(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "this work" in out and "prior work" in out


def test_report_command_prints_utilization(capsys):
    assert main(["report", "--samples", "100000"]) == 0
    out = capsys.readouterr().out
    assert "Utilization report - NIPS10" in out
    assert "plateau" in out
    assert "DMA/compute overlap" in out


def test_report_command_json(capsys):
    import json

    assert main(["report", "--samples", "50000", "--cores", "1", "--json"]) == 0
    decoded = json.loads(capsys.readouterr().out)
    assert decoded["channels"]
    assert decoded["channels"][0]["plateau_fraction"] > 0.9


def test_trace_command_writes_chrome_trace(tmp_path, capsys):
    import json

    out_path = tmp_path / "run.perfetto.json"
    assert main(["trace", "--out", str(out_path), "--samples", "50000"]) == 0
    stdout = capsys.readouterr().out
    assert "perfetto" in stdout
    trace = json.loads(out_path.read_text())
    assert trace["traceEvents"]
    pids = {event["pid"] for event in trace["traceEvents"]}
    assert pids == {1, 2}  # sim clock and host wall clock groups
    for event in trace["traceEvents"]:
        for field in ("name", "ph", "ts", "pid", "tid"):
            assert field in event


def test_trace_bench_cache_serve_are_excluded_from_all():
    from repro.cli import _COMMANDS, _NOT_IN_ALL

    assert {"trace", "bench", "cache", "serve"} <= set(_COMMANDS)
    assert _NOT_IN_ALL == frozenset({"trace", "bench", "cache", "serve"})


def test_serve_command_prints_result_table(capsys):
    assert main(["serve", "--rates", "250", "--duration", "0.25"]) == 0
    out = capsys.readouterr().out
    assert "Serving sweep - NIPS10" in out
    assert "poisson@250" in out
    assert "p99" in out and "goodput" in out


def test_cache_command_reports_and_prunes(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    assert main(["cache"]) == 0
    stdout = capsys.readouterr().out
    assert "native kernel cache" in stdout
    assert "0 artifact(s)" in stdout
    assert main(["cache", "--prune", "--max-bytes", "0"]) == 0
    stdout = capsys.readouterr().out
    assert "removed 0" in stdout
