"""Tests for the zero-copy shared-memory parallel inference executor.

Correctness is anchored two ways: bit-identical float64 agreement with
the single-process ``run_cpu_baseline`` (the executor must be a pure
transport, never a numerics change) and agreement with the independent
scalar oracle ``naive_log_likelihood`` for both precisions.  The rest
covers lifecycle, adaptive oversharding, the shared-buffer regrow
path, and the metrics contract the benchmark regression guard relies
on (``executor.pickled_array_bytes == 0``).
"""

import numpy as np
import pytest

from repro.baselines import (
    ParallelPlanExecutor,
    check_batch,
    naive_log_likelihood,
    run_cpu_baseline,
)
from repro.errors import ReproError
from repro.obs.metrics import MetricsRegistry
from repro.spn import random_spn


@pytest.fixture(scope="module")
def setup():
    spn = random_spn(8, depth=3, n_bins=8, seed=31)
    rng = np.random.default_rng(31)
    data = rng.integers(0, 8, size=(4000, 8)).astype(np.float64)
    return spn, data


@pytest.fixture(scope="module")
def executor(setup):
    spn, _ = setup
    with ParallelPlanExecutor(
        spn, n_workers=2, min_rows_per_shard=256
    ) as running:
        yield running


def test_float64_bit_identical_to_single_process(setup, executor):
    """float64 through the executor is bit-identical, not just close:
    shard and chunk splits must not change any row's arithmetic."""
    spn, data = setup
    reference = run_cpu_baseline(spn, data).results
    out = executor.submit(data)
    assert np.array_equal(out, reference)


def test_matches_naive_oracle_float64(setup, executor):
    spn, data = setup
    out = executor.submit(data[:64])
    np.testing.assert_allclose(
        out, naive_log_likelihood(spn, data[:64]), rtol=1e-10
    )


def test_matches_naive_oracle_float32(setup):
    spn, data = setup
    with ParallelPlanExecutor(
        spn, n_workers=2, dtype=np.float32, min_rows_per_shard=256
    ) as running:
        out = running.submit(data[:64])
    assert out.dtype == np.float64  # results are always float64
    np.testing.assert_allclose(
        out, naive_log_likelihood(spn, data[:64]), atol=1e-4
    )


def test_marginal_and_missing_queries(setup, executor):
    """Query semantics pass through the pipe-borne task tuples."""
    spn, data = setup
    reference = run_cpu_baseline(spn, data).results
    marg = executor.submit(data, marginalized=[1, 2])
    assert not np.array_equal(marg, reference)
    from repro.spn import marginal_log_likelihood

    np.testing.assert_allclose(
        marg, marginal_log_likelihood(spn, data, [1, 2]), rtol=1e-12
    )
    poked = data.copy()
    poked[::3, 4] = 255.0
    missing = executor.submit(poked, missing_value=255.0)
    from repro.spn.inference import reference_node_log_values

    expected = reference_node_log_values(
        spn, poked, missing_mask=poked == 255.0
    )[spn.root.id]
    np.testing.assert_allclose(missing, expected, rtol=1e-12)


def test_repeated_submits_and_buffer_regrow(setup, executor):
    """Growing batches force the shared segments to be replaced
    mid-life; results must stay exact throughout."""
    spn, _ = setup
    rng = np.random.default_rng(7)
    for rows in (100, 2500, 11_000):
        batch = rng.integers(0, 8, size=(rows, 8)).astype(np.float64)
        out = executor.submit(batch)
        assert np.array_equal(out, run_cpu_baseline(spn, batch).results)


def test_context_manager_lifecycle(setup):
    spn, data = setup
    with ParallelPlanExecutor(spn, n_workers=1) as running:
        assert not running.closed
        running.submit(data[:16])
    assert running.closed
    with pytest.raises(ReproError):
        running.submit(data[:16])
    running.close()  # idempotent


def test_closed_submit_error_names_close(setup):
    spn, data = setup
    running = ParallelPlanExecutor(spn, n_workers=1)
    running.close()
    with pytest.raises(ReproError, match="close"):
        running.submit(data[:16])


def test_finalizer_releases_segments_without_close(setup):
    """An executor dropped without close() (interrupt, GC) must not
    leak its /dev/shm segments: the weakref.finalize guard unlinks
    them when the object dies."""
    import gc

    from multiprocessing import shared_memory

    spn, data = setup
    running = ParallelPlanExecutor(spn, n_workers=2, min_rows_per_shard=64)
    running.submit(data[:1024])
    names = [
        running._shm_state[key].name
        for key in ("in", "out")
        if key in running._shm_state
    ]
    if running.n_workers == 1:  # sandbox without fork: no segments staged
        running.close()
        return
    assert names, "pooled submit should have staged shared segments"
    finalizer = running._finalizer
    del running
    gc.collect()
    assert not finalizer.alive
    for name in names:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


def test_close_is_idempotent_and_single_release(setup):
    """Double close() must not double-unlink (the finalizer runs at
    most once), and the second call is a clean no-op."""
    spn, data = setup
    running = ParallelPlanExecutor(spn, n_workers=2, min_rows_per_shard=64)
    running.submit(data[:1024])
    running.close()
    assert not running._finalizer.alive
    assert running._shm_state == {}
    running.close()
    assert running.closed


def test_failed_regrow_leaves_close_safe(setup, monkeypatch):
    """If replacing a too-small segment fails (ENOSPC on /dev/shm),
    the stale reference must already be dropped: close() afterwards
    must not try to unlink the released segment again."""
    spn, data = setup
    running = ParallelPlanExecutor(spn, n_workers=2, min_rows_per_shard=64)
    if running.n_workers == 1:
        running.close()
        pytest.skip("no pool in this sandbox; no shared segments to regrow")
    running.submit(data[:256])
    assert "in" in running._shm_state

    def boom(n_bytes):
        raise OSError("injected: /dev/shm full")

    monkeypatch.setattr(running, "_new_segment", boom)
    with pytest.raises(OSError, match="injected"):
        running.submit(data[:4000])  # forces an input-segment regrow
    assert "in" not in running._shm_state  # stale entry dropped
    monkeypatch.undo()
    out = running.submit(data[:4000])  # a fresh segment is staged
    assert np.array_equal(out, run_cpu_baseline(spn, data[:4000]).results)
    running.close()
    running.close()


def test_setup_cost_is_reported(setup):
    spn, _ = setup
    with ParallelPlanExecutor(spn, n_workers=2) as running:
        assert running.setup_seconds >= 0.0
        assert running.n_workers in (1, 2)  # 1 if the sandbox forbids fork
        assert running.dtype == np.dtype(np.float64)


def test_adaptive_oversharding_counts(setup):
    """Shards = min(workers * overshard, rows // min_rows_per_shard),
    observed through the metrics registry."""
    spn, data = setup
    metrics = MetricsRegistry()
    with ParallelPlanExecutor(
        spn,
        n_workers=2,
        overshard=4,
        min_rows_per_shard=250,
        metrics=metrics,
    ) as running:
        # Capped by workers * overshard (n_workers may have fallen
        # back to 1 in sandboxes that forbid process spawning).
        cap = running.n_workers * 4
        running.submit(data)  # 4000 rows -> 16 by floor, capped
        total = min(cap, 16)
        assert metrics.value("executor.shards") == total
        running.submit(data[:1000])  # floor: 1000 // 250 = 4 shards
        total += min(cap, 4)
        assert metrics.value("executor.shards") == total
        running.submit(data[:100])  # below the floor: one shard
        total += 1
        assert metrics.value("executor.shards") == total
        running.submit(data, n_shards=3)  # explicit override
        assert metrics.value("executor.shards") == total + 3


def test_metrics_traffic_accounting(setup):
    spn, data = setup
    metrics = MetricsRegistry()
    with ParallelPlanExecutor(
        spn, n_workers=2, min_rows_per_shard=256, metrics=metrics
    ) as running:
        running.submit(data)
        parallel = running.n_workers > 1
    assert metrics.value("executor.submits") == 1
    assert metrics.value("executor.rows") == data.shape[0]
    # The regression guard: no array payload is ever pickled.
    assert metrics.value("executor.pickled_array_bytes") == 0
    assert metrics.value("executor.compute_seconds") > 0
    if parallel:
        assert metrics.value("executor.bytes_in") == data.nbytes
        assert metrics.value("executor.bytes_out") == data.shape[0] * 8
        assert metrics.has("executor.worker0.busy_seconds")
        assert metrics.value("executor.worker0.busy_seconds") > 0


def test_serial_fallback_is_exact(setup):
    spn, data = setup
    with ParallelPlanExecutor(spn, n_workers=1) as running:
        assert running.n_workers == 1
        out = running.submit(data)
    assert np.array_equal(out, run_cpu_baseline(spn, data).results)


def test_invalid_construction_rejected(setup):
    spn, data = setup
    with pytest.raises(ReproError):
        ParallelPlanExecutor(spn, n_workers=0)
    with pytest.raises(ReproError):
        ParallelPlanExecutor(spn, min_rows_per_shard=0)
    with pytest.raises(ReproError):
        ParallelPlanExecutor(spn, overshard=0)
    with pytest.raises(ReproError):
        ParallelPlanExecutor(spn, dtype=np.int32)
    with ParallelPlanExecutor(spn, n_workers=1) as running:
        with pytest.raises(ReproError):
            running.submit(data, n_shards=0)


# -- dispatch: in-process kernel threads vs the process pool -----------------


@pytest.fixture(scope="module")
def native_setup(tmp_path_factory, setup):
    """*setup* plus an isolated kernel cache, skipped without a cc."""
    from repro.compiler.native_build import (
        clear_native_kernels,
        compiler_command,
    )

    if compiler_command() is None:
        pytest.skip("no C compiler on this host")
    import os

    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(
        tmp_path_factory.mktemp("native-cache")
    )
    clear_native_kernels()
    yield setup
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous
    clear_native_kernels()


def test_threads_dispatch_matches_pool_bit_for_bit(native_setup):
    """The in-process thread driver and the forked pool answer the
    same queries identically — dispatch is transport, not numerics."""
    spn, data = native_setup
    with ParallelPlanExecutor(
        spn, n_workers=2, backend="native", dispatch="pool",
        min_rows_per_shard=256,
    ) as pooled:
        via_pool = pooled.submit(data)
        marg_pool = pooled.submit(data, marginalized=[1, 2])
    with ParallelPlanExecutor(
        spn, n_workers=2, backend="native", dispatch="threads",
        min_rows_per_shard=256,
    ) as threaded:
        assert threaded.dispatch == "threads"
        via_threads = threaded.submit(data)
        marg_threads = threaded.submit(data, marginalized=[1, 2])
        sharded = threaded.submit(data, n_shards=3)
    assert np.array_equal(via_pool, via_threads)
    assert np.array_equal(marg_pool, marg_threads)
    assert np.array_equal(via_pool, sharded)
    np.testing.assert_allclose(
        via_threads,
        run_cpu_baseline(spn, data).results,
        rtol=1e-12,
        atol=1e-12,
    )


def test_auto_dispatch_with_kernel_skips_pool(native_setup):
    """``auto`` with a thread-capable kernel never forks workers and
    reports the thread counts it actually used."""
    spn, data = native_setup
    metrics = MetricsRegistry()
    with ParallelPlanExecutor(
        spn,
        n_workers=2,
        backend="native",
        min_rows_per_shard=256,
        metrics=metrics,
    ) as running:
        assert running.dispatch == "auto"
        if not running._kernel.supports_threads:
            pytest.skip("kernel built in serial mode")
        assert running._pool is None  # no fork ever happened
        out = running.submit(data)
    assert metrics.value("executor.kernel_threads") >= 1
    assert metrics.value("executor.submits") == 1
    assert metrics.value("executor.pickled_array_bytes") == 0
    np.testing.assert_allclose(
        out, run_cpu_baseline(spn, data).results, rtol=1e-12, atol=1e-12
    )


def test_pool_dispatch_pins_worker_kernels(native_setup, monkeypatch):
    """``REPRO_NATIVE_THREADS`` must not nest: forked pool workers pin
    their kernel calls to one thread, and results stay exact."""
    spn, data = native_setup
    monkeypatch.setenv("REPRO_NATIVE_THREADS", "3")
    with ParallelPlanExecutor(
        spn, n_workers=2, backend="native", dispatch="pool",
        min_rows_per_shard=256,
    ) as running:
        out = running.submit(data)
    np.testing.assert_allclose(
        out, run_cpu_baseline(spn, data).results, rtol=1e-12, atol=1e-12
    )


def test_threads_dispatch_requires_native_kernel(setup):
    """``dispatch="threads"`` without a native kernel is a loud error
    (the plan backend has no in-process thread driver)."""
    spn, _ = setup
    with pytest.raises(ReproError, match="native"):
        ParallelPlanExecutor(spn, n_workers=1, dispatch="threads")


def test_invalid_dispatch_rejected(setup):
    spn, _ = setup
    with pytest.raises(ReproError, match="dispatch"):
        ParallelPlanExecutor(spn, n_workers=1, dispatch="turbo")


# -- check_batch -------------------------------------------------------------


def test_check_batch_float64_passthrough():
    data = np.zeros((5, 3), dtype=np.float64)
    assert check_batch(data) is data


def test_check_batch_float32_no_copy():
    """A C-contiguous float32 batch must not be upcast to a copy."""
    data = np.zeros((5, 3), dtype=np.float32)
    assert check_batch(data, dtype=np.float32) is data


def test_check_batch_converts_when_needed():
    ints = np.zeros((5, 3), dtype=np.uint8)
    out = check_batch(ints)
    assert out.dtype == np.float64 and out.shape == (5, 3)
    fortran = np.asfortranarray(np.zeros((5, 3)))
    assert check_batch(fortran).flags.c_contiguous


def test_check_batch_rejects_bad_input():
    with pytest.raises(ReproError):
        check_batch(np.array([["a", "b"], ["c", "d"]]))
    with pytest.raises(ReproError):
        check_batch(np.zeros((0, 3)))
    with pytest.raises(ReproError):
        check_batch(np.zeros(7))
    with pytest.raises(ReproError):
        check_batch(np.zeros((5, 3)), dtype=np.int64)


# -- reentrant staging lanes (the serving zero-copy datapath) -----------------


def test_lane_submit_bit_identical_serial_and_pooled(setup):
    """Lane evaluation is pure transport: writing rows into the arena
    and submitting matches plan evaluation bit for bit, with zero
    staged copies, on both the serial and the pooled executor."""
    spn, data = setup
    batch = data[:300]
    for n_workers in (1, 2):
        metrics = MetricsRegistry()
        with ParallelPlanExecutor(
            spn, n_workers=n_workers, min_rows_per_shard=64, metrics=metrics
        ) as executor:
            reference = executor.submit(batch)
            lane = executor.acquire_lane(512)
            assert lane.capacity_rows >= 300
            lane.arena[: batch.shape[0]] = batch
            out = lane.submit(batch.shape[0])
            lane.release()
        assert np.array_equal(out, reference)
        assert metrics.counter("executor.staged_bytes_copied").value == (
            batch.nbytes if n_workers > 1 else 0
        ), "only the legacy copyto submit may stage bytes"
        assert metrics.counter("executor.pickled_array_bytes").value == 0


def test_lane_queries_marginal_and_missing(setup, executor):
    spn, data = setup
    batch = data[:50].copy()
    batch[batch == 3] = -1.0
    lane = executor.acquire_lane(64)
    lane.arena[:50] = batch
    out_marg = lane.submit(50, marginalized=(1, 5))
    reference = executor.submit(batch, marginalized=(1, 5))
    assert np.array_equal(out_marg, reference)
    lane.arena[:50] = batch
    out_miss = lane.submit(50, missing_value=-1.0)
    assert np.array_equal(out_miss, executor.submit(batch, missing_value=-1.0))
    lane.release()


def test_lanes_are_pooled_and_regrow(setup, executor):
    lane = executor.acquire_lane(16)
    first_id = lane.lane_id
    lane.release()
    regrown = executor.acquire_lane(1024)
    assert regrown.lane_id == first_id  # reused, not newly allocated
    assert regrown.capacity_rows >= 1024
    regrown.release()


def test_lane_exhaustion_and_misuse_raise(setup):
    spn, _ = setup
    with ParallelPlanExecutor(spn, n_workers=1, max_lanes=2) as executor:
        lanes = [executor.acquire_lane(8), executor.acquire_lane(8)]
        with pytest.raises(ReproError, match="lanes"):
            executor.acquire_lane(8)
        lane = lanes[0]
        lane.release()
        lane.release()  # idempotent
        with pytest.raises(ReproError, match="release"):
            lane.submit(1)
        with pytest.raises(ReproError, match="arena"):
            _ = lane.arena
        again = executor.acquire_lane(8)
        again.arena[0] = np.zeros(8)
        with pytest.raises(ReproError, match="rows"):
            again.submit(9)
        with pytest.raises(ReproError, match="capacity_rows"):
            executor.acquire_lane(0)
    with pytest.raises(ReproError, match="close"):
        executor.acquire_lane(8)


def test_lane_release_after_close_is_safe(setup):
    spn, data = setup
    executor = ParallelPlanExecutor(spn, n_workers=2)
    lane = executor.acquire_lane(32)
    lane.arena[:4] = data[:4]
    executor.close()
    lane.release()  # no-op, no resurrection of freed segments
    with pytest.raises(ReproError, match="close"):
        lane.submit(4)


def test_concurrent_lane_submits_are_consistent(setup):
    """Reentrancy: two threads hammering two lanes of one executor
    never cross results — each lane's answers match its own rows."""
    import threading

    spn, data = setup
    errors = []
    with ParallelPlanExecutor(spn, n_workers=2, min_rows_per_shard=64) as ex:
        reference_a = ex.submit(data[:256])
        reference_b = ex.submit(data[256:512])

        def worker(rows, reference):
            try:
                lane = ex.acquire_lane(256)
                for _ in range(5):
                    lane.arena[:256] = rows
                    out = lane.submit(256)
                    if not np.array_equal(out, reference):
                        errors.append("lane result mismatch")
                lane.release()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(repr(exc))

        threads = [
            threading.Thread(target=worker, args=(data[:256], reference_a)),
            threading.Thread(target=worker, args=(data[256:512], reference_b)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    assert errors == []


# -- completion-order shard accounting (span attribution) ---------------------


class _Recorder:
    def __init__(self):
        self.spans = []

    def record(self, track, label, begin, end):
        self.spans.append((track, label, begin, end))


def test_span_attribution_follows_completion_order(setup):
    """Regression for the pool.map head-of-line block: a slow shard 0
    must not delay the attribution of shards that finished first —
    _account_shards folds stamps in the order they complete."""
    spn, _ = setup
    recorder = _Recorder()
    metrics = MetricsRegistry()
    with ParallelPlanExecutor(
        spn, n_workers=1, metrics=metrics, host_tracer=recorder
    ) as executor:
        # Completion order: shard2 (fast), shard1, then the slow shard0.
        completed = iter(
            [
                ("shard2", (111, 10.0, 10.5)),
                ("shard1", (222, 10.0, 11.0)),
                ("shard0", (111, 10.0, 14.0)),
            ]
        )
        busy = executor._account_shards(completed)
    assert [label for (_, label, _, _) in recorder.spans] == [
        "shard2", "shard1", "shard0"
    ]
    assert busy == {111: pytest.approx(4.5), 222: pytest.approx(1.0)}
    # Worker slots assigned in first-seen (completion) order.
    assert [track for (track, _, _, _) in recorder.spans] == [
        "executor worker0", "executor worker1", "executor worker0"
    ]


def test_pooled_submit_records_one_span_per_shard(setup):
    spn, data = setup
    recorder = _Recorder()
    with ParallelPlanExecutor(
        spn, n_workers=2, min_rows_per_shard=64, host_tracer=recorder
    ) as executor:
        if executor.n_workers == 1:
            pytest.skip("process pool unavailable in this sandbox")
        executor.submit(data[:512], n_shards=4)
    labels = sorted(label for (_, label, _, _) in recorder.spans)
    assert labels == ["shard0", "shard1", "shard2", "shard3"]
