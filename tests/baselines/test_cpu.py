"""Tests for the executable CPU baselines."""

import numpy as np
import pytest

from repro.baselines import (
    CpuBaselineResult,
    naive_log_likelihood,
    run_cpu_baseline,
    run_pickled_sharded_cpu_baseline,
    run_sharded_cpu_baseline,
    run_threaded_cpu_baseline,
)
from repro.errors import ReproError
from repro.obs.metrics import MetricsRegistry
from repro.spn import log_likelihood, random_spn


@pytest.fixture(scope="module")
def setup():
    spn = random_spn(8, depth=3, n_bins=8, seed=31)
    rng = np.random.default_rng(31)
    data = rng.integers(0, 8, size=(400, 8)).astype(np.float64)
    return spn, data


def test_vectorised_matches_naive_oracle(setup):
    """The naive scalar evaluator is an independent implementation;
    agreement validates the vectorised inference path end to end."""
    spn, data = setup
    fast = log_likelihood(spn, data[:50])
    slow = naive_log_likelihood(spn, data[:50])
    np.testing.assert_allclose(fast, slow, rtol=1e-10)


def test_single_threaded_baseline_correct(setup):
    spn, data = setup
    result = run_cpu_baseline(spn, data, batch_size=64)
    np.testing.assert_allclose(result.results, log_likelihood(spn, data))
    assert result.n_samples == 400
    assert result.samples_per_second > 0


def test_threaded_baseline_correct(setup):
    spn, data = setup
    result = run_threaded_cpu_baseline(spn, data, n_threads=4, batch_size=32)
    np.testing.assert_allclose(result.results, log_likelihood(spn, data))
    assert result.n_threads == 4


def test_batching_boundary_handling(setup):
    spn, data = setup
    # Batch size not dividing the row count exercises the tail batch.
    result = run_cpu_baseline(spn, data[:101], batch_size=20)
    np.testing.assert_allclose(result.results, log_likelihood(spn, data[:101]))


def test_backend_selection(setup):
    spn, data = setup
    via_plan = run_cpu_baseline(spn, data, backend="plan")
    via_walk = run_cpu_baseline(spn, data, backend="reference")
    np.testing.assert_allclose(via_plan.results, via_walk.results, rtol=1e-12)


def test_sharded_baseline_correct(setup):
    spn, data = setup
    result = run_sharded_cpu_baseline(spn, data, n_workers=2)
    np.testing.assert_allclose(result.results, log_likelihood(spn, data))
    assert result.n_threads == 2
    assert result.n_samples == 400


def test_sharded_baseline_uneven_shards(setup):
    spn, data = setup
    # More shards than workers, not dividing the row count evenly.
    result = run_sharded_cpu_baseline(spn, data[:101], n_workers=2, n_shards=7)
    np.testing.assert_allclose(result.results, log_likelihood(spn, data[:101]))


def test_sharded_baseline_reports_setup_separately(setup):
    """Pool spawn + plan compilation must be billed to setup_seconds,
    not to the timed inference region."""
    spn, data = setup
    result = run_sharded_cpu_baseline(spn, data, n_workers=2)
    assert result.setup_seconds >= 0.0
    assert result.elapsed_seconds >= 0.0
    # The non-pooled runners have no setup cost by definition.
    assert run_cpu_baseline(spn, data).setup_seconds == 0.0


def test_sharded_baseline_float32(setup):
    spn, data = setup
    reference = log_likelihood(spn, data)
    result = run_sharded_cpu_baseline(spn, data, n_workers=2, dtype=np.float32)
    np.testing.assert_allclose(result.results, reference, atol=1e-4)


def test_pickled_sharded_baseline_matches(setup):
    """The historical A/B reference runner stays correct and accounts
    its pickled array payload when a registry is attached."""
    spn, data = setup
    metrics = MetricsRegistry()
    result = run_pickled_sharded_cpu_baseline(
        spn, data, n_workers=2, metrics=metrics
    )
    np.testing.assert_allclose(result.results, log_likelihood(spn, data))
    # Every input shard and result vector crossed a pipe as a pickle.
    assert metrics.value("sharded.pickled_array_bytes") >= (
        data.nbytes + data.shape[0] * 8
    )


def test_samples_per_second_finite_on_subresolution_timer():
    """A run faster than the clock resolution must report a huge but
    finite rate, never inf."""
    result = CpuBaselineResult(
        results=np.zeros(10), n_samples=10, elapsed_seconds=0.0, n_threads=1
    )
    assert np.isfinite(result.samples_per_second)
    assert result.samples_per_second > 0


def test_non_numeric_input_rejected(setup):
    spn, _ = setup
    with pytest.raises(ReproError, match="numeric"):
        run_cpu_baseline(spn, np.array([["a"] * 8, ["b"] * 8]))


def test_invalid_inputs_rejected(setup):
    spn, data = setup
    with pytest.raises(ReproError):
        run_cpu_baseline(spn, data, batch_size=0)
    with pytest.raises(ReproError):
        run_threaded_cpu_baseline(spn, data, n_threads=0)
    with pytest.raises(ReproError):
        run_cpu_baseline(spn, np.zeros((0, 8)))
    with pytest.raises(ReproError):
        run_cpu_baseline(spn, data, backend="simd")
    with pytest.raises(ReproError):
        run_sharded_cpu_baseline(spn, data, n_workers=0)
    with pytest.raises(ReproError):
        run_sharded_cpu_baseline(spn, data, n_workers=1, n_shards=0)
