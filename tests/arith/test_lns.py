"""Unit and property tests for the Logarithmic Number System."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arith import LogNumberSystem
from repro.errors import ArithmeticConfigError


class TestConfig:
    def test_bit_width_includes_zero_flag(self):
        assert LogNumberSystem(10, 21).bits == 32

    @pytest.mark.parametrize("i,f", [(1, 10), (17, 10), (8, 0), (8, 41)])
    def test_invalid_configs_rejected(self, i, f):
        with pytest.raises(ArithmeticConfigError):
            LogNumberSystem(i, f)

    def test_range(self):
        fmt = LogNumberSystem(8, 10)
        assert fmt.smallest_positive == pytest.approx(2.0**-128)
        assert fmt.largest == pytest.approx(2.0 ** (128 - 2.0**-10))


class TestQuantise:
    def test_powers_of_two_exact(self):
        fmt = LogNumberSystem(8, 12)
        values = np.array([1.0, 0.5, 0.25, 2.0, 2.0**-100])
        np.testing.assert_array_equal(fmt.quantize(values), values)

    def test_zero_stays_zero(self):
        fmt = LogNumberSystem(8, 12)
        assert fmt.quantize(np.array([0.0]))[0] == 0.0

    def test_negative_rejected(self):
        fmt = LogNumberSystem(8, 12)
        with pytest.raises(ArithmeticConfigError):
            fmt.quantize(np.array([-1.0]))

    def test_idempotent(self):
        fmt = LogNumberSystem(8, 14)
        rng = np.random.default_rng(1)
        values = rng.uniform(1e-9, 1e9, size=400)
        once = fmt.quantize(values)
        np.testing.assert_array_equal(fmt.quantize(once), once)

    def test_relative_error_bound(self):
        """LNS quantisation has uniform *relative* precision: the log is
        rounded to f fractional bits, so rel err <= 2^(2^-(f+1)) - 1."""
        fmt = LogNumberSystem(10, 16)
        rng = np.random.default_rng(2)
        values = rng.uniform(1e-30, 1e30, size=2000)
        out = fmt.quantize(values)
        bound = 2.0 ** (2.0**-17) - 1.0
        rel = np.abs(out - values) / values
        assert np.max(rel) <= bound * (1 + 1e-9)

    def test_scalar_shape(self):
        fmt = LogNumberSystem(8, 12)
        assert np.ndim(fmt.quantize(0.3)) == 0


class TestMul:
    def test_exact_on_powers_of_two(self):
        fmt = LogNumberSystem(8, 12)
        out = fmt.mul(np.array([0.5]), np.array([0.25]))
        assert out[0] == 0.125

    def test_zero_annihilates(self):
        fmt = LogNumberSystem(8, 12)
        assert fmt.mul(np.array([0.0]), np.array([0.7]))[0] == 0.0
        assert fmt.mul(np.array([0.7]), np.array([0.0]))[0] == 0.0

    def test_mul_is_exact_on_grid(self):
        """Multiplying two grid values adds their fixed-point logs —
        no rounding error at all (the LNS selling point)."""
        fmt = LogNumberSystem(10, 12)
        rng = np.random.default_rng(3)
        a = fmt.quantize(rng.uniform(1e-6, 1e6, size=300))
        b = fmt.quantize(rng.uniform(1e-6, 1e6, size=300))
        out = fmt.mul(a, b)
        expected = np.exp2(np.log2(a) + np.log2(b))
        np.testing.assert_allclose(out, expected, rtol=1e-12)

    def test_underflow_saturates_to_min(self):
        fmt = LogNumberSystem(4, 4)  # tiny range: logs in [-8, 8)
        out = fmt.mul(np.array([2.0**-7]), np.array([2.0**-7]))
        assert out[0] == pytest.approx(fmt.smallest_positive)


class TestAdd:
    def test_identity_with_zero(self):
        fmt = LogNumberSystem(8, 12)
        assert fmt.add(np.array([0.0]), np.array([0.3125]))[0] == 0.3125
        assert fmt.add(np.array([0.3125]), np.array([0.0]))[0] == 0.3125
        assert fmt.add(np.array([0.0]), np.array([0.0]))[0] == 0.0

    def test_equal_operands_double(self):
        fmt = LogNumberSystem(8, 16)
        out = fmt.add(np.array([0.25]), np.array([0.25]))
        assert out[0] == pytest.approx(0.5, rel=1e-4)

    def test_commutative(self):
        fmt = LogNumberSystem(8, 14)
        rng = np.random.default_rng(4)
        a = fmt.quantize(rng.uniform(1e-6, 1.0, size=200))
        b = fmt.quantize(rng.uniform(1e-6, 1.0, size=200))
        np.testing.assert_array_equal(fmt.add(a, b), fmt.add(b, a))

    def test_accuracy_against_exact_sum(self):
        fmt = LogNumberSystem(10, 21, table_address_bits=10)
        rng = np.random.default_rng(5)
        a = fmt.quantize(rng.uniform(1e-8, 1.0, size=500))
        b = fmt.quantize(rng.uniform(1e-8, 1.0, size=500))
        out = fmt.add(a, b)
        rel = np.abs(out - (a + b)) / (a + b)
        # Interpolated phi keeps relative error within a few grid ULPs
        # (ULP at f=21 is 2^-21 in the log, ~3.3e-7 relative; the
        # linear interpolation over 1024 segments adds a few more).
        assert np.max(rel) < 2e-5

    def test_widely_spread_operands_return_larger(self):
        fmt = LogNumberSystem(10, 16)
        big = np.array([1.0])
        tiny = np.array([2.0**-200])
        # The difference exceeds the phi table range: result == big.
        assert fmt.add(big, tiny)[0] == 1.0

    @settings(max_examples=30, deadline=None)
    @given(
        la=st.floats(min_value=-60, max_value=0),
        lb=st.floats(min_value=-60, max_value=0),
    )
    def test_add_bounded_between_max_and_sum(self, la, lb):
        """a+b in LNS lies in [max(a,b), quantize(a+b)*(1+eps)]."""
        fmt = LogNumberSystem(10, 18)
        a = float(fmt.quantize(2.0**la))
        b = float(fmt.quantize(2.0**lb))
        out = float(fmt.add(np.array([a]), np.array([b]))[0])
        assert out >= max(a, b) * (1 - 1e-9)
        assert out <= (a + b) * (1 + 1e-4)


class TestPhi:
    def test_phi_at_zero_is_one(self):
        fmt = LogNumberSystem(8, 16)
        assert fmt.phi(np.array([0.0]))[0] == pytest.approx(1.0, abs=2e-5)

    def test_phi_monotone_decreasing(self):
        fmt = LogNumberSystem(8, 16)
        d = np.linspace(0, 20, 500)
        out = fmt.phi(d)
        assert np.all(np.diff(out) <= 1e-12)

    def test_phi_clamps_to_zero_beyond_table(self):
        fmt = LogNumberSystem(8, 10)
        assert fmt.phi(np.array([1000.0]))[0] == 0.0
