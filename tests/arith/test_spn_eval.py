"""Tests for format-semantics SPN evaluation and error analysis."""

import numpy as np
import pytest

from repro.arith import (
    FLOAT32,
    FLOAT64,
    PAPER_CFP,
    PAPER_LNS,
    CustomFloat,
    compare_formats_on_spn,
    evaluate_spn_in_format,
    max_relative_error,
    relative_errors,
)
from repro.errors import ReproError
from repro.spn import log_likelihood, random_spn


@pytest.fixture(scope="module")
def spn_and_data():
    spn = random_spn(8, depth=3, n_bins=8, seed=99)
    rng = np.random.default_rng(99)
    data = rng.integers(0, 8, size=(200, 8)).astype(float)
    return spn, data


def test_float64_format_matches_reference(spn_and_data):
    spn, data = spn_and_data
    reference = log_likelihood(spn, data)
    got = evaluate_spn_in_format(spn, data, FLOAT64)
    # Same arithmetic, different association order: near-exact.
    np.testing.assert_allclose(got, reference, rtol=1e-12)


def test_paper_cfp_accurate_on_random_spn(spn_and_data):
    spn, data = spn_and_data
    reference = log_likelihood(spn, data)
    got = evaluate_spn_in_format(spn, data, PAPER_CFP)
    assert max_relative_error(reference, got) < 1e-5


def test_paper_lns_accurate_on_random_spn(spn_and_data):
    spn, data = spn_and_data
    reference = log_likelihood(spn, data)
    got = evaluate_spn_in_format(spn, data, PAPER_LNS)
    assert max_relative_error(reference, got) < 1e-4


def test_narrow_format_underflows_deep_products():
    """A format with too little exponent range must underflow — the
    failure mode [4]'s format exploration guards against."""
    spn = random_spn(40, depth=2, n_bins=16, seed=5)
    rng = np.random.default_rng(5)
    data = rng.integers(0, 16, size=(50, 40)).astype(float)
    narrow = CustomFloat(exponent_bits=5, mantissa_bits=10)
    linear = evaluate_spn_in_format(spn, data, narrow, return_linear=True)
    assert np.any(linear == 0.0)


def test_compare_formats_report_fields(spn_and_data):
    spn, data = spn_and_data
    reports = compare_formats_on_spn(spn, data, [PAPER_CFP, FLOAT32])
    assert [r.format_name for r in reports] == [PAPER_CFP.name, "float32"]
    for report in reports:
        assert report.n_samples == len(data)
        assert report.max_log_error >= report.mean_log_error >= 0
        assert 0.0 <= report.underflow_fraction <= 1.0


def test_acceptable_threshold(spn_and_data):
    spn, data = spn_and_data
    report = compare_formats_on_spn(spn, data, [PAPER_CFP])[0]
    assert report.acceptable()


def test_underflowing_format_not_acceptable():
    spn = random_spn(40, depth=2, n_bins=16, seed=5)
    rng = np.random.default_rng(5)
    data = rng.integers(0, 16, size=(50, 40)).astype(float)
    report = compare_formats_on_spn(spn, data, [CustomFloat(5, 10)])[0]
    assert not report.acceptable()
    assert report.underflow_fraction > 0


def test_relative_errors_zero_reference_uses_absolute():
    out = relative_errors(np.array([0.0, 2.0]), np.array([0.5, 3.0]))
    assert out[0] == pytest.approx(0.5)
    assert out[1] == pytest.approx(0.5)


def test_relative_errors_shape_mismatch_rejected():
    with pytest.raises(ReproError):
        relative_errors(np.zeros(3), np.zeros(4))


def test_evaluate_1d_input(spn_and_data):
    spn, data = spn_and_data
    out = evaluate_spn_in_format(spn, data[0], PAPER_CFP)
    assert out.shape == (1,)
