"""Cross-format property tests: invariants every format must satisfy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arith import FLOAT32, PAPER_CFP, PAPER_LNS, CustomFloat, Posit

#: Formats under test, with a positive-only flag (LNS cannot represent
#: negatives).
FORMATS = [
    (PAPER_CFP, False),
    (CustomFloat(6, 9), False),
    (FLOAT32, False),
    (Posit(12, 1), False),
    (PAPER_LNS, True),
]

_ids = [fmt.name for fmt, _ in FORMATS]


@pytest.mark.parametrize("fmt,positive_only", FORMATS, ids=_ids)
def test_quantisation_idempotent(fmt, positive_only):
    rng = np.random.default_rng(1)
    values = rng.uniform(1e-6 if positive_only else -1e3, 1e3, size=500)
    once = fmt.quantize(values)
    np.testing.assert_array_equal(fmt.quantize(once), once)


@pytest.mark.parametrize("fmt,positive_only", FORMATS, ids=_ids)
def test_quantisation_monotone(fmt, positive_only):
    """x <= y implies q(x) <= q(y): rounding must preserve order, or
    comparisons computed in hardware would disagree with software."""
    rng = np.random.default_rng(2)
    values = np.sort(rng.uniform(1e-6 if positive_only else -1e3, 1e3, size=1000))
    quantised = fmt.quantize(values)
    assert np.all(np.diff(quantised) >= 0)


@pytest.mark.parametrize("fmt,positive_only", FORMATS, ids=_ids)
def test_zero_maps_to_zero(fmt, positive_only):
    assert fmt.quantize(np.array([0.0]))[0] == 0.0


@pytest.mark.parametrize("fmt,positive_only", FORMATS, ids=_ids)
def test_operators_commute(fmt, positive_only):
    rng = np.random.default_rng(3)
    a = fmt.quantize(rng.uniform(1e-4, 10.0, size=200))
    b = fmt.quantize(rng.uniform(1e-4, 10.0, size=200))
    np.testing.assert_array_equal(fmt.add(a, b), fmt.add(b, a))
    np.testing.assert_array_equal(fmt.mul(a, b), fmt.mul(b, a))


@pytest.mark.parametrize("fmt,positive_only", FORMATS, ids=_ids)
def test_mul_by_one_identity(fmt, positive_only):
    rng = np.random.default_rng(4)
    values = fmt.quantize(rng.uniform(1e-4, 100.0, size=200))
    np.testing.assert_allclose(
        fmt.mul(values, np.ones_like(values)), values, rtol=1e-6
    )


@pytest.mark.parametrize("fmt,positive_only", FORMATS, ids=_ids)
def test_representable_set_closed_under_quantize(fmt, positive_only):
    rng = np.random.default_rng(5)
    values = fmt.quantize(rng.uniform(1e-4, 1.0, size=300))
    assert np.all(fmt.representable(values))


@settings(max_examples=40, deadline=None)
@given(
    x=st.floats(min_value=1e-20, max_value=1e20, allow_nan=False),
    y=st.floats(min_value=1e-20, max_value=1e20, allow_nan=False),
)
def test_cfp_add_bounds_property(x, y):
    """Quantised add lies within one ULP-scale factor of the exact sum."""
    fmt = PAPER_CFP
    a = float(fmt.quantize(np.array([x]))[0])
    b = float(fmt.quantize(np.array([y]))[0])
    if a == 0 or b == 0:
        return
    out = float(fmt.add(np.array([a]), np.array([b]))[0])
    exact = a + b
    assert abs(out - exact) <= exact * 2.0**-24
