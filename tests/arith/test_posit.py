"""Unit tests for posit quantisation."""

import numpy as np
import pytest

from repro.arith import Posit
from repro.errors import ArithmeticConfigError


class TestConfig:
    @pytest.mark.parametrize("n,es", [(2, 0), (33, 1), (8, 7), (8, 9)])
    def test_invalid_configs_rejected(self, n, es):
        with pytest.raises(ArithmeticConfigError):
            Posit(n, es)

    def test_range_symmetric(self):
        p = Posit(8, 0)
        assert p.largest == pytest.approx(2.0**6)
        assert p.smallest_positive == pytest.approx(2.0**-6)

    def test_useed_scales_range(self):
        p = Posit(8, 1)  # useed = 4
        assert p.largest == pytest.approx(4.0**6)


class TestKnownEncodings:
    def test_posit8_0_values_near_one(self):
        p = Posit(8, 0)
        # Around 1.0, posit<8,0> has 5 fraction bits: step 1/32.
        assert p.quantize(np.array([1.0]))[0] == 1.0
        assert p.quantize(np.array([1.0 + 1 / 32]))[0] == pytest.approx(1.0 + 1 / 32)

    def test_posit_table_is_sorted_unique(self):
        p = Posit(10, 1)
        values = p._values
        assert np.all(np.diff(values) > 0)

    def test_exact_positive_count(self):
        p = Posit(6, 0)
        # 2^(n-1) - 1 positive patterns.
        assert len(p._values) == 31

    def test_tapered_precision(self):
        """Relative step near 1.0 is finer than near the extremes."""
        p = Posit(12, 1)
        values = p._values
        mid = np.searchsorted(values, 1.0)
        step_mid = (values[mid + 1] - values[mid]) / values[mid]
        step_top = (values[-1] - values[-2]) / values[-2]
        assert step_mid < step_top


class TestQuantise:
    def test_idempotent(self):
        p = Posit(12, 1)
        rng = np.random.default_rng(0)
        values = rng.uniform(1e-6, 1e6, size=500)
        once = p.quantize(values)
        np.testing.assert_array_equal(p.quantize(once), once)

    def test_rounds_to_nearest_table_value(self):
        p = Posit(8, 0)
        table = p._values
        rng = np.random.default_rng(1)
        values = rng.uniform(table[0], table[-1], size=300)
        out = p.quantize(values)
        for v, o in zip(values, out):
            best = table[np.argmin(np.abs(table - v))]
            assert abs(o - v) <= abs(best - v) * (1 + 1e-12) + 1e-15

    def test_negative_values_mirrored(self):
        p = Posit(10, 1)
        pos = p.quantize(np.array([0.3]))
        neg = p.quantize(np.array([-0.3]))
        assert neg[0] == -pos[0]

    def test_zero_exact(self):
        assert Posit(8, 1).quantize(np.array([0.0]))[0] == 0.0

    def test_saturation(self):
        p = Posit(8, 0)
        assert p.quantize(np.array([1e30]))[0] == p.largest
        assert p.quantize(np.array([1e-30]))[0] == p.smallest_positive

    def test_nan_inf_saturate(self):
        p = Posit(8, 0)
        out = p.quantize(np.array([np.inf, np.nan]))
        assert out[0] == p.largest
        assert out[1] == p.largest

    def test_wide_posit_analytic_path(self):
        p = Posit(32, 2)
        assert p._values is None
        values = np.array([1.0, 0.5, 3.14159, 1e-10])
        out = p.quantize(values)
        rel = np.abs(out - values) / values
        # 32-bit posits have >= 20 fraction bits near 1.0.
        assert np.max(rel[:3]) < 1e-6
        out_again = p.quantize(out)
        np.testing.assert_allclose(out_again, out, rtol=1e-12)
