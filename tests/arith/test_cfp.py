"""Unit and property tests for the Custom Floating Point emulation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arith import CustomFloat, Rounding
from repro.errors import ArithmeticConfigError


class TestConfig:
    def test_bit_width(self):
        assert CustomFloat(8, 23).bits == 32
        assert CustomFloat(10, 25).bits == 36

    @pytest.mark.parametrize("e,m", [(1, 10), (12, 10), (8, 0), (8, 53)])
    def test_invalid_configs_rejected(self, e, m):
        with pytest.raises(ArithmeticConfigError):
            CustomFloat(e, m)

    def test_invalid_rounding_rejected(self):
        with pytest.raises(ArithmeticConfigError):
            CustomFloat(8, 23, rounding="truncate")  # type: ignore[arg-type]

    def test_range_endpoints(self):
        fmt = CustomFloat(4, 3)
        # bias 7: exponent code 0 reserved for zero, so normals span
        # exponents -6..8; max mantissa 1.875.
        assert fmt.smallest_positive == pytest.approx(2.0**-6)
        assert fmt.largest == pytest.approx(1.875 * 2.0**8)

    def test_min_normal_distinct_from_zero_encoding(self):
        fmt = CustomFloat(3, 2)
        tiny = fmt.smallest_positive
        assert fmt.encode(np.array([tiny]))[0] != 0
        assert fmt.decode(fmt.encode(np.array([tiny])))[0] == tiny


class TestQuantise:
    def test_exact_values_unchanged(self):
        fmt = CustomFloat(8, 23)
        exact = np.array([0.0, 1.0, -2.0, 0.5, 1.5, 0.75])
        np.testing.assert_array_equal(fmt.quantize(exact), exact)

    def test_matches_float32_on_normals(self):
        """cfp(8,23) round-nearest-even is exactly IEEE binary32 on
        normal values — a strong cross-check of the emulation."""
        fmt = CustomFloat(8, 23)
        rng = np.random.default_rng(0)
        values = rng.uniform(-1e30, 1e30, size=2000)
        values = np.concatenate([values, rng.uniform(-1, 1, size=2000)])
        np.testing.assert_array_equal(
            fmt.quantize(values), values.astype(np.float32).astype(np.float64)
        )

    def test_underflow_flushes_to_zero(self):
        fmt = CustomFloat(4, 3)
        tiny = fmt.smallest_positive / 4.0
        assert fmt.quantize(np.array([tiny]))[0] == 0.0

    def test_overflow_saturates(self):
        fmt = CustomFloat(4, 3)
        assert fmt.quantize(np.array([1e30]))[0] == fmt.largest
        assert fmt.quantize(np.array([-1e30]))[0] == -fmt.largest

    def test_nan_and_inf_saturate(self):
        fmt = CustomFloat(4, 3)
        out = fmt.quantize(np.array([np.nan, np.inf, -np.inf]))
        assert out[0] == fmt.largest
        assert out[1] == fmt.largest
        assert out[2] == -fmt.largest

    def test_scalar_input_returns_scalar_shape(self):
        fmt = CustomFloat(8, 23)
        out = fmt.quantize(0.1)
        assert np.ndim(out) == 0

    def test_idempotent(self):
        fmt = CustomFloat(5, 7)
        rng = np.random.default_rng(3)
        values = rng.uniform(-100, 100, size=500)
        once = fmt.quantize(values)
        np.testing.assert_array_equal(fmt.quantize(once), once)

    def test_rounding_carry_bumps_exponent(self):
        fmt = CustomFloat(8, 2)  # mantissa steps of 0.25
        # 1.9375 rounds to 2.0, requiring an exponent carry.
        assert fmt.quantize(np.array([1.9375]))[0] == 2.0


class TestRoundingSchemes:
    def test_truncate_never_exceeds_magnitude(self):
        fmt = CustomFloat(8, 4, rounding=Rounding.TRUNCATE)
        rng = np.random.default_rng(5)
        values = rng.uniform(0.001, 1000, size=1000)
        out = fmt.quantize(values)
        assert np.all(out <= values)

    def test_away_from_zero_never_below_magnitude(self):
        fmt = CustomFloat(8, 4, rounding=Rounding.AWAY_FROM_ZERO)
        rng = np.random.default_rng(6)
        values = rng.uniform(0.001, 1000, size=1000)
        out = fmt.quantize(values)
        assert np.all(out >= values)

    def test_nearest_even_breaks_ties_to_even(self):
        fmt = CustomFloat(8, 2)
        # 1.125 is exactly between 1.0 and 1.25; even mantissa wins (1.0).
        assert fmt.quantize(np.array([1.125]))[0] == 1.0
        # 1.375 between 1.25 and 1.5 -> 1.5 (mantissa 0b10 even).
        assert fmt.quantize(np.array([1.375]))[0] == 1.5

    def test_nearest_error_bounded_by_half_ulp(self):
        fmt = CustomFloat(8, 10)
        rng = np.random.default_rng(7)
        values = rng.uniform(1.0, 2.0, size=2000)  # fixed binade
        out = fmt.quantize(values)
        ulp = 2.0**-10
        assert np.max(np.abs(out - values)) <= ulp / 2 + 1e-15


class TestOperators:
    def test_add_requantises(self):
        fmt = CustomFloat(8, 4)
        a = fmt.quantize(np.array([1.0]))
        b = fmt.quantize(np.array([1.0 / 64.0]))
        # Exact sum 1.015625 needs 6 mantissa bits; with 4 it rounds.
        out = fmt.add(a, b)
        assert out[0] == fmt.quantize(np.array([1.015625]))[0]

    def test_mul_requantises(self):
        fmt = CustomFloat(8, 3)
        a = np.array([1.125])
        out = fmt.mul(a, a)  # 1.265625 needs 6 bits
        assert out[0] == fmt.quantize(np.array([1.265625]))[0]


class TestEncodeDecode:
    @settings(max_examples=30, deadline=None)
    @given(
        e=st.integers(3, 10),
        m=st.integers(2, 30),
        seed=st.integers(0, 1000),
    )
    def test_encode_decode_roundtrip(self, e, m, seed):
        fmt = CustomFloat(e, m)
        rng = np.random.default_rng(seed)
        span = min(fmt.largest, 1e20)
        values = rng.uniform(-span, span, size=64)
        quantised = fmt.quantize(values)
        np.testing.assert_array_equal(fmt.decode(fmt.encode(quantised)), quantised)

    def test_encode_fits_declared_bits(self):
        fmt = CustomFloat(6, 9)
        rng = np.random.default_rng(11)
        values = rng.uniform(-100, 100, size=200)
        bits = fmt.encode(values)
        assert np.all(bits < (1 << fmt.bits))

    def test_zero_encodes_as_zero_word(self):
        fmt = CustomFloat(8, 23)
        assert fmt.encode(np.array([0.0]))[0] == 0


@settings(max_examples=40, deadline=None)
@given(
    value=st.floats(
        min_value=1e-300, max_value=1e300, allow_nan=False, allow_infinity=False
    )
)
def test_quantisation_relative_error_bound(value):
    """Nearest rounding keeps relative error within 2^-(m+1) in range."""
    fmt = CustomFloat(11, 20)
    if value > fmt.largest or value < fmt.smallest_positive * 2:
        return
    out = float(fmt.quantize(np.array([value]))[0])
    assert abs(out - value) / value <= 2.0**-21 * (1 + 1e-12)
