"""Tests for the multi-link HBM-buffered node (§V-C/VII outlook)."""

import pytest

from repro.errors import RuntimeConfigError
from repro.streaming.multilink import MultiLinkBufferedNode, max_links_for_hbm
from repro.units import GIB


def test_max_links_accounting():
    """One 100G link needs 2x ~12.38 GiB/s of buffering traffic, i.e.
    two 12 GiB/s channels; 32 channels buffer 16 links."""
    assert max_links_for_hbm() == 16


def test_single_link_reaches_line_rate():
    node = MultiLinkBufferedNode(n_links=1, bytes_per_sample=88, cores_per_link=1)
    result = node.run(120_000)
    line_rate = 100e9 * node.macs[0].payload_efficiency / (8 * 88)
    assert result.samples_per_second == pytest.approx(line_rate, rel=0.03)


def test_links_scale_linearly():
    def rate(links):
        node = MultiLinkBufferedNode(
            n_links=links, bytes_per_sample=88, cores_per_link=1
        )
        return node.run(100_000).samples_per_second

    assert rate(8) == pytest.approx(8 * rate(1), rel=0.02)


def test_sixteen_links_fit_hbm_practical_budget():
    """The paper's outlook quantified: a full card of buffered links
    stays under the 384 GiB/s practical HBM total."""
    node = MultiLinkBufferedNode(n_links=16, bytes_per_sample=88, cores_per_link=1)
    result = node.run(100_000)
    assert result.hbm_traffic / GIB < 384
    assert result.hbm_traffic / GIB > 300  # and genuinely uses most of it


def test_buffering_doubles_hbm_traffic():
    node = MultiLinkBufferedNode(n_links=2, bytes_per_sample=88, cores_per_link=1)
    result = node.run(80_000)
    assert result.hbm_traffic == pytest.approx(2 * result.aggregate_ingest, rel=0.01)


def test_undersized_core_count_throttles():
    """A 10-byte-sample stream at line rate exceeds one 225 MHz core;
    the node then runs compute-bound, not line-rate-bound."""
    node = MultiLinkBufferedNode(n_links=1, bytes_per_sample=18, cores_per_link=1)
    result = node.run(400_000)
    assert result.samples_per_second == pytest.approx(225e6, rel=0.05)


def test_invalid_configs_rejected():
    with pytest.raises(RuntimeConfigError):
        MultiLinkBufferedNode(n_links=0, bytes_per_sample=88)
    with pytest.raises(RuntimeConfigError):
        MultiLinkBufferedNode(n_links=17, bytes_per_sample=88)  # 34 channels
    with pytest.raises(RuntimeConfigError):
        MultiLinkBufferedNode(n_links=1, bytes_per_sample=0)
    node = MultiLinkBufferedNode(n_links=1, bytes_per_sample=88)
    with pytest.raises(RuntimeConfigError):
        node.run(0)
