"""Tests for the 100G in-network streaming architecture model."""

import pytest

from repro.errors import MemoryModelError, RuntimeConfigError
from repro.sim import Engine
from repro.streaming import (
    EthernetMac,
    FRAME_OVERHEAD_BYTES,
    StreamingSystem,
    required_replicas,
)


class TestEthernetMac:
    def test_payload_rate_matches_measured_99_078(self):
        """[7] measured 99.078 Gbit/s of payload on the 100G link."""
        mac = EthernetMac(Engine())
        assert mac.payload_rate_bits / 1e9 == pytest.approx(99.078, abs=0.01)

    def test_frame_overhead_is_24_bytes(self):
        assert FRAME_OVERHEAD_BYTES == 24

    def test_wire_time_includes_overhead(self):
        env = Engine()
        mac = EthernetMac(env, line_rate_bits=100e9, frame_payload=1000)

        def proc():
            yield mac.send_frame(1000)
            yield mac.send_frame(1000)

        env.run(until_event=env.process(proc()))
        expected = 2 * (1000 + 24) / (100e9 / 8)
        assert env.now == pytest.approx(expected, rel=1e-6)

    def test_oversized_payload_rejected(self):
        mac = EthernetMac(Engine(), frame_payload=100)
        with pytest.raises(MemoryModelError):
            mac.send_frame(101)

    def test_counters(self):
        env = Engine()
        mac = EthernetMac(env)

        def proc():
            yield mac.send_frame(500)

        env.run(until_event=env.process(proc()))
        assert mac.frames == 1
        assert mac.payload_bytes == 500


class TestRequiredReplicas:
    def test_nips80_needs_one_core(self):
        # 140.7 M samples/s < 225 MHz -> a single core suffices.
        assert required_replicas(88, 225e6) == 1

    def test_nips10_needs_six_cores(self):
        # 1238 M samples/s at 10 B/sample -> six 225 MHz cores.
        assert required_replicas(10, 225e6) == 6

    def test_invalid_inputs_rejected(self):
        with pytest.raises(RuntimeConfigError):
            required_replicas(0, 225e6)
        with pytest.raises(RuntimeConfigError):
            required_replicas(10, 0)


class TestStreamingSystem:
    def test_nips80_reaches_line_rate_with_one_core(self):
        """The §V-D comparison point: 140,748,580 samples/s at 88 B."""
        result = StreamingSystem(bytes_per_sample=88, n_cores=1).run(200_000)
        assert result.samples_per_second == pytest.approx(140_748_580, rel=0.01)
        assert result.line_rate_fraction == pytest.approx(1.0, abs=0.01)

    def test_underprovisioned_cores_cap_throughput(self):
        result = StreamingSystem(bytes_per_sample=10, n_cores=1).run(500_000)
        # One 225 MHz core cannot absorb the 1.24 G samples/s ingress.
        assert result.samples_per_second == pytest.approx(225e6, rel=0.02)
        assert result.line_rate_fraction < 0.25

    def test_replication_restores_line_rate(self):
        needed = required_replicas(10, 225e6)
        result = StreamingSystem(bytes_per_sample=10, n_cores=needed).run(1_000_000)
        assert result.line_rate_fraction == pytest.approx(1.0, abs=0.02)

    def test_streaming_beats_hbm_on_nips80(self):
        """§V-D: the streaming architecture delivers ~17-21% more than
        the HBM architecture's 116.6 M samples/s on NIPS80."""
        result = StreamingSystem(bytes_per_sample=88, n_cores=1).run(200_000)
        assert 1.15 < result.samples_per_second / 116_565_604 < 1.27

    def test_invalid_configs_rejected(self):
        with pytest.raises(RuntimeConfigError):
            StreamingSystem(bytes_per_sample=0, n_cores=1)
        with pytest.raises(RuntimeConfigError):
            StreamingSystem(bytes_per_sample=10, n_cores=0)
        with pytest.raises(RuntimeConfigError):
            StreamingSystem(bytes_per_sample=10, n_cores=1).run(0)
