"""Unit tests for the analytic platform models."""

import pytest

from repro.errors import ReproError
from repro.platforms import (
    AWS_F1_SYSTEM,
    STREAMING_100G,
    TESLA_V100,
    XEON_E5_2680_V3,
)
from repro.spn import nips_benchmark, nips_spn
from repro.units import GIB


class TestCpuModel:
    def test_throughput_decreases_with_spn_size(self):
        rates = [
            XEON_E5_2680_V3.samples_per_second(nips_spn(n))
            for n in ("NIPS10", "NIPS20", "NIPS40", "NIPS80")
        ]
        assert rates == sorted(rates, reverse=True)

    def test_superlinear_cost_growth(self):
        """The power-law exponent > 1: doubling ops more than doubles
        per-sample cost."""
        c1 = XEON_E5_2680_V3.cycles_per_sample(100)
        c2 = XEON_E5_2680_V3.cycles_per_sample(200)
        assert c2 > 2 * c1

    def test_nips10_beats_600m(self):
        """The model must put the CPU above the HBM plateau on NIPS10
        (Fig. 6's crossover)."""
        assert XEON_E5_2680_V3.samples_per_second(nips_spn("NIPS10")) > 6.1e8

    def test_invalid_ops_rejected(self):
        with pytest.raises(ReproError):
            XEON_E5_2680_V3.cycles_per_sample(0)


class TestGpuModel:
    def test_throughput_decreases_with_spn_size(self):
        rates = [
            TESLA_V100.samples_per_second(nips_spn(n))
            for n in ("NIPS10", "NIPS40", "NIPS80")
        ]
        assert rates == sorted(rates, reverse=True)

    def test_gpu_slowest_platform_everywhere(self):
        for name in ("NIPS10", "NIPS80"):
            bench = nips_benchmark(name)
            gpu = TESLA_V100.samples_per_second(bench.spn)
            cpu = XEON_E5_2680_V3.samples_per_second(bench.spn)
            f1 = AWS_F1_SYSTEM.samples_per_second(
                name, bench.input_bytes_per_sample, bench.result_bytes_per_sample
            )
            assert gpu < cpu
            assert gpu < f1


class TestF1Model:
    def test_nips80_limited_to_two_cores(self):
        assert AWS_F1_SYSTEM.n_cores("NIPS80") == 2
        assert AWS_F1_SYSTEM.n_cores("NIPS10") == 4

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ReproError):
            AWS_F1_SYSTEM.n_cores("NIPS99")

    def test_small_benchmarks_pcie_bound(self):
        """NIPS10..40 on F1 saturate the aggregate PCIe capacity."""
        rate = AWS_F1_SYSTEM.samples_per_second("NIPS10", 10, 8)
        expected = AWS_F1_SYSTEM.weighted_pcie_capacity / (10 + 0.8 * 8)
        assert rate == pytest.approx(expected)

    def test_nips80_queue_bound(self):
        """NIPS80 with two cores is bound by per-queue DMA bandwidth,
        explaining the paper's 1.5x gap on that benchmark."""
        rate = AWS_F1_SYSTEM.samples_per_second("NIPS80", 80, 8)
        expected = 2 * AWS_F1_SYSTEM.per_queue_bandwidth / 80
        assert rate == pytest.approx(expected)


class TestStreamingModel:
    def test_nips80_line_rate(self):
        """§V-D derives 140,748,580 samples/s from 99.078 Gbit/s at 88
        bytes per sample."""
        rate = STREAMING_100G.samples_per_second(88)
        assert rate == pytest.approx(140_748_580, rel=1e-4)

    def test_invalid_sample_size_rejected(self):
        with pytest.raises(ReproError):
            STREAMING_100G.samples_per_second(0)
