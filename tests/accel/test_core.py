"""Unit tests for the accelerator core (timed + functional)."""

import numpy as np
import pytest

from repro.accel import ChannelMemory, SPNAcceleratorCore
from repro.arith import PAPER_CFP
from repro.compiler import compile_core
from repro.errors import MemoryModelError, RuntimeConfigError
from repro.mem import HBMChannel
from repro.sim import Engine
from repro.spn import log_likelihood, random_spn
from repro.workloads import encode_samples


def _setup(n_vars=6, clock_hz=225e6, compute_format=None, seed=21):
    env = Engine()
    spn = random_spn(n_vars, depth=3, n_bins=16, seed=seed)
    core_spec = compile_core(spn, "cfp")
    channel = HBMChannel(env, 0)
    memory = ChannelMemory(1 << 24)
    core = SPNAcceleratorCore(
        env, 0, spn, core_spec, channel, memory,
        clock_hz=clock_hz, compute_format=compute_format,
    )
    return env, spn, core, memory


class TestChannelMemory:
    def test_roundtrip(self):
        mem = ChannelMemory(1024)
        mem.write(100, b"hello")
        assert mem.read(100, 5) == b"hello"

    def test_bounds_checked(self):
        mem = ChannelMemory(64)
        with pytest.raises(MemoryModelError):
            mem.write(60, b"too long")
        with pytest.raises(MemoryModelError):
            mem.read(-1, 4)

    def test_array_roundtrip(self):
        mem = ChannelMemory(1024)
        values = np.array([-1.5, 2.25, 3.0])
        mem.write_array(0, values)
        np.testing.assert_array_equal(mem.read_array(0, np.float64, 3), values)


class TestFunctionalPath:
    def test_results_match_software_reference(self):
        env, spn, core, memory = _setup()
        rng = np.random.default_rng(0)
        data = rng.integers(0, 16, size=(500, 6)).astype(np.uint8)
        memory.write(0, encode_samples(data))
        done = core.start_job(0, 1 << 20, 500)
        result = env.run(until_event=done)
        assert result.n_samples == 500
        got = memory.read_array(1 << 20, np.float64, 500)
        np.testing.assert_allclose(got, log_likelihood(spn, data.astype(float)))

    def test_compute_format_applied(self):
        env, spn, core, memory = _setup(compute_format=PAPER_CFP)
        rng = np.random.default_rng(1)
        data = rng.integers(0, 16, size=(100, 6)).astype(np.uint8)
        memory.write(0, encode_samples(data))
        done = core.start_job(0, 1 << 20, 100)
        env.run(until_event=done)
        got = memory.read_array(1 << 20, np.float64, 100)
        reference = log_likelihood(spn, data.astype(float))
        # CFP result is close to but not identical with float64.
        assert np.max(np.abs(got - reference)) < 1e-4
        assert np.any(got != reference)

    def test_timing_only_job_skips_functional_write(self):
        env, spn, core, memory = _setup()
        before = memory.read(1 << 20, 80)
        done = core.start_job(0, 1 << 20, 10, functional=False)
        env.run(until_event=done)
        assert memory.read(1 << 20, 80) == before


class TestTimedPath:
    def test_throughput_approaches_clock_rate(self):
        """II=1: a large job processes ~1 sample/cycle."""
        env, spn, core, memory = _setup()
        done = core.start_job(0, 1 << 20, 1_000_000, functional=False)
        result = env.run(until_event=done)
        assert result.samples_per_second == pytest.approx(225e6, rel=0.05)

    def test_small_job_dominated_by_pipeline_fill(self):
        env, spn, core, memory = _setup()
        done = core.start_job(0, 1 << 20, 1, functional=False)
        result = env.run(until_event=done)
        # One sample cannot take less than fill + channel overheads.
        min_time = core.core_spec.pipeline_depth / core.clock_hz
        assert result.elapsed > min_time

    def test_clock_scales_throughput(self):
        env1, _, core1, _ = _setup(clock_hz=225e6)
        done = core1.start_job(0, 1 << 20, 500_000, functional=False)
        fast = env1.run(until_event=done).samples_per_second
        env2, _, core2, _ = _setup(clock_hz=112.5e6)
        done = core2.start_job(0, 1 << 20, 500_000, functional=False)
        slow = env2.run(until_event=done).samples_per_second
        assert fast / slow == pytest.approx(2.0, rel=0.05)

    def test_total_samples_accumulates(self):
        env, spn, core, memory = _setup()
        done = core.start_job(0, 1 << 20, 100, functional=False)
        env.run(until_event=done)
        done = core.start_job(0, 1 << 20, 50, functional=False)
        env.run(until_event=done)
        assert core.total_samples == 150


class TestJobControl:
    def test_concurrent_jobs_rejected(self):
        env, spn, core, memory = _setup()
        core.start_job(0, 1 << 20, 100, functional=False)
        with pytest.raises(RuntimeConfigError):
            core.start_job(0, 1 << 20, 100, functional=False)

    def test_zero_samples_rejected(self):
        env, spn, core, memory = _setup()
        with pytest.raises(RuntimeConfigError):
            core.start_job(0, 1 << 20, 0)

    def test_busy_flag_follows_job(self):
        env, spn, core, memory = _setup()
        done = core.start_job(0, 1 << 20, 100, functional=False)
        assert core.registers.busy
        env.run(until_event=done)
        assert not core.registers.busy

    def test_configuration_readout(self):
        env, spn, core, memory = _setup()
        config = core.read_configuration()
        assert config["n_variables"] == 6
        assert config["sample_bytes"] == 6
        assert config["result_bytes"] == 8
        assert config["clock_mhz"] == 225
        assert config["pipeline_depth"] == core.core_spec.pipeline_depth
