"""Unit tests for the AXI4-Lite register file model."""

import pytest

from repro.accel.registers import (
    CONFIG_REGISTERS,
    INPUT_ADDR,
    MODE,
    N_SAMPLES,
    RESULT_ADDR,
    STATUS,
    ExecutionMode,
    RegisterFile,
)
from repro.errors import RuntimeConfigError


@pytest.fixture
def regs():
    return RegisterFile(
        {
            "n_variables": 10,
            "sample_bytes": 10,
            "result_bytes": 8,
            "pipeline_depth": 34,
            "format_bits": 36,
            "interface_width_bits": 512,
            "clock_mhz": 225,
        }
    )


def test_job_parameters_roundtrip(regs):
    regs.set_job(0x1000, 0x2000, 12345)
    assert regs.job_parameters() == (0x1000, 0x2000, 12345)


def test_64bit_addresses_accepted(regs):
    """The paper widened the control registers to 64 bit for HBM."""
    big = (1 << 40) | 0x123
    regs.write(INPUT_ADDR, big)
    assert regs.read(INPUT_ADDR) == big


def test_values_beyond_64bit_rejected(regs):
    with pytest.raises(RuntimeConfigError):
        regs.write(INPUT_ADDR, 1 << 64)


def test_config_registers_need_readout_mode(regs):
    with pytest.raises(RuntimeConfigError):
        regs.read(CONFIG_REGISTERS["n_variables"])
    regs.set_mode(ExecutionMode.CONFIG_READOUT)
    assert regs.read(CONFIG_REGISTERS["n_variables"]) == 10


def test_read_configuration_restores_mode(regs):
    config = regs.read_configuration()
    assert config["clock_mhz"] == 225
    assert config["pipeline_depth"] == 34
    assert regs.mode is ExecutionMode.INFERENCE


def test_config_registers_read_only(regs):
    with pytest.raises(RuntimeConfigError):
        regs.write(CONFIG_REGISTERS["clock_mhz"], 1)


def test_status_read_only(regs):
    with pytest.raises(RuntimeConfigError):
        regs.write(STATUS, 1)


def test_busy_flag(regs):
    assert not regs.busy
    regs.set_busy(True)
    assert regs.busy
    regs.set_busy(False)
    assert not regs.busy


def test_unaligned_access_rejected(regs):
    with pytest.raises(RuntimeConfigError):
        regs.read(0x03)


def test_unknown_register_rejected(regs):
    with pytest.raises(RuntimeConfigError):
        regs.read(0xF8)
    with pytest.raises(RuntimeConfigError):
        regs.write(0xF8, 0)


def test_missing_config_keys_rejected():
    with pytest.raises(RuntimeConfigError):
        RegisterFile({"n_variables": 10})
