"""Equivalence tests for steady-state fast-forwarding.

The fast path collapses a job's double-buffered burst pipeline into one
analytic timeout; these tests pin it to the burst-granular model by
asserting **bit-identical** run statistics (``struct.pack`` on the
elapsed time, exact equality everywhere else) across benchmarks, block
sizes, thread counts and both scheduling policies.  A second group
checks every fallback gate: the fast path must decline (not silently
diverge) for crossbar routing, explicit refresh, tracers and the
``burst_granular`` escape hatch.
"""

import struct

import pytest

from repro.compiler import compose_design
from repro.experiments.cache import benchmark_core
from repro.host import InferenceJobConfig, InferenceRuntime, SimulatedDevice
from repro.platforms.specs import XUPVVH_HBM_PLATFORM
from repro.sim import Tracer
from repro.units import KIB, MIB


def _device(benchmark, n_cores, **kwargs):
    core = benchmark_core(benchmark, "cfp")
    design = compose_design(core, n_cores, XUPVVH_HBM_PLATFORM)
    return SimulatedDevice(design, **kwargs)


def _run(benchmark, n_cores, config, n_samples, *, burst_granular, tracer=None):
    device = _device(benchmark, n_cores, burst_granular=burst_granular)
    runtime = InferenceRuntime(device, config, tracer=tracer)
    return runtime.run_timing_only(n_samples)


def _assert_identical(fast, slow):
    assert struct.pack("<d", fast.elapsed_seconds) == struct.pack(
        "<d", slow.elapsed_seconds
    )
    assert fast.n_samples == slow.n_samples
    assert fast.n_blocks == slow.n_blocks
    assert fast.samples_per_pe == slow.samples_per_pe
    assert fast.bytes_to_device == slow.bytes_to_device
    assert fast.bytes_from_device == slow.bytes_from_device


# (benchmark, n_cores, block_bytes, threads_per_pe, scheduling).  The
# grid covers tiny blocks (one burst, no steady state), the paper's
# 1 MiB blocks, both thread counts and both schedulers across small and
# large SPNs.
EQUIVALENCE_CASES = [
    ("NIPS10", 1, 1 * MIB, 1, "static"),
    ("NIPS10", 3, 512, 2, "shared"),
    ("NIPS10", 2, 64 * KIB, 1, "shared"),
    ("NIPS10", 2, 1 * MIB, 2, "static"),
    ("NIPS30", 2, 1 * MIB, 2, "static"),
    ("NIPS30", 1, 64 * KIB, 1, "shared"),
    ("NIPS80", 1, 64 * KIB, 1, "static"),
    ("NIPS80", 2, 1 * MIB, 2, "shared"),
]


class TestFastForwardEquivalence:
    @pytest.mark.parametrize(
        "bench_name,n_cores,block_bytes,threads,scheduling", EQUIVALENCE_CASES
    )
    def test_bit_identical_statistics(
        self, bench_name, n_cores, block_bytes, threads, scheduling
    ):
        config = InferenceJobConfig(
            block_bytes=block_bytes,
            threads_per_pe=threads,
            scheduling=scheduling,
        )
        n_samples = 50_000 * n_cores
        fast = _run(bench_name, n_cores, config, n_samples, burst_granular=False)
        slow = _run(bench_name, n_cores, config, n_samples, burst_granular=True)
        _assert_identical(fast, slow)

    def test_on_device_only_bit_identical(self):
        config = InferenceJobConfig(threads_per_pe=2)
        for granular in (False, True):
            device = _device("NIPS10", 2, burst_granular=granular)
            runtime = InferenceRuntime(device, config)
            if granular:
                slow = runtime.run_on_device_only(100_000)
            else:
                fast = runtime.run_on_device_only(100_000)
        _assert_identical(fast, slow)

    def test_functional_run_results_unchanged(self):
        import numpy as np

        from repro.spn import log_likelihood
        from repro.spn.nips import nips_benchmark, nips_dataset

        bench = nips_benchmark("NIPS10")
        data = nips_dataset("NIPS10")[:4096]
        results = {}
        for granular in (False, True):
            device = _device("NIPS10", 2, burst_granular=granular)
            runtime = InferenceRuntime(device, InferenceJobConfig())
            out, stats = runtime.run(data)
            results[granular] = (out, stats)
        fast_out, fast_stats = results[False]
        slow_out, slow_stats = results[True]
        np.testing.assert_array_equal(fast_out, slow_out)
        _assert_identical(fast_stats, slow_stats)
        reference = log_likelihood(bench.spn, data)
        assert np.allclose(fast_out, reference, rtol=1e-2, atol=5e-2)


class TestFallbackGates:
    def test_burst_granular_kwarg_disables(self):
        device = _device("NIPS10", 1, burst_granular=True)
        assert not device.cores[0]._can_fast_forward()

    def test_default_device_fast_forwards(self):
        device = _device("NIPS10", 1)
        assert device.cores[0]._can_fast_forward()

    def test_crossbar_port_disables(self):
        device = _device("NIPS10", 2, crossbar=True)
        assert not device.cores[0]._can_fast_forward()

    def test_explicit_refresh_disables(self):
        device = _device("NIPS10", 1)
        device.cores[0].channel.explicit_refresh = True
        assert not device.cores[0]._can_fast_forward()

    def test_contended_channel_disables(self):
        device = _device("NIPS10", 1)
        channel = device.cores[0].channel
        grant = channel._engine.request()
        assert grant.triggered
        assert not device.cores[0]._can_fast_forward()
        channel._engine.release()
        assert device.cores[0]._can_fast_forward()

    def test_tracer_forces_granular_and_restores(self):
        device = _device("NIPS10", 2)
        tracer = Tracer(device.env)
        runtime = InferenceRuntime(device, InferenceJobConfig(), tracer=tracer)
        stats = runtime.run_timing_only(100_000)
        # Spans must cover every block on both PEs...
        assert any(span.track.startswith("pe") for span in tracer.spans)
        # ...and the forced-granular flag must not leak past the run.
        assert all(not core.burst_granular for core in device.cores)
        # Traced timing still matches the fast-forwarded model exactly.
        fast = _run(
            "NIPS10", 2, InferenceJobConfig(), 100_000, burst_granular=False
        )
        _assert_identical(fast, stats)
