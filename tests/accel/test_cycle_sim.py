"""Register-level pipeline verification via the cycle simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel.cycle_sim import CycleSimulation, simulate_cycles
from repro.compiler import build_datapath, schedule_datapath
from repro.compiler.interpreter import extract_lookup_tables, interpret_datapath
from repro.compiler.operators import CFP_LIBRARY, FLOAT64_LIBRARY
from repro.errors import CompilerError
from repro.spn import random_spn


def _setup(seed=10, n_vars=5, n_bins=8, library=CFP_LIBRARY):
    spn = random_spn(n_vars, depth=3, n_bins=n_bins, seed=seed)
    datapath = build_datapath(spn)
    tables = extract_lookup_tables(datapath, spn)
    rng = np.random.default_rng(seed)
    samples = rng.integers(0, n_bins, size=(30, n_vars))
    return spn, datapath, tables, samples, library


def test_first_result_after_exactly_pipeline_depth():
    _, datapath, tables, samples, library = _setup()
    schedule = schedule_datapath(datapath, library)
    _, cycles = simulate_cycles(datapath, library, tables, samples)
    assert cycles[0] == schedule.depth


def test_initiation_interval_is_one():
    """One result per cycle once the pipeline is full — the II=1 claim
    every throughput number in the paper rests on."""
    _, datapath, tables, samples, library = _setup(seed=11)
    _, cycles = simulate_cycles(datapath, library, tables, samples)
    gaps = np.diff(cycles)
    assert np.all(gaps == 1)


def test_results_match_functional_interpreter():
    """Balancing registers must keep concurrent samples aligned: with
    30 samples in flight, every output equals the reference."""
    _, datapath, tables, samples, library = _setup(seed=12)
    results, _ = simulate_cycles(datapath, library, tables, samples)
    reference = interpret_datapath(datapath, samples, tables)
    np.testing.assert_allclose(results, reference, rtol=1e-12)


def test_order_preserved():
    _, datapath, tables, samples, library = _setup(seed=13)
    results, _ = simulate_cycles(datapath, library, tables, samples)
    reference = interpret_datapath(datapath, samples, tables)
    # Strict order: first-in first-out.
    np.testing.assert_allclose(results, reference)
    assert len(results) == len(samples)


def test_deeper_library_longer_fill_same_ii():
    _, datapath, tables, samples, _ = _setup(seed=14)
    cfp_results, cfp_cycles = simulate_cycles(datapath, CFP_LIBRARY, tables, samples)
    f64_results, f64_cycles = simulate_cycles(
        datapath, FLOAT64_LIBRARY, tables, samples
    )
    assert f64_cycles[0] > cfp_cycles[0]
    assert np.all(np.diff(f64_cycles) == 1)
    np.testing.assert_allclose(cfp_results, f64_results, rtol=1e-12)


def test_bubbles_between_samples_tolerated():
    """Gaps in the input stream must not corrupt alignment."""
    _, datapath, tables, samples, library = _setup(seed=15)
    sim = CycleSimulation(datapath, library, tables)
    outputs = []
    for index in range(len(samples)):
        out = sim.step(samples[index])
        if out is not None:
            outputs.append(out)
        out = sim.step(None)  # bubble every other cycle
        if out is not None:
            outputs.append(out)
    # Drain.
    for _ in range(sim.schedule.depth + 2):
        out = sim.step(None)
        if out is not None:
            outputs.append(out)
    reference = interpret_datapath(datapath, samples, tables)
    np.testing.assert_allclose(outputs, reference, rtol=1e-12)


def test_invalid_samples_rejected():
    _, datapath, tables, _, library = _setup(seed=16)
    with pytest.raises(CompilerError):
        simulate_cycles(datapath, library, tables, np.zeros(5))


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_pipeline_invariants_property(seed):
    """Depth-exact fill, II=1 and value correctness for any structure."""
    spn = random_spn(4, depth=3, n_bins=4, seed=seed)
    datapath = build_datapath(spn)
    tables = extract_lookup_tables(datapath, spn)
    schedule = schedule_datapath(datapath, CFP_LIBRARY)
    rng = np.random.default_rng(seed)
    samples = rng.integers(0, 4, size=(10, 4))
    results, cycles = simulate_cycles(datapath, CFP_LIBRARY, tables, samples)
    assert cycles[0] == schedule.depth
    assert np.all(np.diff(cycles) == 1)
    np.testing.assert_allclose(
        results, interpret_datapath(datapath, samples, tables), rtol=1e-10
    )
