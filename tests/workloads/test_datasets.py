"""Tests for dataset utilities and wire encodings."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.workloads import (
    Dataset,
    batch_iterator,
    decode_results,
    encode_samples,
    train_test_split,
)


class TestEncoding:
    def test_encode_layout_row_major(self):
        data = np.array([[1, 2, 3], [4, 5, 6]], dtype=np.uint8)
        assert encode_samples(data) == bytes([1, 2, 3, 4, 5, 6])

    def test_encode_accepts_float_integrals(self):
        data = np.array([[1.0, 2.0]])
        assert encode_samples(data) == bytes([1, 2])

    def test_encode_rejects_out_of_byte_range(self):
        with pytest.raises(ReproError):
            encode_samples(np.array([[256]]))
        with pytest.raises(ReproError):
            encode_samples(np.array([[-1]]))

    def test_encode_rejects_fractions(self):
        with pytest.raises(ReproError):
            encode_samples(np.array([[0.5]]))

    def test_encode_rejects_1d(self):
        with pytest.raises(ReproError):
            encode_samples(np.array([1, 2, 3]))

    def test_decode_results_roundtrip(self):
        values = np.array([-1.5, -2.25, -3.0])
        out = decode_results(values.tobytes(), n_samples=3)
        np.testing.assert_array_equal(out, values)

    def test_decode_rejects_ragged_payload(self):
        with pytest.raises(ReproError):
            decode_results(b"\x00" * 12)

    def test_decode_rejects_count_mismatch(self):
        with pytest.raises(ReproError):
            decode_results(np.zeros(2).tobytes(), n_samples=3)


class TestDataset:
    def test_geometry(self):
        ds = Dataset("d", np.zeros((5, 10), dtype=np.uint8))
        assert ds.n_rows == 5
        assert ds.n_variables == 10
        assert ds.sample_bytes == 10
        assert ds.transfer_bits_per_sample == 144

    def test_rejects_non_2d(self):
        with pytest.raises(ReproError):
            Dataset("d", np.zeros(5))


class TestBatchIterator:
    def test_covers_all_rows_in_order(self):
        data = np.arange(10)[:, np.newaxis]
        batches = list(batch_iterator(data, 3))
        assert [len(b) for b in batches] == [3, 3, 3, 1]
        np.testing.assert_array_equal(np.concatenate(batches), data)

    def test_batches_are_views(self):
        data = np.arange(10)[:, np.newaxis]
        first = next(iter(batch_iterator(data, 4)))
        assert first.base is not None
        assert np.shares_memory(first, data)

    def test_invalid_batch_size_rejected(self):
        with pytest.raises(ReproError):
            list(batch_iterator(np.zeros((4, 1)), 0))


class TestSplit:
    def test_partition_sizes(self):
        data = np.arange(100)[:, np.newaxis]
        train, test = train_test_split(data, test_fraction=0.2, seed=1)
        assert len(train) == 80
        assert len(test) == 20

    def test_partitions_disjoint_and_complete(self):
        data = np.arange(50)[:, np.newaxis]
        train, test = train_test_split(data, 0.3, seed=2)
        merged = sorted(np.concatenate([train, test]).ravel().tolist())
        assert merged == list(range(50))

    def test_deterministic(self):
        data = np.arange(30)[:, np.newaxis]
        a = train_test_split(data, 0.5, seed=9)
        b = train_test_split(data, 0.5, seed=9)
        np.testing.assert_array_equal(a[0], b[0])

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ReproError):
            train_test_split(np.zeros((10, 1)), 0.0)
        with pytest.raises(ReproError):
            train_test_split(np.zeros((10, 1)), 1.0)
