"""Tests for the synthetic NIPS bag-of-words generator."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.workloads import NipsCorpusConfig, synthesize_nips_corpus


def test_shape_and_dtype():
    config = NipsCorpusConfig(n_words=20, n_documents=100)
    data = synthesize_nips_corpus(config)
    assert data.shape == (100, 20)
    assert data.dtype == np.uint8


def test_deterministic_under_seed():
    config = NipsCorpusConfig(n_words=10, n_documents=50, seed=5)
    a = synthesize_nips_corpus(config)
    b = synthesize_nips_corpus(config)
    np.testing.assert_array_equal(a, b)


def test_different_seeds_differ():
    a = synthesize_nips_corpus(NipsCorpusConfig(n_words=10, n_documents=50, seed=1))
    b = synthesize_nips_corpus(NipsCorpusConfig(n_words=10, n_documents=50, seed=2))
    assert not np.array_equal(a, b)


def test_zipfian_rank_ordering():
    data = synthesize_nips_corpus(NipsCorpusConfig(n_words=50, n_documents=2000))
    means = data.astype(float).mean(axis=0)
    # Spearman-style check: rank correlation of mean count vs word rank
    # should be strongly negative.
    ranks = np.arange(50)
    corr = np.corrcoef(np.argsort(np.argsort(-means)), ranks)[0, 1]
    assert corr > 0.8


def test_topic_structure_induces_row_clusters():
    """Documents of the same topic should correlate more strongly."""
    config = NipsCorpusConfig(n_words=30, n_documents=1000, n_topics=2, seed=3)
    data = synthesize_nips_corpus(config).astype(float)
    # With 2 topics the document-document correlation matrix (on a
    # sample) should show a bimodal structure; a weak proxy: the top
    # principal component separates rows into 2 groups with distinct
    # word-block means.
    centred = data - data.mean(axis=0)
    u, s, vt = np.linalg.svd(centred, full_matrices=False)
    pc1 = centred @ vt[0]
    group = pc1 > np.median(pc1)
    means_a = data[group].mean(axis=0)
    means_b = data[~group].mean(axis=0)
    assert np.abs(means_a - means_b).max() > 1.0


def test_counts_fit_single_byte():
    data = synthesize_nips_corpus(NipsCorpusConfig(n_words=10, n_documents=500))
    assert data.max() <= 255
    assert data.min() >= 0


def test_invalid_configs_rejected():
    with pytest.raises(ReproError):
        NipsCorpusConfig(n_words=0)
    with pytest.raises(ReproError):
        NipsCorpusConfig(n_words=5, n_documents=0)
    with pytest.raises(ReproError):
        NipsCorpusConfig(n_words=5, n_topics=0)
    with pytest.raises(ReproError):
        NipsCorpusConfig(n_words=5, block_size=0)
