"""API quality gates: docstrings and export hygiene.

Meta-tests keeping the public surface documented: every module, every
public class/function and every public method must carry a docstring
(deliverable (e): "doc comments on every public item").
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name == "repro.__main__":
            continue  # executes the CLI on import
        yield importlib.import_module(info.name)


ALL_MODULES = list(_walk_modules())


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_every_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_public_callables_documented(module):
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-exports are documented at their home module
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
        if inspect.isclass(obj):
            for member_name, member in vars(obj).items():
                if member_name.startswith("_"):
                    continue
                if inspect.isfunction(member):
                    # getdoc() inherits docs from overridden bases.
                    doc = inspect.getdoc(getattr(obj, member_name))
                    if not (doc and doc.strip()):
                        undocumented.append(f"{name}.{member_name}")
    assert not undocumented, f"{module.__name__}: {undocumented}"


def test_all_exports_resolve():
    for module in ALL_MODULES:
        exported = getattr(module, "__all__", [])
        for name in exported:
            assert hasattr(module, name), f"{module.__name__}.__all__ lists {name}"


def test_top_level_all_is_complete():
    for name in repro.__all__:
        assert getattr(repro, name) is not None
