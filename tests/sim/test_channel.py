"""Unit tests for bounded FIFO channels."""

import pytest

from repro.errors import SimulationError
from repro.sim import Channel, ClosedChannelError, Engine


def test_put_then_get_delivers_item():
    eng = Engine()
    chan = Channel(eng, capacity=4)
    seen = []

    def producer(env):
        yield chan.put("x")

    def consumer(env):
        item = yield chan.get()
        seen.append(item)

    eng.process(producer(eng))
    eng.process(consumer(eng))
    eng.run()
    assert seen == ["x"]


def test_get_before_put_blocks_until_item():
    eng = Engine()
    chan = Channel(eng, capacity=1)
    seen = []

    def consumer(env):
        item = yield chan.get()
        seen.append((env.now, item))

    def producer(env):
        yield env.timeout(3.0)
        yield chan.put("late")

    eng.process(consumer(eng))
    eng.process(producer(eng))
    eng.run()
    assert seen == [(3.0, "late")]


def test_bounded_channel_backpressures_producer():
    eng = Engine()
    chan = Channel(eng, capacity=2)
    times = []

    def producer(env):
        for i in range(4):
            yield chan.put(i)
            times.append(env.now)

    def consumer(env):
        for _ in range(4):
            yield env.timeout(10.0)
            yield chan.get()

    eng.process(producer(eng))
    eng.process(consumer(eng))
    eng.run()
    # First two puts go straight into the buffer at t=0; the third must
    # wait for the first get at t=10, the fourth for the get at t=20.
    assert times == [0.0, 0.0, 10.0, 20.0]


def test_fifo_ordering_preserved():
    eng = Engine()
    chan = Channel(eng, capacity=3)
    seen = []

    def producer(env):
        for i in range(10):
            yield chan.put(i)

    def consumer(env):
        for _ in range(10):
            item = yield chan.get()
            seen.append(item)

    eng.process(producer(eng))
    eng.process(consumer(eng))
    eng.run()
    assert seen == list(range(10))


def test_multiple_getters_fifo():
    eng = Engine()
    chan = Channel(eng)
    seen = []

    def consumer(env, tag):
        item = yield chan.get()
        seen.append((tag, item))

    def producer(env):
        yield env.timeout(1.0)
        yield chan.put("first")
        yield chan.put("second")

    eng.process(consumer(eng, "g0"))
    eng.process(consumer(eng, "g1"))
    eng.process(producer(eng))
    eng.run()
    assert seen == [("g0", "first"), ("g1", "second")]


def test_unbounded_channel_never_blocks_producer():
    eng = Engine()
    chan = Channel(eng, capacity=None)
    times = []

    def producer(env):
        for i in range(100):
            yield chan.put(i)
        times.append(env.now)

    eng.process(producer(eng))
    eng.run()
    assert times == [0.0]
    assert len(chan) == 100


def test_close_drains_then_raises():
    eng = Engine()
    chan = Channel(eng, capacity=4)
    seen = []

    def producer(env):
        yield chan.put(1)
        yield chan.put(2)
        chan.close()

    def consumer(env):
        seen.append((yield chan.get()))
        seen.append((yield chan.get()))
        try:
            yield chan.get()
        except ClosedChannelError:
            seen.append("eos")

    eng.process(producer(eng))
    eng.process(consumer(eng))
    eng.run()
    assert seen == [1, 2, "eos"]


def test_close_fails_blocked_getter():
    eng = Engine()
    chan = Channel(eng)
    seen = []

    def consumer(env):
        try:
            yield chan.get()
        except ClosedChannelError:
            seen.append("closed")

    def closer(env):
        yield env.timeout(1.0)
        chan.close()

    eng.process(consumer(eng))
    eng.process(closer(eng))
    eng.run()
    assert seen == ["closed"]


def test_put_on_closed_channel_rejected():
    eng = Engine()
    chan = Channel(eng)
    chan.close()
    with pytest.raises(ClosedChannelError):
        chan.put(1)


def test_zero_capacity_rejected():
    eng = Engine()
    with pytest.raises(SimulationError):
        Channel(eng, capacity=0)


def test_counters_track_traffic():
    eng = Engine()
    chan = Channel(eng, capacity=8)

    def producer(env):
        for i in range(5):
            yield chan.put(i)

    def consumer(env):
        for _ in range(3):
            yield chan.get()

    eng.process(producer(eng))
    eng.process(consumer(eng))
    eng.run()
    assert chan.total_put == 5
    assert chan.total_got == 3
    assert len(chan) == 2
