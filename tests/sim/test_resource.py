"""Unit tests for SimResource and TokenBucket."""

import pytest

from repro.errors import SimulationError
from repro.sim import Engine, SimResource, TokenBucket


def test_resource_serialises_exclusive_access():
    eng = Engine()
    res = SimResource(eng, capacity=1)
    trace = []

    def worker(env, tag):
        grant = res.request()
        yield grant
        trace.append((tag, "start", env.now))
        yield env.timeout(5.0)
        trace.append((tag, "end", env.now))
        res.release()

    eng.process(worker(eng, "a"))
    eng.process(worker(eng, "b"))
    eng.run()
    assert trace == [
        ("a", "start", 0.0),
        ("a", "end", 5.0),
        ("b", "start", 5.0),
        ("b", "end", 10.0),
    ]


def test_resource_capacity_allows_parallelism():
    eng = Engine()
    res = SimResource(eng, capacity=2)
    starts = []

    def worker(env, tag):
        yield res.request()
        starts.append((tag, env.now))
        yield env.timeout(5.0)
        res.release()

    for tag in range(3):
        eng.process(worker(eng, tag))
    eng.run()
    assert starts == [(0, 0.0), (1, 0.0), (2, 5.0)]


def test_release_without_request_rejected():
    eng = Engine()
    res = SimResource(eng)
    with pytest.raises(SimulationError):
        res.release()


def test_resource_queue_length_visible():
    eng = Engine()
    res = SimResource(eng, capacity=1)
    observed = []

    def holder(env):
        yield res.request()
        yield env.timeout(10.0)
        res.release()

    def contender(env):
        grant = res.request()
        yield grant
        res.release()

    def observer(env):
        yield env.timeout(1.0)
        observed.append((res.in_use, res.queue_length))

    eng.process(holder(eng))
    eng.process(contender(eng))
    eng.process(observer(eng))
    eng.run()
    assert observed == [(1, 1)]


def test_invalid_capacity_rejected():
    eng = Engine()
    with pytest.raises(SimulationError):
        SimResource(eng, capacity=0)


class TestTokenBucket:
    def test_burst_consumed_instantly(self):
        eng = Engine()
        bucket = TokenBucket(eng, rate=100.0, burst=50.0)
        times = []

        def proc(env):
            yield bucket.consume(50.0)
            times.append(env.now)

        eng.process(proc(eng))
        eng.run()
        assert times == [0.0]

    def test_sustained_rate_enforced(self):
        eng = Engine()
        bucket = TokenBucket(eng, rate=100.0, burst=1.0)
        times = []

        def proc(env):
            # 1000 bytes at 100 B/s with ~no burst: ~10 seconds.
            yield bucket.consume(1000.0)
            times.append(env.now)

        eng.process(proc(eng))
        eng.run()
        assert times[0] == pytest.approx(10.0, rel=0.01)

    def test_fifo_arbitration_between_consumers(self):
        eng = Engine()
        bucket = TokenBucket(eng, rate=10.0, burst=1e-9)
        done = []

        def proc(env, tag, amount):
            yield bucket.consume(amount)
            done.append((tag, env.now))

        eng.process(proc(eng, "big", 100.0))
        eng.process(proc(eng, "small", 10.0))
        eng.run()
        # FIFO: the big request drains first (10 s), then the small (1 s).
        assert done[0][0] == "big"
        assert done[0][1] == pytest.approx(10.0, rel=0.01)
        assert done[1][1] == pytest.approx(11.0, rel=0.01)

    def test_tokens_refill_between_requests(self):
        eng = Engine()
        bucket = TokenBucket(eng, rate=100.0, burst=100.0)
        times = []

        def proc(env):
            yield bucket.consume(100.0)  # drains burst at t=0
            yield env.timeout(1.0)  # refills fully (100 tokens)
            yield bucket.consume(100.0)  # instant again
            times.append(env.now)

        eng.process(proc(eng))
        eng.run()
        assert times == [1.0]

    def test_total_consumed_tracked(self):
        eng = Engine()
        bucket = TokenBucket(eng, rate=100.0, burst=100.0)

        def proc(env):
            yield bucket.consume(30.0)
            yield bucket.consume(20.0)

        eng.process(proc(eng))
        eng.run()
        assert bucket.total_consumed == pytest.approx(50.0)

    def test_invalid_parameters_rejected(self):
        eng = Engine()
        with pytest.raises(SimulationError):
            TokenBucket(eng, rate=0.0, burst=1.0)
        with pytest.raises(SimulationError):
            TokenBucket(eng, rate=1.0, burst=0.0)
        bucket = TokenBucket(eng, rate=1.0, burst=1.0)
        with pytest.raises(SimulationError):
            bucket.consume(-1.0)
