"""Unit tests for measurement probes."""

import pytest

from repro.sim import Counter, Engine, ThroughputProbe, UtilizationProbe


class TestCounter:
    def test_add_and_reset(self):
        counter = Counter("c")
        counter.add()
        counter.add(4)
        assert counter.value == 5
        counter.reset()
        assert counter.value == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Counter().add(-1)


class TestThroughputProbe:
    def test_rate_over_window(self):
        eng = Engine()
        probe = ThroughputProbe(eng)

        def proc(env):
            probe.record(100)
            yield env.timeout(2.0)
            probe.record(300)

        eng.run(until_event=eng.process(proc(eng)))
        assert probe.total == 400
        assert probe.rate() == pytest.approx(200.0)

    def test_rate_zero_before_samples(self):
        probe = ThroughputProbe(Engine())
        assert probe.rate() == 0.0

    def test_rate_over_explicit_duration(self):
        probe = ThroughputProbe(Engine())
        probe.record(500)
        assert probe.rate_over(5.0) == pytest.approx(100.0)
        with pytest.raises(ValueError):
            probe.rate_over(0.0)

    def test_negative_sample_rejected(self):
        with pytest.raises(ValueError):
            ThroughputProbe(Engine()).record(-1)


class TestUtilizationProbe:
    def test_busy_idle_cycle(self):
        eng = Engine()
        probe = UtilizationProbe(eng)

        def proc(env):
            probe.busy()
            yield env.timeout(3.0)
            probe.idle()
            yield env.timeout(1.0)

        eng.run(until_event=eng.process(proc(eng)))
        assert probe.utilization() == pytest.approx(0.75)

    def test_open_interval_counts(self):
        eng = Engine()
        probe = UtilizationProbe(eng)

        def proc(env):
            yield env.timeout(1.0)
            probe.busy()
            yield env.timeout(1.0)

        eng.run(until_event=eng.process(proc(eng)))
        assert probe.utilization() == pytest.approx(0.5)

    def test_idempotent_marks(self):
        eng = Engine()
        probe = UtilizationProbe(eng)
        probe.busy()
        probe.busy()  # no-op
        probe.idle()
        probe.idle()  # no-op
        assert probe.utilization() == 0.0  # zero elapsed time

    def test_zero_window(self):
        probe = UtilizationProbe(Engine())
        assert probe.utilization() == 0.0
