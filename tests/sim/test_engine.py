"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim import Engine
from repro.sim.engine import Interrupt


def test_empty_run_finishes_at_time_zero():
    eng = Engine()
    eng.run()
    assert eng.now == 0.0


def test_timeout_advances_clock():
    eng = Engine()
    seen = []

    def proc(env):
        yield env.timeout(2.5)
        seen.append(env.now)

    eng.process(proc(eng))
    eng.run()
    assert seen == [2.5]
    assert eng.now == 2.5


def test_timeout_carries_value():
    eng = Engine()
    seen = []

    def proc(env):
        value = yield env.timeout(1.0, value="payload")
        seen.append(value)

    eng.process(proc(eng))
    eng.run()
    assert seen == ["payload"]


def test_negative_timeout_rejected():
    eng = Engine()
    with pytest.raises(SimulationError):
        eng.timeout(-1.0)


def test_events_fire_in_time_order():
    eng = Engine()
    order = []

    def proc(env, delay, tag):
        yield env.timeout(delay)
        order.append(tag)

    eng.process(proc(eng, 3.0, "c"))
    eng.process(proc(eng, 1.0, "a"))
    eng.process(proc(eng, 2.0, "b"))
    eng.run()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_fire_in_fifo_order():
    eng = Engine()
    order = []

    def proc(env, tag):
        yield env.timeout(1.0)
        order.append(tag)

    for tag in range(5):
        eng.process(proc(eng, tag))
    eng.run()
    assert order == [0, 1, 2, 3, 4]


def test_process_return_value_propagates_to_waiter():
    eng = Engine()
    seen = []

    def child(env):
        yield env.timeout(1.0)
        return 42

    def parent(env):
        result = yield env.process(child(env))
        seen.append(result)

    eng.process(parent(eng))
    eng.run()
    assert seen == [42]


def test_run_until_time_stops_clock_exactly():
    eng = Engine()

    def proc(env):
        yield env.timeout(10.0)

    eng.process(proc(eng))
    eng.run(until=4.0)
    assert eng.now == 4.0
    eng.run()
    assert eng.now == 10.0


def test_run_until_event_returns_value():
    eng = Engine()

    def child(env):
        yield env.timeout(2.0)
        return "done"

    proc = eng.process(child(eng))
    assert eng.run(until_event=proc) == "done"
    assert eng.now == 2.0


def test_run_until_event_reraises_failure():
    eng = Engine()

    def child(env):
        yield env.timeout(1.0)
        raise ValueError("boom")

    proc = eng.process(child(eng))
    with pytest.raises(ValueError, match="boom"):
        eng.run(until_event=proc)


def test_unwaited_process_failure_surfaces():
    eng = Engine()

    def child(env):
        yield env.timeout(1.0)
        raise ValueError("lost")

    eng.process(child(eng))
    with pytest.raises(ValueError, match="lost"):
        eng.run()


def test_yielding_non_event_is_an_error():
    eng = Engine()

    def bad(env):
        yield 17

    eng.process(bad(eng))
    with pytest.raises(SimulationError, match="must yield Event"):
        eng.run()


def test_event_succeed_twice_rejected():
    eng = Engine()
    event = eng.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_event_fail_requires_exception():
    eng = Engine()
    with pytest.raises(SimulationError):
        eng.event().fail("not an exception")  # type: ignore[arg-type]


def test_waiting_on_already_processed_event():
    eng = Engine()
    seen = []
    event = eng.event()
    event.succeed("early")
    eng.run()  # process the event with no waiters

    def late(env):
        value = yield event
        seen.append((env.now, value))

    eng.process(late(eng))
    eng.run()
    assert seen == [(0.0, "early")]


def test_all_of_collects_values_in_order():
    eng = Engine()
    seen = []

    def child(env, delay, value):
        yield env.timeout(delay)
        return value

    def parent(env):
        procs = [
            env.process(child(env, 3.0, "slow")),
            env.process(child(env, 1.0, "fast")),
        ]
        values = yield env.all_of(procs)
        seen.append((env.now, values))

    eng.process(parent(eng))
    eng.run()
    assert seen == [(3.0, ["slow", "fast"])]


def test_all_of_empty_triggers_immediately():
    eng = Engine()
    seen = []

    def parent(env):
        values = yield env.all_of([])
        seen.append(values)

    eng.process(parent(eng))
    eng.run()
    assert seen == [[]]


def test_any_of_returns_first_index_and_value():
    eng = Engine()
    seen = []

    def child(env, delay, value):
        yield env.timeout(delay)
        return value

    def parent(env):
        procs = [
            env.process(child(env, 3.0, "slow")),
            env.process(child(env, 1.0, "fast")),
        ]
        result = yield env.any_of(procs)
        seen.append((env.now, result))

    eng.process(parent(eng))
    eng.run()
    assert seen == [(1.0, (1, "fast"))]


def test_interrupt_wakes_sleeping_process():
    eng = Engine()
    seen = []

    def sleeper(env):
        try:
            yield env.timeout(100.0)
        except Interrupt as intr:
            seen.append((env.now, intr.cause))

    def interrupter(env, victim):
        yield env.timeout(2.0)
        victim.interrupt("wakeup")

    victim = eng.process(sleeper(eng))
    eng.process(interrupter(eng, victim))
    eng.run()
    assert seen == [(2.0, "wakeup")]


def test_interrupt_finished_process_rejected():
    eng = Engine()

    def quick(env):
        yield env.timeout(0.0)

    proc = eng.process(quick(eng))
    eng.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_peek_reports_next_event_time():
    eng = Engine()

    def proc(env):
        yield env.timeout(5.0)

    eng.process(proc(eng))
    # The process-start init event is at t=0.
    assert eng.peek() == 0.0
    eng.run()
    assert eng.peek() == float("inf")


def test_nested_processes_compose():
    eng = Engine()
    trace = []

    def leaf(env, tag):
        yield env.timeout(1.0)
        trace.append(tag)
        return tag

    def mid(env):
        a = yield env.process(leaf(env, "a"))
        b = yield env.process(leaf(env, "b"))
        return a + b

    def root(env):
        result = yield env.process(mid(env))
        trace.append(result)

    eng.process(root(eng))
    eng.run()
    assert trace == ["a", "b", "ab"]
    assert eng.now == 2.0


def test_run_until_past_time_rejected():
    eng = Engine()

    def proc(env):
        yield env.timeout(5.0)

    eng.process(proc(eng))
    eng.run()
    with pytest.raises(SimulationError):
        eng.run(until=1.0)
