"""Unit tests for the span tracer."""

import pytest

from repro.errors import SimulationError
from repro.sim import Engine, Tracer


def test_begin_end_records_span():
    eng = Engine()
    tracer = Tracer(eng)

    def proc(env):
        tracer.begin("pe0", "job")
        yield env.timeout(2.0)
        tracer.end("pe0", "job")

    eng.run(until_event=eng.process(proc(eng)))
    assert len(tracer.spans) == 1
    span = tracer.spans[0]
    assert span.begin == 0.0
    assert span.end == 2.0
    assert span.duration == 2.0


def test_end_without_begin_rejected():
    tracer = Tracer(Engine())
    with pytest.raises(SimulationError):
        tracer.end("t", "x")


def test_reentrant_same_label_spans_both_record():
    """Overlapping spans with the same (track, label) key each record
    their own interval (two in-flight DMA transfers may share a label)."""
    eng = Engine()
    tracer = Tracer(eng)

    def proc(env):
        first = tracer.begin("dma", "xfer")
        yield env.timeout(1.0)
        second = tracer.begin("dma", "xfer")  # first still open
        yield env.timeout(1.0)
        first.end()
        yield env.timeout(1.0)
        second.end()

    eng.run(until_event=eng.process(proc(eng)))
    assert [(s.begin, s.end) for s in tracer.spans] == [(0.0, 2.0), (1.0, 3.0)]


def test_begin_returns_handle_and_end_closes_most_recent():
    """tracer.end(track, label) stays backward compatible: it closes
    the most recently opened span with that key."""
    eng = Engine()
    tracer = Tracer(eng)

    def proc(env):
        tracer.begin("t", "x")
        yield env.timeout(1.0)
        tracer.begin("t", "x")
        yield env.timeout(1.0)
        tracer.end("t", "x")  # closes the second (begin=1.0)
        yield env.timeout(1.0)
        tracer.end("t", "x")  # closes the first (begin=0.0)

    eng.run(until_event=eng.process(proc(eng)))
    assert [(s.begin, s.end) for s in tracer.spans] == [(1.0, 2.0), (0.0, 3.0)]


def test_span_handle_double_end_rejected():
    tracer = Tracer(Engine())
    handle = tracer.begin("t", "x")
    assert not handle.closed
    handle.end()
    assert handle.closed
    with pytest.raises(SimulationError, match="already ended"):
        handle.end()
    # The key's stack is gone too: a bare end() has nothing to close.
    with pytest.raises(SimulationError, match="never opened"):
        tracer.end("t", "x")


def test_record_validates_ordering():
    tracer = Tracer(Engine())
    with pytest.raises(SimulationError):
        tracer.record("t", "x", 2.0, 1.0)


def test_busy_time_merges_overlaps():
    tracer = Tracer(Engine())
    tracer.record("t", "a", 0.0, 2.0)
    tracer.record("t", "b", 1.0, 3.0)  # overlapping
    tracer.record("t", "c", 5.0, 6.0)  # disjoint
    assert tracer.busy_time("t") == pytest.approx(4.0)


def test_overlap_time_between_tracks():
    tracer = Tracer(Engine())
    tracer.record("a", "x", 0.0, 4.0)
    tracer.record("b", "y", 2.0, 6.0)
    assert tracer.overlap_time("a", "b") == pytest.approx(2.0)
    assert tracer.overlap_time("b", "a") == pytest.approx(2.0)


def test_tracks_in_first_appearance_order():
    tracer = Tracer(Engine())
    tracer.record("beta", "x", 0, 1)
    tracer.record("alpha", "y", 1, 2)
    tracer.record("beta", "z", 2, 3)
    assert tracer.tracks() == ["beta", "alpha"]


def test_timeline_rendering():
    tracer = Tracer(Engine())
    tracer.record("pe0", "j", 0.0, 0.5)
    tracer.record("dma", "t", 0.5, 1.0)
    text = tracer.timeline(width=10)
    lines = text.splitlines()
    assert len(lines) == 3
    assert "pe0" in lines[1] and "#" in lines[1]
    # pe0 busy in the first half only.
    row = lines[1].split("|")[1]
    assert row[:5].count("#") == 5
    assert row[5:].count("#") == 0


def test_empty_timeline():
    """Regression: an empty tracer renders a clear one-line message
    instead of raising on the max() of zero spans."""
    tracer = Tracer(Engine())
    assert tracer.timeline() == "(no spans recorded)"
    assert tracer.timeline(width=7, until=5.0) == "(no spans recorded)"


def test_zero_duration_span_is_rendered():
    """Regression: an instantaneous span must still paint one cell."""
    tracer = Tracer(Engine())
    tracer.record("t", "tick", 0.5, 0.5)
    tracer.record("t", "pad", 0.0, 0.1)  # sets the horizon context
    row = tracer.timeline(width=10, until=1.0).splitlines()[1].split("|")[1]
    assert row[5] == "#"


def test_span_at_horizon_is_rendered():
    """Regression: a span beginning exactly at the horizon used to be
    pushed past the last column and vanish."""
    tracer = Tracer(Engine())
    tracer.record("t", "edge", 1.0, 1.0)
    row = tracer.timeline(width=10, until=1.0).splitlines()[1].split("|")[1]
    assert row[9] == "#"


def test_span_past_horizon_is_skipped():
    tracer = Tracer(Engine())
    tracer.record("t", "late", 2.0, 3.0)
    tracer.record("t", "in", 0.0, 0.5)
    row = tracer.timeline(width=10, until=1.0).splitlines()[1].split("|")[1]
    assert row == "#####     "


def test_sub_column_span_is_visible():
    """A span much shorter than one column still paints its cell."""
    tracer = Tracer(Engine())
    tracer.record("t", "blip", 0.301, 0.302)
    row = tracer.timeline(width=10, until=1.0).splitlines()[1].split("|")[1]
    assert row.count("#") == 1
    assert row[3] == "#"


def test_runtime_tracing_integration():
    """The runtime's tracer records PE and DMA tracks whose busy times
    are consistent with the run."""
    from repro.compiler import compile_core, compose_design
    from repro.host import InferenceJobConfig, InferenceRuntime, SimulatedDevice
    from repro.platforms.specs import XUPVVH_HBM_PLATFORM
    from repro.spn import nips_benchmark

    core = compile_core(nips_benchmark("NIPS10").spn, "cfp")
    device = SimulatedDevice(compose_design(core, 1, XUPVVH_HBM_PLATFORM))
    tracer = Tracer(device.env)
    runtime = InferenceRuntime(
        device, InferenceJobConfig(threads_per_pe=2), tracer=tracer
    )
    stats = runtime.run_timing_only(500_000)
    assert set(tracer.tracks()) == {"dma h2d", "pe0", "dma d2h"}
    assert tracer.busy_time("pe0") <= stats.elapsed_seconds * 1.001
    # Two threads: transfers overlap compute.
    assert tracer.overlap_time("dma h2d", "pe0") > 0


def test_forced_burst_granular_restored_when_run_raises():
    """Regression: a tracer forces the burst-granular core model for
    the run; if the run dies mid-flight (impossible allocation), the
    cores must still be restored to fast-forwarding."""
    from repro.compiler import compile_core, compose_design
    from repro.errors import AllocationError
    from repro.host import InferenceJobConfig, InferenceRuntime, SimulatedDevice
    from repro.host.memory_manager import DeviceMemoryManager
    from repro.platforms.specs import XUPVVH_HBM_PLATFORM
    from repro.spn import nips_benchmark

    core = compile_core(nips_benchmark("NIPS10").spn, "cfp")
    device = SimulatedDevice(compose_design(core, 1, XUPVVH_HBM_PLATFORM))
    # No buffer can ever fit: the run raises inside _execute.
    device.memory_manager = DeviceMemoryManager(n_blocks=1, block_capacity=256)
    tracer = Tracer(device.env)
    runtime = InferenceRuntime(
        device, InferenceJobConfig(threads_per_pe=1), tracer=tracer
    )
    assert not device.cores[0].burst_granular
    with pytest.raises(AllocationError):
        runtime.run_timing_only(10_000)
    assert not device.cores[0].burst_granular
