"""Tests for the open-loop load generator.

The arrival processes are checked statistically (deterministic per
seed, right mean rate), the percentile reduction against hand-computed
nearest-rank values on known traces, and the end-to-end open-loop run
for its accounting contract — including the acceptance behaviour the
serving layer exists for: mean batch size grows with offered load, and
low-load p99 respects the SLO.
"""

import asyncio

import numpy as np
import pytest

from repro.errors import ServingError
from repro.serving.broker import MicroBatchBroker
from repro.serving.loadgen import (
    LoadResult,
    diurnal_arrivals,
    format_load_results,
    percentile_summary,
    poisson_arrivals,
    run_open_loop,
)
from tests.serving.test_broker import FakeEngine


class TestArrivals:
    def test_poisson_deterministic_sorted_and_bounded(self):
        a = poisson_arrivals(1000.0, 2.0, seed=5)
        b = poisson_arrivals(1000.0, 2.0, seed=5)
        assert np.array_equal(a, b)
        assert np.all(np.diff(a) >= 0)
        assert a[0] >= 0 and a[-1] < 2.0
        # ~2000 expected; 6-sigma bounds
        assert 1700 < a.size < 2300
        assert not np.array_equal(a, poisson_arrivals(1000.0, 2.0, seed=6))

    def test_poisson_rejects_bad_parameters(self):
        with pytest.raises(ServingError, match="rate_rps"):
            poisson_arrivals(0.0, 1.0)
        with pytest.raises(ServingError, match="duration_s"):
            poisson_arrivals(10.0, 0.0)

    def test_diurnal_mean_rate_and_modulation(self):
        a = diurnal_arrivals(1000.0, 4.0, peak_ratio=4.0, cycles=1.0, seed=9)
        # Mean offered rate is preserved (~4000 arrivals)
        assert 3400 < a.size < 4600
        # Trough at the start of the cycle, peak mid-cycle: the middle
        # half of the run must hold clearly more than half the traffic.
        mid = np.count_nonzero((a > 1.0) & (a < 3.0))
        assert mid / a.size > 0.6

    def test_diurnal_rejects_bad_parameters(self):
        with pytest.raises(ServingError, match="peak_ratio"):
            diurnal_arrivals(10.0, 1.0, peak_ratio=0.5)
        with pytest.raises(ServingError, match="cycles"):
            diurnal_arrivals(10.0, 1.0, cycles=0.0)


class TestPercentiles:
    def test_nearest_rank_on_known_trace(self):
        # method="higher": p50 of [10,20,30,40] is the 3rd value.
        summary = percentile_summary([40.0, 10.0, 30.0, 20.0])
        assert summary["p50"] == 30.0
        assert summary["p95"] == 40.0
        assert summary["p99"] == 40.0
        assert summary["mean"] == 25.0
        assert summary["max"] == 40.0

    def test_nearest_rank_on_1_to_100(self):
        summary = percentile_summary(np.arange(1.0, 101.0))
        assert summary["p50"] == 51.0
        assert summary["p95"] == 96.0
        assert summary["p99"] == 100.0

    def test_percentiles_are_observed_values(self):
        # Never an interpolation below an observed tail value.
        lat = [0.001] * 99 + [5.0]
        assert percentile_summary(lat)["p99"] == 5.0

    def test_empty_sample_raises(self):
        with pytest.raises(ServingError, match="zero completions"):
            percentile_summary([])

    def test_single_sample_is_every_percentile(self):
        # n=1: every nearest-rank percentile is the one observation.
        summary = percentile_summary([7.25])
        assert summary["p50"] == 7.25
        assert summary["p95"] == 7.25
        assert summary["p99"] == 7.25
        assert summary["mean"] == 7.25
        assert summary["max"] == 7.25

    def test_two_samples_take_the_higher_rank(self):
        # n=2, method="higher": the 50th percentile's fractional rank
        # (0.5 of the way from 1.0 to 9.0) rounds *up* to the second
        # observation — never an interpolated 5.0.
        summary = percentile_summary([9.0, 1.0])
        assert summary["p50"] == 9.0
        assert summary["p95"] == 9.0
        assert summary["p99"] == 9.0
        assert summary["mean"] == 5.0
        assert summary["max"] == 9.0

    def test_all_equal_samples_are_degenerate(self):
        summary = percentile_summary([4.0] * 5)
        assert summary == {
            "p50": 4.0, "p95": 4.0, "p99": 4.0, "mean": 4.0, "max": 4.0
        }


def drive(engine, arrivals, **broker_kwargs):
    data = np.arange(12.0, dtype=np.float64).reshape(4, 3)

    async def scenario():
        async with MicroBatchBroker(engine, **broker_kwargs) as broker:
            return await run_open_loop(
                broker, data, arrivals, name="t", slo_ms=200.0
            )

    return asyncio.run(scenario())


class TestOpenLoop:
    def test_accounting_on_a_known_trace(self):
        engine = FakeEngine()
        arrivals = np.linspace(0.0, 0.2, 21)  # 100 rps, 21 requests
        result = drive(engine, arrivals, max_batch_rows=64, max_wait_ms=2.0)
        assert result.n_sent == 21
        assert result.n_ok == 21
        assert result.n_rejected == 0 and result.n_failed == 0
        assert result.goodput_rps > 0
        assert result.offered_rps == pytest.approx(21 / 0.2)
        assert result.slo_met is True
        assert sum(c[0] for c in engine.calls) == 21

    def test_mean_batch_size_grows_with_offered_load(self):
        """The acceptance criterion: adaptive micro-batching means a
        higher arrival rate coalesces into larger batches."""
        slow = drive(
            FakeEngine(delay_s=0.002),
            poisson_arrivals(150.0, 0.4, seed=3),
            max_batch_rows=512,
            max_wait_ms=5.0,
        )
        fast = drive(
            FakeEngine(delay_s=0.002),
            poisson_arrivals(4000.0, 0.4, seed=3),
            max_batch_rows=512,
            max_wait_ms=5.0,
        )
        assert fast.mean_batch_rows > 2 * slow.mean_batch_rows
        assert slow.slo_met and fast.slo_met

    def test_overload_sheds_instead_of_queueing(self):
        result = drive(
            FakeEngine(delay_s=0.05),
            np.zeros(64),  # a burst far beyond the queue bound
            max_batch_rows=8,
            max_wait_ms=2.0,
            max_queue_rows=16,
        )
        assert result.n_rejected > 0
        assert result.n_ok + result.n_rejected == 64
        # Everything admitted was answered within the bounded queue.
        assert result.n_failed == 0

    def test_query_mix_cycles_signatures_and_reports_values(self):
        """Mixed traffic: request i carries query_mix[i % len], the
        broker keeps the signatures in separate batches, and on_result
        hands back every answered (index, value) pair."""
        engine = FakeEngine()
        mix = [(None, None), ((0, 1), None), (None, -1.0)]
        answers = {}

        async def scenario():
            data = np.arange(12.0, dtype=np.float64).reshape(4, 3)
            async with MicroBatchBroker(
                engine, max_batch_rows=64, max_wait_ms=2.0
            ) as broker:
                return await run_open_loop(
                    broker,
                    data,
                    np.linspace(0.0, 0.1, 12),
                    name="mix",
                    query_mix=mix,
                    on_result=lambda i, value: answers.__setitem__(i, value),
                )

        result = asyncio.run(scenario())
        assert result.n_ok == 12
        signatures = {(marg, miss) for (_, marg, miss) in engine.calls}
        assert signatures == {(None, None), ((0, 1), None), (None, -1.0)}
        # Every answered request reported exactly once, with the
        # engine's value for its row (row i%4 starts at 3*(i%4)).
        assert sorted(answers) == list(range(12))
        assert all(answers[i] == (i % 4) * 30.0 for i in answers)

    def test_empty_query_mix_rejected(self):
        async def scenario():
            async with MicroBatchBroker(FakeEngine()) as broker:
                await run_open_loop(
                    broker, np.zeros((1, 3)), np.array([0.0]), query_mix=[]
                )

        with pytest.raises(ServingError, match="query_mix"):
            asyncio.run(scenario())

    def test_empty_trace_rejected(self):
        async def scenario():
            async with MicroBatchBroker(FakeEngine()) as broker:
                await run_open_loop(broker, np.zeros((1, 3)), np.array([]))

        with pytest.raises(ServingError, match="empty arrival trace"):
            asyncio.run(scenario())


class TestFormatting:
    def test_table_renders_slo_verdicts(self):
        rows = [
            LoadResult(
                name="poisson@100", offered_rps=100.0, duration_s=1.0,
                n_sent=100, n_ok=100, n_rejected=0, n_failed=0,
                goodput_rps=99.0, p50_ms=2.0, p95_ms=4.0, p99_ms=5.0,
                mean_batch_rows=1.5, slo_ms=50.0,
            ),
            LoadResult(
                name="poisson@9k", offered_rps=9000.0, duration_s=1.0,
                n_sent=9000, n_ok=7000, n_rejected=2000, n_failed=0,
                goodput_rps=7000.0, p50_ms=20.0, p95_ms=80.0, p99_ms=90.0,
                mean_batch_rows=400.0, slo_ms=50.0,
                shed_rate=2000 / 9000, burn_rate=23.4,
            ),
        ]
        table = format_load_results(rows)
        assert "poisson@100" in table and "poisson@9k" in table
        assert "ok" in table and "MISS" in table
        # Shed visibility: the overloaded point shows its shed *rate*
        # and its SLO burn rate right in the table.
        assert "22.2%" in table
        assert "23.40" in table
        assert "shed%" in table and "burn" in table
        lines = table.splitlines()
        assert all(len(line) <= 110 for line in lines)

    def test_result_to_dict_round_trips_json_natively(self):
        import json

        result = LoadResult(
            name="x", offered_rps=1.0, duration_s=1.0, n_sent=1, n_ok=1,
            n_rejected=0, n_failed=0, goodput_rps=1.0, p50_ms=1.0,
            p95_ms=1.0, p99_ms=1.0, mean_batch_rows=1.0,
        )
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["slo_met"] is None
        assert payload["n_ok"] == 1
