"""Tests for the micro-batching serving broker.

The broker's contract has three legs: *coalescing* (requests group
into batches on the max_batch_rows / max_wait_ms boundary, per query
signature), *admission control* (the bounded queue sheds with
:class:`ServingOverloadError` instead of growing latency without
bound), and *transparency* (results bit-identical to calling the plan
evaluator directly — the broker is transport, never arithmetic).
"""

import asyncio
import time

import numpy as np
import pytest

from repro.baselines.executor import ParallelPlanExecutor
from repro.errors import ReproError, ServingError, ServingOverloadError
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace_export import HostSpanRecorder
from repro.serving.broker import MicroBatchBroker
from repro.spn import random_spn
from repro.spn.plan import get_plan
from repro.spn.plan_eval import plan_log_likelihood


class FakeEngine:
    """Deterministic engine stub recording every batch it receives."""

    def __init__(self, n_variables=3, delay_s=0.0):
        self.n_variables = n_variables
        self.delay_s = delay_s
        self.calls = []

    def submit(self, data, *, marginalized=None, missing_value=None):
        self.calls.append((data.shape[0], marginalized, missing_value))
        if self.delay_s:
            time.sleep(self.delay_s)
        return data[:, 0].astype(np.float64) * 10.0


def run(coro):
    return asyncio.run(coro)


def rows(n, n_variables=3, base=0.0):
    return [np.full(n_variables, base + i, dtype=np.float64) for i in range(n)]


class TestCoalescing:
    def test_concurrent_requests_coalesce_into_one_batch(self):
        engine = FakeEngine()

        async def scenario():
            async with MicroBatchBroker(
                engine, max_batch_rows=100, max_wait_ms=20.0
            ) as broker:
                return await asyncio.gather(
                    *(broker.submit(row) for row in rows(8))
                )

        results = run(scenario())
        assert [call[0] for call in engine.calls] == [8]
        assert results == [i * 10.0 for i in range(8)]

    def test_full_batch_flushes_before_the_wait_timer(self):
        engine = FakeEngine()

        async def scenario():
            async with MicroBatchBroker(
                engine, max_batch_rows=4, max_wait_ms=10_000.0
            ) as broker:
                start = time.perf_counter()
                await asyncio.gather(*(broker.submit(row) for row in rows(8)))
                elapsed = time.perf_counter() - start
                assert broker.stats.flush_full == 2
                return elapsed

        elapsed = run(scenario())
        # With a 10 s wait window, only the size trigger can explain
        # the batches returning promptly.
        assert elapsed < 5.0
        assert [call[0] for call in engine.calls] == [4, 4]

    def test_max_wait_boundary_flushes_a_partial_batch(self):
        engine = FakeEngine()
        wait_ms = 60.0

        async def scenario():
            async with MicroBatchBroker(
                engine, max_batch_rows=1000, max_wait_ms=wait_ms
            ) as broker:
                start = time.perf_counter()
                await broker.submit(np.zeros(3))
                elapsed = time.perf_counter() - start
                assert broker.stats.flush_wait == 1
                assert broker.stats.flush_full == 0
                return elapsed

        elapsed = run(scenario())
        # The lone request cannot fill the batch: it must be answered
        # by the timer, i.e. no earlier than the wait window.
        assert elapsed >= wait_ms / 1e3 * 0.8
        assert engine.calls == [(1, None, None)]

    def test_slow_kernel_grows_the_next_batch(self):
        """While a batch computes, arrivals coalesce into the next one
        — the SLO-respecting flush still happens per window, but the
        dispatch queue is where adaptive batching comes from."""
        engine = FakeEngine(delay_s=0.08)

        async def scenario():
            async with MicroBatchBroker(
                engine, max_batch_rows=100, max_wait_ms=5.0
            ) as broker:
                first = asyncio.ensure_future(broker.submit(np.zeros(3)))
                await asyncio.sleep(0.03)  # first batch is now computing
                rest = [broker.submit(row) for row in rows(5, base=1.0)]
                await asyncio.gather(first, *rest)

        run(scenario())
        assert engine.calls[0][0] == 1
        assert len(engine.calls) == 2
        assert engine.calls[1][0] == 5

    def test_query_signatures_never_mix(self):
        engine = FakeEngine()

        async def scenario():
            async with MicroBatchBroker(
                engine, max_batch_rows=100, max_wait_ms=10.0
            ) as broker:
                await asyncio.gather(
                    broker.submit(np.zeros(3)),
                    broker.submit(np.zeros(3), marginalized=[1]),
                    broker.submit(np.zeros(3), missing_value=-1.0),
                    broker.submit(np.zeros(3), marginalized=[1]),
                )

        run(scenario())
        batches = sorted(engine.calls, key=repr)
        assert batches == [
            (1, None, -1.0),
            (1, None, None),
            (2, (1,), None),
        ]


class TestAdmissionControl:
    def test_overload_sheds_and_recovers(self):
        engine = FakeEngine(delay_s=0.1)
        metrics = MetricsRegistry()

        async def scenario():
            async with MicroBatchBroker(
                engine,
                max_batch_rows=4,
                max_wait_ms=5.0,
                max_queue_rows=4,
                metrics=metrics,
            ) as broker:
                # Fill the queue exactly: one full batch dispatches and
                # occupies the dispatch thread for 100 ms.
                admitted = [
                    asyncio.ensure_future(broker.submit(row))
                    for row in rows(4)
                ]
                await asyncio.sleep(0.02)
                with pytest.raises(ServingOverloadError, match="shed"):
                    await broker.submit(np.zeros(3))
                assert broker.stats.rejected == 1
                await asyncio.gather(*admitted)
                # The queue drained: the broker accepts again.
                await broker.submit(np.ones(3))

        run(scenario())
        assert metrics.counter("serving.rejected").value == 1
        assert metrics.counter("serving.requests").value == 6
        assert metrics.gauge("serving.queue_rows").maximum == 4

    def test_queue_smaller_than_a_batch_is_rejected(self):
        with pytest.raises(ServingError, match="max_queue_rows"):
            MicroBatchBroker(FakeEngine(), max_batch_rows=64, max_queue_rows=8)


class TestTransparency:
    """Broker answers == direct plan evaluation, bit for bit."""

    @pytest.fixture(scope="class")
    def spn_setup(self):
        spn = random_spn(5, depth=3, n_bins=6, seed=17)
        rng = np.random.default_rng(17)
        data = rng.integers(0, 6, size=(41, 5)).astype(np.float64)
        return spn, data

    @pytest.mark.parametrize(
        "query",
        [
            {},
            {"marginalized": (0, 3)},
            {"missing_value": 2.0},
        ],
        ids=["likelihood", "marginal", "missing"],
    )
    def test_bit_identical_across_batch_seams(self, spn_setup, query):
        spn, data = spn_setup
        reference = plan_log_likelihood(get_plan(spn), data, **query)

        async def scenario():
            with ParallelPlanExecutor(spn, n_workers=1) as executor:
                # max_batch_rows=7 forces seams at every 7th request —
                # no batching split may change any row's arithmetic.
                async with MicroBatchBroker(
                    executor, max_batch_rows=7, max_wait_ms=10.0
                ) as broker:
                    return await asyncio.gather(
                        *(broker.submit(row, **query) for row in data)
                    )

        results = run(scenario())
        assert np.array_equal(np.array(results), reference)
        assert len(results) == data.shape[0]


class TestLifecycle:
    def test_close_flushes_pending_requests(self):
        engine = FakeEngine()

        async def scenario():
            broker = MicroBatchBroker(
                engine, max_batch_rows=100, max_wait_ms=10_000.0
            )
            pending = [
                asyncio.ensure_future(broker.submit(row)) for row in rows(3)
            ]
            await asyncio.sleep(0)  # let the submits enqueue
            await broker.close()
            return await asyncio.gather(*pending)

        results = run(scenario())
        assert results == [0.0, 10.0, 20.0]

    def test_close_without_flush_rejects_pending_cleanly(self):
        engine = FakeEngine()

        async def scenario():
            broker = MicroBatchBroker(
                engine, max_batch_rows=100, max_wait_ms=10_000.0
            )
            pending = [
                asyncio.ensure_future(broker.submit(row)) for row in rows(3)
            ]
            await asyncio.sleep(0)
            await broker.close(flush=False)
            return await asyncio.gather(*pending, return_exceptions=True)

        results = run(scenario())
        assert all(isinstance(r, ServingOverloadError) for r in results)
        assert engine.calls == []

    def test_submit_after_close_raises_serving_error(self):
        async def scenario():
            broker = MicroBatchBroker(FakeEngine())
            await broker.close()
            await broker.close()  # idempotent
            with pytest.raises(ServingError, match="close"):
                await broker.submit(np.zeros(3))

        run(scenario())

    def test_closed_executor_surfaces_repro_error_not_traceback(self):
        """The broker's shutdown-ordering bug class: an engine closed
        under a live broker must answer requests with a ReproError
        naming close(), never an AttributeError/broken pipe."""
        spn = random_spn(4, depth=2, n_bins=4, seed=3)

        async def scenario():
            executor = ParallelPlanExecutor(spn, n_workers=1)
            executor.close()
            async with MicroBatchBroker(
                executor, max_wait_ms=1.0
            ) as broker:
                with pytest.raises(ReproError, match="close"):
                    await broker.submit(np.zeros(4))

        run(scenario())

    def test_engine_failures_reject_only_that_batch(self):
        class FlakyEngine(FakeEngine):
            def submit(self, data, **kwargs):
                if len(self.calls) == 0:
                    self.calls.append(None)
                    raise ReproError("injected engine failure")
                return super().submit(data, **kwargs)

        engine = FlakyEngine()

        async def scenario():
            async with MicroBatchBroker(
                engine, max_batch_rows=2, max_wait_ms=5.0
            ) as broker:
                with pytest.raises(ReproError, match="injected"):
                    await asyncio.gather(
                        broker.submit(np.zeros(3)), broker.submit(np.ones(3))
                    )
                # The broker survives: the next batch is served.
                assert await broker.submit(np.full(3, 2.0)) == 20.0
                assert broker.queued_rows == 0

        run(scenario())


class BlockingEngine(FakeEngine):
    """Lane-less engine whose submit blocks off-GIL, like a device
    round-trip: overlap across dispatch lanes is observable as wall
    time < serialized service time."""

    def __init__(self, n_variables=3, delay_s=0.05):
        super().__init__(n_variables=n_variables, delay_s=delay_s)


class TestPipelinedDatapath:
    """The PR 9 contract: write-once arenas, zero staged copies on the
    lane path, and n_lanes batches genuinely in flight at once."""

    def test_zero_copy_over_executor_lanes(self):
        """Executor-backed serving stages zero bytes: rows are written
        once into the lane arena the kernel evaluates in place."""
        spn = random_spn(5, depth=3, n_bins=6, seed=17)
        rng = np.random.default_rng(23)
        data = rng.integers(0, 6, size=(41, 5)).astype(np.float64)
        reference = plan_log_likelihood(get_plan(spn), data)
        metrics = MetricsRegistry()

        async def scenario():
            async with MicroBatchBroker(
                executor,
                max_batch_rows=7,
                max_wait_ms=10.0,
                n_lanes=2,
                metrics=metrics,
            ) as broker:
                assert broker.zero_copy
                return await asyncio.gather(
                    *(broker.submit(row) for row in data)
                )

        with ParallelPlanExecutor(spn, n_workers=1, metrics=metrics) as executor:
            results = run(scenario())
        assert np.array_equal(np.array(results), reference)
        assert metrics.counter("serving.staged_bytes_copied").value == 0
        assert metrics.counter("executor.staged_bytes_copied").value == 0
        assert metrics.counter("executor.pickled_array_bytes").value == 0

    def test_lane_less_engines_count_staged_bytes(self):
        """A compat engine cannot prove zero-copy end to end: the
        handed-off view is counted so the guard metric has teeth."""
        metrics = MetricsRegistry()

        async def scenario():
            async with MicroBatchBroker(
                FakeEngine(), max_batch_rows=4, max_wait_ms=5.0,
                metrics=metrics,
            ) as broker:
                assert not broker.zero_copy
                await asyncio.gather(*(broker.submit(row) for row in rows(4)))

        run(scenario())
        assert metrics.counter("serving.staged_bytes_copied").value == 4 * 3 * 8

    def test_n_lanes_overlap_in_flight_batches(self):
        """Two full batches against a 50 ms blocking engine finish in
        ~one service time with n_lanes=2 — they ran concurrently."""
        engine = BlockingEngine(delay_s=0.05)

        async def scenario(n_lanes):
            async with MicroBatchBroker(
                engine, max_batch_rows=4, max_wait_ms=50.0, n_lanes=n_lanes
            ) as broker:
                t0 = time.perf_counter()
                await asyncio.gather(*(broker.submit(row) for row in rows(8)))
                return time.perf_counter() - t0

        elapsed = run(scenario(2))
        # Serialized: >= 100 ms.  Pipelined: ~50 ms + overhead.
        assert elapsed < 0.09, f"batches did not overlap: {elapsed:.3f}s"

    def test_arena_backpressure_waits_then_serves(self):
        """When the whole ring is busy, admitted requests wait for an
        arena (counted) instead of allocating — and all get answered."""
        engine = FakeEngine(delay_s=0.02)
        metrics = MetricsRegistry()

        async def scenario():
            async with MicroBatchBroker(
                engine,
                max_batch_rows=4,
                max_wait_ms=2.0,
                max_queue_rows=1000,
                n_lanes=1,
                metrics=metrics,
            ) as broker:
                # 3 arenas' worth in one burst against a 2-arena ring.
                results = await asyncio.gather(
                    *(broker.submit(row) for row in rows(12))
                )
                assert broker.stats.arena_waits > 0
                return results

        results = run(scenario())
        assert len(results) == 12
        assert metrics.counter("serving.arena_waits").value > 0
        assert metrics.counter("serving.rejected").value == 0

    @pytest.mark.parametrize(
        "query",
        [
            {},
            {"marginalized": (0, 3)},
            {"missing_value": 2.0},
        ],
        ids=["likelihood", "marginal", "missing"],
    )
    def test_bit_identical_across_lanes_and_seams(self, query):
        """Acceptance criterion: 3 lanes, 7-row seams, every query
        type — answers identical to plan_eval however batches land."""
        spn = random_spn(5, depth=3, n_bins=6, seed=29)
        rng = np.random.default_rng(31)
        data = rng.integers(0, 6, size=(53, 5)).astype(np.float64)
        reference = plan_log_likelihood(get_plan(spn), data, **query)

        async def scenario():
            async with MicroBatchBroker(
                executor, max_batch_rows=7, max_wait_ms=5.0, n_lanes=3
            ) as broker:
                return await asyncio.gather(
                    *(broker.submit(row, **query) for row in data)
                )

        with ParallelPlanExecutor(spn, n_workers=1, max_lanes=4) as executor:
            results = run(scenario())
        assert np.array_equal(np.array(results), reference)


class TestValidationAndObservability:
    def test_row_validation(self):
        async def scenario():
            async with MicroBatchBroker(FakeEngine()) as broker:
                with pytest.raises(ServingError, match="shape"):
                    await broker.submit(np.zeros(5))
                with pytest.raises(ServingError, match="numeric"):
                    await broker.submit(["a", "b", "c"])

        run(scenario())

    def test_engine_without_width_needs_explicit_n_variables(self):
        with pytest.raises(ServingError, match="n_variables"):
            MicroBatchBroker(object())

    def test_metrics_and_batch_spans(self):
        metrics = MetricsRegistry()
        recorder = HostSpanRecorder()
        engine = FakeEngine()

        async def scenario():
            async with MicroBatchBroker(
                engine,
                max_batch_rows=4,
                max_wait_ms=5.0,
                metrics=metrics,
                host_tracer=recorder,
            ) as broker:
                await asyncio.gather(*(broker.submit(row) for row in rows(8)))

        run(scenario())
        assert metrics.counter("serving.requests").value == 8
        assert metrics.counter("serving.rows").value == 8
        assert metrics.counter("serving.batches").value == 2
        assert metrics.counter("serving.flush_full").value == 2
        assert metrics.counter("serving.batch_seconds").value > 0
        spans = [
            s for s in recorder.spans if s.track.startswith("serving lane")
        ]
        assert len(spans) == 2
        assert all(s.label.startswith("batch") for s in spans)
        assert all("4r" in s.label for s in spans)
        assert metrics.gauge("serving.arenas_busy").maximum >= 1


class TestRequestTracing:
    """Per-request stage histograms and sampled trace completion."""

    def test_stage_histograms_weigh_every_answered_request(self):
        from repro.obs.rtrace import STAGE_HISTOGRAMS

        metrics = MetricsRegistry()

        async def scenario():
            async with MicroBatchBroker(
                FakeEngine(), max_batch_rows=4, max_wait_ms=5.0,
                metrics=metrics,
            ) as broker:
                await asyncio.gather(*(broker.submit(row) for row in rows(8)))

        run(scenario())
        e2e = metrics.histogram("serving.e2e")
        assert e2e.count == 8
        for name, _, _ in STAGE_HISTOGRAMS:
            hist = metrics.histogram(f"serving.{name}")
            assert hist.count == 8, f"serving.{name} missed requests"
        # The five stages partition the path: their means sum to the
        # end-to-end mean (batch-wide stages weigh each request once).
        stage_mean = sum(
            metrics.histogram(f"serving.{name}").mean
            for name, _, _ in STAGE_HISTOGRAMS
        )
        assert stage_mean == pytest.approx(e2e.mean, rel=0.05)

    def test_sheds_record_latency_and_mark_traces(self):
        from repro.obs.rtrace import RequestTraceRecorder

        metrics = MetricsRegistry()
        rtrace = RequestTraceRecorder(sample_every=1)

        async def scenario():
            async with MicroBatchBroker(
                FakeEngine(delay_s=0.1),
                max_batch_rows=4,
                max_wait_ms=5.0,
                max_queue_rows=4,
                metrics=metrics,
                rtrace=rtrace,
            ) as broker:
                admitted = [
                    asyncio.ensure_future(broker.submit(row))
                    for row in rows(4)
                ]
                await asyncio.sleep(0.02)
                with pytest.raises(ServingOverloadError):
                    await broker.submit(np.zeros(3))
                await asyncio.gather(*admitted)

        run(scenario())
        assert metrics.histogram("serving.shed").count == 1
        shed_traces = [t for t in rtrace.traces if t.shed]
        assert len(shed_traces) == 1
        assert shed_traces[0].complete is not None

    def test_sampled_traces_complete_with_lane_and_batch(self):
        from repro.obs.rtrace import RequestTraceRecorder

        rtrace = RequestTraceRecorder(sample_every=1)

        async def scenario():
            async with MicroBatchBroker(
                FakeEngine(), max_batch_rows=4, max_wait_ms=5.0,
                rtrace=rtrace,
            ) as broker:
                await asyncio.gather(*(broker.submit(row) for row in rows(8)))

        run(scenario())
        completed = rtrace.completed()
        assert len(completed) == 8
        for trace in completed:
            assert trace.lane is not None
            assert trace.batch_id is not None
            stages = trace.stage_seconds()
            assert sum(stages.values()) == pytest.approx(
                trace.complete - trace.enqueue, abs=1e-9
            )

    def test_sampling_cadence_respected_under_load(self):
        from repro.obs.rtrace import RequestTraceRecorder

        rtrace = RequestTraceRecorder(sample_every=4)

        async def scenario():
            async with MicroBatchBroker(
                FakeEngine(), max_batch_rows=4, max_wait_ms=5.0,
                rtrace=rtrace,
            ) as broker:
                await asyncio.gather(*(broker.submit(row) for row in rows(16)))

        run(scenario())
        assert rtrace.seen == 16
        assert rtrace.sampled == 4
        assert len(rtrace.completed()) == 4

    def test_results_bit_identical_with_tracing_on_and_off(self):
        from repro.obs.rtrace import RequestTraceRecorder

        data = rows(8, base=3.0)

        async def scenario(**obs_kwargs):
            async with MicroBatchBroker(
                FakeEngine(), max_batch_rows=4, max_wait_ms=5.0, **obs_kwargs
            ) as broker:
                return await asyncio.gather(
                    *(broker.submit(row) for row in data)
                )

        bare = run(scenario())
        traced = run(
            scenario(
                metrics=MetricsRegistry(),
                rtrace=RequestTraceRecorder(sample_every=1),
            )
        )
        assert [v.tobytes() for v in np.asarray(bare, dtype=np.float64)] == [
            v.tobytes() for v in np.asarray(traced, dtype=np.float64)
        ]
