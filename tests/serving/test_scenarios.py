"""Tests for the ``repro serve`` scenario runner and selftest."""

import json

import pytest

from repro.errors import ServingError
from repro.serving.scenarios import run_serve, run_serve_selftest


class TestRunServe:
    def test_sweep_table_and_perfetto_spans(self, tmp_path):
        trace_path = tmp_path / "serve.perfetto.json"
        text, results = run_serve(
            "NIPS10",
            rates=(400.0,),
            duration_s=0.3,
            max_wait_ms=4.0,
            slo_ms=500.0,
            trace_out=str(trace_path),
        )
        assert "Serving sweep - NIPS10" in text
        assert "poisson@400" in text
        (result,) = results
        assert result.n_ok > 0
        assert result.n_rejected == 0
        assert result.mean_batch_rows >= 1.0
        # Acceptance criterion: serving batches are visible as spans in
        # the exported Perfetto trace.
        payload = json.loads(trace_path.read_text())
        events = payload["traceEvents"]
        span_names = [e["name"] for e in events if e.get("ph") == "X"]
        assert any(name.startswith("batch") for name in span_names)
        thread_names = [
            e["args"]["name"]
            for e in events
            if e.get("ph") == "M" and e.get("name") == "thread_name"
        ]
        assert any(name.startswith("serving lane") for name in thread_names)
        counters = {e["name"] for e in events if e.get("ph") == "C"}
        assert "serving.batches" in counters
        assert "serving.rejected" in counters

    def test_request_flows_ride_in_the_trace(self, tmp_path):
        trace_path = tmp_path / "serve.perfetto.json"
        text, results = run_serve(
            "NIPS10",
            rates=(400.0,),
            duration_s=0.3,
            max_wait_ms=4.0,
            slo_ms=500.0,
            trace_out=str(trace_path),
            trace_sample_every=1,
        )
        assert "request flows" in text
        payload = json.loads(trace_path.read_text())
        events = payload["traceEvents"]
        flows = [e for e in events if e.get("ph") in ("s", "t", "f")]
        assert flows, "sampled requests must export flow arrows"
        # Every flow id forms a complete start -> finish chain.
        by_id = {}
        for e in flows:
            by_id.setdefault(e["id"], []).append(e["ph"])
        for phases in by_id.values():
            assert phases.count("s") == 1 and phases.count("f") == 1
        # Every flow step binds inside an existing span on its track.
        spans = [e for e in events if e.get("ph") == "X"]
        for flow in flows:
            assert any(
                s["pid"] == flow["pid"] and s["tid"] == flow["tid"]
                and s["ts"] <= flow["ts"] <= s["ts"] + s["dur"]
                for s in spans
            ), f"dangling flow step: {flow}"

    def test_telemetry_stream_and_live_endpoint(self, tmp_path):
        import urllib.request

        telemetry_path = tmp_path / "telemetry.json"
        text, results = run_serve(
            "NIPS10",
            rates=(400.0,),
            duration_s=0.3,
            slo_ms=500.0,
            telemetry_out=str(telemetry_path),
        )
        assert "telemetry snapshot x" in text
        assert "SLO burn" in text
        payload = json.loads(telemetry_path.read_text())
        assert payload["schema_version"] == 1
        assert payload["metrics"]["counters"]["serving.requests"] > 0
        assert payload["metrics"]["histograms"]["serving.e2e"]["count"] > 0
        assert payload["slo"]["window_requests"] > 0
        # Port 0: the runner binds a free port and prints the URL; the
        # endpoint itself is covered by tests/obs/test_exporter.py.
        text2, _ = run_serve(
            "NIPS10", rates=(300.0,), duration_s=0.2, slo_ms=None,
            metrics_port=0,
        )
        assert "http://127.0.0.1:" in text2
        del urllib.request  # imported for parity with manual checks

    def test_shed_rate_reported_in_results(self):
        # Overload hard enough to shed: tiny queue, slow-ish engine.
        text, results = run_serve(
            "NIPS10",
            rates=(3000.0,),
            duration_s=0.3,
            max_batch_rows=32,
            max_queue_rows=32,
            slo_ms=5.0,
        )
        (result,) = results
        assert result.shed_rate == pytest.approx(
            result.n_rejected / result.n_sent
        )
        assert "shed%" in text and "burn" in text

    def test_diurnal_arrival_option(self):
        text, results = run_serve(
            "NIPS10",
            rates=(300.0,),
            duration_s=0.3,
            arrival="diurnal",
            slo_ms=None,
        )
        assert "diurnal@300" in text
        assert results[0].slo_met is None

    def test_unknown_arrival_rejected(self):
        with pytest.raises(ServingError, match="arrival"):
            run_serve("NIPS10", rates=(100.0,), duration_s=0.2,
                      arrival="bursty")

    def test_bad_parameters_rejected(self):
        with pytest.raises(ServingError, match="duration_s"):
            run_serve("NIPS10", rates=(100.0,), duration_s=0.0)
        with pytest.raises(ServingError, match="rate"):
            run_serve("NIPS10", rates=())


class TestSelftest:
    def test_selftest_passes_at_low_load(self):
        text, code = run_serve_selftest("NIPS10")
        assert code == 0, text
        assert "serve selftest PASS" in text
        # The stage-decomposition gate ran and is reported.
        assert "stage medians sum" in text
        assert "request flows sampled" in text

    def test_selftest_writes_telemetry_and_trace(self, tmp_path):
        telemetry_path = tmp_path / "telemetry.json"
        trace_path = tmp_path / "selftest.perfetto.json"
        text, code = run_serve_selftest(
            "NIPS10",
            telemetry_out=str(telemetry_path),
            trace_out=str(trace_path),
        )
        assert code == 0, text
        payload = json.loads(telemetry_path.read_text())
        hists = payload["metrics"]["histograms"]
        for stage in ("batch_form", "queue_wait", "dispatch", "kernel",
                      "scatter", "e2e"):
            assert hists[f"serving.{stage}"]["count"] > 0
        assert payload["slo"]["slo_ms"] > 0
        trace = json.loads(trace_path.read_text())
        events = trace["traceEvents"]
        assert [e for e in events if e.get("ph") == "s"], \
            "selftest trace must contain request flow starts"
        tracks = {
            e["args"]["name"] for e in events
            if e.get("ph") == "M" and e.get("name") == "thread_name"
        }
        assert "loadgen" in tracks and "serving broker" in tracks
