"""Tests for the ``repro serve`` scenario runner and selftest."""

import json

import pytest

from repro.errors import ServingError
from repro.serving.scenarios import run_serve, run_serve_selftest


class TestRunServe:
    def test_sweep_table_and_perfetto_spans(self, tmp_path):
        trace_path = tmp_path / "serve.perfetto.json"
        text, results = run_serve(
            "NIPS10",
            rates=(400.0,),
            duration_s=0.3,
            max_wait_ms=4.0,
            slo_ms=500.0,
            trace_out=str(trace_path),
        )
        assert "Serving sweep - NIPS10" in text
        assert "poisson@400" in text
        (result,) = results
        assert result.n_ok > 0
        assert result.n_rejected == 0
        assert result.mean_batch_rows >= 1.0
        # Acceptance criterion: serving batches are visible as spans in
        # the exported Perfetto trace.
        payload = json.loads(trace_path.read_text())
        events = payload["traceEvents"]
        span_names = [e["name"] for e in events if e.get("ph") == "X"]
        assert any(name.startswith("batch") for name in span_names)
        thread_names = [
            e["args"]["name"]
            for e in events
            if e.get("ph") == "M" and e.get("name") == "thread_name"
        ]
        assert any(name.startswith("serving lane") for name in thread_names)
        counters = {e["name"] for e in events if e.get("ph") == "C"}
        assert "serving.batches" in counters
        assert "serving.rejected" in counters

    def test_diurnal_arrival_option(self):
        text, results = run_serve(
            "NIPS10",
            rates=(300.0,),
            duration_s=0.3,
            arrival="diurnal",
            slo_ms=None,
        )
        assert "diurnal@300" in text
        assert results[0].slo_met is None

    def test_unknown_arrival_rejected(self):
        with pytest.raises(ServingError, match="arrival"):
            run_serve("NIPS10", rates=(100.0,), duration_s=0.2,
                      arrival="bursty")

    def test_bad_parameters_rejected(self):
        with pytest.raises(ServingError, match="duration_s"):
            run_serve("NIPS10", rates=(100.0,), duration_s=0.0)
        with pytest.raises(ServingError, match="rate"):
            run_serve("NIPS10", rates=())


class TestSelftest:
    def test_selftest_passes_at_low_load(self):
        text, code = run_serve_selftest("NIPS10")
        assert code == 0, text
        assert "serve selftest PASS" in text
