"""Tests for the explicit HBM refresh model."""

import pytest

from repro.mem.hbm import (
    HBMChannel,
    PROTOCOL_EFFICIENCY,
    REFRESH_PROTOCOL_EFFICIENCY,
    TREFI_SECONDS,
    TRFC_SECONDS,
)
from repro.sim import Engine
from repro.units import GIB, MIB


def _run(explicit, size=1 * MIB, n=48):
    env = Engine()
    channel = HBMChannel(env, 0, explicit_refresh=explicit)

    def proc():
        for _ in range(n):
            yield channel.transfer(size)

    env.run(until_event=env.process(proc()))
    return n * size / env.now, channel


def test_constants_consistent():
    """The folded efficiency must equal protocol x refresh losses."""
    derived = PROTOCOL_EFFICIENCY * (1.0 - TRFC_SECONDS / TREFI_SECONDS)
    assert derived == pytest.approx(REFRESH_PROTOCOL_EFFICIENCY, rel=1e-3)


def test_explicit_matches_folded_steady_state():
    folded, _ = _run(False)
    explicit, _ = _run(True)
    assert explicit == pytest.approx(folded, rel=0.01)


def test_refresh_rate_tracks_trefi():
    _, channel = _run(True)
    elapsed = channel.env.now
    expected = elapsed / TREFI_SECONDS
    assert channel.refresh_count == pytest.approx(expected, rel=0.05)


def test_refresh_occupies_expected_fraction():
    """Refresh stalls should consume ~TRFC/TREFI (= ~8.5%) of channel
    time at saturation — the §V-D remark that refresh matters at peak
    rates."""
    _, channel = _run(True)
    stall_fraction = channel.refresh_count * TRFC_SECONDS / channel.env.now
    assert stall_fraction == pytest.approx(TRFC_SECONDS / TREFI_SECONDS, rel=0.06)


def test_no_refresh_counter_without_explicit_mode():
    _, channel = _run(False)
    assert channel.refresh_count == 0
