"""Unit tests for AXI port and SmartConnect models."""

import pytest

from repro.errors import MemoryModelError
from repro.mem import AxiPort, AxiTransaction, SmartConnect, TransferKind
from repro.units import MHZ


def _hbm_port():
    return AxiPort("hbm", clock_hz=450 * MHZ, data_width_bits=256, protocol="AXI3")


def _core_port():
    return AxiPort("core", clock_hz=225 * MHZ, data_width_bits=512, protocol="AXI4")


class TestAxiPort:
    def test_peak_bandwidth(self):
        assert _hbm_port().peak_bandwidth == 450e6 * 32

    def test_beats_round_up(self):
        port = _core_port()  # 64 B/beat
        assert port.beats(64) == 1
        assert port.beats(65) == 2
        assert port.beats(1) == 1

    def test_transfer_seconds(self):
        port = _hbm_port()
        assert port.transfer_seconds(32) == pytest.approx(1 / 450e6)

    @pytest.mark.parametrize("clock,width", [(0, 256), (450e6, 0), (450e6, 257), (450e6, 24)])
    def test_invalid_config_rejected(self, clock, width):
        with pytest.raises(MemoryModelError):
            AxiPort("bad", clock_hz=clock, data_width_bits=width)

    def test_invalid_beat_request_rejected(self):
        with pytest.raises(MemoryModelError):
            _hbm_port().beats(0)


class TestTransaction:
    def test_ids_unique(self):
        a = AxiTransaction(TransferKind.READ, 0, 64)
        b = AxiTransaction(TransferKind.READ, 0, 64)
        assert a.txn_id != b.txn_id

    def test_invalid_rejected(self):
        with pytest.raises(MemoryModelError):
            AxiTransaction(TransferKind.READ, -1, 64)
        with pytest.raises(MemoryModelError):
            AxiTransaction(TransferKind.WRITE, 0, 0)


class TestSmartConnect:
    def test_paper_equivalence_half_clock_double_width(self):
        """§II-B's key insight: 225 MHz x 512 bit == 450 MHz x 256 bit."""
        bridge = SmartConnect(master=_core_port(), slave=_hbm_port())
        assert bridge.rate_matched
        assert bridge.effective_bandwidth == 450e6 * 32

    def test_mismatched_rates_limited_by_slower(self):
        slow = AxiPort("slow", clock_hz=100 * MHZ, data_width_bits=256)
        bridge = SmartConnect(master=slow, slave=_hbm_port())
        assert not bridge.rate_matched
        assert bridge.effective_bandwidth == 100e6 * 32

    def test_conversion_adds_latency_not_bandwidth(self):
        bridge = SmartConnect(master=_core_port(), slave=_hbm_port())
        native = _hbm_port().transfer_seconds(1 << 20)
        via_bridge = bridge.transfer_seconds(1 << 20)
        assert via_bridge == pytest.approx(native + bridge.conversion_latency)
        # Latency is negligible relative to a 1 MiB transfer.
        assert via_bridge / native < 1.01

    def test_negative_latency_rejected(self):
        with pytest.raises(MemoryModelError):
            SmartConnect(master=_core_port(), slave=_hbm_port(), conversion_latency=-1.0)
