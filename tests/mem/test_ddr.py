"""Unit tests for the DDR4 channel model."""

import pytest

from repro.errors import MemoryModelError
from repro.mem import DDR4_2400_SPEC, DDRChannel
from repro.sim import Engine
from repro.units import GIB, MIB


def test_spec_rates_sane():
    assert DDR4_2400_SPEC.practical_bandwidth < DDR4_2400_SPEC.theoretical_bandwidth


def test_large_transfer_approaches_practical_bandwidth():
    env = Engine()
    channel = DDRChannel(env)

    def proc():
        yield channel.transfer(64 * MIB)

    done = env.process(proc())
    env.run(until_event=done)
    rate = 64 * MIB / env.now
    assert rate == pytest.approx(DDR4_2400_SPEC.practical_bandwidth, rel=0.01)


def test_shared_channel_halves_per_master_rate():
    """Two accelerators on one DDR controller contend — the prior-work
    trade-off the HBM design eliminates."""
    def run(n_masters):
        env = Engine()
        channel = DDRChannel(env)

        def proc():
            for _ in range(4):
                yield channel.transfer(4 * MIB)

        done = env.all_of([env.process(proc()) for _ in range(n_masters)])
        env.run(until_event=done)
        return 4 * 4 * MIB / env.now  # per-master rate

    assert run(2) == pytest.approx(run(1) / 2, rel=0.02)


def test_byte_accounting():
    env = Engine()
    channel = DDRChannel(env)

    def proc():
        yield channel.transfer(1024, is_write=True)
        yield channel.transfer(2048, is_write=False)

    env.run(until_event=env.process(proc()))
    assert channel.bytes_written == 1024
    assert channel.bytes_read == 2048


def test_invalid_transfer_rejected():
    env = Engine()
    with pytest.raises(MemoryModelError):
        DDRChannel(env).transfer(-1)


def test_hbm_channel_beats_shared_ddr_for_four_masters():
    """Four cores on dedicated HBM channels get ~4x the bandwidth of
    four cores sharing one DDR channel — §III-A's motivation."""
    from repro.mem import HBMChannel

    def ddr_run():
        env = Engine()
        channel = DDRChannel(env)

        def proc():
            for _ in range(2):
                yield channel.transfer(4 * MIB)

        done = env.all_of([env.process(proc()) for _ in range(4)])
        env.run(until_event=done)
        return 8 * 4 * MIB / env.now

    def hbm_run():
        env = Engine()
        channels = [HBMChannel(env, i) for i in range(4)]

        def proc(ch):
            for _ in range(2):
                yield ch.transfer(4 * MIB)

        done = env.all_of([env.process(proc(c)) for c in channels])
        env.run(until_event=done)
        return 8 * 4 * MIB / env.now

    assert hbm_run() > 3.0 * ddr_run()
