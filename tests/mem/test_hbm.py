"""Unit tests for the HBM channel/subsystem models."""

import pytest

from repro.errors import MemoryModelError
from repro.mem import HBMChannel, HBMSubsystem, channel_throughput, run_channel_benchmark
from repro.platforms.specs import HBM_XUPVVH
from repro.sim import Engine
from repro.units import GIB, KIB, MIB


class TestChannelThroughputCurve:
    def test_monotone_in_request_size(self):
        sizes = [4 * KIB, 16 * KIB, 64 * KIB, 256 * KIB, 1 * MIB, 4 * MIB]
        rates = [channel_throughput(s) for s in sizes]
        assert rates == sorted(rates)

    def test_plateau_near_12_gib(self):
        """Fig. 2's plateau: ~12 GiB/s combined at >= 1 MiB requests."""
        assert channel_throughput(1 * MIB) / GIB == pytest.approx(12.0, rel=0.05)
        assert channel_throughput(4 * MIB) / GIB == pytest.approx(12.0, rel=0.02)

    def test_saturation_knee_at_one_mib(self):
        """Beyond 1 MiB "no further performance improvements" (§II-B)."""
        at_knee = channel_throughput(1 * MIB)
        beyond = channel_throughput(4 * MIB)
        assert (beyond - at_knee) / at_knee < 0.05

    def test_small_requests_much_slower(self):
        assert channel_throughput(4 * KIB) < 0.2 * channel_throughput(1 * MIB)

    def test_smartconnect_config_equivalent(self):
        """Fig. 2's second insight: the 225 MHz x 512 bit attachment
        performs the same as the native 450 MHz connection."""
        for size in (64 * KIB, 1 * MIB):
            native = channel_throughput(size)
            converted = channel_throughput(size, use_smartconnect=True)
            assert abs(native - converted) / native < 0.04

    def test_crossbar_costs_performance(self):
        assert channel_throughput(64 * KIB, crossbar=True) < channel_throughput(64 * KIB)

    def test_invalid_size_rejected(self):
        with pytest.raises(MemoryModelError):
            channel_throughput(0)


class TestDesMatchesAnalytic:
    @pytest.mark.parametrize("size", [4 * KIB, 64 * KIB, 1 * MIB])
    def test_des_equals_closed_form(self, size):
        analytic = channel_throughput(size)
        measured = run_channel_benchmark(size, n_requests=32).throughput
        assert measured == pytest.approx(analytic, rel=0.02)


class TestHBMChannelDes:
    def test_transfer_counts_bytes(self):
        env = Engine()
        channel = HBMChannel(env)

        def proc():
            yield channel.transfer(4096, is_write=False)
            yield channel.transfer(8192, is_write=True)

        done = env.process(proc())
        env.run(until_event=done)
        assert channel.bytes_read == 4096
        assert channel.bytes_written == 8192

    def test_requests_serialised_on_one_channel(self):
        env = Engine()
        channel = HBMChannel(env)
        times = []

        def proc(tag):
            yield channel.transfer(1 * MIB)
            times.append((tag, env.now))

        env.process(proc("a"))
        env.process(proc("b"))
        env.run()
        # Second completes roughly one transfer-time after the first.
        assert times[1][1] == pytest.approx(2 * times[0][1], rel=0.01)

    def test_invalid_transfer_rejected(self):
        env = Engine()
        with pytest.raises(MemoryModelError):
            HBMChannel(env).transfer(0)


class TestHBMSubsystem:
    def test_geometry(self):
        env = Engine()
        hbm = HBMSubsystem(env)
        assert len(hbm.channels) == 32
        assert hbm.spec.channel_capacity_bytes == HBM_XUPVVH.capacity_bytes // 32

    def test_channel_for_address_slices_linearly(self):
        env = Engine()
        hbm = HBMSubsystem(env)
        slice_bytes = hbm.spec.channel_capacity_bytes
        assert hbm.channel_for_address(0) == 0
        assert hbm.channel_for_address(slice_bytes) == 1
        assert hbm.channel_for_address(31 * slice_bytes) == 31

    def test_out_of_range_address_rejected(self):
        env = Engine()
        hbm = HBMSubsystem(env)
        with pytest.raises(MemoryModelError):
            hbm.channel_for_address(HBM_XUPVVH.capacity_bytes)

    def test_foreign_channel_needs_crossbar(self):
        env = Engine()
        hbm = HBMSubsystem(env, crossbar=False)
        slice_bytes = hbm.spec.channel_capacity_bytes
        with pytest.raises(MemoryModelError):
            hbm.transfer(port=0, address=slice_bytes, n_bytes=64)

    def test_crossbar_allows_foreign_access(self):
        env = Engine()
        hbm = HBMSubsystem(env, crossbar=True)
        slice_bytes = hbm.spec.channel_capacity_bytes

        def proc():
            yield hbm.transfer(port=0, address=slice_bytes, n_bytes=4096)

        done = env.process(proc())
        env.run(until_event=done)
        assert hbm.channels[1].bytes_read == 4096

    def test_channel_spanning_transfer_rejected(self):
        env = Engine()
        hbm = HBMSubsystem(env)
        slice_bytes = hbm.spec.channel_capacity_bytes
        with pytest.raises(MemoryModelError):
            hbm.transfer(port=0, address=slice_bytes - 32, n_bytes=64)

    def test_channels_are_independent(self):
        """The architectural bet (§II-B): per-channel performance does
        not degrade when other channels are busy."""
        def run(n_channels):
            env = Engine()
            hbm = HBMSubsystem(env)
            slice_bytes = hbm.spec.channel_capacity_bytes

            def proc(ch):
                for _ in range(4):
                    yield hbm.transfer(ch, ch * slice_bytes, 1 * MIB)

            done = env.all_of(
                [env.process(proc(c)) for c in range(n_channels)]
            )
            env.run(until_event=done)
            return env.now

        assert run(8) == pytest.approx(run(1), rel=1e-9)
