"""Tests for the uncertainty-aware SPN classifier."""

import numpy as np
import pytest

from repro.apps import SPNClassifier
from repro.errors import ReproError


def _two_class_data(seed=0, rows=400, n_vars=5):
    """Two well-separated count distributions."""
    rng = np.random.default_rng(seed)
    low = rng.poisson(1.0, size=(rows, n_vars))
    high = rng.poisson(6.0, size=(rows, n_vars))
    data = np.concatenate([low, high]).astype(np.float64)
    labels = np.concatenate([np.zeros(rows), np.ones(rows)]).astype(int)
    return data, labels


@pytest.fixture(scope="module")
def classifier():
    data, labels = _two_class_data()
    return SPNClassifier.fit(data, labels, seed=1), data, labels


def test_fit_builds_one_spn_per_class(classifier):
    clf, _, _ = classifier
    assert clf.classes == [0, 1]
    assert set(clf.class_spns) == {0, 1}


def test_high_accuracy_on_separable_classes(classifier):
    clf, data, labels = classifier
    assert clf.accuracy(data, labels) > 0.95


def test_posteriors_normalised(classifier):
    clf, data, _ = classifier
    proba = clf.predict_proba(data[:50])
    assert proba.shape == (50, 2)
    np.testing.assert_allclose(proba.sum(axis=1), 1.0, rtol=1e-9)
    assert np.all(proba >= 0)


def test_predict_matches_argmax_posterior(classifier):
    clf, data, _ = classifier
    proba = clf.predict_proba(data[:100])
    np.testing.assert_array_equal(
        clf.predict(data[:100]), np.argmax(proba, axis=1)
    )


def test_priors_reflect_class_balance():
    data, labels = _two_class_data(rows=300)
    # Make class 1 three times as common.
    data = np.concatenate([data, data[labels == 1], data[labels == 1]])
    labels = np.concatenate([labels, np.ones(300, int), np.ones(300, int)])
    clf = SPNClassifier.fit(data, labels, seed=2)
    assert np.exp(clf.log_priors[1]) == pytest.approx(0.75, abs=0.01)


def test_out_of_domain_scored_lower(classifier):
    clf, data, _ = classifier
    foreign = np.full((100, 5), 40.0)  # counts far beyond training
    in_domain = clf.marginal_log_likelihood(data[:100]).mean()
    out_domain = clf.marginal_log_likelihood(foreign).mean()
    assert out_domain < in_domain - 5.0


def test_out_of_domain_mask_flags_foreign(classifier):
    clf, data, _ = classifier
    foreign = np.full((100, 5), 40.0)
    flags = clf.out_of_domain_mask(foreign, calibration=data)
    assert flags.mean() > 0.9
    self_flags = clf.out_of_domain_mask(
        data, calibration=data, threshold_quantile=0.01
    )
    assert self_flags.mean() < 0.05


def test_out_of_domain_mask_requires_calibration(classifier):
    clf, data, _ = classifier
    with pytest.raises(ReproError):
        clf.out_of_domain_mask(data)
    with pytest.raises(ReproError):
        clf.out_of_domain_mask(data, calibration=data, threshold_quantile=1.5)


def test_single_class_rejected():
    data = np.zeros((10, 3))
    with pytest.raises(ReproError):
        SPNClassifier.fit(data, np.zeros(10, int))


def test_shape_mismatch_rejected():
    with pytest.raises(ReproError):
        SPNClassifier.fit(np.zeros((10, 3)), np.zeros(7, int))
