#!/usr/bin/env python3
"""Visualising transfer/compute overlap (the §IV-B scheme).

Runs the same workload with one and with two control threads per
accelerator and renders span timelines of the DMA and PE tracks.
With one thread, the PE idles while its thread shuttles data; with
two, "one thread performs data transfers for block n+1 while another
is waiting for the FPGA accelerator" — the PE track closes up and
throughput rises, exactly the paper's motivation for the runtime
design.

Run:  python examples/pipeline_timeline.py
"""

from repro import (
    InferenceJobConfig,
    InferenceRuntime,
    SimulatedDevice,
    XUPVVH_HBM_PLATFORM,
    compile_core,
    compose_design,
    nips_benchmark,
)
from repro.sim import Tracer
from repro.units import MIB


def run_with_threads(threads: int):
    core = compile_core(nips_benchmark("NIPS10").spn, "cfp")
    device = SimulatedDevice(compose_design(core, 1, XUPVVH_HBM_PLATFORM))
    tracer = Tracer(device.env)
    runtime = InferenceRuntime(
        device,
        InferenceJobConfig(block_bytes=1 * MIB, threads_per_pe=threads),
        tracer=tracer,
    )
    stats = runtime.run_timing_only(600_000)
    return tracer, stats


def main():
    for threads in (1, 2):
        tracer, stats = run_with_threads(threads)
        pe_busy = tracer.busy_time("pe0")
        utilisation = pe_busy / stats.elapsed_seconds
        print(
            f"=== {threads} control thread(s): "
            f"{stats.samples_per_second / 1e6:.1f} M samples/s, "
            f"PE busy {utilisation:.0%} of the run ==="
        )
        print(tracer.timeline(width=72))
        overlap = tracer.overlap_time("dma h2d", "pe0")
        print(
            f"transfer/compute overlap: {overlap * 1e6:.0f} us "
            f"({overlap / stats.elapsed_seconds:.0%} of the run)\n"
        )
    print(
        "With a second thread the next block's H2D transfer rides under the "
        "current block's compute, closing the PE idle gaps — the paper found "
        "two threads per accelerator saturate the PCIe DMA (SectionIV-B)."
    )


if __name__ == "__main__":
    main()
