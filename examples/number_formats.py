#!/usr/bin/env python3
"""Number-format design space: accuracy vs hardware cost.

Reproduces the design decision behind the paper's datapath (§III-B,
building on FCCM'20 [4] and FPT'19 [11]): evaluate candidate hardware
number formats on a benchmark SPN — log-domain accuracy against
float64, underflow behaviour, and the resources a 4-core design would
take with each format's operator library.

Run:  python examples/number_formats.py [--benchmark NIPS20]
"""

import argparse

import numpy as np

from repro import (
    FLOAT32,
    PAPER_CFP,
    PAPER_LNS,
    CustomFloat,
    Posit,
    XUPVVH_HBM_PLATFORM,
    compare_formats_on_spn,
    compile_core,
    compose_design,
    nips_benchmark,
)
from repro.experiments.reporting import format_table
from repro.spn.nips import nips_dataset

#: Operator-library family backing each evaluated format.
LIBRARY_OF = {
    "cfp": "cfp",
    "lns": "lns",
    "float32": "float32",
    "posit": None,  # no FPGA library calibrated; accuracy only
}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", default="NIPS20")
    args = parser.parse_args()

    bench = nips_benchmark(args.benchmark)
    data = nips_dataset(args.benchmark).astype(np.float64)

    formats = [
        PAPER_CFP,
        PAPER_LNS,
        CustomFloat(exponent_bits=8, mantissa_bits=15),  # narrow CFP
        CustomFloat(exponent_bits=5, mantissa_bits=10),  # too narrow
        Posit(32, 2),
        FLOAT32,
    ]
    reports = compare_formats_on_spn(bench.spn, data, formats)

    rows = []
    for fmt, report in zip(formats, reports):
        family = fmt.name.split("(")[0]
        if LIBRARY_OF.get(family):
            core = compile_core(bench.spn, LIBRARY_OF[family])
            design = compose_design(core, 4, XUPVVH_HBM_PLATFORM)
            dsp = f"{design.total_resources.dsp:.0f}"
            luts = f"{design.total_resources.luts_logic / 1e3:.0f}k"
        else:
            dsp = luts = "-"
        rows.append(
            [
                fmt.name,
                fmt.bits,
                f"{report.max_log_error:.2e}",
                f"{report.underflow_fraction * 100:.1f}%",
                "yes" if report.acceptable() else "NO",
                dsp,
                luts,
            ]
        )
    print(
        format_table(
            ["format", "bits", "max log err", "underflow", "acceptable", "DSP(4c)", "LUT(4c)"],
            rows,
            title=f"Number formats on {args.benchmark} ({len(data)} samples)",
        )
    )
    print(
        "\nThe paper adopts the CFP configuration from [4]: wide enough "
        "exponents that deep probability products never underflow, at a "
        "third of the double-precision operator cost (Table I)."
    )


if __name__ == "__main__":
    main()
