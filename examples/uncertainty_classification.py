#!/usr/bin/env python3
"""Classification that knows when it doesn't know (§II-A motivation).

Reproduces the Peharz-et-al behaviour the paper's background
describes: an SPN classifier trained on in-domain data yields *lower
joint probabilities* for out-of-domain inputs, flagging them instead
of confidently mislabelling them.

Scenario: documents from two distinguishable topic corpora are
classified by topic; a third, never-seen corpus plays the
out-of-domain role.

Run:  python examples/uncertainty_classification.py
"""

import numpy as np

from repro.apps import SPNClassifier
from repro.experiments.reporting import format_table
from repro.workloads import NipsCorpusConfig, synthesize_nips_corpus


def corpus(seed, topic_boost, zipf):
    return synthesize_nips_corpus(
        NipsCorpusConfig(
            n_words=12,
            n_documents=1200,
            seed=seed,
            topic_boost=topic_boost,
            zipf_exponent=zipf,
        )
    ).astype(np.float64)


def main():
    # Two in-domain classes with different word statistics.
    class_a = corpus(seed=1, topic_boost=4.0, zipf=0.9)
    class_b = corpus(seed=2, topic_boost=1.5, zipf=1.5)
    data = np.concatenate([class_a, class_b])
    labels = np.concatenate([np.zeros(len(class_a)), np.ones(len(class_b))]).astype(int)

    # Train/test split.
    rng = np.random.default_rng(0)
    order = rng.permutation(len(data))
    cut = int(0.8 * len(data))
    train_idx, test_idx = order[:cut], order[cut:]

    clf = SPNClassifier.fit(data[train_idx], labels[train_idx], seed=3)
    acc = clf.accuracy(data[test_idx], labels[test_idx])
    print(f"in-domain test accuracy: {acc:.1%} over {len(test_idx)} documents")

    # Out-of-domain data: a corpus with very different statistics.
    ood = corpus(seed=9, topic_boost=12.0, zipf=0.3) * 1.8
    ood = np.minimum(ood, 255)

    in_marg = clf.marginal_log_likelihood(data[test_idx])
    ood_marg = clf.marginal_log_likelihood(ood[:200])
    print(
        format_table(
            ["dataset", "mean log P(x)", "min", "max"],
            [
                ["in-domain test", in_marg.mean(), in_marg.min(), in_marg.max()],
                ["out-of-domain", ood_marg.mean(), ood_marg.min(), ood_marg.max()],
            ],
            title="\nMarginal likelihood as an uncertainty signal",
        )
    )

    flags_in = clf.out_of_domain_mask(
        data[test_idx], calibration=data[train_idx], threshold_quantile=0.01
    )
    flags_ood = clf.out_of_domain_mask(
        ood[:200], calibration=data[train_idx], threshold_quantile=0.01
    )
    print(
        f"\nflagged as out-of-domain: {flags_in.mean():.1%} of in-domain test data "
        f"(false alarms) vs {flags_ood.mean():.1%} of the foreign corpus"
    )
    print(
        "A discriminative model would still emit confident class labels for "
        "the foreign corpus; the SPN's joint probability exposes the mismatch "
        "(the paper's SectionII-A argument for probabilistic models)."
    )


if __name__ == "__main__":
    main()
