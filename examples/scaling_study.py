#!/usr/bin/env python3
"""Scaling study: where does adding accelerator cores stop helping?

Reproduces the Fig. 4 investigation interactively: sweeps core counts
for one benchmark in both measurement modes, reports per-core
efficiency, identifies the PCIe saturation point, and shows what a
PCIe Gen4/5/6 host would unlock (the §V-C outlook).

Run:  python examples/scaling_study.py [--benchmark NIPS10] [--max-pes 8]
"""

import argparse

from repro import (
    InferenceJobConfig,
    InferenceRuntime,
    SimulatedDevice,
    XUPVVH_HBM_PLATFORM,
    compile_core,
    compose_design,
    nips_benchmark,
)
from repro.experiments.reporting import format_table
from repro.platforms.specs import PCIE_GENERATIONS
from repro.units import GIB


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", default="NIPS10")
    parser.add_argument("--max-pes", type=int, default=8)
    parser.add_argument("--samples-per-core", type=int, default=800_000)
    args = parser.parse_args()

    bench = nips_benchmark(args.benchmark)
    core = compile_core(bench.spn, "cfp")
    rows = []
    previous = None
    for n in range(1, args.max_pes + 1):
        design = compose_design(core, n, XUPVVH_HBM_PLATFORM)

        def run(transfers):
            device = SimulatedDevice(design)
            runtime = InferenceRuntime(device, InferenceJobConfig(threads_per_pe=1))
            samples = args.samples_per_core * n
            if transfers:
                return runtime.run_timing_only(samples).samples_per_second
            return runtime.run_on_device_only(samples).samples_per_second

        end_to_end = run(True)
        on_device = run(False)
        gain = "" if previous is None else f"{(end_to_end / previous - 1) * 100:+.1f}%"
        previous = end_to_end
        rows.append(
            [
                n,
                on_device / 1e6,
                end_to_end / 1e6,
                end_to_end / n / 1e6,
                end_to_end * bench.total_bytes_per_sample / GIB,
                gain,
            ]
        )
    print(
        format_table(
            [
                "PEs",
                "w/o transfers (M/s)",
                "end-to-end (M/s)",
                "per-PE (M/s)",
                "PCIe traffic (GiB/s)",
                "marginal gain",
            ],
            rows,
            title=f"Scaling {args.benchmark}: on-device vs end-to-end (Fig. 4)",
        )
    )

    print("\nPCIe outlook (what faster hosts would unlock, §V-C):")
    for name, spec in PCIE_GENERATIONS.items():
        bound = spec.bound_samples_per_second(
            bench.input_bytes_per_sample, bench.result_bytes_per_sample
        )
        print(f"  {name}: PCIe-bound ceiling {bound / 1e6:,.0f} M samples/s")


if __name__ == "__main__":
    main()
