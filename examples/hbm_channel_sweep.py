#!/usr/bin/env python3
"""HBM channel microbenchmark: the Fig. 2 experiment plus ablations.

Sweeps request sizes against one HBM pseudo-channel for both
attachment configurations, then runs the two ablations the paper
discusses but does not plot: the optional crossbar's cost, and how
channel *independence* makes aggregate bandwidth scale linearly with
channel count.

Run:  python examples/hbm_channel_sweep.py
"""

from repro import channel_throughput, run_channel_benchmark
from repro.experiments import format_fig2, run_fig2
from repro.experiments.reporting import format_table
from repro.mem import HBMSubsystem
from repro.sim import Engine
from repro.units import GIB, KIB, MIB


def crossbar_ablation():
    rows = []
    for size in (16 * KIB, 256 * KIB, 1 * MIB):
        direct = channel_throughput(size)
        routed = channel_throughput(size, crossbar=True)
        rows.append(
            [
                f"{size // KIB} KiB",
                direct / GIB,
                routed / GIB,
                f"{(1 - routed / direct) * 100:.1f}%",
            ]
        )
    print(
        format_table(
            ["request", "direct (GiB/s)", "via crossbar (GiB/s)", "loss"],
            rows,
            title="Ablation: the optional crossbar costs latency (paper: left disabled)",
        )
    )


def independence_ablation():
    rows = []
    for n_channels in (1, 4, 16, 32):
        env = Engine()
        hbm = HBMSubsystem(env)
        slice_bytes = hbm.spec.channel_capacity_bytes

        def stream(channel):
            for _ in range(8):
                yield hbm.transfer(channel, channel * slice_bytes, 1 * MIB)

        done = env.all_of([env.process(stream(c)) for c in range(n_channels)])
        env.run(until_event=done)
        total = n_channels * 8 * MIB / env.now
        rows.append([n_channels, total / GIB, total / n_channels / GIB])
    print(
        format_table(
            ["channels", "aggregate (GiB/s)", "per channel (GiB/s)"],
            rows,
            title="Ablation: independent channels scale linearly (no crossbar)",
        )
    )


def main():
    print(format_fig2(run_fig2()))
    print()
    crossbar_ablation()
    print()
    independence_ablation()


if __name__ == "__main__":
    main()
