#!/usr/bin/env python3
"""Export the hardware artifacts a downstream flow would consume.

Compiles a benchmark SPN and writes, next to this script's working
directory (or --out-dir):

* ``<name>.netlist.json`` — the machine-readable operator netlist;
* ``<name>.dot``          — a Graphviz rendering of the datapath;
* ``<name>.v``            — structural Verilog with balancing delay
  lines (operator black boxes parameterised by width/latency);
* ``<name>.report.txt``   — the synthesis-style design report.

Run:  python examples/hardware_artifacts.py [--benchmark NIPS10] [--out-dir build]
"""

import argparse
import pathlib

from repro import XUPVVH_HBM_PLATFORM, compile_core, compose_design, nips_benchmark
from repro.compiler.export import datapath_to_dot, datapath_to_json, design_report
from repro.compiler.verilog import datapath_to_verilog


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", default="NIPS10")
    parser.add_argument("--cores", type=int, default=4)
    parser.add_argument("--out-dir", default="build")
    args = parser.parse_args()

    bench = nips_benchmark(args.benchmark)
    core = compile_core(bench.spn, "cfp")
    design = compose_design(core, args.cores, XUPVVH_HBM_PLATFORM)

    out = pathlib.Path(args.out_dir)
    out.mkdir(parents=True, exist_ok=True)
    stem = args.benchmark.lower()

    (out / f"{stem}.netlist.json").write_text(datapath_to_json(core.datapath))
    (out / f"{stem}.dot").write_text(datapath_to_dot(core.datapath))
    (out / f"{stem}.v").write_text(datapath_to_verilog(core.datapath, core.library))
    report = design_report(design)
    (out / f"{stem}.report.txt").write_text(report + "\n")

    print(report)
    print(f"\nartifacts written to {out.resolve()}/:")
    for suffix in (".netlist.json", ".dot", ".v", ".report.txt"):
        path = out / f"{stem}{suffix}"
        print(f"  {path.name:24s} {path.stat().st_size:>8,} bytes")


if __name__ == "__main__":
    main()
