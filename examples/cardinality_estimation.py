#!/usr/bin/env python3
"""SPNs for database cardinality estimation (the DeepDB use case).

The paper's related work (§VI) points to SPNs powering cardinality
estimation and approximate query processing in databases [15].  This
example plays that scenario end to end on the synthetic corpus:

1. treat the bag-of-words matrix as a relational table
   (documents x word-count attributes);
2. learn an SPN over it — the "data-driven model" of DeepDB;
3. estimate the cardinality of range-predicate queries with
   :func:`repro.spn.probability_of_box` and AVG aggregates with
   :func:`repro.spn.expectation`;
4. compare every estimate against the true answer computed by
   scanning the table.

Run:  python examples/cardinality_estimation.py
"""

import numpy as np

from repro import NipsCorpusConfig, learn_spn, synthesize_nips_corpus
from repro.experiments.reporting import format_table
from repro.spn import expectation, probability_of_box


def q_error(estimate: float, truth: float) -> float:
    """The standard cardinality-estimation metric: max(e/t, t/e)."""
    estimate = max(estimate, 1.0)
    truth = max(truth, 1.0)
    return max(estimate / truth, truth / estimate)


def main():
    # The "table": 4000 documents, 16 word-count attributes.
    table = synthesize_nips_corpus(
        NipsCorpusConfig(n_words=16, n_documents=4000, seed=17)
    ).astype(np.float64)
    n_rows = len(table)
    spn = learn_spn(table, seed=17, name="doc-table")
    print(f"table: {n_rows} rows x {table.shape[1]} columns; SPN learned\n")

    # Range-predicate workload (SELECT COUNT(*) WHERE ...).
    queries = [
        ("w0 < 10", {0: (0.0, 10.0)}),
        ("w0 >= 10", {0: (10.0, np.inf)}),
        ("w1 < 5 AND w2 < 5", {1: (0.0, 5.0), 2: (0.0, 5.0)}),
        ("3 <= w0 < 12 AND w5 < 3", {0: (3.0, 12.0), 5: (0.0, 3.0)}),
        ("w3 < 2 AND w7 < 2 AND w11 < 2", {3: (0.0, 2.0), 7: (0.0, 2.0), 11: (0.0, 2.0)}),
        ("w0 >= 25 (rare)", {0: (25.0, np.inf)}),
    ]
    rows = []
    for label, box in queries:
        selectivity = probability_of_box(spn, box)
        estimate = selectivity * n_rows
        mask = np.ones(n_rows, dtype=bool)
        for var, (lo, hi) in box.items():
            mask &= (table[:, var] >= lo) & (table[:, var] < hi)
        truth = int(mask.sum())
        rows.append([label, f"{estimate:.0f}", truth, f"{q_error(estimate, truth):.2f}"])
    print(
        format_table(
            ["predicate", "estimated rows", "true rows", "q-error"],
            rows,
            title="Cardinality estimation (COUNT(*) under range predicates)",
        )
    )

    # AVG aggregates (approximate query processing).
    rows = []
    for var, label, box in (
        (0, "AVG(w0)", None),
        (1, "AVG(w1)", None),
        (1, "AVG(w1) WHERE w0 < 10", {0: (0.0, 10.0)}),
        (2, "AVG(w2) WHERE w0 >= 10", {0: (10.0, np.inf)}),
    ):
        estimate = expectation(spn, var, box=box)
        mask = np.ones(n_rows, dtype=bool)
        for v, (lo, hi) in (box or {}).items():
            mask &= (table[:, v] >= lo) & (table[:, v] < hi)
        # Histogram leaves place mass at bin centres; counts are the
        # bin's left edge, so compare against the +0.5 shifted truth.
        truth = table[mask, var].mean() + 0.5
        rows.append([label, f"{estimate:.2f}", f"{truth:.2f}"])
    print()
    print(
        format_table(
            ["aggregate", "estimated", "true (+bin centre)"],
            rows,
            title="Approximate query processing (AVG aggregates)",
        )
    )
    print(
        "\nBoth query types cost one bottom-up pass over the SPN — the "
        "tractability that motivates accelerating SPN inference in the first "
        "place (paper SectionII-A/SectionVI)."
    )


if __name__ == "__main__":
    main()
