#!/usr/bin/env python3
"""In-network streaming inference vs the HBM architecture (§V-D).

Simulates the 100G streaming variant ([7]) frame by frame for every
NIPS benchmark, reports the replication each needs for line rate, and
contrasts the NIPS80 result with the HBM system — reproducing the
paper's closing comparison: streaming wins ~17-21% on NIPS80 because
it never touches memory, but needs 100G infrastructure; the HBM card
is the smaller-deployment alternative.

Run:  python examples/in_network_inference.py
"""

from repro import (
    InferenceJobConfig,
    InferenceRuntime,
    SimulatedDevice,
    XUPVVH_HBM_PLATFORM,
    compile_core,
    compose_design,
    nips_benchmark,
)
from repro.experiments.reporting import format_table
from repro.streaming import (
    MultiLinkBufferedNode,
    StreamingSystem,
    max_links_for_hbm,
    required_replicas,
)
from repro.units import GIB


def main():
    rows = []
    for name in ("NIPS10", "NIPS20", "NIPS30", "NIPS40", "NIPS80"):
        bench = nips_benchmark(name)
        wire = bench.total_bytes_per_sample
        replicas = required_replicas(wire, 225e6)
        system = StreamingSystem(bytes_per_sample=wire, n_cores=replicas)
        result = system.run(400_000)
        rows.append(
            [
                name,
                wire,
                replicas,
                result.samples_per_second / 1e6,
                f"{result.line_rate_fraction * 100:.1f}%",
            ]
        )
    print(
        format_table(
            ["benchmark", "wire B/sample", "cores for line rate", "Msamples/s", "of line rate"],
            rows,
            title="100G in-network streaming inference ([7] architecture)",
        )
    )

    # The paper's §V-D head-to-head on NIPS80.
    bench = nips_benchmark("NIPS80")
    streaming = StreamingSystem(
        bytes_per_sample=bench.total_bytes_per_sample, n_cores=1
    ).run(300_000)
    device = SimulatedDevice(
        compose_design(compile_core(bench.spn, "cfp"), 8, XUPVVH_HBM_PLATFORM)
    )
    hbm = InferenceRuntime(
        device, InferenceJobConfig(threads_per_pe=1)
    ).run_timing_only(3_000_000)
    advantage = streaming.samples_per_second / hbm.samples_per_second
    print(
        f"\nNIPS80 head-to-head: streaming {streaming.samples_per_second / 1e6:.1f} M/s "
        f"vs HBM {hbm.samples_per_second / 1e6:.1f} M/s -> {advantage:.2f}x "
        f"(paper: 140.7 vs 116.6, ~1.21x)"
    )
    print(
        "The streaming pipeline never touches memory; the HBM card trades that "
        "margin for deployability without 100G infrastructure."
    )

    # The paper's closing outlook: HBM as a buffer for many 100G links.
    links = max_links_for_hbm()
    node = MultiLinkBufferedNode(n_links=links, bytes_per_sample=88, cores_per_link=1)
    result = node.run(100_000)
    print(
        f"\nOutlook (SectionVII): one card's HBM can buffer {links} x 100G links -> "
        f"{result.samples_per_second / 1e6:,.0f} M samples/s aggregate, "
        f"{result.hbm_traffic / GIB:.0f} GiB/s of buffering traffic "
        f"(under the 384 GiB/s practical HBM total)."
    )


if __name__ == "__main__":
    main()
