#!/usr/bin/env python3
"""The paper's headline scenario: NIPS benchmarks across platforms.

For each NIPS benchmark this script reports end-to-end throughput on
the simulated HBM system (best core count, transfers included) next to
the prior-work F1 model, the Xeon and V100 models — Fig. 6's
comparison — plus a *real measured* CPU baseline on this machine for
grounding.

Run:  python examples/nips_end_to_end.py [--quick]
"""

import argparse

import numpy as np

from repro import (
    AWS_F1_SYSTEM,
    InferenceJobConfig,
    InferenceRuntime,
    SimulatedDevice,
    TESLA_V100,
    XEON_E5_2680_V3,
    XUPVVH_HBM_PLATFORM,
    compile_core,
    compose_design,
    nips_benchmark,
    run_cpu_baseline,
)
from repro.experiments.reporting import format_table
from repro.spn.nips import nips_dataset


def measure_hbm(bench, n_cores, samples):
    core = compile_core(bench.spn, "cfp")
    design = compose_design(core, n_cores, XUPVVH_HBM_PLATFORM)
    device = SimulatedDevice(design)
    runtime = InferenceRuntime(device, InferenceJobConfig(threads_per_pe=1))
    return runtime.run_timing_only(samples).samples_per_second


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="run only NIPS10 and NIPS80"
    )
    args = parser.parse_args()
    names = ("NIPS10", "NIPS80") if args.quick else (
        "NIPS10", "NIPS20", "NIPS30", "NIPS40", "NIPS80"
    )

    rows = []
    for name in names:
        bench = nips_benchmark(name)
        hbm = measure_hbm(bench, 8, 4_000_000)
        f1 = AWS_F1_SYSTEM.samples_per_second(
            name, bench.input_bytes_per_sample, bench.result_bytes_per_sample
        )
        cpu_model = XEON_E5_2680_V3.samples_per_second(bench.spn)
        gpu_model = TESLA_V100.samples_per_second(bench.spn)
        local = run_cpu_baseline(bench.spn, nips_dataset(name).astype(np.float64))
        rows.append(
            [
                name,
                hbm / 1e6,
                f1 / 1e6,
                cpu_model / 1e6,
                gpu_model / 1e6,
                local.samples_per_second / 1e6,
            ]
        )
    print(
        format_table(
            [
                "benchmark",
                "HBM sim (M/s)",
                "F1 model (M/s)",
                "Xeon model (M/s)",
                "V100 model (M/s)",
                "this machine (M/s)",
            ],
            rows,
            title="End-to-end SPN inference throughput (Fig. 6 scenario)",
        )
    )
    print(
        "\nNote: 'this machine' is the real numpy baseline measured locally; "
        "the platform models reproduce the paper's hardware at its scale."
    )


if __name__ == "__main__":
    main()
