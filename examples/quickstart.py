#!/usr/bin/env python3
"""Quickstart: learn an SPN, compile it, run it on the simulated card.

Walks the full paper toolflow in five steps:

1. synthesise a small bag-of-words dataset;
2. learn a Mixed SPN (histogram leaves) from it;
3. export/import the SPFlow-compatible text description;
4. compile the SPN into a 2-core HBM accelerator design;
5. run batch inference on the simulated device and check the results
   against the pure-software reference.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    InferenceJobConfig,
    InferenceRuntime,
    SimulatedDevice,
    XUPVVH_HBM_PLATFORM,
    compile_core,
    compose_design,
    compute_stats,
    dumps,
    learn_spn,
    loads,
    log_likelihood,
    NipsCorpusConfig,
    synthesize_nips_corpus,
)


def main():
    # 1. data: 1500 documents over 12 words, single-byte counts.
    data = synthesize_nips_corpus(NipsCorpusConfig(n_words=12, seed=7))
    print(f"dataset: {data.shape[0]} documents x {data.shape[1]} words")

    # 2. structure learning (LearnSPN: independence tests + clustering).
    spn = learn_spn(data.astype(np.float64), seed=7, name="quickstart")
    stats = compute_stats(spn)
    print(
        f"learned SPN: {stats.n_nodes} nodes "
        f"({stats.n_sums} sums, {stats.n_products} products, "
        f"{stats.n_leaves} histogram leaves), depth {stats.depth}"
    )

    # 3. the SPFlow-compatible text round-trip the hardware flow uses.
    text = dumps(spn)
    spn = loads(text, name="quickstart")
    print(f"text description: {len(text)} characters, round-trips exactly")

    # 4. hardware compilation: datapath + schedule + resources.
    core = compile_core(spn, "cfp")
    design = compose_design(core, 2, XUPVVH_HBM_PLATFORM)
    used = design.total_resources
    print(
        f"design {design.name}: pipeline depth {core.pipeline_depth} cycles, "
        f"clock {design.clock_mhz:.0f} MHz, "
        f"{used.dsp:.0f} DSPs, {used.luts_logic / 1e3:.0f} kLUTs"
    )

    # 5. simulate: device + multi-threaded runtime, verify results.
    device = SimulatedDevice(design)
    runtime = InferenceRuntime(device, InferenceJobConfig(threads_per_pe=2))
    queries = data[:5000]
    results, run_stats = runtime.run(queries)
    reference = log_likelihood(spn, queries.astype(np.float64))
    assert np.allclose(results, reference), "device results must match software"
    print(
        f"inference: {run_stats.n_samples} samples in "
        f"{run_stats.elapsed_seconds * 1e3:.2f} ms simulated "
        f"({run_stats.samples_per_second / 1e6:.0f} M samples/s end-to-end), "
        f"results match the software reference"
    )
    print(f"mean log-likelihood: {results.mean():.2f}")


if __name__ == "__main__":
    main()
