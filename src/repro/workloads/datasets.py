"""Dataset utilities and accelerator sample encodings.

The accelerator consumes samples as packed single-byte feature vectors
and produces one IEEE-754 double (the log-likelihood) per sample — the
paper's NIPS10 example: "the input consists of 10 single-byte values.
The result is a single double-precision value", i.e. 144 bits in
flight per sample.  :func:`encode_samples`/:func:`decode_results`
implement exactly that wire format so the simulated device moves real
bytes, and byte counts in the performance models are grounded in the
same code the functional path uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

import numpy as np

from repro.errors import ReproError

__all__ = [
    "Dataset",
    "encode_samples",
    "decode_results",
    "batch_iterator",
    "train_test_split",
    "RESULT_BYTES",
]

#: Bytes per inference result (one IEEE-754 double log-likelihood).
RESULT_BYTES = 8


@dataclass(frozen=True)
class Dataset:
    """A named (rows, variables) data matrix with provenance metadata."""

    name: str
    data: np.ndarray

    def __post_init__(self):
        if self.data.ndim != 2:
            raise ReproError(f"dataset {self.name!r} must be 2-D, got {self.data.ndim}-D")

    @property
    def n_rows(self) -> int:
        """Number of samples."""
        return self.data.shape[0]

    @property
    def n_variables(self) -> int:
        """Number of feature columns."""
        return self.data.shape[1]

    @property
    def sample_bytes(self) -> int:
        """Input bytes per sample on the accelerator wire (1 B/feature)."""
        return self.n_variables

    @property
    def transfer_bits_per_sample(self) -> int:
        """Total bits moved per sample: input bytes plus the f64 result."""
        return 8 * (self.sample_bytes + RESULT_BYTES)


def encode_samples(data: np.ndarray) -> bytes:
    """Pack a ``(batch, n)`` count matrix into the device byte stream.

    Values must fit a single unsigned byte; rows are laid out
    back-to-back with no padding, matching the Load Unit's expectation
    of a dense linear read.
    """
    data = np.asarray(data)
    if data.ndim != 2:
        raise ReproError(f"encode_samples needs a 2-D array, got {data.ndim}-D")
    if np.any(data < 0) or np.any(data > 255):
        raise ReproError("sample features must fit a single byte (0..255)")
    if not np.allclose(data, np.rint(np.asarray(data, dtype=np.float64))):
        raise ReproError("sample features must be integral for byte encoding")
    return np.ascontiguousarray(data, dtype=np.uint8).tobytes()


def decode_results(payload: bytes, n_samples: Optional[int] = None) -> np.ndarray:
    """Unpack the device's result stream of float64 log-likelihoods."""
    if len(payload) % RESULT_BYTES:
        raise ReproError(
            f"result payload of {len(payload)} bytes is not a multiple of {RESULT_BYTES}"
        )
    out = np.frombuffer(payload, dtype=np.float64)
    if n_samples is not None and len(out) != n_samples:
        raise ReproError(f"expected {n_samples} results, got {len(out)}")
    return out


def batch_iterator(
    data: np.ndarray, batch_size: int
) -> Iterator[np.ndarray]:
    """Yield contiguous row batches of at most *batch_size* rows.

    Views, not copies — the guide's "be easy on the memory" rule; the
    encoder copies once when packing bytes.
    """
    if batch_size < 1:
        raise ReproError(f"batch_size must be >= 1, got {batch_size}")
    data = np.asarray(data)
    for start in range(0, data.shape[0], batch_size):
        yield data[start: start + batch_size]


def train_test_split(
    data: np.ndarray, test_fraction: float = 0.2, seed: int = 0
) -> Tuple[np.ndarray, np.ndarray]:
    """Shuffle rows and split into (train, test) by *test_fraction*."""
    if not 0.0 < test_fraction < 1.0:
        raise ReproError(f"test_fraction must be in (0, 1), got {test_fraction}")
    data = np.asarray(data)
    rng = np.random.default_rng(seed)
    order = rng.permutation(data.shape[0])
    cut = int(round(data.shape[0] * (1.0 - test_fraction)))
    if cut == 0 or cut == data.shape[0]:
        raise ReproError("split produced an empty train or test partition")
    return data[order[:cut]], data[order[cut:]]
