"""Synthetic stand-in for the UCI NIPS bag-of-words corpus.

The real corpus holds ~1500 NIPS papers with per-document counts for
~12k words; the paper's benchmarks keep only the *n* most frequent
words (n = 10..80).  We cannot download it here, so this module
synthesises data with the properties that matter downstream:

* **Zipfian marginals** — frequent words have large, long-tailed
  counts; rare words are mostly zero.  This fixes the histogram bin
  counts (hence BRAM/LUT-memory table sizes) realistically.
* **Topic structure** — documents come from a small number of latent
  topics that modulate word rates, producing the row-cluster structure
  that LearnSPN's k-means step discovers (hence sum nodes).
* **Within-topic correlation blocks** — words co-occur in groups,
  producing the dependency components that the independence test
  discovers (hence product-node splits).

Counts are single-byte values (0..255) exactly as the accelerator's
input format requires (the paper: "the input consists of n single-byte
values" per sample).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ReproError

__all__ = ["NipsCorpusConfig", "synthesize_nips_corpus"]


@dataclass(frozen=True)
class NipsCorpusConfig:
    """Parameters of the synthetic NIPS bag-of-words generator."""

    #: Number of word variables (the "n" in NIPS-n).
    n_words: int
    #: Number of documents (rows) to synthesise.
    n_documents: int = 1500
    #: Latent topic count controlling row-cluster structure.
    n_topics: int = 4
    #: Zipf exponent of the word-frequency ranking.
    zipf_exponent: float = 1.1
    #: Mean count of the most frequent word in its active topics.
    top_word_rate: float = 24.0
    #: Words per correlated co-occurrence block.
    block_size: int = 5
    #: Multiplier applied to a block's rates when its topic is active.
    topic_boost: float = 3.0
    #: PRNG seed; the paper's benchmarks are generated with seed 2022.
    seed: int = 2022

    def __post_init__(self):
        if self.n_words < 1:
            raise ReproError(f"n_words must be >= 1, got {self.n_words}")
        if self.n_documents < 1:
            raise ReproError(f"n_documents must be >= 1, got {self.n_documents}")
        if self.n_topics < 1:
            raise ReproError(f"n_topics must be >= 1, got {self.n_topics}")
        if self.block_size < 1:
            raise ReproError(f"block_size must be >= 1, got {self.block_size}")


def synthesize_nips_corpus(config: NipsCorpusConfig) -> np.ndarray:
    """Generate a ``(n_documents, n_words)`` uint8 count matrix.

    The generative process: each document draws a topic; each word
    belongs to one co-occurrence block, each block is boosted in one
    topic; word counts are Poisson with rate = Zipf base rate x boost
    x per-document length factor, clipped to the single-byte range.
    """
    rng = np.random.default_rng(config.seed)
    n = config.n_words

    # Zipfian base rates: word k has rate ~ top_rate / (k+1)^s.
    ranks = np.arange(1, n + 1, dtype=np.float64)
    base_rates = config.top_word_rate / ranks**config.zipf_exponent

    # Assign words to co-occurrence blocks and blocks to topics.
    block_of_word = np.arange(n) // config.block_size
    n_blocks = int(block_of_word.max()) + 1
    topic_of_block = rng.integers(0, config.n_topics, size=n_blocks)

    # Per-document topic and verbosity.
    topics = rng.integers(0, config.n_topics, size=config.n_documents)
    length_factor = rng.gamma(shape=4.0, scale=0.25, size=config.n_documents)

    # Rate matrix: boost blocks whose topic matches the document topic.
    boost = np.where(
        topic_of_block[block_of_word][np.newaxis, :] == topics[:, np.newaxis],
        config.topic_boost,
        1.0,
    )
    rates = base_rates[np.newaxis, :] * boost * length_factor[:, np.newaxis]
    counts = rng.poisson(rates)
    return np.minimum(counts, 255).astype(np.uint8)
