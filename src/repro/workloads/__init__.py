"""Workload generation: datasets and inference batches.

The paper evaluates on SPNs learned from the UCI "Bag of Words" NIPS
corpus, restricted to the 10..80 most frequent words (NIPS10..NIPS80).
The corpus itself is not redistributable/downloadable here, so
:mod:`repro.workloads.nips_corpus` synthesises a statistically similar
stand-in: per-document word counts with Zipfian marginals and
topic-induced correlations (see DESIGN.md §2 for the substitution
argument).  :mod:`repro.workloads.datasets` provides generic dataset
utilities and the byte-exact sample encodings the accelerator consumes.
"""

from repro.workloads.nips_corpus import NipsCorpusConfig, synthesize_nips_corpus
from repro.workloads.datasets import (
    Dataset,
    encode_samples,
    decode_results,
    batch_iterator,
    train_test_split,
)

__all__ = [
    "NipsCorpusConfig",
    "synthesize_nips_corpus",
    "Dataset",
    "encode_samples",
    "decode_results",
    "batch_iterator",
    "train_test_split",
]
