"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without catching unrelated Python
errors.  Sub-hierarchies mirror the package layout: SPN structure errors,
arithmetic-format configuration errors, compiler/fitting errors, memory
model errors and host-runtime errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SPNStructureError(ReproError):
    """An SPN graph violates a structural requirement.

    Raised when a graph is not a DAG, references unknown children, or
    violates completeness/decomposability/smoothness where those are
    required (e.g. before hardware generation).
    """


class SPNFormatError(ReproError):
    """The SPFlow-compatible textual SPN description cannot be parsed."""


class ArithmeticConfigError(ReproError):
    """An arithmetic number-format configuration is invalid.

    Examples: zero mantissa bits, unknown rounding mode, posit *es*
    larger than the word allows.
    """


class CompilerError(ReproError):
    """The hardware compiler cannot translate or schedule an SPN."""


class NativeBackendError(CompilerError):
    """The native (compiled-C) inference backend is unavailable or failed.

    Raised on explicit ``backend="native"`` requests when no C compiler
    is present, when a plan contains leaves the code generator cannot
    compile (generic leaf blocks), or when a kernel build fails.
    Implicit use through the process-wide backend switch degrades to the
    numpy plan backend with a warning instead of raising.
    """


class ResourceFitError(CompilerError):
    """A composed design does not fit the target device's resources."""


class MemoryModelError(ReproError):
    """A memory-substrate model was used inconsistently.

    Examples: AXI burst crossing a forbidden boundary, accessing an HBM
    channel's address space without the crossbar enabled, freeing an
    unallocated device buffer.
    """


class AllocationError(MemoryModelError):
    """The device memory manager cannot satisfy an allocation request."""


class SimulationError(ReproError):
    """The discrete-event engine detected an inconsistency.

    Examples: scheduling an event in the past, a process yielding an
    unknown command, deadlock detection on bounded channels.
    """


class ServingError(ReproError):
    """The online serving layer was used or configured inconsistently.

    Examples: submitting to a closed broker, a request row of the
    wrong width, a non-positive latency budget.
    """


class ServingOverloadError(ServingError):
    """A request was shed by the broker's admission control.

    Raised when accepting the request would push the number of queued
    rows past ``max_queue_rows``.  Shedding at the door bounds the
    latency of every *admitted* request; callers are expected to treat
    this as back-pressure (retry later, or report the rejection), and
    the broker counts every occurrence in ``serving.rejected``.
    """


class RuntimeConfigError(ReproError):
    """The host runtime was configured inconsistently.

    Examples: more accelerators requested than PEs present, a block size
    that does not hold a single sample, zero control threads.
    """
