"""Logarithmic Number System (LNS) emulation.

Models the resource-efficient LNS of Weber et al. (FPT 2019): a
positive value ``x`` is stored as ``log2(x)`` in two's-complement fixed
point with ``i`` integer and ``f`` fraction bits, plus a zero flag.
SPN inference only ever sees non-negative values, so no sign bit for
the linear-domain value is needed.

Operator semantics:

* **mul** is exact up to saturation — an integer addition of the fixed
  point logs; this is why LNS multipliers are tiny on FPGAs.
* **add** is the expensive operator: ``log2(a+b) = la + phi(la - lb)``
  with ``phi(d) = log2(1 + 2^-d)``.  The hardware evaluates ``phi``
  with a lookup table over the quantised difference plus linear
  interpolation; the emulation reproduces exactly that table-plus-
  interpolation datapath so its error behaviour matches the
  generator's.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.arith.base import ArrayLike, NumberFormat
from repro.errors import ArithmeticConfigError

__all__ = ["LogNumberSystem"]


class LogNumberSystem(NumberFormat):
    """A configurable logarithmic number system for non-negative values.

    Parameters
    ----------
    integer_bits:
        Integer bits of the log2 value (including its sign); the
        representable exponent range is ``[-2^(i-1), 2^(i-1))``.
    fraction_bits:
        Fractional bits of the log2 value (precision).
    table_address_bits:
        Address width of the ``phi`` lookup table (table has
        ``2^table_address_bits`` segments over the active difference
        range).
    """

    def __init__(
        self,
        integer_bits: int,
        fraction_bits: int,
        table_address_bits: int = 10,
    ):
        if not 2 <= integer_bits <= 16:
            raise ArithmeticConfigError(
                f"integer_bits must be in [2, 16], got {integer_bits}"
            )
        if not 1 <= fraction_bits <= 40:
            raise ArithmeticConfigError(
                f"fraction_bits must be in [1, 40], got {fraction_bits}"
            )
        if not 2 <= table_address_bits <= 16:
            raise ArithmeticConfigError(
                f"table_address_bits must be in [2, 16], got {table_address_bits}"
            )
        self.integer_bits = int(integer_bits)
        self.fraction_bits = int(fraction_bits)
        self.table_address_bits = int(table_address_bits)
        # +1 for the zero flag the hardware carries alongside the word.
        self.bits = integer_bits + fraction_bits + 1
        self.name = f"lns({integer_bits},{fraction_bits})"
        self._scale = float(1 << fraction_bits)
        self.max_log = float((1 << (integer_bits - 1)) - 2.0 ** (-fraction_bits))
        self.min_log = -float(1 << (integer_bits - 1))
        # phi(d) = log2(1 + 2^-d) decays below one output ULP past
        # d_max; the hardware clamps the table there and returns 0.
        self._d_max = float(fraction_bits + 1)
        self._build_table()

    def _build_table(self) -> None:
        n = 1 << self.table_address_bits
        # Segment endpoints over [0, d_max]; entries are quantised to
        # the fraction grid exactly like the BRAM contents would be.
        self._seg_width = self._d_max / n
        knots = np.arange(n + 1) * self._seg_width
        phi = np.log2(1.0 + np.exp2(-knots))
        self._table = np.round(phi * self._scale) / self._scale

    # -- range ------------------------------------------------------------------
    @property
    def smallest_positive(self) -> float:
        return float(2.0**self.min_log)

    @property
    def largest(self) -> float:
        return float(2.0**self.max_log)

    # -- log-domain helpers --------------------------------------------------------
    def quantize_log(self, logs: ArrayLike) -> np.ndarray:
        """Quantise log2 values onto the fixed-point grid (saturating)."""
        logs = np.asarray(logs, dtype=np.float64)
        fixed = np.rint(logs * self._scale) / self._scale
        return np.clip(fixed, self.min_log, self.max_log)

    def phi(self, diff: ArrayLike) -> np.ndarray:
        """Table-plus-interpolation evaluation of log2(1 + 2^-d), d>=0."""
        diff = np.asarray(diff, dtype=np.float64)
        clamped = np.clip(diff, 0.0, self._d_max)
        position = clamped / self._seg_width
        index = np.minimum(position.astype(np.int64), (1 << self.table_address_bits) - 1)
        fraction = position - index
        left = self._table[index]
        right = self._table[index + 1]
        interpolated = left + fraction * (right - left)
        out = np.round(interpolated * self._scale) / self._scale
        return np.where(diff >= self._d_max, 0.0, out)

    # -- NumberFormat interface -------------------------------------------------------
    def quantize(self, values: ArrayLike) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        scalar = values.ndim == 0
        values = np.atleast_1d(values)
        if np.any(values < 0):
            raise ArithmeticConfigError(
                "LNS represents non-negative values only (SPN probabilities)"
            )
        out = np.zeros_like(values)
        positive = values > 0
        underflow = positive & (values < self.smallest_positive / np.sqrt(2.0))
        live = positive & ~underflow
        if np.any(live):
            out[live] = np.exp2(self.quantize_log(np.log2(values[live])))
        # Non-finite saturates; true zero stays zero (the zero flag).
        out[~np.isfinite(values)] = self.largest
        return out[0] if scalar else out

    def mul(self, a: ArrayLike, b: ArrayLike) -> np.ndarray:
        a = np.atleast_1d(np.asarray(a, dtype=np.float64))
        b = np.atleast_1d(np.asarray(b, dtype=np.float64))
        zero = (a == 0) | (b == 0)
        safe_a = np.where(zero, 1.0, a)
        safe_b = np.where(zero, 1.0, b)
        logs = np.log2(safe_a) + np.log2(safe_b)
        # The fixed-point log addition is exact; only saturation applies.
        result = np.exp2(np.clip(logs, self.min_log, self.max_log))
        return np.where(zero, 0.0, result)

    def add(self, a: ArrayLike, b: ArrayLike) -> np.ndarray:
        a = np.atleast_1d(np.asarray(a, dtype=np.float64))
        b = np.atleast_1d(np.asarray(b, dtype=np.float64))
        a_zero = a == 0
        b_zero = b == 0
        la = np.log2(np.where(a_zero, 1.0, a))
        lb = np.log2(np.where(b_zero, 1.0, b))
        hi = np.maximum(la, lb)
        lo = np.minimum(la, lb)
        result_log = self.quantize_log(hi + self.phi(hi - lo))
        result = np.exp2(result_log)
        result = np.where(a_zero & b_zero, 0.0, result)
        result = np.where(a_zero & ~b_zero, b, result)
        result = np.where(b_zero & ~a_zero, a, result)
        return result
