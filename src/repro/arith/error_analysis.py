"""Accuracy analysis of hardware number formats.

Used by the number-format example and by tests to confirm that the
paper's chosen configurations (``PAPER_CFP``, ``PAPER_LNS``) are
numerically adequate for the NIPS benchmarks — the precondition for
the whole performance study (the accelerator must compute the *right*
probabilities before its throughput means anything).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.arith.base import NumberFormat
from repro.arith.spn_eval import evaluate_spn_in_format
from repro.errors import ReproError
from repro.spn.graph import SPN
from repro.spn.inference import log_likelihood

__all__ = [
    "relative_errors",
    "max_relative_error",
    "ErrorReport",
    "compare_formats_on_spn",
]


def relative_errors(reference: np.ndarray, approximate: np.ndarray) -> np.ndarray:
    """Elementwise ``|approx - ref| / |ref|`` with zero-safe handling.

    Entries where the reference is zero report the absolute error
    instead (relative error is undefined there).
    """
    reference = np.asarray(reference, dtype=np.float64)
    approximate = np.asarray(approximate, dtype=np.float64)
    if reference.shape != approximate.shape:
        raise ReproError(
            f"shape mismatch {reference.shape} vs {approximate.shape}"
        )
    diff = np.abs(approximate - reference)
    denom = np.abs(reference)
    zero = denom == 0
    out = np.empty_like(diff)
    out[~zero] = diff[~zero] / denom[~zero]
    out[zero] = diff[zero]
    return out


def max_relative_error(reference: np.ndarray, approximate: np.ndarray) -> float:
    """Maximum of :func:`relative_errors`."""
    return float(np.max(relative_errors(reference, approximate)))


@dataclass(frozen=True)
class ErrorReport:
    """Accuracy of one format on one SPN/dataset pair."""

    format_name: str
    spn_name: str
    n_samples: int
    #: Max relative error of the *log*-likelihood vs float64.
    max_log_error: float
    #: Mean relative error of the log-likelihood vs float64.
    mean_log_error: float
    #: Fraction of samples whose hardware result underflowed to zero.
    underflow_fraction: float

    def acceptable(self, threshold: float = 1e-2) -> bool:
        """True when the max log-domain error is below *threshold* and
        nothing underflowed — the acceptance rule of [4]."""
        return self.max_log_error < threshold and self.underflow_fraction == 0.0


def compare_formats_on_spn(
    spn: SPN,
    data: np.ndarray,
    formats: Sequence[NumberFormat],
) -> list:
    """Evaluate *spn* on *data* under each format and report errors.

    Returns one :class:`ErrorReport` per format, in input order.
    """
    data = np.asarray(data, dtype=np.float64)
    reference = log_likelihood(spn, data)
    reports = []
    for fmt in formats:
        linear = evaluate_spn_in_format(spn, data, fmt, return_linear=True)
        underflow = linear <= 0.0
        with np.errstate(divide="ignore"):
            approx_log = np.log(linear)
        live = ~underflow
        if np.any(live):
            errors = relative_errors(reference[live], approx_log[live])
            max_err = float(errors.max())
            mean_err = float(errors.mean())
        else:
            max_err = float("inf")
            mean_err = float("inf")
        reports.append(
            ErrorReport(
                format_name=fmt.name,
                spn_name=spn.name,
                n_samples=len(data),
                max_log_error=max_err,
                mean_log_error=mean_err,
                underflow_fraction=float(np.mean(underflow)),
            )
        )
    return reports
