"""Posit arithmetic emulation (PaCoGen-style).

Implements posit<nbits, es> quantisation as specified by the posit
standard (Gustafson): a sign bit, a unary-coded *regime*, ``es``
exponent bits and the remaining bits of fraction.  The useed is
``2^(2^es)``; the represented value is
``sign * useed^regime * 2^exponent * (1 + fraction)``.

The paper's comparison work [4] evaluated posits via the PaCoGen core
generator; this emulation provides the same quantisation behaviour —
tapered precision: values near 1 get the most fraction bits, extreme
magnitudes degrade gracefully instead of flushing/saturating early.

Quantisation is implemented via round-to-nearest-even on the integer
bit pattern, vectorised over numpy arrays.
"""

from __future__ import annotations

import numpy as np

from repro.arith.base import ArrayLike, NumberFormat
from repro.errors import ArithmeticConfigError

__all__ = ["Posit"]


class Posit(NumberFormat):
    """A posit<nbits, es> format.

    Parameters
    ----------
    nbits:
        Total width in bits (3..32 supported by the emulation).
    es:
        Exponent field width (0..4 typical).
    """

    def __init__(self, nbits: int, es: int):
        if not 3 <= nbits <= 32:
            raise ArithmeticConfigError(f"nbits must be in [3, 32], got {nbits}")
        if not 0 <= es <= 8:
            raise ArithmeticConfigError(f"es must be in [0, 8], got {es}")
        if es >= nbits - 2:
            raise ArithmeticConfigError(
                f"es={es} leaves no regime/fraction room in nbits={nbits}"
            )
        self.nbits = int(nbits)
        self.es = int(es)
        self.useed_power = 1 << es  # useed = 2^(2^es)
        self.bits = self.nbits
        self.name = f"posit({nbits},{es})"
        # Maximum positive value: regime of nbits-1 ones.
        self._max_regime = nbits - 2
        self.max_value = float(2.0 ** (self.useed_power * self._max_regime))
        self.min_value = float(2.0 ** (-self.useed_power * self._max_regime))
        self._enumerate_values()

    def _enumerate_values(self) -> None:
        """Precompute all positive representable values.

        For nbits <= 16 the full table is tiny (< 32k entries) and
        makes quantisation a single ``searchsorted``.  For wider
        posits we fall back to scaled enumeration of the packed
        integer patterns, still vectorised.
        """
        n = self.nbits
        if n > 16:
            # Keep memory bounded: 2^31 values would be too many.  Use
            # analytic quantisation instead (see quantize()).
            self._values = None
            return
        patterns = np.arange(1, 1 << (n - 1), dtype=np.int64)
        self._values = self._decode_positive(patterns)

    def _decode_positive(self, patterns: np.ndarray) -> np.ndarray:
        """Decode positive posit bit patterns to float64 values."""
        n = self.nbits
        values = np.empty(len(patterns), dtype=np.float64)
        for i, p in enumerate(patterns):
            bits = int(p)
            # Regime: count of identical bits after the sign bit.
            body = bits & ((1 << (n - 1)) - 1)
            first = (body >> (n - 2)) & 1
            run = 0
            position = n - 2
            while position >= 0 and ((body >> position) & 1) == first:
                run += 1
                position -= 1
            regime = run - 1 if first == 1 else -run
            position -= 1  # skip the terminating bit (if present)
            remaining = max(position + 1, 0)
            exp_bits = min(self.es, remaining)
            exponent = (body >> (remaining - exp_bits)) & ((1 << exp_bits) - 1) if exp_bits else 0
            exponent <<= self.es - exp_bits  # left-align short exponent fields
            frac_bits = remaining - exp_bits
            fraction = body & ((1 << frac_bits) - 1) if frac_bits > 0 else 0
            mantissa = 1.0 + (fraction / (1 << frac_bits) if frac_bits > 0 else 0.0)
            scale = self.useed_power * regime + exponent
            values[i] = mantissa * 2.0**scale
        return values

    # -- range ----------------------------------------------------------------
    @property
    def smallest_positive(self) -> float:
        return self.min_value

    @property
    def largest(self) -> float:
        return self.max_value

    # -- quantisation ------------------------------------------------------------
    def quantize(self, values: ArrayLike) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        scalar = values.ndim == 0
        values = np.atleast_1d(values)
        sign = np.signbit(values)
        magnitude = np.abs(values)
        out = np.zeros_like(magnitude)
        finite = np.isfinite(magnitude)
        nonzero = (magnitude > 0) & finite

        if np.any(nonzero):
            mag = magnitude[nonzero]
            if self._values is not None:
                out[nonzero] = self._quantize_table(mag)
            else:
                out[nonzero] = self._quantize_analytic(mag)
        out[~finite | np.isnan(values)] = self.max_value
        result = np.where(sign, -out, out)
        return result[0] if scalar else result

    def _quantize_table(self, mag: np.ndarray) -> np.ndarray:
        table = self._values
        idx = np.searchsorted(table, mag)
        idx_lo = np.clip(idx - 1, 0, len(table) - 1)
        idx_hi = np.clip(idx, 0, len(table) - 1)
        lo = table[idx_lo]
        hi = table[idx_hi]
        # Round to nearest (ties to the even pattern index, matching
        # posit round-to-nearest-even on the integer encoding).
        pick_hi = (mag - lo) > (hi - mag)
        ties = (mag - lo) == (hi - mag)
        pick_hi = pick_hi | (ties & (idx_hi % 2 == 0))
        return np.where(pick_hi, hi, lo)

    def _quantize_analytic(self, mag: np.ndarray) -> np.ndarray:
        """Wide-posit quantisation via per-value fraction-width math."""
        mag = np.clip(mag, self.min_value, self.max_value)
        scale = np.floor(np.log2(mag)).astype(np.int64)
        regime = np.floor_divide(scale, self.useed_power)
        # Regime field length: r+2 bits for regime >= 0, -r+1 for < 0.
        regime_len = np.where(regime >= 0, regime + 2, -regime + 1)
        frac_bits = np.maximum(self.nbits - 1 - regime_len - self.es, 0)
        step = np.exp2(scale.astype(np.float64) - frac_bits)
        quantised = np.rint(mag / step) * step
        return np.clip(quantised, self.min_value, self.max_value)
