"""IEEE-754 reference formats.

:data:`FLOAT64` is the golden reference every hardware format is
compared against (the CPU baseline computes in float64).  :data:`FLOAT32`
models the single-precision datapath of the paper's *prior* F1 design,
whose larger operators explain much of Table I's resource gap.
"""

from __future__ import annotations

import numpy as np

from repro.arith.base import ArrayLike, NumberFormat

__all__ = ["FloatReference", "FLOAT64", "FLOAT32"]


class FloatReference(NumberFormat):
    """An IEEE-754 binary format backed by a native numpy dtype."""

    def __init__(self, dtype: np.dtype, bits: int, name: str):
        self.dtype = np.dtype(dtype)
        self.bits = bits
        self.name = name

    def quantize(self, values: ArrayLike) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        return values.astype(self.dtype).astype(np.float64)

    def add(self, a: ArrayLike, b: ArrayLike) -> np.ndarray:
        a = np.asarray(a, dtype=self.dtype)
        b = np.asarray(b, dtype=self.dtype)
        return (a + b).astype(np.float64)

    def mul(self, a: ArrayLike, b: ArrayLike) -> np.ndarray:
        a = np.asarray(a, dtype=self.dtype)
        b = np.asarray(b, dtype=self.dtype)
        return (a * b).astype(np.float64)

    @property
    def smallest_positive(self) -> float:
        return float(np.finfo(self.dtype).tiny)

    @property
    def largest(self) -> float:
        return float(np.finfo(self.dtype).max)


#: IEEE-754 binary64 — the golden software reference.
FLOAT64 = FloatReference(np.float64, 64, "float64")

#: IEEE-754 binary32 — the prior work's datapath format.
FLOAT32 = FloatReference(np.float32, 32, "float32")
