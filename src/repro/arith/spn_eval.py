"""SPN evaluation under an emulated hardware number format.

Mirrors the FPGA datapath's computation exactly, but in software: leaf
lookups quantise their table entries to the target format (the whole
leaf stage is vectorised through the compiled inference plan's fused
kernels), then the arithmetic tree is folded with the format's
``add``/``mul`` operators in the same left-to-right order the
generated hardware tree uses.

The evaluation happens in the *linear* probability domain (as the CFP
and posit datapaths do; the LNS datapath's log-domain behaviour is
captured inside :class:`~repro.arith.lns.LogNumberSystem`'s operator
semantics).  The returned value is the log of the root probability for
comparability with :func:`repro.spn.inference.log_likelihood`.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.arith.base import NumberFormat
from repro.errors import SPNStructureError
from repro.spn.graph import SPN
from repro.spn.nodes import LeafNode, ProductNode, SumNode
from repro.spn.plan import get_plan
from repro.spn.plan_eval import plan_leaf_log_values

__all__ = ["evaluate_spn_in_format"]


def evaluate_spn_in_format(
    spn: SPN,
    data: np.ndarray,
    fmt: NumberFormat,
    *,
    return_linear: bool = False,
    missing_value: float = None,
) -> np.ndarray:
    """Evaluate *spn* on *data* with the datapath semantics of *fmt*.

    Parameters
    ----------
    spn:
        The network (histogram/categorical/Gaussian leaves all work;
        leaf probabilities are quantised to the format).
    data:
        ``(batch, n_variables)`` sample matrix.
    fmt:
        The emulated hardware number format.
    return_linear:
        Return the raw linear-domain root value instead of its log.
    missing_value:
        When given, feature entries equal to this value are treated as
        missing: their leaf contributes probability 1 (the hardware's
        marginalisation encoding for the reserved byte value).

    Returns
    -------
    ``(batch,)`` array: log-probability (or linear probability) as the
    hardware would produce it.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim == 1:
        data = data[np.newaxis, :]
    if data.ndim != 2:
        raise SPNStructureError(f"data must be 2-D, got {data.ndim}-D")

    # Leaf-probability stage through the compiled plan's fused kernels
    # (one pass for all leaves); the interior fold below keeps the
    # hardware tree's exact per-node left-to-right operator order.
    leaf_logs = plan_leaf_log_values(
        get_plan(spn), data, missing_value=missing_value
    )
    values: Dict[int, np.ndarray] = {}
    for node in spn:
        if isinstance(node, LeafNode):
            values[node.id] = fmt.quantize(np.exp(leaf_logs[node.id]))
        elif isinstance(node, ProductNode):
            acc = values[node.children[0].id]
            for child in node.children[1:]:
                acc = fmt.mul(acc, values[child.id])
            values[node.id] = acc
        elif isinstance(node, SumNode):
            weights = fmt.quantize(node.weights)
            acc = fmt.mul(values[node.children[0].id], np.full(data.shape[0], weights[0]))
            for child, weight in zip(node.children[1:], weights[1:]):
                term = fmt.mul(values[child.id], np.full(data.shape[0], weight))
                acc = fmt.add(acc, term)
            values[node.id] = acc
        else:  # pragma: no cover - validation rules this out
            raise SPNStructureError(f"unknown node type {type(node).__name__}")

    root = values[spn.root.id]
    if return_linear:
        return root
    with np.errstate(divide="ignore"):
        return np.log(root)
