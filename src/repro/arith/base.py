"""The NumberFormat interface.

A format provides a *quantisation* (mapping real values onto its
representable set) and the two datapath operators the SPN hardware
needs (add, mul) with that format's semantics: operands are assumed
already quantised, the operation is computed, and the result is
re-quantised — exactly what a hardware operator does in one pipeline
stage.

Values are carried as float64 arrays whose entries are exactly
representable in the emulated format.  float64 can represent every
value of any format with <= 52 mantissa bits and modest exponent range
exactly, so the emulation is bit-accurate while staying vectorised.
"""

from __future__ import annotations

from typing import Union

import numpy as np

__all__ = ["NumberFormat", "ArrayLike"]

ArrayLike = Union[float, np.ndarray]


class NumberFormat:
    """Abstract base class of emulated hardware number formats."""

    #: Short identifier used in reports (e.g. ``cfp(8,26)``).
    name: str = "abstract"
    #: Total storage bits per value (drives resource/bandwidth models).
    bits: int = 0

    # -- quantisation ---------------------------------------------------------
    def quantize(self, values: ArrayLike) -> np.ndarray:
        """Map real *values* onto the format's representable set."""
        raise NotImplementedError

    def representable(self, values: ArrayLike) -> np.ndarray:
        """Boolean mask: which entries survive quantisation unchanged."""
        values = np.asarray(values, dtype=np.float64)
        return np.equal(self.quantize(values), values)

    # -- datapath operators -----------------------------------------------------
    def add(self, a: ArrayLike, b: ArrayLike) -> np.ndarray:
        """Format-semantics addition of already-quantised operands."""
        return self.quantize(np.asarray(a, dtype=np.float64) + np.asarray(b, dtype=np.float64))

    def mul(self, a: ArrayLike, b: ArrayLike) -> np.ndarray:
        """Format-semantics multiplication of already-quantised operands."""
        return self.quantize(np.asarray(a, dtype=np.float64) * np.asarray(b, dtype=np.float64))

    # -- range ---------------------------------------------------------------------
    @property
    def smallest_positive(self) -> float:
        """Smallest representable positive value (underflow threshold)."""
        raise NotImplementedError

    @property
    def largest(self) -> float:
        """Largest representable finite value (saturation threshold)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"
