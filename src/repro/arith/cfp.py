"""Custom Floating Point (CFP) emulation.

Models the FPGA-optimised floating-point format of Sommer et al. (FCCM
2020): a sign bit, ``e`` exponent bits (biased), ``m`` mantissa bits
with an implicit leading one, **no subnormals** (flush to zero), **no
NaN/infinity** (saturate to the largest finite value), and a
configurable rounding scheme.  Dropping the IEEE special cases is what
makes the hardware operators small — SPN probabilities never need
them: values are non-negative and overflow cannot occur when
multiplying probabilities <= 1.

The emulation is vectorised: quantisation decomposes values with
``np.frexp`` and rebuilds them with ``np.ldexp``, so batches of
millions of values quantise in a handful of numpy ops.
"""

from __future__ import annotations

import enum
from typing import Union

import numpy as np

from repro.arith.base import ArrayLike, NumberFormat
from repro.errors import ArithmeticConfigError

__all__ = ["CustomFloat", "Rounding"]


class Rounding(enum.Enum):
    """Mantissa rounding schemes supported by the generator."""

    #: IEEE round-to-nearest, ties to even (the default, best accuracy).
    NEAREST_EVEN = "nearest-even"
    #: Truncate toward zero (cheapest hardware).
    TRUNCATE = "truncate"
    #: Round away from zero (guards against underestimating tiny
    #: probabilities at one extra carry chain).
    AWAY_FROM_ZERO = "away-from-zero"


class CustomFloat(NumberFormat):
    """A configurable custom floating-point format.

    Parameters
    ----------
    exponent_bits:
        Width of the biased exponent field (2..11 supported; 11 is the
        float64 ceiling of the emulation).
    mantissa_bits:
        Stored mantissa bits, excluding the implicit one (1..52).
    rounding:
        Mantissa rounding scheme, a :class:`Rounding` member.
    """

    def __init__(
        self,
        exponent_bits: int,
        mantissa_bits: int,
        rounding: Rounding = Rounding.NEAREST_EVEN,
    ):
        if not 2 <= exponent_bits <= 11:
            raise ArithmeticConfigError(
                f"exponent_bits must be in [2, 11], got {exponent_bits}"
            )
        if not 1 <= mantissa_bits <= 52:
            raise ArithmeticConfigError(
                f"mantissa_bits must be in [1, 52], got {mantissa_bits}"
            )
        if not isinstance(rounding, Rounding):
            raise ArithmeticConfigError(f"unknown rounding scheme {rounding!r}")
        self.exponent_bits = int(exponent_bits)
        self.mantissa_bits = int(mantissa_bits)
        self.rounding = rounding
        self.bias = (1 << (exponent_bits - 1)) - 1
        #: Minimum/maximum unbiased exponents of normal values.  The
        #: all-zero exponent code is reserved for zero (no denormals);
        #: no NaN/inf codes are reserved: the hardware never produces
        #: them, so the top exponent code encodes ordinary normals.
        self.min_exponent = 1 - self.bias
        self.max_exponent = (1 << exponent_bits) - 1 - self.bias
        self.bits = 1 + exponent_bits + mantissa_bits
        self.name = f"cfp({exponent_bits},{mantissa_bits},{rounding.value})"

    # -- range -------------------------------------------------------------------
    @property
    def smallest_positive(self) -> float:
        return float(np.ldexp(1.0, self.min_exponent))

    @property
    def largest(self) -> float:
        max_mantissa = 2.0 - np.ldexp(1.0, -self.mantissa_bits)
        with np.errstate(over="ignore"):
            value = float(np.ldexp(max_mantissa, self.max_exponent))
        # e=11 formats exceed the float64 carrier at the very top; the
        # emulation saturates at the carrier's ceiling instead.
        if not np.isfinite(value):
            return float(np.finfo(np.float64).max)
        return value

    #: Alias matching FPGA-generator terminology.
    @property
    def machine_epsilon(self) -> float:
        """Spacing of representable values around 1.0."""
        return float(np.ldexp(1.0, -self.mantissa_bits))

    # -- quantisation ---------------------------------------------------------------
    def _round_mantissa(self, scaled: np.ndarray) -> np.ndarray:
        """Round mantissa*2^m values to integers per the scheme."""
        if self.rounding is Rounding.NEAREST_EVEN:
            return np.rint(scaled)
        if self.rounding is Rounding.TRUNCATE:
            return np.floor(scaled)  # operands are positive magnitudes
        return np.ceil(scaled)  # AWAY_FROM_ZERO on magnitudes

    def quantize(self, values: ArrayLike) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        scalar = values.ndim == 0
        values = np.atleast_1d(values)
        out = np.zeros_like(values)

        sign = np.signbit(values)
        magnitude = np.abs(values)
        finite = np.isfinite(magnitude)
        nonzero = (magnitude > 0) & finite

        if np.any(nonzero):
            mag = magnitude[nonzero]
            # frexp: mag = frac * 2^exp with frac in [0.5, 1).
            frac, exp = np.frexp(mag)
            # Normalise to mantissa in [1, 2): mantissa = frac*2, e = exp-1.
            exponent = exp - 1
            mantissa = frac * 2.0
            scaled = self._round_mantissa(np.ldexp(mantissa, self.mantissa_bits))
            # Rounding may carry out: 2.0 * 2^m -> bump the exponent.
            carried = scaled >= np.ldexp(2.0, self.mantissa_bits)
            scaled = np.where(carried, np.ldexp(1.0, self.mantissa_bits), scaled)
            exponent = exponent + carried.astype(exponent.dtype)

            quantised = np.ldexp(scaled, exponent - self.mantissa_bits)
            # Underflow: flush to zero (no subnormals in hardware).
            quantised = np.where(exponent < self.min_exponent, 0.0, quantised)
            # Overflow: saturate to the largest finite value.
            quantised = np.where(exponent > self.max_exponent, self.largest, quantised)
            result = np.zeros_like(magnitude)
            result[nonzero] = quantised
        else:
            result = np.zeros_like(magnitude)

        # Non-finite inputs saturate (hardware never sees them, but the
        # emulation must stay total).
        result[~finite] = self.largest
        nan_in = np.isnan(values)
        result[nan_in] = self.largest
        out = np.where(sign, -result, result)
        return out[0] if scalar else out

    # -- introspection -----------------------------------------------------------------
    def encode(self, values: ArrayLike) -> np.ndarray:
        """Bit patterns (uint64) of quantised *values*.

        Layout: ``[sign | exponent | mantissa]`` from MSB to LSB.  Zero
        encodes as all-zero exponent and mantissa (by convention the
        exponent code 0 with mantissa 0 is zero).
        """
        quantised = np.atleast_1d(self.quantize(values))
        sign = np.signbit(quantised).astype(np.uint64)
        magnitude = np.abs(quantised)
        nonzero = magnitude > 0
        frac, exp = np.frexp(np.where(nonzero, magnitude, 1.0))
        exponent_field = np.where(nonzero, exp - 1 + self.bias, 0).astype(np.uint64)
        mantissa_field = np.where(
            nonzero,
            np.rint(np.ldexp(frac * 2.0 - 1.0, self.mantissa_bits)),
            0.0,
        ).astype(np.uint64)
        return (
            (sign << np.uint64(self.exponent_bits + self.mantissa_bits))
            | (exponent_field << np.uint64(self.mantissa_bits))
            | mantissa_field
        )

    def decode(self, bits: ArrayLike) -> np.ndarray:
        """Inverse of :meth:`encode`."""
        bits = np.atleast_1d(np.asarray(bits, dtype=np.uint64))
        mantissa_mask = np.uint64((1 << self.mantissa_bits) - 1)
        exponent_mask = np.uint64((1 << self.exponent_bits) - 1)
        mantissa_field = bits & mantissa_mask
        exponent_field = (bits >> np.uint64(self.mantissa_bits)) & exponent_mask
        sign = (bits >> np.uint64(self.exponent_bits + self.mantissa_bits)) & np.uint64(1)
        zero = (exponent_field == 0) & (mantissa_field == 0)
        mantissa = 1.0 + np.ldexp(mantissa_field.astype(np.float64), -self.mantissa_bits)
        value = np.ldexp(mantissa, exponent_field.astype(np.int64) - self.bias)
        value = np.where(zero, 0.0, value)
        return np.where(sign.astype(bool), -value, value)
