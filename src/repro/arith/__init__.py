"""Hardware arithmetic number-format emulation.

The paper's datapath generator supports two configurable internal
number formats (§III-B), both originating in the group's prior work:

* **Custom Floating Point (CFP)** — configurable exponent/mantissa
  widths and rounding scheme (Sommer et al., FCCM 2020 [4]);
* **Logarithmic Number System (LNS)** — configurable fixed-point log
  representation with an interpolated addition operator (Weber et al.,
  FPT 2019 [11]);

plus a **Posit** format (PaCoGen-based) that [4] compares against.

Each format is emulated bit-accurately but *vectorised*: values travel
as float64 arrays holding exactly-representable format values, and the
``add``/``mul`` operators apply the format's quantisation semantics.
:mod:`repro.arith.spn_eval` evaluates whole SPNs under a format, which
is how the functional accelerator model and the accuracy experiments
check that a hardware configuration is numerically adequate.
"""

from repro.arith.base import NumberFormat
from repro.arith.float_ref import FloatReference, FLOAT64, FLOAT32
from repro.arith.cfp import CustomFloat, Rounding
from repro.arith.lns import LogNumberSystem
from repro.arith.posit import Posit
from repro.arith.spn_eval import evaluate_spn_in_format
from repro.arith.error_analysis import (
    ErrorReport,
    compare_formats_on_spn,
    max_relative_error,
    relative_errors,
)

#: The CFP configuration the paper says it adopts from [4]: enough
#: exponent range for NIPS-scale probabilities at reduced mantissa cost.
PAPER_CFP = CustomFloat(exponent_bits=10, mantissa_bits=25, rounding=Rounding.NEAREST_EVEN)

#: The LNS configuration of [11]: 32-bit word, wide integer field for
#: very small probabilities.
PAPER_LNS = LogNumberSystem(integer_bits=10, fraction_bits=21)

__all__ = [
    "NumberFormat",
    "FloatReference",
    "FLOAT64",
    "FLOAT32",
    "CustomFloat",
    "Rounding",
    "LogNumberSystem",
    "Posit",
    "evaluate_spn_in_format",
    "ErrorReport",
    "compare_formats_on_spn",
    "max_relative_error",
    "relative_errors",
    "PAPER_CFP",
    "PAPER_LNS",
]
