"""The SPN accelerator core: Load Unit, buffers, datapath, Store Unit.

A job (programmed through the register file) streams ``n_samples``
packed single-byte feature vectors from the core's HBM channel,
pushes them through the II=1 pipelined datapath, and writes one
float64 log-likelihood per sample back — the paper's Fig. 3 pipeline.

The model advances simulated time at burst granularity with
double-buffered load/compute/store stages, and *also* computes the
real results: the input bytes come out of the channel's functional
backing store, go through the software twin of the datapath, and the
results land back in the store, so end-to-end runs are verifiable
against the pure-software reference.

The Result Buffer models the §III-B packing rule: 64-bit results are
collected until a 512-bit word is complete before the Store Unit
writes it out, so result traffic happens in 64-byte (or larger,
burst-aggregated) units.

Steady-state fast-forwarding
----------------------------
When the core is the sole master of a plain HBM channel (no crossbar,
no explicit refresh, engine idle at job start) the whole
load/compute/store burst schedule is determined by the job parameters
alone, so instead of advancing the event loop burst by burst the job
is re-enacted by a scalar emulator (:func:`_emulate_burst_pipeline`)
that performs *exactly* the same float operations in the same order as
the discrete-event model, and the core sleeps once until the emulated
end time via ``Engine.timeout_until``.  The two models are bit-identical
— equivalence is asserted by ``tests/accel/test_fast_forward.py`` —
and the fast path is roughly an order of magnitude cheaper.  Setting
``burst_granular=True`` on the core (or its device) opts out, which
the runtime does automatically when a tracer is attached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.accel.memory_store import ChannelMemory
from repro.accel.registers import ExecutionMode, RegisterFile
from repro.arith.base import NumberFormat
from repro.arith.spn_eval import evaluate_spn_in_format
from repro.compiler.design import CoreSpec
from repro.errors import RuntimeConfigError
from repro.mem.hbm import HBMChannel
from repro.sim.channel import Channel
from repro.sim.engine import Engine, Event
from repro.spn.graph import SPN
from repro.spn.inference import MISSING_VALUE, log_likelihood_with_missing
from repro.units import KIB

__all__ = ["SPNAcceleratorCore", "JobResult"]

#: Load/Store Unit burst size.  64 KiB amortises the channel's
#: per-request overhead to <2% while staying far below the sample
#: buffer capacity.
BURST_BYTES = 64 * KIB

#: Double buffering between pipeline stages (ping/pong buffers).
_STAGE_DEPTH = 2


def _emulate_burst_pipeline(
    n_samples: int,
    sample_bytes: int,
    result_bytes: int,
    clock_hz: float,
    request_overhead: float,
    bandwidth: float,
    pipeline_depth: int,
    start: float,
):
    """Scalar re-enactment of the burst-granular load/compute/store job.

    Replays the three coroutines of :meth:`SPNAcceleratorCore._run_job`
    (loader, datapath, storer) plus the channel's single FIFO command
    engine as a plain state machine, performing the *same float
    operations in the same order* as the discrete-event model so the
    returned end time is bit-identical to ``env.now`` at job completion.

    Only two future events can ever be pending at once — the channel
    engine's in-flight transfer and the datapath's fill/compute timer —
    because every other interaction (buffer hand-offs, engine grants,
    flush decisions) happens in zero simulated time within the cascade
    of one of those two timers.  The cascades below mirror the event
    orderings of the engine exactly:

    * a transfer completion grants the oldest queued engine waiter
      *before* resuming the transfer's owner, so a queued request beats
      one issued in reaction to the completion;
    * a buffer hand-off resumes the consumer before the producer
      continues, so in a compute-done cascade the storer's flush
      request reaches the engine before the loader's unblocked read.

    If the two pending timers ever land on the exact same float time
    the equal-time cascade interleaving of the event loop would need
    sequence numbers to reproduce, so the emulator returns ``None`` and
    the caller falls back to the burst-granular model (this never
    happens for realistic parameters; the guard keeps the fast path
    provably exact).

    Returns ``(end_time, n_reads, n_writes)`` or ``None``.
    """
    samples_per_burst = max(1, BURST_BYTES // sample_bytes)
    flush_threshold = BURST_BYTES // result_bytes
    fill_delay = pipeline_depth / clock_hz

    # Channel command engine: at most one transfer in flight and one
    # queued waiter (the loader and storer are the only masters and
    # each blocks on its own transfer).
    inflight = None  # "r" | "w"
    inflight_t = 0.0
    queued = None  # ("r" | "w", n_bytes)

    # Loader: chunk currently being read / put.
    l_chunk = min(samples_per_burst, n_samples)
    l_remaining = n_samples
    l_blocked_put = False
    buf = []  # loaded sample buffer, capacity _STAGE_DEPTH

    # Datapath.
    d_waiting = True
    d_first = True
    d_chunk = 0
    d_processed = 0
    d_phase = None  # None | "fill" | "compute"
    path_t = 0.0

    # Storer.
    s_waiting = True
    s_final = False
    s_end = None
    pending = 0
    written = 0
    cq = []  # computed-results queue (unbounded in the DES)
    n_reads = 0
    n_writes = 0

    def request_engine(kind, n_bytes, t):
        nonlocal inflight, inflight_t, queued
        if inflight is None:
            inflight = kind
            inflight_t = t + (request_overhead + n_bytes / bandwidth)
        else:
            queued = (kind, n_bytes)

    def loader_continue(t):
        nonlocal l_chunk, l_remaining, n_reads
        l_remaining -= l_chunk
        if l_remaining > 0:
            l_chunk = min(samples_per_burst, l_remaining)
            n_reads += 1
            request_engine("r", l_chunk * sample_bytes, t)

    def datapath_receive(chunk, t):
        nonlocal d_waiting, d_first, d_chunk, d_phase, path_t
        d_waiting = False
        d_chunk = chunk
        if d_first:
            d_first = False
            d_phase = "fill"
            path_t = t + fill_delay
        else:
            d_phase = "compute"
            path_t = t + chunk / clock_hz

    def storer_issue_write(t):
        nonlocal s_waiting, n_writes
        s_waiting = False
        n_writes += 1
        request_engine("w", pending * result_bytes, t)

    def storer_receive(chunk, t):
        nonlocal pending, s_waiting, s_final
        pending += chunk
        if pending >= flush_threshold:
            storer_issue_write(t)
        elif written + pending < n_samples:
            s_waiting = True
        else:
            # Loop exits with a partial burst left: final flush.
            s_final = True
            storer_issue_write(t)

    def datapath_continue(t):
        nonlocal d_processed, d_waiting, d_chunk, d_phase, path_t, l_blocked_put
        d_processed += d_chunk
        if d_processed >= n_samples:
            d_phase = None
            return
        if buf:
            d_chunk = buf.pop(0)
            d_phase = "compute"
            path_t = t + d_chunk / clock_hz
            if l_blocked_put:
                # The freed slot admits the blocked put; the loader
                # resumes after the datapath's timer is scheduled.
                l_blocked_put = False
                buf.append(l_chunk)
                loader_continue(t)
        else:
            d_phase = None
            d_waiting = True

    # Job start: the loader issues the first read immediately; the
    # datapath and storer block on their empty input channels.
    n_reads += 1
    request_engine("r", l_chunk * sample_bytes, start)

    while s_end is None:
        has_transfer = inflight is not None
        has_path = d_phase is not None
        if has_transfer and has_path:
            if inflight_t == path_t:
                return None  # exact tie: burst-granular cascades needed
            fire_transfer = inflight_t < path_t
        elif has_transfer or has_path:
            fire_transfer = has_transfer
        else:  # pragma: no cover - would be a model bug
            raise RuntimeConfigError("fast-forward emulator deadlocked")

        if fire_transfer:
            t = inflight_t
            kind = inflight
            # Completion cascade: grant the queued waiter first.
            if queued is not None:
                inflight, n_bytes = queued
                queued = None
                inflight_t = t + (request_overhead + n_bytes / bandwidth)
            else:
                inflight = None
            if kind == "r":
                # Loader resumes: hand the chunk to the datapath.
                if d_waiting:
                    datapath_receive(l_chunk, t)
                    loader_continue(t)
                elif len(buf) < _STAGE_DEPTH:
                    buf.append(l_chunk)
                    loader_continue(t)
                else:
                    l_blocked_put = True
            else:
                # Storer resumes after a flush.
                if s_final:
                    s_end = t
                    break
                written += pending
                pending = 0
                while True:
                    if written + pending < n_samples:
                        if cq:
                            pending += cq.pop(0)
                            if pending >= flush_threshold:
                                storer_issue_write(t)
                                break
                        else:
                            s_waiting = True
                            break
                    elif pending:
                        s_final = True
                        storer_issue_write(t)
                        break
                    else:
                        s_end = t
                        break
        else:
            t = path_t
            if d_phase == "fill":
                d_phase = "compute"
                path_t = t + d_chunk / clock_hz
            else:
                # Compute done: hand to the storer (consumer first),
                # then continue the datapath (which may unblock the
                # loader — so a flush beats the loader's next read).
                if s_waiting:
                    storer_receive(d_chunk, t)
                else:
                    cq.append(d_chunk)
                datapath_continue(t)

    return s_end, n_reads, n_writes


@dataclass(frozen=True)
class JobResult:
    """Completion record of one accelerator job."""

    n_samples: int
    start_time: float
    end_time: float

    @property
    def elapsed(self) -> float:
        """Job wall time in simulated seconds."""
        return self.end_time - self.start_time

    @property
    def samples_per_second(self) -> float:
        """Throughput of this job alone."""
        if self.elapsed <= 0:
            return 0.0
        return self.n_samples / self.elapsed


class SPNAcceleratorCore:
    """One timed+functional SPN accelerator instance."""

    def __init__(
        self,
        env: Engine,
        index: int,
        spn: SPN,
        core_spec: CoreSpec,
        channel: HBMChannel,
        memory: ChannelMemory,
        *,
        clock_hz: float,
        n_variables: Optional[int] = None,
        compute_format: Optional[NumberFormat] = None,
        burst_granular: bool = False,
        metrics=None,
    ):
        if clock_hz <= 0:
            raise RuntimeConfigError(f"clock must be positive, got {clock_hz}")
        self.env = env
        self.index = index
        self.spn = spn
        self.core_spec = core_spec
        self.channel = channel
        self.memory = memory
        self.clock_hz = float(clock_hz)
        self.n_variables = n_variables if n_variables is not None else spn.n_variables
        self.compute_format = compute_format
        self.sample_bytes = self.n_variables  # single-byte features
        self.result_bytes = 8  # one float64 per sample
        self.registers = RegisterFile(
            {
                "n_variables": self.n_variables,
                "sample_bytes": self.sample_bytes,
                "result_bytes": self.result_bytes,
                "pipeline_depth": core_spec.pipeline_depth,
                "format_bits": 64 if compute_format is None else compute_format.bits,
                "interface_width_bits": 512,
                "clock_mhz": int(round(clock_hz / 1e6)),
            }
        )
        #: When True, always advance the event loop burst by burst even
        #: if the job qualifies for steady-state fast-forwarding.  The
        #: runtime sets this when a tracer needs burst-level spans; the
        #: equivalence tests use it to pin the reference model.
        self.burst_granular = burst_granular
        self._busy = False
        self.total_samples = 0
        # Metrics (optional, see repro.obs.metrics): updated once per
        # job completion, never from the burst-level hot path.
        if metrics is not None:
            self._m_jobs = metrics.counter(f"pe{index}.jobs")
            self._m_samples = metrics.counter(f"pe{index}.samples")
            self._m_busy_seconds = metrics.counter(f"pe{index}.busy_seconds")
        else:
            self._m_jobs = None
            self._m_samples = None
            self._m_busy_seconds = None

    # -- configuration read-out (the runtime's §IV-B query) -----------------------
    def read_configuration(self) -> dict:
        """Query the synthesis parameters via the register file."""
        return self.registers.read_configuration()

    # -- job execution ---------------------------------------------------------------
    def start_job(
        self,
        input_addr: int,
        result_addr: int,
        n_samples: int,
        *,
        functional: bool = True,
    ) -> Event:
        """Launch a batch job; the returned event triggers with a
        :class:`JobResult` when the Store Unit has written the last
        result word.

        With ``functional=False`` only the timing model runs (no real
        bytes are computed or stored) — used by paper-scale timing
        experiments where materialising 100 M samples is pointless.

        Concurrent jobs on one core are a runtime bug, not a model
        limitation, so they raise.
        """
        if self._busy:
            raise RuntimeConfigError(f"core {self.index} is busy")
        if n_samples <= 0:
            raise RuntimeConfigError(f"n_samples must be positive, got {n_samples}")
        if self.registers.mode is not ExecutionMode.INFERENCE:
            raise RuntimeConfigError("core is in CONFIG_READOUT mode")
        self.registers.set_job(input_addr, result_addr, n_samples)
        self.registers.set_busy(True)
        self._busy = True
        done = Event(self.env)
        self.env.process(
            self._run_job(input_addr, result_addr, n_samples, functional, done),
            name=f"core{self.index}-job",
        )
        return done

    # -- functional path ------------------------------------------------------------
    def _compute(self, input_addr: int, n_samples: int) -> np.ndarray:
        raw = self.memory.read(input_addr, n_samples * self.sample_bytes)
        data = (
            np.frombuffer(raw, dtype=np.uint8)
            .reshape(n_samples, self.sample_bytes)
            .astype(np.float64)
        )
        # The reserved all-ones byte marks a missing feature; the
        # datapath's table lookup returns probability 1 for it, so the
        # core natively computes per-sample marginal queries.
        if self.compute_format is None:
            return log_likelihood_with_missing(
                self.spn, data, missing_value=MISSING_VALUE
            )
        return evaluate_spn_in_format(
            self.spn, data, self.compute_format, missing_value=MISSING_VALUE
        )

    # -- timed path -------------------------------------------------------------------
    def _can_fast_forward(self) -> bool:
        """True when this job's burst schedule is closed over the core.

        Requires the core to be the sole, uncontended master of a plain
        HBM channel: no crossbar port (shared switch), no explicit
        refresh process (engine contention at refresh deadlines), and a
        currently idle command engine.  ``burst_granular`` opts out.
        """
        if self.burst_granular:
            return False
        channel = self.channel
        if not isinstance(channel, HBMChannel) or channel.explicit_refresh:
            return False
        engine = channel._engine
        return engine.in_use == 0 and engine.queue_length == 0

    def _run_job(
        self,
        input_addr: int,
        result_addr: int,
        n_samples: int,
        functional: bool,
        done: Event,
    ):
        start = self.env.now
        results = self._compute(input_addr, n_samples) if functional else None

        fast = None
        if self._can_fast_forward():
            fast = _emulate_burst_pipeline(
                n_samples,
                self.sample_bytes,
                self.result_bytes,
                self.clock_hz,
                self.channel.request_overhead,
                self.channel.effective_bandwidth,
                self.core_spec.pipeline_depth,
                start,
            )
        if fast is not None:
            end_time, n_reads, n_writes = fast
            channel = self.channel
            # Hold the command engine across the collapsed window so any
            # unexpected mid-window master waits instead of silently
            # overlapping with traffic the emulator already accounted.
            grant = channel._engine.request()
            yield grant
            yield self.env.timeout_until(end_time)
            channel._engine.release()
            # The hold consumed one grant of its own.
            channel._engine.total_grants += n_reads + n_writes - 1
            channel.account_fast_forward(
                n_reads,
                n_writes,
                n_samples * self.sample_bytes,
                n_samples * self.result_bytes,
            )
            if results is not None:
                self.memory.write_array(result_addr, results)
            self._complete_job(n_samples, start, done)
            return

        samples_per_burst = max(1, BURST_BYTES // self.sample_bytes)
        loaded = Channel(self.env, capacity=_STAGE_DEPTH, name=f"core{self.index}-samples")
        computed = Channel(self.env, capacity=None, name=f"core{self.index}-results")

        def loader():
            offset = 0
            remaining = n_samples
            while remaining > 0:
                chunk = min(samples_per_burst, remaining)
                n_bytes = chunk * self.sample_bytes
                yield self.channel.transfer(n_bytes, is_write=False)
                yield loaded.put(chunk)
                offset += n_bytes
                remaining -= chunk
            loaded.close()

        def datapath():
            first = True
            processed = 0
            while processed < n_samples:
                chunk = yield loaded.get()
                if first:
                    # Pipeline fill: the first result trails the first
                    # sample by the pipeline depth.
                    yield self.env.timeout(
                        self.core_spec.pipeline_depth / self.clock_hz
                    )
                    first = False
                yield self.env.timeout(chunk / self.clock_hz)  # II = 1
                yield computed.put(chunk)
                processed += chunk

        def storer():
            pending = 0
            written = 0
            write_offset = 0
            while written + pending < n_samples:
                chunk = yield computed.get()
                pending += chunk
                # Store Unit flushes once a full burst of packed
                # 512-bit result words is ready (or at job end).
                flush_threshold = BURST_BYTES // self.result_bytes
                if pending >= flush_threshold:
                    n_bytes = pending * self.result_bytes
                    yield self.channel.transfer(n_bytes, is_write=True)
                    written += pending
                    write_offset += n_bytes
                    pending = 0
            if pending:
                yield self.channel.transfer(pending * self.result_bytes, is_write=True)

        load_proc = self.env.process(loader(), name=f"core{self.index}-load")
        path_proc = self.env.process(datapath(), name=f"core{self.index}-datapath")
        store_proc = self.env.process(storer(), name=f"core{self.index}-store")
        yield self.env.all_of([load_proc, path_proc, store_proc])

        # Functional completion: results land in the backing store.
        if results is not None:
            self.memory.write_array(result_addr, results)
        self._complete_job(n_samples, start, done)

    def _complete_job(self, n_samples: int, start: float, done: Event) -> None:
        """Shared completion bookkeeping of both timing paths."""
        if self._m_jobs is not None:
            self._m_jobs.add(1)
            self._m_samples.add(n_samples)
            self._m_busy_seconds.add(self.env.now - start)
        self.total_samples += n_samples
        self._busy = False
        self.registers.set_busy(False)
        done.succeed(JobResult(n_samples=n_samples, start_time=start, end_time=self.env.now))
