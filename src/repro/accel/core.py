"""The SPN accelerator core: Load Unit, buffers, datapath, Store Unit.

A job (programmed through the register file) streams ``n_samples``
packed single-byte feature vectors from the core's HBM channel,
pushes them through the II=1 pipelined datapath, and writes one
float64 log-likelihood per sample back — the paper's Fig. 3 pipeline.

The model advances simulated time at burst granularity with
double-buffered load/compute/store stages, and *also* computes the
real results: the input bytes come out of the channel's functional
backing store, go through the software twin of the datapath, and the
results land back in the store, so end-to-end runs are verifiable
against the pure-software reference.

The Result Buffer models the §III-B packing rule: 64-bit results are
collected until a 512-bit word is complete before the Store Unit
writes it out, so result traffic happens in 64-byte (or larger,
burst-aggregated) units.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.accel.memory_store import ChannelMemory
from repro.accel.registers import ExecutionMode, RegisterFile
from repro.arith.base import NumberFormat
from repro.arith.spn_eval import evaluate_spn_in_format
from repro.compiler.design import CoreSpec
from repro.errors import RuntimeConfigError
from repro.mem.hbm import HBMChannel
from repro.sim.channel import Channel
from repro.sim.engine import Engine, Event
from repro.spn.graph import SPN
from repro.spn.inference import MISSING_VALUE, log_likelihood_with_missing
from repro.units import KIB

__all__ = ["SPNAcceleratorCore", "JobResult"]

#: Load/Store Unit burst size.  64 KiB amortises the channel's
#: per-request overhead to <2% while staying far below the sample
#: buffer capacity.
BURST_BYTES = 64 * KIB

#: Double buffering between pipeline stages (ping/pong buffers).
_STAGE_DEPTH = 2


@dataclass(frozen=True)
class JobResult:
    """Completion record of one accelerator job."""

    n_samples: int
    start_time: float
    end_time: float

    @property
    def elapsed(self) -> float:
        """Job wall time in simulated seconds."""
        return self.end_time - self.start_time

    @property
    def samples_per_second(self) -> float:
        """Throughput of this job alone."""
        if self.elapsed <= 0:
            return 0.0
        return self.n_samples / self.elapsed


class SPNAcceleratorCore:
    """One timed+functional SPN accelerator instance."""

    def __init__(
        self,
        env: Engine,
        index: int,
        spn: SPN,
        core_spec: CoreSpec,
        channel: HBMChannel,
        memory: ChannelMemory,
        *,
        clock_hz: float,
        n_variables: Optional[int] = None,
        compute_format: Optional[NumberFormat] = None,
    ):
        if clock_hz <= 0:
            raise RuntimeConfigError(f"clock must be positive, got {clock_hz}")
        self.env = env
        self.index = index
        self.spn = spn
        self.core_spec = core_spec
        self.channel = channel
        self.memory = memory
        self.clock_hz = float(clock_hz)
        self.n_variables = n_variables if n_variables is not None else spn.n_variables
        self.compute_format = compute_format
        self.sample_bytes = self.n_variables  # single-byte features
        self.result_bytes = 8  # one float64 per sample
        self.registers = RegisterFile(
            {
                "n_variables": self.n_variables,
                "sample_bytes": self.sample_bytes,
                "result_bytes": self.result_bytes,
                "pipeline_depth": core_spec.pipeline_depth,
                "format_bits": 64 if compute_format is None else compute_format.bits,
                "interface_width_bits": 512,
                "clock_mhz": int(round(clock_hz / 1e6)),
            }
        )
        self._busy = False
        self.total_samples = 0

    # -- configuration read-out (the runtime's §IV-B query) -----------------------
    def read_configuration(self) -> dict:
        """Query the synthesis parameters via the register file."""
        return self.registers.read_configuration()

    # -- job execution ---------------------------------------------------------------
    def start_job(
        self,
        input_addr: int,
        result_addr: int,
        n_samples: int,
        *,
        functional: bool = True,
    ) -> Event:
        """Launch a batch job; the returned event triggers with a
        :class:`JobResult` when the Store Unit has written the last
        result word.

        With ``functional=False`` only the timing model runs (no real
        bytes are computed or stored) — used by paper-scale timing
        experiments where materialising 100 M samples is pointless.

        Concurrent jobs on one core are a runtime bug, not a model
        limitation, so they raise.
        """
        if self._busy:
            raise RuntimeConfigError(f"core {self.index} is busy")
        if n_samples <= 0:
            raise RuntimeConfigError(f"n_samples must be positive, got {n_samples}")
        if self.registers.mode is not ExecutionMode.INFERENCE:
            raise RuntimeConfigError("core is in CONFIG_READOUT mode")
        self.registers.set_job(input_addr, result_addr, n_samples)
        self.registers.set_busy(True)
        self._busy = True
        done = Event(self.env)
        self.env.process(
            self._run_job(input_addr, result_addr, n_samples, functional, done),
            name=f"core{self.index}-job",
        )
        return done

    # -- functional path ------------------------------------------------------------
    def _compute(self, input_addr: int, n_samples: int) -> np.ndarray:
        raw = self.memory.read(input_addr, n_samples * self.sample_bytes)
        data = (
            np.frombuffer(raw, dtype=np.uint8)
            .reshape(n_samples, self.sample_bytes)
            .astype(np.float64)
        )
        # The reserved all-ones byte marks a missing feature; the
        # datapath's table lookup returns probability 1 for it, so the
        # core natively computes per-sample marginal queries.
        if self.compute_format is None:
            return log_likelihood_with_missing(
                self.spn, data, missing_value=MISSING_VALUE
            )
        return evaluate_spn_in_format(
            self.spn, data, self.compute_format, missing_value=MISSING_VALUE
        )

    # -- timed path -------------------------------------------------------------------
    def _run_job(
        self,
        input_addr: int,
        result_addr: int,
        n_samples: int,
        functional: bool,
        done: Event,
    ):
        start = self.env.now
        results = self._compute(input_addr, n_samples) if functional else None

        samples_per_burst = max(1, BURST_BYTES // self.sample_bytes)
        loaded = Channel(self.env, capacity=_STAGE_DEPTH, name=f"core{self.index}-samples")
        computed = Channel(self.env, capacity=None, name=f"core{self.index}-results")

        def loader():
            offset = 0
            remaining = n_samples
            while remaining > 0:
                chunk = min(samples_per_burst, remaining)
                n_bytes = chunk * self.sample_bytes
                yield self.channel.transfer(n_bytes, is_write=False)
                yield loaded.put(chunk)
                offset += n_bytes
                remaining -= chunk
            loaded.close()

        def datapath():
            first = True
            processed = 0
            while processed < n_samples:
                chunk = yield loaded.get()
                if first:
                    # Pipeline fill: the first result trails the first
                    # sample by the pipeline depth.
                    yield self.env.timeout(
                        self.core_spec.pipeline_depth / self.clock_hz
                    )
                    first = False
                yield self.env.timeout(chunk / self.clock_hz)  # II = 1
                yield computed.put(chunk)
                processed += chunk

        def storer():
            pending = 0
            written = 0
            write_offset = 0
            while written + pending < n_samples:
                chunk = yield computed.get()
                pending += chunk
                # Store Unit flushes once a full burst of packed
                # 512-bit result words is ready (or at job end).
                flush_threshold = BURST_BYTES // self.result_bytes
                if pending >= flush_threshold:
                    n_bytes = pending * self.result_bytes
                    yield self.channel.transfer(n_bytes, is_write=True)
                    written += pending
                    write_offset += n_bytes
                    pending = 0
            if pending:
                yield self.channel.transfer(pending * self.result_bytes, is_write=True)

        load_proc = self.env.process(loader(), name=f"core{self.index}-load")
        path_proc = self.env.process(datapath(), name=f"core{self.index}-datapath")
        store_proc = self.env.process(storer(), name=f"core{self.index}-store")
        yield self.env.all_of([load_proc, path_proc, store_proc])

        # Functional completion: results land in the backing store.
        if results is not None:
            self.memory.write_array(result_addr, results)
        self.total_samples += n_samples
        self._busy = False
        self.registers.set_busy(False)
        done.succeed(JobResult(n_samples=n_samples, start_time=start, end_time=self.env.now))
