"""The SPN accelerator core model (§III-B, Fig. 3).

One core is the pipeline **Load Unit → Sample Buffer → SPN Datapath →
Result Buffer → Store Unit**, controlled through an AXI4-Lite register
file with 64-bit address registers (widened for the HBM address space)
and a second execution mode that reads back the synthesis-time
configuration parameters (§IV-B).

The model is *functional + timed*: a job both computes real
log-likelihoods (via the compiled datapath's arithmetic semantics) on
real bytes in the channel's backing store, and advances simulated time
through the burst-granular memory models.
"""

from repro.accel.registers import RegisterFile, ExecutionMode, CONFIG_REGISTERS
from repro.accel.memory_store import ChannelMemory
from repro.accel.core import SPNAcceleratorCore, JobResult

__all__ = [
    "RegisterFile",
    "ExecutionMode",
    "CONFIG_REGISTERS",
    "ChannelMemory",
    "SPNAcceleratorCore",
    "JobResult",
]
