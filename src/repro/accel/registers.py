"""AXI4-Lite register file of the accelerator.

The paper's §III-B: "Accelerators are controlled by an AXI4 Lite
Interface, which exposes a simple register file to the user.  Due to
the increased address-width of the HBM-data-channel, we had to adapt
the control registers to 64 bit."  §IV-B adds: "the accelerator was
extended with a second execution mode to read out the configuration
parameters specified at synthesis time", which is what lets the new
runtime self-configure instead of requiring manual parameters.

This module models exactly that interface: a word-addressed register
map with control/status semantics and the config read-out mode.
"""

from __future__ import annotations

import enum
from typing import Dict

from repro.errors import RuntimeConfigError

__all__ = ["ExecutionMode", "RegisterFile", "CONFIG_REGISTERS"]


class ExecutionMode(enum.Enum):
    """The accelerator's two execution modes (§IV-B)."""

    #: Normal batch inference over the configured address ranges.
    INFERENCE = 0
    #: Read-out of synthesis-time configuration parameters.
    CONFIG_READOUT = 1


#: Offsets of the control registers (64-bit words).
CONTROL = 0x00        # write 1 to start; reads 0 when idle
STATUS = 0x08         # bit0: done, bit1: busy
MODE = 0x10           # ExecutionMode selector
INPUT_ADDR = 0x18     # 64-bit HBM input base address
RESULT_ADDR = 0x20    # 64-bit HBM result base address
N_SAMPLES = 0x28      # samples in this job

#: Offsets of the read-only synthesis-parameter registers served in
#: CONFIG_READOUT mode.
CONFIG_REGISTERS: Dict[str, int] = {
    "n_variables": 0x40,
    "sample_bytes": 0x48,
    "result_bytes": 0x50,
    "pipeline_depth": 0x58,
    "format_bits": 0x60,
    "interface_width_bits": 0x68,
    "clock_mhz": 0x70,
}


class RegisterFile:
    """A 64-bit, word-addressed control/status register file."""

    WORD = 8

    def __init__(self, config: Dict[str, int]):
        missing = set(CONFIG_REGISTERS) - set(config)
        if missing:
            raise RuntimeConfigError(f"register file config missing {sorted(missing)}")
        self._regs: Dict[int, int] = {
            CONTROL: 0,
            STATUS: 0,
            MODE: ExecutionMode.INFERENCE.value,
            INPUT_ADDR: 0,
            RESULT_ADDR: 0,
            N_SAMPLES: 0,
        }
        self._config = {CONFIG_REGISTERS[k]: int(v) for k, v in config.items()}

    def _check(self, offset: int) -> None:
        if offset % self.WORD:
            raise RuntimeConfigError(f"unaligned register access at {offset:#x}")
        if offset < 0:
            raise RuntimeConfigError(f"negative register offset {offset:#x}")

    def write(self, offset: int, value: int) -> None:
        """AXI4-Lite write; config registers are read-only."""
        self._check(offset)
        if offset in self._config:
            raise RuntimeConfigError(f"register {offset:#x} is read-only")
        if offset == STATUS:
            raise RuntimeConfigError("status register is read-only")
        if offset not in self._regs:
            raise RuntimeConfigError(f"no register at {offset:#x}")
        if value < 0 or value >= 1 << 64:
            raise RuntimeConfigError(f"value {value:#x} does not fit 64 bits")
        self._regs[offset] = value

    def read(self, offset: int) -> int:
        """AXI4-Lite read of control, status or config registers.

        Config registers are only visible in CONFIG_READOUT mode —
        modelling the paper's dedicated execution mode.
        """
        self._check(offset)
        if offset in self._config:
            if self._regs[MODE] != ExecutionMode.CONFIG_READOUT.value:
                raise RuntimeConfigError(
                    "config registers require CONFIG_READOUT execution mode"
                )
            return self._config[offset]
        if offset not in self._regs:
            raise RuntimeConfigError(f"no register at {offset:#x}")
        return self._regs[offset]

    # -- typed helpers used by the core and runtime ---------------------------
    @property
    def mode(self) -> ExecutionMode:
        """Currently selected execution mode."""
        return ExecutionMode(self._regs[MODE])

    def set_mode(self, mode: ExecutionMode) -> None:
        """Select the execution mode."""
        self.write(MODE, mode.value)

    def set_job(self, input_addr: int, result_addr: int, n_samples: int) -> None:
        """Program a job's address ranges and sample count."""
        self.write(INPUT_ADDR, input_addr)
        self.write(RESULT_ADDR, result_addr)
        self.write(N_SAMPLES, n_samples)

    def job_parameters(self) -> tuple:
        """(input_addr, result_addr, n_samples) as programmed."""
        return (
            self._regs[INPUT_ADDR],
            self._regs[RESULT_ADDR],
            self._regs[N_SAMPLES],
        )

    def set_busy(self, busy: bool) -> None:
        """Status bit bookkeeping (core-side)."""
        self._regs[STATUS] = 0b10 if busy else 0b01

    @property
    def busy(self) -> bool:
        """True while a job runs."""
        return bool(self._regs[STATUS] & 0b10)

    def read_configuration(self) -> Dict[str, int]:
        """Convenience: switch to read-out mode and dump all config.

        This is what the new runtime does at start-up so the user no
        longer supplies parameters manually (§IV-B).
        """
        previous = self.mode
        self.set_mode(ExecutionMode.CONFIG_READOUT)
        try:
            return {
                name: self.read(offset) for name, offset in CONFIG_REGISTERS.items()
            }
        finally:
            self.set_mode(previous)
