"""Functional backing store of one HBM channel / memory region.

The timing models (:mod:`repro.mem`) move *time*; this class moves the
actual *bytes*, so end-to-end runs produce real inference results that
tests can compare against the software reference.  Keeping the two
concerns separate means a model's timing behaviour never depends on
whether payloads are materialised.

Storage is **page-sparse**: a device region covers gigabytes (16 GiB
per F1 DDR channel) but a simulation only ever touches the buffers the
runtime allocates, so pages materialise on first write and reads of
untouched space return zeros — like the zero-initialised DRAM a fresh
allocation sees.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.errors import MemoryModelError

__all__ = ["ChannelMemory"]

#: Bytes per backing page.
_PAGE_BYTES = 64 * 1024


class ChannelMemory:
    """A byte-addressable, bounds-checked, page-sparse memory region."""

    def __init__(self, capacity_bytes: int):
        if capacity_bytes <= 0:
            raise MemoryModelError(
                f"capacity must be positive, got {capacity_bytes}"
            )
        self.capacity = int(capacity_bytes)
        self._pages: Dict[int, bytearray] = {}

    def _check(self, address: int, n_bytes: int) -> None:
        if n_bytes < 0:
            raise MemoryModelError(f"negative length {n_bytes}")
        if address < 0 or address + n_bytes > self.capacity:
            raise MemoryModelError(
                f"access [{address:#x}, {address + n_bytes:#x}) outside "
                f"capacity {self.capacity:#x}"
            )

    @property
    def resident_bytes(self) -> int:
        """Bytes of actually materialised backing pages."""
        return len(self._pages) * _PAGE_BYTES

    def write(self, address: int, payload: bytes) -> None:
        """Store *payload* at *address*."""
        self._check(address, len(payload))
        offset = 0
        remaining = len(payload)
        while remaining > 0:
            page_index, page_offset = divmod(address + offset, _PAGE_BYTES)
            chunk = min(_PAGE_BYTES - page_offset, remaining)
            page = self._pages.get(page_index)
            if page is None:
                page = bytearray(_PAGE_BYTES)
                self._pages[page_index] = page
            page[page_offset: page_offset + chunk] = payload[offset: offset + chunk]
            offset += chunk
            remaining -= chunk

    def read(self, address: int, n_bytes: int) -> bytes:
        """Load *n_bytes* from *address* (untouched space reads zero)."""
        self._check(address, n_bytes)
        out = bytearray(n_bytes)
        offset = 0
        remaining = n_bytes
        while remaining > 0:
            page_index, page_offset = divmod(address + offset, _PAGE_BYTES)
            chunk = min(_PAGE_BYTES - page_offset, remaining)
            page = self._pages.get(page_index)
            if page is not None:
                out[offset: offset + chunk] = page[page_offset: page_offset + chunk]
            offset += chunk
            remaining -= chunk
        return bytes(out)

    def read_array(self, address: int, dtype, count: int) -> np.ndarray:
        """Load a typed numpy copy (e.g. results as float64)."""
        dtype = np.dtype(dtype)
        raw = self.read(address, dtype.itemsize * count)
        return np.frombuffer(raw, dtype=dtype).copy()

    def write_array(self, address: int, array: np.ndarray) -> None:
        """Store a numpy array's bytes at *address*."""
        self.write(address, np.ascontiguousarray(array).tobytes())
