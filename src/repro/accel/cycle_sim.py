"""Cycle-accurate simulation of the pipelined SPN datapath.

The burst-granular models (DESIGN.md §6) assume the datapath behaves
as a depth-D, II=1 pipeline.  This module *checks* that assumption at
the register level: every operator is a latency-deep shift register,
balancing delay lines are materialised exactly where the scheduler
placed them, and one new sample enters per cycle.

Timing convention (matching the scheduler's): a value presented at an
operator's input during cycle *t* appears at its output during cycle
``t + latency``; a producer with ``ready_stage == r`` therefore drives
a consumer with ``start_stage == r`` in the same cycle, and any
positive slack is bridged by a delay line of exactly that many stages.

Invariants verified by the tests through this simulator:

* the first result appears exactly ``schedule.depth`` cycles after
  the first sample enters (pipeline fill);
* thereafter one result appears **every** cycle (II = 1);
* every result equals the functional interpreter's value — i.e. the
  balancing registers align operands correctly even while many
  samples are in flight.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.compiler.datapath import Datapath
from repro.compiler.interpreter import LookupTables
from repro.compiler.operators import HWOp, OperatorLibrary
from repro.compiler.schedule import PipelineSchedule, schedule_datapath
from repro.errors import CompilerError

__all__ = ["CycleSimulation", "simulate_cycles"]

#: Sentinel carried by empty pipeline slots.
_BUBBLE = None


class _ShiftRegister:
    """A fixed-depth shift register of values (depth 0 = wire)."""

    def __init__(self, depth: int):
        self.depth = depth
        self._stages: Deque = deque([_BUBBLE] * depth, maxlen=depth or None)

    def step(self, value):
        """Clock edge: push *value*; return the value from *depth*
        cycles ago (the register chain's output this cycle)."""
        if self.depth == 0:
            return value
        out = self._stages[0]
        self._stages.popleft()
        self._stages.append(value)
        return out


class CycleSimulation:
    """Register-accurate model of one compiled datapath."""

    def __init__(
        self,
        datapath: Datapath,
        library: OperatorLibrary,
        tables: LookupTables,
    ):
        self.datapath = datapath
        self.library = library
        self.tables = tables
        self.schedule: PipelineSchedule = schedule_datapath(datapath, library)
        self._pipes: Dict[int, _ShiftRegister] = {}
        self._balance: Dict[Tuple[int, int], _ShiftRegister] = {}
        for node in datapath.nodes:
            self._pipes[node.index] = _ShiftRegister(library.latency(node.op))
            for source in node.inputs:
                slack = (
                    self.schedule.start_stage[node.index]
                    - self.schedule.ready_stage[source]
                )
                if slack > 0:
                    self._balance[(source, node.index)] = _ShiftRegister(slack)
        self.cycle = 0

    def step(self, sample: Optional[np.ndarray]):
        """One clock cycle.  *sample* is the entering feature vector
        (or None for a bubble).  Returns the root output this cycle."""
        current: Dict[int, object] = {}
        for node in self.datapath.nodes:  # topological order
            if node.op is HWOp.INPUT:
                incoming = (
                    _BUBBLE if sample is None else float(sample[node.variable])
                )
                current[node.index] = self._pipes[node.index].step(incoming)
                continue

            operands = []
            for source in node.inputs:
                value = current[source]
                line = self._balance.get((source, node.index))
                if line is not None:
                    value = line.step(value)
                operands.append(value)

            if any(v is _BUBBLE for v in operands):
                result = _BUBBLE
            elif node.op is HWOp.LOOKUP:
                result = float(self.tables[node.index][int(operands[0])])
            elif node.op is HWOp.CONST_MUL:
                result = operands[0] * node.constant
            elif node.op is HWOp.MUL:
                result = operands[0] * operands[1]
            elif node.op is HWOp.ADD:
                result = operands[0] + operands[1]
            else:  # pragma: no cover - exhaustive over HWOp
                raise CompilerError(f"cannot simulate op {node.op}")
            current[node.index] = self._pipes[node.index].step(result)
        self.cycle += 1
        return current[self.datapath.output]


def simulate_cycles(
    datapath: Datapath,
    library: OperatorLibrary,
    tables: LookupTables,
    samples: np.ndarray,
    *,
    max_cycles: Optional[int] = None,
) -> Tuple[List[float], List[int]]:
    """Feed *samples* one per cycle; collect (results, result_cycles).

    Returns the root values in arrival order plus the cycle index at
    which each appeared, so callers can assert fill latency and II.
    """
    samples = np.asarray(samples)
    if samples.ndim != 2:
        raise CompilerError(f"samples must be 2-D, got {samples.ndim}-D")
    sim = CycleSimulation(datapath, library, tables)
    horizon = max_cycles or (len(samples) + sim.schedule.depth + 8)
    results: List[float] = []
    result_cycles: List[int] = []
    for cycle in range(horizon):
        sample = samples[cycle] if cycle < len(samples) else None
        out = sim.step(sample)
        if out is not _BUBBLE:
            results.append(float(out))
            result_cycles.append(cycle)
        if len(results) == len(samples):
            break
    return results, result_cycles
