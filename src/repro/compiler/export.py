"""Design export: JSON netlists, Graphviz views, synthesis reports.

The original toolflow hands the generated datapath to Vivado; this
reproduction's equivalent artifact is a machine-readable **netlist**
(JSON) plus a human-readable **synthesis-style report** and a
Graphviz rendering for inspection.  The JSON round-trips (tested), so
downstream tooling can consume compiled cores without re-running the
compiler.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.compiler.datapath import Datapath, DatapathNode
from repro.compiler.design import AcceleratorDesign, CoreSpec
from repro.compiler.operators import HWOp
from repro.errors import CompilerError

__all__ = [
    "datapath_to_json",
    "datapath_from_json",
    "datapath_to_dot",
    "design_report",
]

_FORMAT_VERSION = 1


def datapath_to_json(datapath: Datapath) -> str:
    """Serialise a datapath netlist to a JSON document."""
    nodes: List[dict] = []
    for node in datapath.nodes:
        entry: dict = {"op": node.op.value, "inputs": list(node.inputs)}
        if node.variable is not None:
            entry["variable"] = node.variable
        if node.table_entries:
            entry["table_entries"] = node.table_entries
        if node.constant is not None:
            entry["constant"] = node.constant
        nodes.append(entry)
    return json.dumps(
        {
            "version": _FORMAT_VERSION,
            "name": datapath.name,
            "output": datapath.output,
            "nodes": nodes,
        },
        indent=2,
    )


def datapath_from_json(text: str) -> Datapath:
    """Parse a netlist produced by :func:`datapath_to_json`."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as err:
        raise CompilerError(f"malformed netlist JSON: {err}")
    if doc.get("version") != _FORMAT_VERSION:
        raise CompilerError(
            f"unsupported netlist version {doc.get('version')!r} "
            f"(expected {_FORMAT_VERSION})"
        )
    nodes = []
    for index, entry in enumerate(doc.get("nodes", [])):
        try:
            op = HWOp(entry["op"])
        except (KeyError, ValueError) as err:
            raise CompilerError(f"netlist node {index} has a bad op: {err}")
        nodes.append(
            DatapathNode(
                index=index,
                op=op,
                inputs=tuple(entry.get("inputs", ())),
                variable=entry.get("variable"),
                table_entries=entry.get("table_entries", 0),
                constant=entry.get("constant"),
            )
        )
    return Datapath(nodes, output=doc["output"], name=doc.get("name", "datapath"))


_DOT_STYLE: Dict[HWOp, str] = {
    HWOp.INPUT: 'shape=invhouse,style=filled,fillcolor="#dbe9f6"',
    HWOp.LOOKUP: 'shape=box3d,style=filled,fillcolor="#fde9c8"',
    HWOp.MUL: 'shape=circle,style=filled,fillcolor="#e7f4e4"',
    HWOp.CONST_MUL: 'shape=doublecircle,style=filled,fillcolor="#e7f4e4"',
    HWOp.ADD: 'shape=circle,style=filled,fillcolor="#f6dfe4"',
}


def datapath_to_dot(datapath: Datapath) -> str:
    """Render the datapath as a Graphviz digraph."""
    lines = [f'digraph "{datapath.name}" {{', "  rankdir=BT;"]
    for node in datapath.nodes:
        if node.op is HWOp.INPUT:
            label = f"V{node.variable}"
        elif node.op is HWOp.LOOKUP:
            label = f"LUT[{node.table_entries}]"
        elif node.op is HWOp.CONST_MUL:
            label = f"x{node.constant:.3g}"
        else:
            label = "x" if node.op is HWOp.MUL else "+"
        style = _DOT_STYLE[node.op]
        lines.append(f'  n{node.index} [label="{label}",{style}];')
        for source in node.inputs:
            lines.append(f"  n{source} -> n{node.index};")
    lines.append(f'  out [shape=house,label="out"];')
    lines.append(f"  n{datapath.output} -> out;")
    lines.append("}")
    return "\n".join(lines)


def design_report(design: AcceleratorDesign) -> str:
    """A synthesis-style text report for a composed design."""
    core = design.core
    counts = {op: core.datapath.count(op) for op in HWOp}
    used = design.total_resources
    util = design.utilisation()
    lines = [
        f"Design {design.name} on {design.platform.device.name}",
        f"  format library : {core.library.name}",
        f"  cores          : {design.n_cores}",
        f"  clock          : {design.clock_mhz:.1f} MHz",
        f"  pipeline depth : {core.pipeline_depth} cycles",
        f"  peak rate      : {design.n_cores * design.samples_per_second_per_core / 1e6:.0f} Msamples/s (II=1)",
        "  datapath (per core):",
        f"    adders       : {counts[HWOp.ADD]}",
        f"    multipliers  : {counts[HWOp.MUL]} (+{counts[HWOp.CONST_MUL]} constant)",
        f"    lookup tables: {counts[HWOp.LOOKUP]} ({core.datapath.total_table_entries} entries)",
        f"    input taps   : {counts[HWOp.INPUT]}",
        "  resources (total / device, utilisation):",
    ]
    budget = design.platform.device.budget.as_dict()
    for key, value in used.as_dict().items():
        lines.append(
            f"    {key:<12}: {value:>12,.0f} / {budget[key]:>12,.0f}  ({util[key]:.1%})"
        )
    return "\n".join(lines)
