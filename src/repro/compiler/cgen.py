"""Per-plan C code generation for the native inference backend.

The numpy plan evaluator (:mod:`repro.spn.plan_eval`) already turned
the SPN into a fixed dataflow, but it still pays one Python-dispatched
numpy kernel per layer per chunk.  This module walks an
:class:`~repro.spn.plan.InferencePlan` the same way the interpreter
and the Verilog emitter do and emits one *specialized C translation
unit* for it: the whole bottom-up pass — leaf stage fused with every
layered CSR reduction — becomes a single C function over a
cache-blocked column chunk, with every structural constant (node rows,
child rows, mixture weights, leaf tables, layer offsets) baked in as a
compile-time constant so the C compiler can unroll and vectorize.
This is the software form of the Serpens observation (PAPERS.md) that
the layered-CSR log-sum-exp shape is a streaming SpMV: the row
chunking keeps the value matrix cache-resident, and the block geometry
is an explicit codegen parameter instead of an accident of numpy
temporaries.

Kernel semantics mirror :func:`repro.spn.plan_eval.plan_log_likelihood`
exactly:

* histogram leaves evaluate via the per-variable composite-table row
  code (``fmin``/``fmax`` clamping so NaN lands on a sentinel row);
* Gaussian leaves use the closed form, categorical leaves the LUT
  gather with numpy's ``isclose`` integrality test;
* product layers are segment adds, sum layers a stable max-shift
  log-sum-exp whose accumulation always runs in ``double`` — on
  float32 storage this is the paper-motivated "float64 accumulation
  over float32 storage" split;
* ``marginalized`` arrives as a per-variable byte mask, per-sample
  missing features as a sentinel value compare — both applied inside
  the leaf stage, exactly like the numpy kernels.

Generic-block leaves are compiled when they are irregular
:class:`~repro.spn.nodes.HistogramLeaf` instances (the NIPS benchmark
networks contain a few): their ``searchsorted`` bin lookup becomes a
small branchless count over the static break array.  A generic block
containing any *other* leaf family evaluates through arbitrary Python
callables and cannot be compiled; generation then raises
:class:`~repro.errors.NativeBackendError` and the caller falls back to
the numpy plan backend.

Numeric literals are emitted as C99 hex floats, so every constant
round-trips bit-exactly from the plan's float64 (or float32-cast)
parameters into the compiled kernel.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import NativeBackendError
from repro.spn.nodes import HistogramLeaf
from repro.spn.plan import CsrLayer, InferencePlan
from repro.spn.plan_eval import DEFAULT_CHUNK_BYTES

__all__ = [
    "CODEGEN_VERSION",
    "KERNEL_SYMBOL",
    "MAX_KERNEL_THREADS",
    "GATHER_TILE",
    "kernel_block_size",
    "generate_kernel_source",
]

#: Version of the generated-kernel ABI/semantics.  Bump on ANY change
#: to the emitted code or the call signature: the version is part of
#: the on-disk artifact key, so old cached kernels are invalidated
#: instead of silently reused.
#: v2: thread-parallel block driver (n_threads/thread_stamps params),
#: per-thread value slabs, blocked composite-table leaf gather.
CODEGEN_VERSION = 2

#: Exported entry-point symbol of every generated kernel.
KERNEL_SYMBOL = "repro_plan_eval"

#: Hard cap on kernel threads, baked into the generated driver (the
#: per-chunk descriptor array is a stack allocation of this size).
MAX_KERNEL_THREADS = 256

#: Rows per composite-table gather tile.  The leaf stage computes the
#: per-variable row codes for one tile and immediately gathers every
#: leaf of that variable from it, so the ``int64`` code tile (64 x 8
#: bytes = 512 B) stays L1-resident across all the table touches
#: instead of being rebuilt-and-evicted once per full block.
GATHER_TILE = 64

#: Nodes with more children than this get a data-driven child loop
#: (static index/weight arrays) instead of a fully unrolled expression.
_MAX_UNROLLED_CHILDREN = 24

#: Bounds on the compile-time column-chunk size (rows per block).
_MIN_BLOCK = 256
_MAX_BLOCK = 8192


def _c_double(value: float) -> str:
    """A C99 ``double`` literal reproducing *value* bit-exactly."""
    value = float(value)
    if math.isnan(value):
        return "NAN"
    if math.isinf(value):
        return "INFINITY" if value > 0 else "(-INFINITY)"
    return float.hex(value)


def _c_real(value: float, dtype: np.dtype) -> str:
    """A ``real_t`` literal: float32 storage casts then suffixes ``f``."""
    if dtype == np.dtype(np.float32):
        value = float(np.float32(value))
        if math.isnan(value):
            return "NAN"
        if math.isinf(value):
            return "INFINITY" if value > 0 else "(-INFINITY)"
        return float.hex(value) + "f"
    return _c_double(value)


def _const_i64(name: str, values) -> str:
    items = ", ".join(str(int(v)) for v in values)
    return f"static const int64_t {name}[{len(values)}] = {{ {items} }};"


def _const_real(name: str, values, dtype: np.dtype) -> str:
    items = ", ".join(_c_real(v, dtype) for v in values)
    return f"static const real_t {name}[{len(values)}] = {{ {items} }};"


def kernel_block_size(plan: InferencePlan, dtype=np.float64) -> int:
    """Rows per cache block, fixed at codegen time.

    Sized like :func:`repro.spn.plan_eval._chunk_size` — the per-block
    value matrix targets :data:`~repro.spn.plan_eval.DEFAULT_CHUNK_BYTES`
    so the working set stays L2/L3-resident — then rounded to a
    multiple of 64 and clamped, because here the block is a
    compile-time constant the C compiler unrolls against.
    """
    itemsize = np.dtype(dtype).itemsize
    raw = DEFAULT_CHUNK_BYTES // (itemsize * max(plan.n_nodes, 1))
    block = (raw // 64) * 64
    return int(max(_MIN_BLOCK, min(_MAX_BLOCK, block)))


def _emit_histogram(block, dtype: np.dtype, lines: List[str]) -> None:
    """Leaf stage for the fused unit-bin histogram block.

    Blocked gather: rows advance in :data:`GATHER_TILE`-sized tiles —
    one tile of row codes per variable (clamp, scale, offset), then
    *every* leaf of that variable gathers its slice from the still-hot
    code tile.  This is the multi-row restructuring of the numpy
    kernel's shared code matrix: B rows per leaf-table touch instead of
    re-walking the table row-by-row, so wide SPNs with many leaves per
    variable stop thrashing the code buffer out of L1.
    """
    by_var: Dict[int, List[Tuple[int, int]]] = {}
    for i in range(len(block)):
        var = int(block.variables[i])
        by_var.setdefault(var, []).append(
            (block.row_start + i, int(block.columns[i]))
        )
    for var in sorted(by_var):
        lo = _c_double(block.code_lo[var])
        hi = _c_double(block.code_hi[var])
        scale = _c_double(block.code_scale[var])
        base = _c_double(block.code_base[var])
        lines += [
            f"    {{ /* histogram leaves on variable {var} "
            "(blocked gather) */",
            "        int64_t code[GTILE];",
            "        for (long rt = 0; rt < rows; rt += GTILE) {",
            "            const long tn = "
            "(rows - rt < GTILE) ? (rows - rt) : GTILE;",
            "            for (long r = 0; r < tn; ++r) {",
            "                double x = floor((double) "
            f"d[(rt + r) * n_cols + {var}]);",
            f"                x = fmin(x, {hi});",
            f"                x = fmax(x, {lo});",
            f"                code[r] = (int64_t)((x - {lo}) * {scale} "
            f"+ {base});",
            "            }",
        ]
        for row, col in by_var[var]:
            lines += [
                f"            {{ /* leaf row {row} */",
                f"                real_t* restrict dst = "
                f"v + {row}L * BLOCK + rt;",
                f"                if (marg != 0 && marg[{var}]) {{",
                "                    for (long r = 0; r < tn; ++r)"
                " dst[r] = (real_t) 0;",
                "                } else {",
                "                    for (long r = 0; r < tn; ++r) {",
                "                        real_t val = "
                f"T_HIST[code[r] + {col}L];",
                "                        if (has_missing && (double) "
                f"d[(rt + r) * n_cols + {var}] == miss) "
                "val = (real_t) 0;",
                "                        dst[r] = val;",
                "                    }",
                "                }",
                "            }",
            ]
        lines += [
            "        }",
            "    }",
        ]


def _emit_gaussian(block, dtype: np.dtype, lines: List[str]) -> None:
    """Leaf stage for the fused Gaussian block (closed form per leaf)."""
    for i in range(len(block)):
        row = block.row_start + i
        var = int(block.variables[i])
        mu = _c_real(block.means[i], dtype)
        sigma = _c_real(block.stdevs[i], dtype)
        log_norm = _c_real(block.log_norm[i], dtype)
        lines += [
            f"    {{ /* gaussian leaf row {row}, variable {var} */",
            f"        real_t* restrict dst = v + {row}L * BLOCK;",
            f"        if (marg != 0 && marg[{var}]) {{",
            "            for (long r = 0; r < rows; ++r) dst[r] = (real_t) 0;",
            "        } else {",
            "            for (long r = 0; r < rows; ++r) {",
            f"                const real_t x = d[r * n_cols + {var}];",
            f"                const real_t z = (x - {mu}) / {sigma};",
            "                real_t val = (real_t) -0.5 * z * z + "
            f"{log_norm};",
            "                if (has_missing && (double) x == miss)"
            " val = (real_t) 0;",
            "                dst[r] = val;",
            "            }",
            "        }",
            "    }",
        ]


def _emit_categorical(block, dtype: np.dtype, lines: List[str]) -> None:
    """Leaf stage for the categorical LUT block.

    Mirrors the numpy kernel's integrality test: a value counts as a
    category iff ``|x - rint(x)| <= 1e-8 + 1e-5 * |rint(x)|`` (numpy's
    ``isclose`` defaults) and the category is in range.
    """
    for i in range(len(block)):
        row = block.row_start + i
        var = int(block.variables[i])
        n_cat = _c_double(block.n_categories[i])
        offset = int(block.table_offsets[i])
        log_floor = _c_real(block.log_floor[i], dtype)
        lines += [
            f"    {{ /* categorical leaf row {row}, variable {var} */",
            f"        real_t* restrict dst = v + {row}L * BLOCK;",
            f"        if (marg != 0 && marg[{var}]) {{",
            "            for (long r = 0; r < rows; ++r) dst[r] = (real_t) 0;",
            "        } else {",
            "            for (long r = 0; r < rows; ++r) {",
            f"                const real_t xr = d[r * n_cols + {var}];",
            "                const double x = (double) xr;",
            "                const double cat = rint(x);",
            "                const int inside = (cat >= 0.0) & "
            f"(cat < {n_cat}) & "
            "(fabs(x - cat) <= 0x1.5798ee2308c3ap-27 + "
            "0x1.4f8b588e368f1p-17 * fabs(cat));",
            "                real_t val = inside ? "
            f"T_CAT[(int64_t) cat + {offset}L] : {log_floor};",
            "                if (has_missing && x == miss) val = (real_t) 0;",
            "                dst[r] = val;",
            "            }",
            "        }",
            "    }",
        ]


def _emit_generic_histogram(block, dtype: np.dtype, lines: List[str]) -> None:
    """Leaf stage for irregular histogram leaves in the generic block.

    Replicates ``HistogramLeaf.log_density`` exactly: ``searchsorted
    (side='right')`` is a count of breaks ``<= x`` (NaN compares false
    everywhere, landing out of support on the floor — the same result
    numpy reaches through its NaN-sorts-last convention), then a bin
    table lookup of ``log(max(density, floor))``.
    """
    for i, leaf in enumerate(block.leaves):
        row = block.row_start + i
        var = int(block.variables[i])
        n_bins = leaf.n_bins
        breaks = [_c_double(b) for b in leaf.breaks]
        log_probs = np.log(np.maximum(leaf.densities, leaf.floor))
        log_floor = _c_real(math.log(leaf.floor), dtype)
        lines += [
            f"    {{ /* irregular histogram leaf row {row}, "
            f"variable {var} */",
            f"        static const double brk_{row}[{n_bins + 1}] = "
            "{ " + ", ".join(breaks) + " };",
            "        " + _const_real(f"lp_{row}", log_probs, dtype),
            f"        real_t* restrict dst = v + {row}L * BLOCK;",
            f"        if (marg != 0 && marg[{var}]) {{",
            "            for (long r = 0; r < rows; ++r) dst[r] = (real_t) 0;",
            "        } else {",
            "            for (long r = 0; r < rows; ++r) {",
            f"                const double x = (double) d[r * n_cols + {var}];",
            "                int64_t idx = 0;",
            f"                for (int k = 0; k < {n_bins + 1}; ++k)",
            f"                    idx += (x >= brk_{row}[k]);",
            f"                real_t val = (idx >= 1 && idx <= {n_bins}) ? "
            f"lp_{row}[idx - 1] : {log_floor};",
            "                if (has_missing && x == miss) val = (real_t) 0;",
            "                dst[r] = val;",
            "            }",
            "        }",
            "    }",
        ]


def _emit_product_node(
    row: int, children: List[int], lines: List[str]
) -> None:
    """One product node: a segment add over constant child rows."""
    lines.append(f"    {{ /* product row {row} */")
    lines.append(f"        real_t* restrict dst = v + {row}L * BLOCK;")
    if len(children) <= _MAX_UNROLLED_CHILDREN:
        terms = " + ".join(f"v[{c}L * BLOCK + r]" for c in children)
        lines += [
            "        for (long r = 0; r < rows; ++r)",
            f"            dst[r] = {terms};",
        ]
    else:
        lines.append(
            "        " + _const_i64(f"ch_{row}", children)
        )
        lines += [
            "        for (long r = 0; r < rows; ++r) {",
            f"            real_t acc = v[ch_{row}[0] * BLOCK + r];",
            f"            for (long k = 1; k < {len(children)}L; ++k)",
            f"                acc += v[ch_{row}[k] * BLOCK + r];",
            "            dst[r] = acc;",
            "        }",
        ]
    lines.append("    }")


def _emit_sum_node(
    row: int,
    children: List[int],
    weights: List[float],
    dtype: np.dtype,
    lines: List[str],
) -> None:
    """One sum node: stable max-shift log-sum-exp over constant children.

    The shift and peak run in the storage type (matching the numpy
    kernels); the exponential accumulation always runs in ``double``,
    which is what keeps float32 storage within ~1e-4 of the
    double-precision root.
    """
    shift_t = "float" if dtype == np.dtype(np.float32) else "double"
    k = len(children)
    lines.append(f"    {{ /* sum row {row} */")
    lines.append(f"        real_t* restrict dst = v + {row}L * BLOCK;")
    if k <= _MAX_UNROLLED_CHILDREN:
        lines.append("        for (long r = 0; r < rows; ++r) {")
        for j, (child, weight) in enumerate(zip(children, weights)):
            w = _c_real(weight, dtype)
            lines.append(
                f"            const {shift_t} s{j} = "
                f"v[{child}L * BLOCK + r] + {w};"
            )
            if j == 0:
                lines.append(f"            {shift_t} peak = s0;")
            else:
                lines.append(
                    f"            if (s{j} > peak) peak = s{j};"
                )
        lines.append(
            f"            const {shift_t} safe = "
            f"(peak == -INFINITY) ? ({shift_t}) 0 : peak;"
        )
        lines.append("            double acc = exp((double)(s0 - safe));")
        for j in range(1, k):
            lines.append(
                f"            acc += exp((double)(s{j} - safe));"
            )
        lines.append(
            "            dst[r] = (real_t)((double) peak + log(acc));"
        )
        lines.append("        }")
    else:
        lines.append("        " + _const_i64(f"ch_{row}", children))
        lines.append(
            "        " + _const_real(f"w_{row}", weights, dtype)
        )
        lines += [
            "        for (long r = 0; r < rows; ++r) {",
            f"            {shift_t} peak = -INFINITY;",
            f"            for (long k = 0; k < {k}L; ++k) {{",
            f"                const {shift_t} s = "
            f"v[ch_{row}[k] * BLOCK + r] + w_{row}[k];",
            "                if (s > peak) peak = s;",
            "            }",
            f"            const {shift_t} safe = "
            f"(peak == -INFINITY) ? ({shift_t}) 0 : peak;",
            "            double acc = 0.0;",
            f"            for (long k = 0; k < {k}L; ++k)",
            f"                acc += exp((double)(v[ch_{row}[k] * BLOCK + r]"
            f" + w_{row}[k] - safe));",
            "            dst[r] = (real_t)((double) peak + log(acc));",
            "        }",
        ]
    lines.append("    }")


def _emit_layer(layer: CsrLayer, dtype: np.dtype, lines: List[str]) -> None:
    """Emit every node of one CSR layer with its constants inlined."""
    lines.append(
        f"    /* layer: {layer.kind}, {layer.n_nodes} node(s), "
        f"rows [{layer.row_start}, {layer.row_start + layer.n_nodes}) */"
    )
    for j in range(layer.n_nodes):
        start, stop = int(layer.indptr[j]), int(layer.indptr[j + 1])
        children = [int(c) for c in layer.child_rows[start:stop]]
        row = layer.row_start + j
        if layer.kind == "product":
            _emit_product_node(row, children, lines)
        else:
            weights = [float(w) for w in layer.log_weights[start:stop]]
            _emit_sum_node(row, children, weights, dtype, lines)


def generate_kernel_source(plan: InferencePlan, dtype=np.float64) -> str:
    """Emit the complete C translation unit for *plan* at *dtype*.

    The returned source defines one exported function::

        int repro_plan_eval(const void* data, long n_rows, long n_cols,
                            const unsigned char* marg, double missing_value,
                            int has_missing, double* out, long n_threads,
                            double* thread_stamps);

    ``data`` is the row-major ``(n_rows, n_cols)`` batch in the storage
    dtype, ``marg`` an optional per-variable byte mask (NULL when no
    variables are marginalised), and ``out`` the float64 root
    log-likelihood vector.  ``n_threads`` asks for that many worker
    threads (clamped to [1, min(n_blocks, MAX_THREADS)]; forced to 1
    when the artifact was built without a thread runtime) over a
    *thread-count-independent* static partition of the fixed BLOCK
    grid, so results are bit-identical for any ``n_threads``.
    ``thread_stamps`` (optional, ``2 * n_threads`` doubles) receives
    per-chunk CLOCK_MONOTONIC begin/end stamps — comparable with
    ``time.perf_counter()`` on Linux — with ``end == 0.0`` marking a
    chunk that never ran.  Returns 0 on success, 1 on allocation
    failure.

    Raises :class:`~repro.errors.NativeBackendError` when the plan
    contains leaves without a fused kernel (generic leaf block) — those
    evaluate through arbitrary Python callables and cannot be compiled.
    """
    dtype = np.dtype(dtype)
    if dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise NativeBackendError(
            f"native kernels support float32/float64 storage, got {dtype}"
        )
    if plan.generic_block is not None:
        foreign = sorted(
            {
                type(leaf).__name__
                for leaf in plan.generic_block.leaves
                if not isinstance(leaf, HistogramLeaf)
            }
        )
        if foreign:
            raise NativeBackendError(
                f"plan {plan.name!r} has generic leaves of type "
                f"{', '.join(foreign)} that evaluate through Python "
                "callables; the native backend cannot compile them - use "
                "the numpy plan backend"
            )

    real = "float" if dtype == np.dtype(np.float32) else "double"
    block_size = kernel_block_size(plan, dtype)
    lines: List[str] = [
        "/* Generated by repro.compiler.cgen - do not edit.",
        f" * codegen version: {CODEGEN_VERSION}",
        f" * plan: {plan.name}  nodes={plan.n_nodes}  "
        f"leaves={plan.n_leaves}  layers={plan.n_layers}",
        f" * storage dtype: {dtype.name}  block: {block_size} rows",
        " */",
        "#define _POSIX_C_SOURCE 200809L",
        "#include <math.h>",
        "#include <stdint.h>",
        "#include <stdlib.h>",
        "#include <time.h>",
        "#ifdef REPRO_THREADS_PTHREADS",
        "#include <pthread.h>",
        "#endif",
        "",
        f"typedef {real} real_t;",
        f"#define BLOCK {block_size}L",
        f"#define GTILE {GATHER_TILE}L",
        f"#define MAX_THREADS {MAX_KERNEL_THREADS}L",
        "",
    ]

    if plan.histogram_block is not None:
        lines.append(
            _const_real("T_HIST", plan.histogram_block.table, dtype)
        )
    if plan.categorical_block is not None:
        lines.append(
            _const_real("T_CAT", plan.categorical_block.table, dtype)
        )
    lines += [
        "",
        "static void eval_block(const real_t* restrict d, const long n_cols,",
        "                       const long rows,",
        "                       const unsigned char* restrict marg,",
        "                       const double miss, const int has_missing,",
        "                       real_t* restrict v)",
        "{",
    ]
    if plan.histogram_block is not None:
        _emit_histogram(plan.histogram_block, dtype, lines)
    if plan.gaussian_block is not None:
        _emit_gaussian(plan.gaussian_block, dtype, lines)
    if plan.categorical_block is not None:
        _emit_categorical(plan.categorical_block, dtype, lines)
    if plan.generic_block is not None:
        _emit_generic_histogram(plan.generic_block, dtype, lines)
    for layer in plan.layers:
        _emit_layer(layer, dtype, lines)
    lines += [
        "}",
        "",
        "/* Evaluate blocks [b_begin, b_end) into out.  Each caller owns",
        " * a private value slab, so ranges evaluate concurrently with no",
        " * shared mutable state; the block partition is fixed by the",
        " * compile-time BLOCK constant, never by the thread count, which",
        " * is what makes results bit-identical for any n_threads. */",
        "static int eval_range(const real_t* restrict d, const long n_rows,",
        "                      const long n_cols,",
        "                      const unsigned char* restrict marg,",
        "                      const double miss, const int has_missing,",
        "                      double* restrict out,",
        "                      const long b_begin, const long b_end)",
        "{",
        "    real_t* v = (real_t*) malloc("
        f"(size_t) {plan.n_nodes}L * BLOCK * sizeof(real_t));",
        "    if (v == 0) return 1;",
        "    for (long b = b_begin; b < b_end; ++b) {",
        "        const long r0 = b * BLOCK;",
        "        const long rows = "
        "(n_rows - r0 < BLOCK) ? (n_rows - r0) : BLOCK;",
        "        eval_block(d + r0 * n_cols, n_cols, rows, marg,",
        "                   miss, has_missing, v);",
        f"        const real_t* root = v + {plan.root_row}L * BLOCK;",
        "        double* o = out + r0;",
        "        for (long r = 0; r < rows; ++r) o[r] = (double) root[r];",
        "    }",
        "    free(v);",
        "    return 0;",
        "}",
        "",
        "static double repro_mono_seconds(void)",
        "{",
        "    struct timespec ts;",
        "    if (clock_gettime(CLOCK_MONOTONIC, &ts) != 0) return 0.0;",
        "    return (double) ts.tv_sec + 1e-9 * (double) ts.tv_nsec;",
        "}",
        "",
        "typedef struct {",
        "    const real_t* d;",
        "    long n_rows;",
        "    long n_cols;",
        "    const unsigned char* marg;",
        "    double miss;",
        "    int has_missing;",
        "    double* out;",
        "    long b_begin;",
        "    long b_end;",
        "    int rc;",
        "    double t0;",
        "    double t1;",
        "} repro_chunk_t;",
        "",
        "static void repro_run_chunk(repro_chunk_t* c)",
        "{",
        "    c->t0 = repro_mono_seconds();",
        "    c->rc = eval_range(c->d, c->n_rows, c->n_cols, c->marg,",
        "                       c->miss, c->has_missing, c->out,",
        "                       c->b_begin, c->b_end);",
        "    c->t1 = repro_mono_seconds();",
        "}",
        "",
        "#ifdef REPRO_THREADS_PTHREADS",
        "static void* repro_chunk_main(void* arg)",
        "{",
        "    repro_run_chunk((repro_chunk_t*) arg);",
        "    return 0;",
        "}",
        "#endif",
        "",
        f"int {KERNEL_SYMBOL}(const void* data, long n_rows, long n_cols,",
        "                    const unsigned char* marg, double missing_value,",
        "                    int has_missing, double* out, long n_threads,",
        "                    double* thread_stamps)",
        "{",
        "    const real_t* d = (const real_t*) data;",
        "    const long n_blocks = (n_rows + BLOCK - 1) / BLOCK;",
        "    long nt = n_threads;",
        "    if (nt < 1) nt = 1;",
        "    if (nt > MAX_THREADS) nt = MAX_THREADS;",
        "    if (n_blocks > 0 && nt > n_blocks) nt = n_blocks;",
        "#if !defined(REPRO_THREADS_OPENMP) && "
        "!defined(REPRO_THREADS_PTHREADS)",
        "    nt = 1; /* serial build: no thread runtime compiled in */",
        "#endif",
        "    repro_chunk_t chunks[MAX_THREADS];",
        "    for (long t = 0; t < nt; ++t) {",
        "        chunks[t].d = d;",
        "        chunks[t].n_rows = n_rows;",
        "        chunks[t].n_cols = n_cols;",
        "        chunks[t].marg = marg;",
        "        chunks[t].miss = missing_value;",
        "        chunks[t].has_missing = has_missing;",
        "        chunks[t].out = out;",
        "        chunks[t].b_begin = (n_blocks * t) / nt;",
        "        chunks[t].b_end = (n_blocks * (t + 1)) / nt;",
        "        chunks[t].rc = 0;",
        "        chunks[t].t0 = 0.0;",
        "        chunks[t].t1 = 0.0;",
        "    }",
        "#if defined(REPRO_THREADS_OPENMP)",
        "    #pragma omp parallel for schedule(static) "
        "num_threads((int) nt)",
        "    for (long t = 0; t < nt; ++t) repro_run_chunk(&chunks[t]);",
        "#elif defined(REPRO_THREADS_PTHREADS)",
        "    pthread_t tids[MAX_THREADS];",
        "    int started[MAX_THREADS];",
        "    for (long t = 1; t < nt; ++t)",
        "        started[t] = (pthread_create(&tids[t], 0,",
        "                      repro_chunk_main, &chunks[t]) == 0);",
        "    repro_run_chunk(&chunks[0]);",
        "    for (long t = 1; t < nt; ++t) {",
        "        if (started[t]) pthread_join(tids[t], 0);",
        "        else repro_run_chunk(&chunks[t]);",
        "    }",
        "#else",
        "    for (long t = 0; t < nt; ++t) repro_run_chunk(&chunks[t]);",
        "#endif",
        "    int rc = 0;",
        "    for (long t = 0; t < nt; ++t) {",
        "        rc |= chunks[t].rc;",
        "        if (thread_stamps != 0) {",
        "            thread_stamps[2 * t] = chunks[t].t0;",
        "            thread_stamps[2 * t + 1] = chunks[t].t1;",
        "        }",
        "    }",
        "    return rc;",
        "}",
        "",
    ]
    return "\n".join(lines)
