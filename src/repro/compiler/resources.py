"""FPGA resource vectors and device fitting.

Resources follow the five columns of the paper's Table I: LUTs used as
logic, LUTs used as memory (distributed RAM/SRL), registers, BRAM
tiles (36 kb), and DSP slices.  :class:`ResourceVector` is an additive
value type; :class:`DeviceResources` describes a device's budget and
checks fit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable

from repro.errors import ResourceFitError

__all__ = ["ResourceVector", "DeviceResources", "ResourceReport"]


@dataclass(frozen=True)
class ResourceVector:
    """An additive bundle of FPGA resources (Table I's five columns)."""

    luts_logic: float = 0.0
    luts_mem: float = 0.0
    registers: float = 0.0
    bram: float = 0.0
    dsp: float = 0.0

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            self.luts_logic + other.luts_logic,
            self.luts_mem + other.luts_mem,
            self.registers + other.registers,
            self.bram + other.bram,
            self.dsp + other.dsp,
        )

    def __mul__(self, factor: float) -> "ResourceVector":
        return ResourceVector(
            self.luts_logic * factor,
            self.luts_mem * factor,
            self.registers * factor,
            self.bram * factor,
            self.dsp * factor,
        )

    __rmul__ = __mul__

    def as_dict(self) -> Dict[str, float]:
        """Column-name keyed view (Table I ordering)."""
        return {
            "luts_logic": self.luts_logic,
            "luts_mem": self.luts_mem,
            "registers": self.registers,
            "bram": self.bram,
            "dsp": self.dsp,
        }

    @staticmethod
    def total(vectors: Iterable["ResourceVector"]) -> "ResourceVector":
        """Sum an iterable of vectors."""
        acc = ResourceVector()
        for vector in vectors:
            acc = acc + vector
        return acc


@dataclass(frozen=True)
class DeviceResources:
    """A device's resource budget plus identification."""

    name: str
    budget: ResourceVector

    def utilisation(self, used: ResourceVector) -> Dict[str, float]:
        """Fractional utilisation per resource column."""
        budget = self.budget.as_dict()
        used_d = used.as_dict()
        out = {}
        for key, cap in budget.items():
            out[key] = used_d[key] / cap if cap > 0 else float("inf")
        return out

    def fits(self, used: ResourceVector, max_utilisation: float = 1.0) -> bool:
        """True when *used* stays within ``max_utilisation`` per column.

        Real designs fail routing well before 100% utilisation; the
        design composer passes ~0.8 here to model routability limits
        (the paper: "limited FPGA logic resources, as well as routing
        scarcity").
        """
        return all(u <= max_utilisation for u in self.utilisation(used).values())

    def check_fit(self, used: ResourceVector, max_utilisation: float = 1.0) -> None:
        """Raise :class:`ResourceFitError` naming the violated columns."""
        over = {
            key: value
            for key, value in self.utilisation(used).items()
            if value > max_utilisation
        }
        if over:
            detail = ", ".join(f"{k}={v:.1%}" for k, v in sorted(over.items()))
            raise ResourceFitError(
                f"design exceeds {max_utilisation:.0%} of {self.name}: {detail}"
            )


@dataclass(frozen=True)
class ResourceReport:
    """A named resource total with its context (Table I row)."""

    label: str
    used: ResourceVector
    device: DeviceResources

    @property
    def utilisation(self) -> Dict[str, float]:
        """Fractional utilisation per column."""
        return self.device.utilisation(self.used)
