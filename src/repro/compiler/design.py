"""Whole-design composition: cores + memory interfaces + platform.

A *core* is one compiled SPN accelerator (datapath + its load/store
infrastructure).  A *design* replicates a core N times, adds the
platform's base infrastructure (host interface/shell, interconnect)
and one memory-interface instance per core (an HBM SmartConnect, or a
soft DDR controller on the prior-work platform), then checks device
fit and estimates the achievable clock.

This module is platform-agnostic; the concrete platform descriptions
(XUP-VVH with HBM, AWS F1 with DDR) live in :mod:`repro.platforms`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.compiler.datapath import Datapath, build_datapath
from repro.compiler.frequency import achievable_frequency
from repro.compiler.operators import HWOp, OperatorLibrary, library_for_format
from repro.compiler.resources import DeviceResources, ResourceVector
from repro.compiler.schedule import PipelineSchedule, schedule_datapath
from repro.errors import CompilerError, ResourceFitError
from repro.spn.graph import SPN

__all__ = ["PlatformResources", "CoreSpec", "AcceleratorDesign", "compile_core", "compose_design"]

#: Routability ceiling: designs above this per-column utilisation are
#: considered unroutable ("routing scarcity", §V-B).
ROUTABILITY_LIMIT = 0.85


@dataclass(frozen=True)
class PlatformResources:
    """Resource-model view of a target platform."""

    #: Device budget (Table I "Available" row).
    device: DeviceResources
    #: Always-present infrastructure: shell/host interface, control
    #: interconnect, DMA engine.
    base_infrastructure: ResourceVector
    #: Per-core memory-path infrastructure (SmartConnect + register
    #: slices for HBM; AXI plumbing for DDR).
    per_core_memory_path: ResourceVector
    #: One memory controller instance (zero vector when controllers
    #: are hardened, as for HBM).
    memory_controller: ResourceVector
    #: Whether memory controllers are soft logic (True for DDR).
    soft_memory_controllers: bool
    #: The accelerator clock constraint in MHz (225 for the HBM design).
    target_clock_mhz: float


@dataclass(frozen=True)
class CoreSpec:
    """One compiled SPN accelerator core."""

    name: str
    #: The source network (kept for the functional device model).
    spn: SPN
    datapath: Datapath
    schedule: PipelineSchedule
    library: OperatorLibrary
    #: Datapath operator resources only.
    datapath_resources: ResourceVector
    #: Fixed per-core units: Load Unit, Sample Buffer, Result Buffer,
    #: Store Unit, AXI4-Lite register file (§III-B's block diagram).
    core_infrastructure: ResourceVector

    @property
    def resources(self) -> ResourceVector:
        """Datapath plus per-core infrastructure."""
        return self.datapath_resources + self.core_infrastructure

    @property
    def pipeline_depth(self) -> int:
        """Sample latency through the datapath in cycles."""
        return self.schedule.depth


#: Fixed per-core unit costs (Load/Store units, 512-bit sample and
#: result buffers, register file).  Calibrated jointly with the
#: operator libraries against Table I; the BRAM here (FIFO buffering)
#: is why Table I's BRAM column is nearly flat across benchmarks.
CORE_INFRASTRUCTURE = ResourceVector(
    luts_logic=7_000,
    luts_mem=13_500,
    registers=16_000,
    bram=22,
    dsp=0,
)

#: Per value-stage cost of pipeline-balancing delay lines.  Long delay
#: lines map to SRL shift registers (LUTs used as memory) with a few
#: flip-flops at the ends, not to plain register chains — which is why
#: the kRegs column of Table I grows far slower than the raw
#: stage-times-width product would suggest.
_BALANCE_REGS_PER_STAGE = 4.0
_BALANCE_LUTMEM_PER_STAGE = 1.1


def compile_core(
    spn: SPN,
    fmt="cfp",
    *,
    core_infrastructure: ResourceVector = CORE_INFRASTRUCTURE,
) -> CoreSpec:
    """Compile *spn* into a single accelerator core.

    Parameters
    ----------
    spn:
        The (valid) network to lower.
    fmt:
        Number format or library name (``cfp``, ``lns``, ``float32``,
        ``float64``).
    core_infrastructure:
        Override for the fixed per-core unit costs.
    """
    library = library_for_format(fmt)
    datapath = build_datapath(spn)
    schedule = schedule_datapath(datapath, library)
    total = ResourceVector()
    for node in datapath.nodes:
        total = total + library.resources(node.op, table_entries=node.table_entries)
    # Balancing delay lines: SRLs plus end flip-flops per slack stage.
    total = total + ResourceVector(
        registers=schedule.balance_registers * _BALANCE_REGS_PER_STAGE,
        luts_mem=schedule.balance_registers * _BALANCE_LUTMEM_PER_STAGE,
    )
    return CoreSpec(
        name=spn.name,
        spn=spn,
        datapath=datapath,
        schedule=schedule,
        library=library,
        datapath_resources=total,
        core_infrastructure=core_infrastructure,
    )


@dataclass(frozen=True)
class AcceleratorDesign:
    """A composed multi-core design on a platform."""

    core: CoreSpec
    n_cores: int
    platform: PlatformResources
    total_resources: ResourceVector
    clock_mhz: float

    @property
    def name(self) -> str:
        """Design label, e.g. ``NIPS20x4``."""
        return f"{self.core.name}x{self.n_cores}"

    @property
    def samples_per_second_per_core(self) -> float:
        """Peak datapath rate of one core (II=1 at the design clock)."""
        return self.clock_mhz * 1e6

    def utilisation(self) -> dict:
        """Per-column device utilisation."""
        return self.platform.device.utilisation(self.total_resources)


def compose_design(
    core: CoreSpec,
    n_cores: int,
    platform: PlatformResources,
    *,
    n_memory_controllers: Optional[int] = None,
    check_fit: bool = True,
) -> AcceleratorDesign:
    """Replicate *core* and fit the design onto *platform*.

    Parameters
    ----------
    core / n_cores:
        The accelerator core and its replication factor.
    platform:
        Target platform resource model.
    n_memory_controllers:
        Memory controller instances; defaults to one per core (the
        paper's HBM design dedicates one channel per core; the prior
        work traded controllers against cores).
    check_fit:
        When true, raise :class:`~repro.errors.ResourceFitError` if the
        design exceeds the routability limit.
    """
    if n_cores < 1:
        raise CompilerError(f"n_cores must be >= 1, got {n_cores}")
    if n_memory_controllers is None:
        n_memory_controllers = n_cores
    if n_memory_controllers < 1:
        raise CompilerError("designs need at least one memory controller")
    total = (
        platform.base_infrastructure
        + n_cores * (core.resources + platform.per_core_memory_path)
        + n_memory_controllers * platform.memory_controller
    )
    if check_fit:
        platform.device.check_fit(total, max_utilisation=ROUTABILITY_LIMIT)
    clock = achievable_frequency(
        core.library.nominal_fmax_mhz,
        total,
        platform.device,
        soft_memory_controllers=(
            n_memory_controllers if platform.soft_memory_controllers else 0
        ),
        target_mhz=platform.target_clock_mhz,
    )
    return AcceleratorDesign(
        core=core,
        n_cores=n_cores,
        platform=platform,
        total_resources=total,
        clock_mhz=clock,
    )
