"""Achievable clock frequency model.

Place-and-route frequency degrades with design size and with clocking-
sensitive infrastructure.  The paper's motivation section is explicit
about the mechanism this model captures: *"the use of additional soft
memory controllers had a larger impact on the achievable clock
frequency than the addition of extra SPN accelerators"* (§III-A), and
removing them (HBM controllers are hard IP) is one of the stated wins
of the HBM port.

The model: start from the operator library's nominal Fmax, apply a
congestion-driven derating that grows with logic utilisation, and a
fixed multiplicative penalty per soft DDR controller.  The HBM designs
run the accelerator clock at *half* the 450 MHz HBM clock (225 MHz)
with doubled interface width (§IV-A), so the returned value is capped
at the requested target clock when one is given.
"""

from __future__ import annotations

from typing import Optional

from repro.compiler.resources import DeviceResources, ResourceVector
from repro.errors import CompilerError

__all__ = ["achievable_frequency"]

#: Utilisation (LUT-logic fraction) where congestion derating starts.
_CONGESTION_KNEE = 0.35
#: Fmax multiplier lost per unit of utilisation beyond the knee.
_CONGESTION_SLOPE = 0.55
#: Fmax multiplier per instantiated soft DDR memory controller
#: (calibrated to the prior work's observation that adding the 4th
#: controller cost more than adding accelerator cores).
_SOFT_CONTROLLER_FACTOR = 0.94


def achievable_frequency(
    nominal_fmax_mhz: float,
    used: ResourceVector,
    device: DeviceResources,
    *,
    soft_memory_controllers: int = 0,
    target_mhz: Optional[float] = None,
) -> float:
    """Estimate the post-route clock of a composed design in MHz.

    Parameters
    ----------
    nominal_fmax_mhz:
        The operator library's small-design Fmax.
    used / device:
        Resource totals and the device budget (drives congestion).
    soft_memory_controllers:
        Count of soft DDR controllers in the design (0 for HBM).
    target_mhz:
        Constraint clock; the returned value never exceeds it (designs
        are timed at their constraint, not above).
    """
    if nominal_fmax_mhz <= 0:
        raise CompilerError(f"nominal_fmax must be positive, got {nominal_fmax_mhz}")
    if soft_memory_controllers < 0:
        raise CompilerError("soft_memory_controllers must be >= 0")
    utilisation = device.utilisation(used)["luts_logic"]
    fmax = nominal_fmax_mhz
    if utilisation > _CONGESTION_KNEE:
        derate = 1.0 - _CONGESTION_SLOPE * (utilisation - _CONGESTION_KNEE)
        fmax *= max(derate, 0.2)
    fmax *= _SOFT_CONTROLLER_FACTOR**soft_memory_controllers
    if target_mhz is not None:
        if target_mhz <= 0:
            raise CompilerError(f"target clock must be positive, got {target_mhz}")
        fmax = min(fmax, target_mhz)
    return fmax
