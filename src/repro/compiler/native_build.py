"""Runtime build cache and zero-copy loader for native plan kernels.

:mod:`repro.compiler.cgen` turns an
:class:`~repro.spn.plan.InferencePlan` into C source; this module turns
that source into a callable.  The pipeline is

1. **generate** the translation unit (pure function of plan + dtype),
2. **compile** it once into the shared on-disk cache
   (``$REPRO_CACHE_DIR``, default ``.repro_cache/`` — the same cache
   the NIPS structure learner uses), keyed by a hash of the *generated
   source* plus the compiler identity, with the storage dtype and
   :data:`~repro.compiler.cgen.CODEGEN_VERSION` spelled out in the
   artifact name so stale-revision artifacts are invalidated rather
   than silently reused,
3. **load** the artifact — through :mod:`cffi` when importable (the
   preferred FFI per ISSUE/ROADMAP), else :mod:`ctypes` — and wrap it
   in a :class:`NativeKernel` that calls the C entry point *zero-copy*:
   the numpy batch's own buffer is handed to C, and only the float64
   result vector is allocated.

Both loaders release the GIL for the duration of the C call, so the
thread-pool baseline scales across cores with the native backend just
like it does with the numpy kernels.

Failure policy (the "loud-but-graceful" contract):

* the *explicit* APIs — :func:`native_log_likelihood`,
  :func:`get_native_kernel` with ``require=True`` — raise
  :class:`~repro.errors.NativeBackendError` when no C compiler exists,
  the plan is uncompilable (generic leaves), or the build fails;
* the *implicit* path — :func:`native_or_plan_log_likelihood`, used by
  the process-wide ``backend="native"`` switch — warns once per
  process (:class:`RuntimeWarning`) and falls back to the numpy plan
  backend, keeping every environment without a toolchain green.

Set ``REPRO_NATIVE_CC`` to pick a specific compiler binary; pointing it
at a nonexistent path masks the toolchain entirely (used by the no-cc
CI leg and the fallback tests).

Observability: when a registry/tracer pair is attached via
:func:`set_native_observability`, builds bump ``native.build_seconds``
and ``native.cache_misses``, loads of cached artifacts bump
``native.cache_hits``, and every kernel invocation records a
``native`` host span (visible in the Perfetto export).
"""

from __future__ import annotations

import hashlib
import os
import subprocess
import time
import warnings
import weakref
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import NativeBackendError
from repro.spn.plan import InferencePlan
from repro.spn.plan_eval import (
    _as_batch,
    _check_dtype,
    _check_marginalized,
    plan_log_likelihood,
)
from repro.compiler.cgen import (
    CODEGEN_VERSION,
    KERNEL_SYMBOL,
    generate_kernel_source,
)

__all__ = [
    "compiler_command",
    "native_cache_dir",
    "NativeKernel",
    "build_kernel",
    "load_kernel",
    "get_native_kernel",
    "native_log_likelihood",
    "native_or_plan_log_likelihood",
    "set_native_observability",
    "clear_native_kernels",
]

#: Compilation flags.  No ``-ffast-math`` (it breaks the inf/NaN
#: semantics the kernels rely on) and no ``-march=native`` (artifacts
#: in the shared cache must survive being read on a sibling host).
_CFLAGS: Tuple[str, ...] = (
    "-O3",
    "-std=c11",
    "-fPIC",
    "-shared",
    "-fno-math-errno",
)

#: Extra flags that unlock glibc's vectorized math library (libmvec).
#: ``-D__FAST_MATH__`` only flips on the SIMD ``exp``/``log``
#: declarations guarded in ``<bits/math-vector.h>`` — none of the
#: value-changing ``-ffast-math`` codegen relaxations are enabled.
#: ``-fno-trapping-math``/``-fno-signaling-nans`` let the vectorizer
#: if-convert the IEEE selects inside the sum-node loops (without them
#: GCC reports "control flow in loop" and stays scalar).  The libmvec
#: variants were verified to match scalar libm bit-for-bit on the
#: kernel's special values (``exp(-inf)``, NaN propagation).
_VEC_CFLAGS: Tuple[str, ...] = (
    "-fno-trapping-math",
    "-fno-signaling-nans",
    "-D__FAST_MATH__",
)

#: Probe source for :func:`_vector_math_supported`: links against
#: libmvec and calls ``exp`` from a countable loop.
_VEC_PROBE_SRC = (
    "#include <math.h>\n"
    "double f(const double* restrict a, double* restrict o, long n) {\n"
    "    double s = 0.0;\n"
    "    for (long i = 0; i < n; ++i) { o[i] = exp(a[i]); s += o[i]; }\n"
    "    return s;\n"
    "}\n"
    "int main(void) { double a[4] = {0}, o[4]; return (int) f(a, o, 4); }\n"
)

#: Memoized probe results keyed by resolved compiler path.
_VEC_PROBED: Dict[str, bool] = {}

#: Candidate compiler binaries, probed in order.
_CC_CANDIDATES: Tuple[str, ...] = ("cc", "gcc", "clang")

#: In-process kernel memo: ``(plan id, dtype str) -> NativeKernel``.
#: Entries are evicted by a ``weakref.finalize`` on the plan so a dead
#: plan's id being recycled can never resurrect a stale kernel.
_KERNELS: Dict[Tuple[int, str], "NativeKernel"] = {}

#: Reasons already warned about on the implicit-fallback path (warn
#: once per process per reason, not once per call).
_WARNED: set = set()

#: Attached observability sinks (metrics registry, host-span recorder).
_OBS: List[Optional[object]] = [None, None]


def set_native_observability(metrics=None, host_tracer=None):
    """Attach obs sinks for native builds/calls; returns the previous pair.

    *metrics* is a :class:`repro.obs.metrics.MetricsRegistry` (receives
    ``native.build_seconds``, ``native.cache_hits``,
    ``native.cache_misses`` and ``native.calls`` counters);
    *host_tracer* a :class:`repro.obs.trace_export.HostSpanRecorder`
    (receives one ``native`` span per kernel invocation).  Pass the
    returned pair back in to restore the prior sinks.
    """
    previous = (_OBS[0], _OBS[1])
    _OBS[0] = metrics
    _OBS[1] = host_tracer
    return previous


def _count(name: str, amount: float = 1.0) -> None:
    if _OBS[0] is not None:
        _OBS[0].counter(name).add(amount)


def compiler_command() -> Optional[List[str]]:
    """The C compiler invocation prefix, or None when unavailable.

    ``REPRO_NATIVE_CC`` overrides discovery: its value is used verbatim
    when it resolves to an executable, and masks the toolchain entirely
    (returns None) when it does not — which is how the no-compiler CI
    leg and the fallback tests simulate a bare environment.
    """
    import shutil

    override = os.environ.get("REPRO_NATIVE_CC")
    if override is not None:
        resolved = shutil.which(override)
        return [resolved] if resolved else None
    for candidate in _CC_CANDIDATES:
        resolved = shutil.which(candidate)
        if resolved:
            return [resolved]
    return None


def _vector_math_supported(cc0: str) -> bool:
    """Whether *cc0* can build against libmvec with the vec flags.

    Compiles and links :data:`_VEC_PROBE_SRC` with
    :data:`_VEC_CFLAGS` + ``-lmvec`` in a throwaway directory; any
    failure (flag unknown to the compiler, libmvec absent on a
    non-glibc host) disables vectorized math for the process and the
    kernels fall back to scalar libm.  Memoized per compiler path.
    """
    cached = _VEC_PROBED.get(cc0)
    if cached is not None:
        return cached
    import tempfile

    supported = False
    try:
        with tempfile.TemporaryDirectory(prefix="repro-vecprobe-") as tmp:
            src = Path(tmp) / "probe.c"
            out = Path(tmp) / "probe"
            src.write_text(_VEC_PROBE_SRC)
            result = subprocess.run(
                [cc0, "-O3", "-std=c11", "-fno-math-errno", *_VEC_CFLAGS,
                 "-o", str(out), str(src), "-lmvec", "-lm"],
                capture_output=True,
                text=True,
            )
            supported = result.returncode == 0
    except OSError:
        supported = False
    _VEC_PROBED[cc0] = supported
    return supported


def native_cache_dir() -> Path:
    """The on-disk kernel cache: ``$REPRO_CACHE_DIR/native`` (created)."""
    base = os.environ.get("REPRO_CACHE_DIR", ".repro_cache")
    path = Path(base) / "native"
    path.mkdir(parents=True, exist_ok=True)
    return path


def _sanitize(name: str) -> str:
    return "".join(c if c.isalnum() or c in "-_" else "-" for c in name)[:48]


def _artifact_stem(plan: InferencePlan, dtype: np.dtype, source: str,
                   compiler_id: str) -> str:
    """Cache key: plan name + dtype + codegen version + content hash.

    The dtype tag and ``cg<version>`` are spelled out (not only folded
    into the hash) so a directory listing shows exactly which revision
    and precision produced each artifact, and so bumping
    :data:`~repro.compiler.cgen.CODEGEN_VERSION` visibly strands the
    old files instead of silently reusing them.
    """
    digest = hashlib.blake2b(
        (source + "\0" + compiler_id).encode(), digest_size=8
    ).hexdigest()
    return (
        f"{_sanitize(plan.name)}-{dtype.name}-cg{CODEGEN_VERSION}-{digest}"
    )


def build_kernel(plan: InferencePlan, dtype=np.float64) -> Path:
    """Compile (or reuse) the kernel artifact for *plan*; returns its path.

    Raises :class:`~repro.errors.NativeBackendError` when no compiler
    is available, the plan is uncompilable, or compilation fails.  The
    build is atomic (tmp file + ``os.replace``) so concurrent processes
    racing on the same plan converge on one valid artifact.
    """
    dtype = np.dtype(dtype)
    cc = compiler_command()
    if cc is None:
        raise NativeBackendError(
            "no C compiler found (tried $REPRO_NATIVE_CC, cc, gcc, clang); "
            "the native backend needs one - use the numpy plan backend"
        )
    source = generate_kernel_source(plan, dtype)
    flags = list(_CFLAGS)
    libs = ["-lm"]
    if _vector_math_supported(cc[0]):
        flags += list(_VEC_CFLAGS)
        libs = ["-lmvec", "-lm"]
    cache = native_cache_dir()
    stem = _artifact_stem(plan, dtype, source, cc[0] + ":" + ",".join(flags))
    artifact = cache / f"{stem}.so"
    if artifact.exists():
        _count("native.cache_hits")
        return artifact
    _count("native.cache_misses")
    c_path = cache / f"{stem}.c"
    tmp = cache / f"{stem}.so.tmp.{os.getpid()}"
    began = time.perf_counter()
    c_path.write_text(source)
    result = subprocess.run(
        cc + flags + ["-o", str(tmp), str(c_path)] + libs,
        capture_output=True,
        text=True,
    )
    if result.returncode != 0:
        tmp.unlink(missing_ok=True)
        raise NativeBackendError(
            f"native kernel build failed for plan {plan.name!r} "
            f"(compiler {cc[0]}):\n{result.stderr[:2000]}"
        )
    os.replace(tmp, artifact)
    _count("native.build_seconds", time.perf_counter() - began)
    return artifact


def _load_cffi(path: Path):
    """Load the artifact through cffi; returns the bound function."""
    from cffi import FFI

    ffi = FFI()
    ffi.cdef(
        "int repro_plan_eval(const void* data, long n_rows, long n_cols,"
        " const unsigned char* marg, double missing_value,"
        " int has_missing, double* out);"
    )
    lib = ffi.dlopen(str(path))
    fn = getattr(lib, KERNEL_SYMBOL)

    def call(data_ptr, n_rows, n_cols, marg_ptr, missing, has_missing,
             out_ptr):
        """Invoke the kernel with raw buffer addresses (GIL released)."""
        return fn(
            ffi.cast("void *", data_ptr),
            n_rows,
            n_cols,
            ffi.cast("unsigned char *", marg_ptr or 0),
            missing,
            has_missing,
            ffi.cast("double *", out_ptr),
        )

    call.loader = "cffi"
    call.keepalive = (ffi, lib)
    return call


def _load_ctypes(path: Path):
    """Load the artifact through ctypes; returns the bound function."""
    import ctypes

    lib = ctypes.CDLL(str(path))
    fn = getattr(lib, KERNEL_SYMBOL)
    fn.restype = ctypes.c_int
    fn.argtypes = [
        ctypes.c_void_p,
        ctypes.c_long,
        ctypes.c_long,
        ctypes.c_void_p,
        ctypes.c_double,
        ctypes.c_int,
        ctypes.c_void_p,
    ]

    def call(data_ptr, n_rows, n_cols, marg_ptr, missing, has_missing,
             out_ptr):
        """Invoke the kernel with raw buffer addresses (GIL released)."""
        return fn(data_ptr, n_rows, n_cols, marg_ptr or None, missing,
                  has_missing, out_ptr)

    call.loader = "ctypes"
    call.keepalive = (lib,)
    return call


def _load_fn(path: Path):
    """Bind the kernel entry point: cffi when importable, else ctypes."""
    try:
        import cffi  # noqa: F401 - availability probe only
    except ImportError:
        return _load_ctypes(path)
    return _load_cffi(path)


class NativeKernel:
    """A loaded per-plan C kernel with the plan-evaluator call contract.

    Wraps the compiled entry point with the exact validation and
    semantics of :func:`repro.spn.plan_eval.plan_log_likelihood`:
    same dtype/shape checks, same marginal-subset validation, same
    float64 result vector.  The input batch is passed zero-copy (its
    own buffer pointer goes to C) whenever it is already contiguous in
    the kernel's storage dtype.
    """

    def __init__(self, fn, path: Path, plan: InferencePlan, dtype: np.dtype):
        self._fn = fn
        #: Path of the loaded shared object (workers reuse it verbatim).
        self.path = Path(path)
        #: Storage dtype the kernel was generated for.
        self.dtype = np.dtype(dtype)
        #: FFI used to bind the symbol (``"cffi"`` or ``"ctypes"``).
        self.loader = fn.loader
        self._n_data_columns = plan.n_data_columns
        self._scope = plan.scope
        self._plan = plan

    def log_likelihood(
        self,
        data: np.ndarray,
        *,
        marginalized: Optional[Sequence[int]] = None,
        missing_value: Optional[float] = None,
    ) -> np.ndarray:
        """Root log-likelihood per row, straight from the C kernel.

        Mirrors :func:`repro.spn.plan_eval.plan_log_likelihood` for the
        kernel's storage dtype: float64 results; *marginalized* zeroes
        whole variables, *missing_value* masks per-sample entries.
        """
        data = _as_batch(data, self._n_data_columns, self.dtype)
        marg = _check_marginalized(self._plan, marginalized)
        data = np.ascontiguousarray(data)
        n_rows, n_cols = data.shape
        out = np.empty(n_rows)
        marg_ptr = 0
        marg_mask = None
        if marg is not None and len(marg):
            marg_mask = np.zeros(max(n_cols, 1), dtype=np.uint8)
            marg_mask[marg] = 1
            marg_ptr = marg_mask.ctypes.data
        began = time.perf_counter()
        rc = self._fn(
            data.ctypes.data,
            n_rows,
            n_cols,
            marg_ptr,
            float(missing_value) if missing_value is not None else 0.0,
            1 if missing_value is not None else 0,
            out.ctypes.data,
        )
        ended = time.perf_counter()
        _count("native.calls")
        if _OBS[1] is not None:
            _OBS[1].record(
                "native", f"kernel:{_sanitize(self._plan.name)}", began, ended
            )
        if rc != 0:
            raise NativeBackendError(
                f"native kernel for plan {self._plan.name!r} failed "
                f"(return code {rc}: allocation failure)"
            )
        return out


def load_kernel(path, plan: InferencePlan, dtype=np.float64) -> NativeKernel:
    """Bind an already-built artifact without touching the compiler.

    This is the executor-worker entry point: the parent builds once,
    workers inherit the artifact *path* and only ``dlopen`` it — no
    per-fork rebuild, no compiler requirement in the workers.
    """
    dtype = _check_dtype(dtype)
    path = Path(path)
    if not path.exists():
        raise NativeBackendError(f"native kernel artifact missing: {path}")
    return NativeKernel(_load_fn(path), path, plan, dtype)


def get_native_kernel(
    plan: InferencePlan, dtype=np.float64, *, require: bool = False
) -> Optional[NativeKernel]:
    """The (memoized) native kernel for *plan*, or None when unavailable.

    With ``require=True`` unavailability raises
    :class:`~repro.errors.NativeBackendError`; otherwise the first
    failure per reason emits one :class:`RuntimeWarning` and the
    function returns None so callers can fall back to the numpy plan
    backend.  Kernels are memoized per (plan identity, dtype); a
    cache-resident artifact is only ``dlopen``-ed, never rebuilt.
    """
    dtype = _check_dtype(dtype)
    key = (id(plan), dtype.str)
    kernel = _KERNELS.get(key)
    if kernel is not None:
        return kernel
    try:
        artifact = build_kernel(plan, dtype)
        kernel = NativeKernel(_load_fn(artifact), artifact, plan, dtype)
    except NativeBackendError as exc:
        if require:
            raise
        reason = str(exc)
        if reason not in _WARNED:
            _WARNED.add(reason)
            warnings.warn(
                "native inference backend unavailable, falling back to the "
                f"numpy plan backend: {reason}",
                RuntimeWarning,
                stacklevel=2,
            )
        return None
    _KERNELS[key] = kernel
    weakref.finalize(plan, _KERNELS.pop, key, None)
    return kernel


def clear_native_kernels() -> None:
    """Drop the in-process kernel memo and re-arm the one-time warnings.

    On-disk artifacts are untouched (they are content-addressed); this
    only forgets the loaded handles, so tests can exercise cold-load
    and fallback paths repeatedly.
    """
    _KERNELS.clear()
    _WARNED.clear()


def native_log_likelihood(
    plan: InferencePlan,
    data: np.ndarray,
    *,
    marginalized: Optional[Sequence[int]] = None,
    missing_value: Optional[float] = None,
    dtype=np.float64,
) -> np.ndarray:
    """Root log-likelihood via the native kernel; raises if unavailable.

    The explicit-request API: signature-compatible with
    :func:`repro.spn.plan_eval.plan_log_likelihood` but never silently
    degrades — no compiler or an uncompilable plan is a
    :class:`~repro.errors.NativeBackendError`.
    """
    kernel = get_native_kernel(plan, dtype, require=True)
    return kernel.log_likelihood(
        data, marginalized=marginalized, missing_value=missing_value
    )


def native_or_plan_log_likelihood(
    plan: InferencePlan,
    data: np.ndarray,
    *,
    marginalized: Optional[Sequence[int]] = None,
    missing_value: Optional[float] = None,
    dtype=np.float64,
) -> np.ndarray:
    """Native kernel when possible, numpy plan backend otherwise.

    The implicit path behind the process-wide ``backend="native"``
    switch: unavailability warns once per process (RuntimeWarning) and
    degrades to :func:`~repro.spn.plan_eval.plan_log_likelihood`, so
    compiler-less environments stay functional.
    """
    kernel = get_native_kernel(plan, dtype, require=False)
    if kernel is not None:
        return kernel.log_likelihood(
            data, marginalized=marginalized, missing_value=missing_value
        )
    return plan_log_likelihood(
        plan,
        data,
        marginalized=marginalized,
        missing_value=missing_value,
        dtype=dtype,
    )
