"""Runtime build cache and zero-copy loader for native plan kernels.

:mod:`repro.compiler.cgen` turns an
:class:`~repro.spn.plan.InferencePlan` into C source; this module turns
that source into a callable.  The pipeline is

1. **generate** the translation unit (pure function of plan + dtype),
2. **compile** it once into the shared on-disk cache
   (``$REPRO_CACHE_DIR``, default ``.repro_cache/`` — the same cache
   the NIPS structure learner uses), keyed by a hash of the *generated
   source* plus the compiler identity, with the storage dtype and
   :data:`~repro.compiler.cgen.CODEGEN_VERSION` spelled out in the
   artifact name so stale-revision artifacts are invalidated rather
   than silently reused,
3. **load** the artifact — through :mod:`cffi` when importable (the
   preferred FFI per ISSUE/ROADMAP), else :mod:`ctypes` — and wrap it
   in a :class:`NativeKernel` that calls the C entry point *zero-copy*:
   the numpy batch's own buffer is handed to C, and only the float64
   result vector is allocated.

Both loaders release the GIL for the duration of the C call, so the
thread-pool baseline scales across cores with the native backend just
like it does with the numpy kernels.

Failure policy (the "loud-but-graceful" contract):

* the *explicit* APIs — :func:`native_log_likelihood`,
  :func:`get_native_kernel` with ``require=True`` — raise
  :class:`~repro.errors.NativeBackendError` when no C compiler exists,
  the plan is uncompilable (generic leaves), or the build fails;
* the *implicit* path — :func:`native_or_plan_log_likelihood`, used by
  the process-wide ``backend="native"`` switch — warns once per
  process (:class:`RuntimeWarning`) and falls back to the numpy plan
  backend, keeping every environment without a toolchain green.

Set ``REPRO_NATIVE_CC`` to pick a specific compiler binary; pointing it
at a nonexistent path masks the toolchain entirely (used by the no-cc
CI leg and the fallback tests).

**Threading.**  Generated kernels (codegen v2) carry their own
thread-parallel block driver; this module probes the toolchain once
per compiler for the best available runtime — OpenMP, then a raw
pthread pool, then serial — and bakes the winning mode into both the
build flags and the artifact name (``-omp-`` / ``-pth-`` / ``-st-``
tag).  The per-call thread count resolves through
:func:`resolve_native_threads`: an explicit ``threads=`` argument wins,
then ``REPRO_NATIVE_THREADS``, then 1 — invalid values raise
:class:`~repro.errors.RuntimeConfigError` naming the source.  Results
are bit-identical for every thread count (the row partition is fixed
by the compile-time block size, never by ``threads``).

**Host-ISA keying.**  Builds probe ``-march=native`` and, where it
works, compile with it and fold the *ISA identity* — a hash of the
compiler's ``-march=native`` predefined-macro dump — into the cache
key, so an artifact tuned for one host is never dlopen-ed on a sibling
with different vector extensions; the sibling transparently builds its
own.  ``REPRO_NATIVE_PORTABLE=1`` opts back into the portable flag set
(artifacts tagged ``-portable-``).

**Cache bounding.**  The cache now grows per (plan, dtype, codegen
revision, thread mode, ISA); :func:`prune_native_cache` (CLI:
``repro cache --prune``) evicts least-recently-used artifact groups —
cache hits refresh mtime — down to a byte budget.

Observability: when a registry/tracer pair is attached via
:func:`set_native_observability`, builds bump ``native.build_seconds``
and ``native.cache_misses``, loads of cached artifacts bump
``native.cache_hits``, and every kernel invocation records a
``native`` host span plus, on multi-threaded calls, per-chunk
``native thread<t>`` spans and ``native.thread<t>.busy_seconds``
counters (visible in the Perfetto export).
"""

from __future__ import annotations

import hashlib
import os
import subprocess
import time
import warnings
import weakref
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import NativeBackendError, RuntimeConfigError
from repro.spn.plan import InferencePlan
from repro.spn.plan_eval import (
    _as_batch,
    _check_dtype,
    _check_marginalized,
    plan_log_likelihood,
)
from repro.compiler.cgen import (
    CODEGEN_VERSION,
    KERNEL_SYMBOL,
    MAX_KERNEL_THREADS,
    generate_kernel_source,
)

__all__ = [
    "compiler_command",
    "native_cache_dir",
    "native_thread_mode",
    "resolve_native_threads",
    "NativeKernel",
    "build_kernel",
    "load_kernel",
    "get_native_kernel",
    "native_log_likelihood",
    "native_or_plan_log_likelihood",
    "set_native_observability",
    "clear_native_kernels",
    "native_cache_stats",
    "prune_native_cache",
    "DEFAULT_CACHE_MAX_BYTES",
]

#: Compilation flags.  No ``-ffast-math`` (it breaks the inf/NaN
#: semantics the kernels rely on) and no ``-march=native`` (artifacts
#: in the shared cache must survive being read on a sibling host).
_CFLAGS: Tuple[str, ...] = (
    "-O3",
    "-std=c11",
    "-fPIC",
    "-shared",
    "-fno-math-errno",
)

#: Extra flags that unlock glibc's vectorized math library (libmvec).
#: ``-D__FAST_MATH__`` only flips on the SIMD ``exp``/``log``
#: declarations guarded in ``<bits/math-vector.h>`` — none of the
#: value-changing ``-ffast-math`` codegen relaxations are enabled.
#: ``-fno-trapping-math``/``-fno-signaling-nans`` let the vectorizer
#: if-convert the IEEE selects inside the sum-node loops (without them
#: GCC reports "control flow in loop" and stays scalar).  The libmvec
#: variants were verified to match scalar libm bit-for-bit on the
#: kernel's special values (``exp(-inf)``, NaN propagation).
_VEC_CFLAGS: Tuple[str, ...] = (
    "-fno-trapping-math",
    "-fno-signaling-nans",
    "-D__FAST_MATH__",
)

#: Probe source for :func:`_vector_math_supported`: links against
#: libmvec and calls ``exp`` from a countable loop.
_VEC_PROBE_SRC = (
    "#include <math.h>\n"
    "double f(const double* restrict a, double* restrict o, long n) {\n"
    "    double s = 0.0;\n"
    "    for (long i = 0; i < n; ++i) { o[i] = exp(a[i]); s += o[i]; }\n"
    "    return s;\n"
    "}\n"
    "int main(void) { double a[4] = {0}, o[4]; return (int) f(a, o, 4); }\n"
)

#: Memoized probe results keyed by resolved compiler path.
_VEC_PROBED: Dict[str, bool] = {}

#: Candidate compiler binaries, probed in order.
_CC_CANDIDATES: Tuple[str, ...] = ("cc", "gcc", "clang")

#: Thread-runtime build flags per mode.  The ``-D`` define selects the
#: matching driver in the generated source (see cgen); a serial build
#: compiles the same source with the driver forced to one chunk.
_THREAD_FLAGS: Dict[str, Tuple[str, ...]] = {
    "openmp": ("-fopenmp", "-DREPRO_THREADS_OPENMP"),
    "pthreads": ("-pthread", "-DREPRO_THREADS_PTHREADS"),
    "serial": (),
}

#: Short artifact-name tag per thread mode (and its inverse, used by
#: :func:`load_kernel` to recover the mode without a toolchain).
_THREAD_TAGS: Dict[str, str] = {
    "openmp": "omp",
    "pthreads": "pth",
    "serial": "st",
}
_TAG_MODES: Dict[str, str] = {v: k for k, v in _THREAD_TAGS.items()}

#: Probe program for OpenMP support (must compile *and* link).
_OMP_PROBE_SRC = (
    "#include <omp.h>\n"
    "int main(void) {\n"
    "    int n = 0;\n"
    "    #pragma omp parallel reduction(+:n)\n"
    "    n += 1;\n"
    "    return n > 0 ? 0 : 1;\n"
    "}\n"
)

#: Probe program for pthread support.
_PTHREAD_PROBE_SRC = (
    "#include <pthread.h>\n"
    "static void* f(void* a) { return a; }\n"
    "int main(void) {\n"
    "    pthread_t t;\n"
    "    if (pthread_create(&t, 0, f, 0) != 0) return 1;\n"
    "    return pthread_join(t, 0);\n"
    "}\n"
)

#: Memoized thread-mode probe results keyed by compiler path.
_MODE_PROBED: Dict[str, str] = {}

#: Memoized ``-march=native`` ISA identities keyed by compiler path:
#: an 8-hex digest of the march-predefined-macro dump (None when the
#: flag is unsupported).
_ISA_PROBED: Dict[str, Optional[str]] = {}

#: Default byte budget for :func:`prune_native_cache`.
DEFAULT_CACHE_MAX_BYTES = 256 * 1024 * 1024


def _probe_compile(cc0: str, source: str, flags: Sequence[str]) -> bool:
    """Whether *cc0* compiles and links *source* with *flags*."""
    import tempfile

    try:
        with tempfile.TemporaryDirectory(prefix="repro-ccprobe-") as tmp:
            src = Path(tmp) / "probe.c"
            out = Path(tmp) / "probe"
            src.write_text(source)
            result = subprocess.run(
                [cc0, "-O2", "-std=c11", *flags, "-o", str(out), str(src)],
                capture_output=True,
                text=True,
            )
            return result.returncode == 0
    except OSError:
        return False


def _thread_mode(cc0: str) -> str:
    """Best thread runtime *cc0* supports: openmp > pthreads > serial."""
    cached = _MODE_PROBED.get(cc0)
    if cached is not None:
        return cached
    if _probe_compile(cc0, _OMP_PROBE_SRC, ["-fopenmp"]):
        mode = "openmp"
    elif _probe_compile(cc0, _PTHREAD_PROBE_SRC, ["-pthread"]):
        mode = "pthreads"
    else:
        mode = "serial"
    _MODE_PROBED[cc0] = mode
    return mode


def native_thread_mode() -> Optional[str]:
    """The thread runtime new builds will use on this host.

    ``"openmp"``, ``"pthreads"`` or ``"serial"`` — or None when no C
    compiler is available at all.  Probed once per compiler path and
    memoized for the process.
    """
    cc = compiler_command()
    if cc is None:
        return None
    return _thread_mode(cc[0])


def _portable_requested() -> bool:
    """Whether ``REPRO_NATIVE_PORTABLE`` disables host-ISA tuning."""
    return os.environ.get("REPRO_NATIVE_PORTABLE", "") not in ("", "0")


def _march_isa(cc0: str) -> Optional[str]:
    """The host-ISA identity under ``-march=native``, or None.

    When *cc0* accepts ``-march=native``, the identity is a hash of
    the flag's predefined-macro dump (every ``__AVX2__``-style feature
    macro the flag turns on) plus the machine architecture — two hosts
    share an artifact iff the compiler would target the same ISA on
    both.  Returns None when the flag is unsupported (non-x86 gcc
    without a native mapping, exotic compilers); builds then keep the
    portable flag set.
    """
    import platform

    if cc0 in _ISA_PROBED:
        return _ISA_PROBED[cc0]
    isa: Optional[str] = None
    try:
        result = subprocess.run(
            [cc0, "-march=native", "-dM", "-E", "-x", "c", os.devnull],
            capture_output=True,
            text=True,
        )
        if result.returncode == 0 and result.stdout:
            macros = "\n".join(sorted(result.stdout.splitlines()))
            isa = hashlib.blake2b(
                (platform.machine() + "\0" + macros).encode(),
                digest_size=4,
            ).hexdigest()
    except OSError:
        isa = None
    _ISA_PROBED[cc0] = isa
    return isa


def resolve_native_threads(threads: Optional[int] = None) -> int:
    """Resolve a kernel-thread count: argument > env var > 1.

    An explicit ``threads=`` argument wins; otherwise
    ``REPRO_NATIVE_THREADS`` is consulted; otherwise the call runs
    single-threaded.  Non-integer or non-positive values raise
    :class:`~repro.errors.RuntimeConfigError` naming the offending
    source (mirroring ``REPRO_SWEEP_WORKERS``).  The result is clamped
    to the generated driver's hard cap
    (:data:`repro.compiler.cgen.MAX_KERNEL_THREADS`).
    """
    if threads is not None:
        try:
            import operator

            value = operator.index(threads)
        except TypeError:
            raise RuntimeConfigError(
                "threads= must be a positive integer thread count, "
                f"got {threads!r}"
            ) from None
        if value < 1:
            raise RuntimeConfigError(
                "threads= must be a positive integer thread count, "
                f"got {threads!r}"
            )
        return min(value, MAX_KERNEL_THREADS)
    env = os.environ.get("REPRO_NATIVE_THREADS", "")
    if not env:
        return 1
    try:
        value = int(env)
    except ValueError:
        raise RuntimeConfigError(
            "REPRO_NATIVE_THREADS must be a positive integer thread "
            f"count, got {env!r}"
        ) from None
    if value < 1:
        raise RuntimeConfigError(
            "REPRO_NATIVE_THREADS must be a positive integer thread "
            f"count, got {env!r}"
        )
    return min(value, MAX_KERNEL_THREADS)

#: In-process kernel memo: ``(plan id, dtype str) -> NativeKernel``.
#: Entries are evicted by a ``weakref.finalize`` on the plan so a dead
#: plan's id being recycled can never resurrect a stale kernel.
_KERNELS: Dict[Tuple[int, str], "NativeKernel"] = {}

#: Reasons already warned about on the implicit-fallback path (warn
#: once per process per reason, not once per call).
_WARNED: set = set()

#: Attached observability sinks (metrics registry, host-span recorder).
_OBS: List[Optional[object]] = [None, None]


def set_native_observability(metrics=None, host_tracer=None):
    """Attach obs sinks for native builds/calls; returns the previous pair.

    *metrics* is a :class:`repro.obs.metrics.MetricsRegistry` (receives
    ``native.build_seconds``, ``native.cache_hits``,
    ``native.cache_misses`` and ``native.calls`` counters);
    *host_tracer* a :class:`repro.obs.trace_export.HostSpanRecorder`
    (receives one ``native`` span per kernel invocation).  Pass the
    returned pair back in to restore the prior sinks.
    """
    previous = (_OBS[0], _OBS[1])
    _OBS[0] = metrics
    _OBS[1] = host_tracer
    return previous


def _count(name: str, amount: float = 1.0) -> None:
    if _OBS[0] is not None:
        _OBS[0].counter(name).add(amount)


def compiler_command() -> Optional[List[str]]:
    """The C compiler invocation prefix, or None when unavailable.

    ``REPRO_NATIVE_CC`` overrides discovery: its value is used verbatim
    when it resolves to an executable, and masks the toolchain entirely
    (returns None) when it does not — which is how the no-compiler CI
    leg and the fallback tests simulate a bare environment.
    """
    import shutil

    override = os.environ.get("REPRO_NATIVE_CC")
    if override is not None:
        resolved = shutil.which(override)
        return [resolved] if resolved else None
    for candidate in _CC_CANDIDATES:
        resolved = shutil.which(candidate)
        if resolved:
            return [resolved]
    return None


def _vector_math_supported(cc0: str) -> bool:
    """Whether *cc0* can build against libmvec with the vec flags.

    Compiles and links :data:`_VEC_PROBE_SRC` with
    :data:`_VEC_CFLAGS` + ``-lmvec`` in a throwaway directory; any
    failure (flag unknown to the compiler, libmvec absent on a
    non-glibc host) disables vectorized math for the process and the
    kernels fall back to scalar libm.  Memoized per compiler path.
    """
    cached = _VEC_PROBED.get(cc0)
    if cached is not None:
        return cached
    import tempfile

    supported = False
    try:
        with tempfile.TemporaryDirectory(prefix="repro-vecprobe-") as tmp:
            src = Path(tmp) / "probe.c"
            out = Path(tmp) / "probe"
            src.write_text(_VEC_PROBE_SRC)
            result = subprocess.run(
                [cc0, "-O3", "-std=c11", "-fno-math-errno", *_VEC_CFLAGS,
                 "-o", str(out), str(src), "-lmvec", "-lm"],
                capture_output=True,
                text=True,
            )
            supported = result.returncode == 0
    except OSError:
        supported = False
    _VEC_PROBED[cc0] = supported
    return supported


def native_cache_dir() -> Path:
    """The on-disk kernel cache: ``$REPRO_CACHE_DIR/native`` (created)."""
    base = os.environ.get("REPRO_CACHE_DIR", ".repro_cache")
    path = Path(base) / "native"
    path.mkdir(parents=True, exist_ok=True)
    return path


def _sanitize(name: str) -> str:
    return "".join(c if c.isalnum() or c in "-_" else "-" for c in name)[:48]


def _artifact_stem(plan: InferencePlan, dtype: np.dtype, source: str,
                   compiler_id: str, mode: str, isa: Optional[str]) -> str:
    """Cache key: plan + dtype + codegen rev + thread mode + ISA + hash.

    The dtype tag, ``cg<version>``, the thread-mode tag (``omp`` /
    ``pth`` / ``st``) and the host-ISA identity (8 hex chars, or
    ``portable``) are spelled out (not only folded into the hash) so a
    directory listing shows exactly which revision, precision, thread
    runtime and ISA produced each artifact — and so
    :func:`load_kernel` can recover the thread mode from the filename
    alone, without a toolchain.
    """
    digest = hashlib.blake2b(
        (source + "\0" + compiler_id).encode(), digest_size=8
    ).hexdigest()
    return (
        f"{_sanitize(plan.name)}-{dtype.name}-cg{CODEGEN_VERSION}"
        f"-{_THREAD_TAGS[mode]}-{isa if isa else 'portable'}-{digest}"
    )


def _mode_from_artifact(path: Path) -> str:
    """Recover the thread mode from an artifact filename tag."""
    for part in Path(path).name.split("-"):
        if part in _TAG_MODES:
            return _TAG_MODES[part]
    return "serial"


def build_kernel(plan: InferencePlan, dtype=np.float64) -> Path:
    """Compile (or reuse) the kernel artifact for *plan*; returns its path.

    Builds carry the best available thread runtime (OpenMP > pthreads >
    serial) and, unless ``REPRO_NATIVE_PORTABLE`` is set, tune with
    ``-march=native`` keyed by the host-ISA identity.  Cache hits
    refresh the artifact mtime so :func:`prune_native_cache` evicts in
    true LRU order.

    Raises :class:`~repro.errors.NativeBackendError` when no compiler
    is available, the plan is uncompilable, or compilation fails.  The
    build is atomic (tmp file + ``os.replace``) so concurrent processes
    racing on the same plan converge on one valid artifact.
    """
    dtype = np.dtype(dtype)
    cc = compiler_command()
    if cc is None:
        raise NativeBackendError(
            "no C compiler found (tried $REPRO_NATIVE_CC, cc, gcc, clang); "
            "the native backend needs one - use the numpy plan backend"
        )
    source = generate_kernel_source(plan, dtype)
    flags = list(_CFLAGS)
    libs = ["-lm"]
    if _vector_math_supported(cc[0]):
        flags += list(_VEC_CFLAGS)
        libs = ["-lmvec", "-lm"]
    mode = _thread_mode(cc[0])
    flags += list(_THREAD_FLAGS[mode])
    isa = None if _portable_requested() else _march_isa(cc[0])
    if isa is not None:
        flags.append("-march=native")
    cache = native_cache_dir()
    stem = _artifact_stem(
        plan, dtype, source,
        cc[0] + ":" + ",".join(flags) + ":" + (isa or "portable"),
        mode, isa,
    )
    artifact = cache / f"{stem}.so"
    if artifact.exists():
        _count("native.cache_hits")
        try:
            os.utime(artifact)
        except OSError:
            pass
        return artifact
    _count("native.cache_misses")
    c_path = cache / f"{stem}.c"
    tmp = cache / f"{stem}.so.tmp.{os.getpid()}"
    began = time.perf_counter()
    c_path.write_text(source)
    result = subprocess.run(
        cc + flags + ["-o", str(tmp), str(c_path)] + libs,
        capture_output=True,
        text=True,
    )
    if result.returncode != 0:
        tmp.unlink(missing_ok=True)
        raise NativeBackendError(
            f"native kernel build failed for plan {plan.name!r} "
            f"(compiler {cc[0]}):\n{result.stderr[:2000]}"
        )
    os.replace(tmp, artifact)
    _count("native.build_seconds", time.perf_counter() - began)
    return artifact


def _load_cffi(path: Path):
    """Load the artifact through cffi; returns the bound function."""
    from cffi import FFI

    ffi = FFI()
    ffi.cdef(
        "int repro_plan_eval(const void* data, long n_rows, long n_cols,"
        " const unsigned char* marg, double missing_value,"
        " int has_missing, double* out, long n_threads,"
        " double* thread_stamps);"
    )
    lib = ffi.dlopen(str(path))
    fn = getattr(lib, KERNEL_SYMBOL)

    def call(data_ptr, n_rows, n_cols, marg_ptr, missing, has_missing,
             out_ptr, n_threads, stamps_ptr):
        """Invoke the kernel with raw buffer addresses (GIL released)."""
        return fn(
            ffi.cast("void *", data_ptr),
            n_rows,
            n_cols,
            ffi.cast("unsigned char *", marg_ptr or 0),
            missing,
            has_missing,
            ffi.cast("double *", out_ptr),
            n_threads,
            ffi.cast("double *", stamps_ptr or 0),
        )

    call.loader = "cffi"
    call.keepalive = (ffi, lib)
    return call


def _load_ctypes(path: Path):
    """Load the artifact through ctypes; returns the bound function."""
    import ctypes

    lib = ctypes.CDLL(str(path))
    fn = getattr(lib, KERNEL_SYMBOL)
    fn.restype = ctypes.c_int
    fn.argtypes = [
        ctypes.c_void_p,
        ctypes.c_long,
        ctypes.c_long,
        ctypes.c_void_p,
        ctypes.c_double,
        ctypes.c_int,
        ctypes.c_void_p,
        ctypes.c_long,
        ctypes.c_void_p,
    ]

    def call(data_ptr, n_rows, n_cols, marg_ptr, missing, has_missing,
             out_ptr, n_threads, stamps_ptr):
        """Invoke the kernel with raw buffer addresses (GIL released)."""
        return fn(data_ptr, n_rows, n_cols, marg_ptr or None, missing,
                  has_missing, out_ptr, n_threads, stamps_ptr or None)

    call.loader = "ctypes"
    call.keepalive = (lib,)
    return call


def _load_fn(path: Path):
    """Bind the kernel entry point: cffi when importable, else ctypes."""
    try:
        import cffi  # noqa: F401 - availability probe only
    except ImportError:
        return _load_ctypes(path)
    return _load_cffi(path)


class NativeKernel:
    """A loaded per-plan C kernel with the plan-evaluator call contract.

    Wraps the compiled entry point with the exact validation and
    semantics of :func:`repro.spn.plan_eval.plan_log_likelihood`:
    same dtype/shape checks, same marginal-subset validation, same
    float64 result vector.  The input batch is passed zero-copy (its
    own buffer pointer goes to C) whenever it is already contiguous in
    the kernel's storage dtype.
    """

    def __init__(self, fn, path: Path, plan: InferencePlan, dtype: np.dtype):
        self._fn = fn
        #: Path of the loaded shared object (workers reuse it verbatim).
        self.path = Path(path)
        #: Storage dtype the kernel was generated for.
        self.dtype = np.dtype(dtype)
        #: FFI used to bind the symbol (``"cffi"`` or ``"ctypes"``).
        self.loader = fn.loader
        #: Thread runtime baked into the artifact (recovered from the
        #: filename tag, so workers with a masked toolchain know it).
        self.thread_mode = _mode_from_artifact(path)
        #: Whether ``threads > 1`` can actually run concurrently.  A
        #: serial artifact still accepts any ``threads=`` value — the
        #: driver just clamps it to one chunk.
        self.supports_threads = self.thread_mode in ("openmp", "pthreads")
        self._n_data_columns = plan.n_data_columns
        self._scope = plan.scope
        self._plan = plan

    def log_likelihood(
        self,
        data: np.ndarray,
        *,
        marginalized: Optional[Sequence[int]] = None,
        missing_value: Optional[float] = None,
        threads: Optional[int] = None,
    ) -> np.ndarray:
        """Root log-likelihood per row, straight from the C kernel.

        Mirrors :func:`repro.spn.plan_eval.plan_log_likelihood` for the
        kernel's storage dtype: float64 results; *marginalized* zeroes
        whole variables, *missing_value* masks per-sample entries.

        *threads* resolves through :func:`resolve_native_threads`
        (argument > ``REPRO_NATIVE_THREADS`` > 1) and is guaranteed not
        to change results: the generated driver partitions the fixed
        block grid, so every thread count produces bit-identical
        output.
        """
        nt = resolve_native_threads(threads)
        data = _as_batch(data, self._n_data_columns, self.dtype)
        marg = _check_marginalized(self._plan, marginalized)
        data = np.ascontiguousarray(data)
        n_rows, n_cols = data.shape
        out = np.empty(n_rows)
        marg_ptr = 0
        marg_mask = None
        if marg is not None and len(marg):
            marg_mask = np.zeros(max(n_cols, 1), dtype=np.uint8)
            marg_mask[marg] = 1
            marg_ptr = marg_mask.ctypes.data
        stamps = np.zeros(2 * nt)
        began = time.perf_counter()
        rc = self._fn(
            data.ctypes.data,
            n_rows,
            n_cols,
            marg_ptr,
            float(missing_value) if missing_value is not None else 0.0,
            1 if missing_value is not None else 0,
            out.ctypes.data,
            nt,
            stamps.ctypes.data,
        )
        ended = time.perf_counter()
        _count("native.calls")
        if _OBS[0] is not None or _OBS[1] is not None:
            self._record_thread_obs(nt, stamps)
        if _OBS[1] is not None:
            _OBS[1].record(
                "native", f"kernel:{_sanitize(self._plan.name)}", began, ended
            )
        if rc != 0:
            raise NativeBackendError(
                f"native kernel for plan {self._plan.name!r} failed "
                f"(return code {rc}: allocation failure)"
            )
        return out

    def _record_thread_obs(self, nt: int, stamps: np.ndarray) -> None:
        """Per-chunk busy counters and spans from the kernel's stamps.

        The driver writes CLOCK_MONOTONIC begin/end pairs per chunk —
        the same clock ``time.perf_counter`` reads on Linux, so the
        spans land on the host wall-clock track next to the executor's
        shard spans.  A pair with ``end == 0.0`` never ran (thread
        count clamped below the request) and is skipped.
        """
        label = f"kernel:{_sanitize(self._plan.name)}"
        for t in range(nt):
            t0, t1 = float(stamps[2 * t]), float(stamps[2 * t + 1])
            if t1 <= 0.0:
                continue
            _count(f"native.thread{t}.busy_seconds", t1 - t0)
            if _OBS[1] is not None and nt > 1:
                _OBS[1].record(f"native thread{t}", label, t0, t1)


def load_kernel(path, plan: InferencePlan, dtype=np.float64) -> NativeKernel:
    """Bind an already-built artifact without touching the compiler.

    This is the executor-worker entry point: the parent builds once,
    workers inherit the artifact *path* and only ``dlopen`` it — no
    per-fork rebuild, no compiler requirement in the workers.
    """
    dtype = _check_dtype(dtype)
    path = Path(path)
    if not path.exists():
        raise NativeBackendError(f"native kernel artifact missing: {path}")
    return NativeKernel(_load_fn(path), path, plan, dtype)


def get_native_kernel(
    plan: InferencePlan, dtype=np.float64, *, require: bool = False
) -> Optional[NativeKernel]:
    """The (memoized) native kernel for *plan*, or None when unavailable.

    With ``require=True`` unavailability raises
    :class:`~repro.errors.NativeBackendError`; otherwise the first
    failure per reason emits one :class:`RuntimeWarning` and the
    function returns None so callers can fall back to the numpy plan
    backend.  Kernels are memoized per (plan identity, dtype); a
    cache-resident artifact is only ``dlopen``-ed, never rebuilt.
    """
    dtype = _check_dtype(dtype)
    key = (id(plan), dtype.str)
    kernel = _KERNELS.get(key)
    if kernel is not None:
        return kernel
    try:
        artifact = build_kernel(plan, dtype)
        kernel = NativeKernel(_load_fn(artifact), artifact, plan, dtype)
    except NativeBackendError as exc:
        if require:
            raise
        reason = str(exc)
        if reason not in _WARNED:
            _WARNED.add(reason)
            warnings.warn(
                "native inference backend unavailable, falling back to the "
                f"numpy plan backend: {reason}",
                RuntimeWarning,
                stacklevel=2,
            )
        return None
    _KERNELS[key] = kernel
    weakref.finalize(plan, _KERNELS.pop, key, None)
    return kernel


def clear_native_kernels() -> None:
    """Drop the in-process kernel memo and re-arm the one-time warnings.

    On-disk artifacts are untouched (they are content-addressed); this
    only forgets the loaded handles, so tests can exercise cold-load
    and fallback paths repeatedly.
    """
    _KERNELS.clear()
    _WARNED.clear()


def native_log_likelihood(
    plan: InferencePlan,
    data: np.ndarray,
    *,
    marginalized: Optional[Sequence[int]] = None,
    missing_value: Optional[float] = None,
    dtype=np.float64,
    threads: Optional[int] = None,
) -> np.ndarray:
    """Root log-likelihood via the native kernel; raises if unavailable.

    The explicit-request API: signature-compatible with
    :func:`repro.spn.plan_eval.plan_log_likelihood` but never silently
    degrades — no compiler or an uncompilable plan is a
    :class:`~repro.errors.NativeBackendError`.  *threads* resolves via
    :func:`resolve_native_threads`; results are identical for every
    value.
    """
    kernel = get_native_kernel(plan, dtype, require=True)
    return kernel.log_likelihood(
        data, marginalized=marginalized, missing_value=missing_value,
        threads=threads,
    )


def native_or_plan_log_likelihood(
    plan: InferencePlan,
    data: np.ndarray,
    *,
    marginalized: Optional[Sequence[int]] = None,
    missing_value: Optional[float] = None,
    dtype=np.float64,
    threads: Optional[int] = None,
) -> np.ndarray:
    """Native kernel when possible, numpy plan backend otherwise.

    The implicit path behind the process-wide ``backend="native"``
    switch: unavailability warns once per process (RuntimeWarning) and
    degrades to :func:`~repro.spn.plan_eval.plan_log_likelihood`, so
    compiler-less environments stay functional — a requested thread
    count (argument or ``REPRO_NATIVE_THREADS``) is still *validated*
    on the fallback path, then ignored by the numpy kernels.
    """
    nt = resolve_native_threads(threads)
    kernel = get_native_kernel(plan, dtype, require=False)
    if kernel is not None:
        return kernel.log_likelihood(
            data, marginalized=marginalized, missing_value=missing_value,
            threads=nt,
        )
    return plan_log_likelihood(
        plan,
        data,
        marginalized=marginalized,
        missing_value=missing_value,
        dtype=dtype,
    )


def _artifact_groups(cache: Path) -> Dict[str, List[Path]]:
    """Cache files grouped by artifact stem (.so + .c + stale tmps)."""
    groups: Dict[str, List[Path]] = {}
    for path in cache.iterdir():
        if not path.is_file():
            continue
        name = path.name
        if ".so.tmp." in name:
            stem = name.split(".so.tmp.", 1)[0]
        elif name.endswith(".so"):
            stem = name[:-3]
        elif name.endswith(".c"):
            stem = name[:-2]
        else:
            stem = name
        groups.setdefault(stem, []).append(path)
    return groups


def native_cache_stats() -> Dict[str, object]:
    """Size of the on-disk kernel cache: path, artifact count, bytes."""
    cache = native_cache_dir()
    groups = _artifact_groups(cache)
    total = sum(
        p.stat().st_size for files in groups.values() for p in files
    )
    return {
        "path": str(cache),
        "artifacts": len(groups),
        "bytes": int(total),
    }


def prune_native_cache(
    max_bytes: Optional[int] = None,
) -> Dict[str, int]:
    """Evict least-recently-used kernel artifacts down to *max_bytes*.

    The cache grows one artifact group (``.so`` + ``.c`` + any stale
    build temps) per (plan, dtype, codegen revision, thread mode, ISA)
    key; this walks groups oldest-first by mtime — cache hits refresh
    mtime, so recency means *use*, not build time — and deletes whole
    groups until the directory fits the budget
    (default :data:`DEFAULT_CACHE_MAX_BYTES`).  Artifacts already
    dlopen-ed by a live process stay mapped and usable; the next cold
    process simply rebuilds.  Returns a report of removed/kept group
    and byte counts.
    """
    if max_bytes is None:
        max_bytes = DEFAULT_CACHE_MAX_BYTES
    max_bytes = max(0, int(max_bytes))
    cache = native_cache_dir()
    entries = []
    total = 0
    for stem, files in _artifact_groups(cache).items():
        stats = [p.stat() for p in files]
        size = sum(s.st_size for s in stats)
        mtime = max(s.st_mtime for s in stats)
        entries.append((mtime, stem, files, size))
        total += size
    entries.sort(key=lambda e: e[0])
    report = {
        "removed": 0,
        "removed_bytes": 0,
        "kept": len(entries),
        "kept_bytes": int(total),
    }
    for _mtime, _stem, files, size in entries:
        if report["kept_bytes"] <= max_bytes:
            break
        for path in files:
            path.unlink(missing_ok=True)
        report["removed"] += 1
        report["removed_bytes"] += int(size)
        report["kept"] -= 1
        report["kept_bytes"] -= int(size)
    return report
