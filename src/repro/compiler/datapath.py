"""SPN to hardware dataflow graph translation.

The generator lowers an SPN into a DAG of *two-input* hardware
operators:

* a histogram/categorical leaf becomes an ``INPUT`` tap feeding a
  ``LOOKUP`` (the BRAM/LUTRAM probability table);
* an ``n``-ary product becomes a balanced binary tree of ``n-1``
  ``MUL`` operators (balanced trees minimise pipeline depth);
* an ``n``-ary sum becomes ``n`` ``CONST_MUL`` weight multipliers
  feeding a balanced binary tree of ``n-1`` ``ADD`` operators.

Gaussian leaves are lowered to a LOOKUP as well: the hardware flow
(per the prior work) discretises them into histogram tables before
generation, which this builder performs on the fly.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.compiler.operators import HWOp
from repro.errors import CompilerError
from repro.spn.graph import SPN
from repro.spn.nodes import (
    CategoricalLeaf,
    GaussianLeaf,
    HistogramLeaf,
    LeafNode,
    ProductNode,
    SumNode,
)

__all__ = ["DatapathNode", "Datapath", "build_datapath"]

#: Bins used when discretising a Gaussian leaf for hardware.
_GAUSSIAN_TABLE_BINS = 64


@dataclass
class DatapathNode:
    """One hardware operator instance in the dataflow graph."""

    #: Dense index within the owning datapath.
    index: int
    op: HWOp
    #: Indices of input operators (0 for INPUT, 1 for LOOKUP, 2 else).
    inputs: Tuple[int, ...] = ()
    #: Input variable fed by this tap (INPUT only).
    variable: Optional[int] = None
    #: Table entry count (LOOKUP only).
    table_entries: int = 0
    #: Constant coefficient (CONST_MUL only).
    constant: Optional[float] = None


class Datapath:
    """A scheduled-ready dataflow DAG in topological order."""

    def __init__(self, nodes: List[DatapathNode], output: int, name: str = "datapath"):
        if not nodes:
            raise CompilerError("datapath needs at least one node")
        if not 0 <= output < len(nodes):
            raise CompilerError(f"output index {output} out of range")
        for position, node in enumerate(nodes):
            if node.index != position:
                raise CompilerError("datapath nodes must be densely indexed")
            for source in node.inputs:
                if source >= position:
                    raise CompilerError("datapath nodes must be in topological order")
        self.nodes = nodes
        self.output = output
        self.name = name

    def __len__(self) -> int:
        return len(self.nodes)

    def count(self, op: HWOp) -> int:
        """Number of operators of kind *op*."""
        return sum(1 for n in self.nodes if n.op is op)

    @property
    def total_table_entries(self) -> int:
        """Sum of LOOKUP table depths (drives LUT-as-memory cost)."""
        return sum(n.table_entries for n in self.nodes if n.op is HWOp.LOOKUP)

    @property
    def n_inputs(self) -> int:
        """Number of distinct input variables tapped."""
        return len({n.variable for n in self.nodes if n.op is HWOp.INPUT})


class _Builder:
    def __init__(self):
        self.nodes: List[DatapathNode] = []
        self._input_taps: Dict[int, int] = {}

    def _emit(self, node: DatapathNode) -> int:
        node.index = len(self.nodes)
        self.nodes.append(node)
        return node.index

    def input_tap(self, variable: int) -> int:
        if variable not in self._input_taps:
            self._input_taps[variable] = self._emit(
                DatapathNode(index=-1, op=HWOp.INPUT, variable=variable)
            )
        return self._input_taps[variable]

    def lookup(self, variable: int, entries: int) -> int:
        tap = self.input_tap(variable)
        return self._emit(
            DatapathNode(index=-1, op=HWOp.LOOKUP, inputs=(tap,), table_entries=entries)
        )

    def const_mul(self, source: int, constant: float) -> int:
        return self._emit(
            DatapathNode(
                index=-1, op=HWOp.CONST_MUL, inputs=(source,), constant=float(constant)
            )
        )

    def reduce_tree(self, sources: Sequence[int], op: HWOp) -> int:
        """Balanced binary reduction of *sources* with *op*."""
        level = list(sources)
        if not level:
            raise CompilerError("cannot reduce an empty operand list")
        while len(level) > 1:
            nxt: List[int] = []
            for i in range(0, len(level) - 1, 2):
                nxt.append(
                    self._emit(
                        DatapathNode(index=-1, op=op, inputs=(level[i], level[i + 1]))
                    )
                )
            if len(level) % 2:
                nxt.append(level[-1])
            level = nxt
        return level[0]


def _leaf_entries(leaf: LeafNode) -> int:
    if isinstance(leaf, HistogramLeaf):
        return leaf.n_bins
    if isinstance(leaf, CategoricalLeaf):
        return leaf.n_categories
    if isinstance(leaf, GaussianLeaf):
        return _GAUSSIAN_TABLE_BINS
    raise CompilerError(f"cannot map leaf type {type(leaf).__name__} to hardware")


def build_datapath(spn: SPN) -> Datapath:
    """Lower *spn* to a two-input-operator dataflow graph.

    Shared SPN sub-graphs stay shared in hardware (one operator, many
    consumers), matching the generator's common-subexpression reuse.
    """
    builder = _Builder()
    produced: Dict[int, int] = {}
    for node in spn:
        if isinstance(node, LeafNode):
            produced[node.id] = builder.lookup(node.variable, _leaf_entries(node))
        elif isinstance(node, ProductNode):
            sources = [produced[c.id] for c in node.children]
            produced[node.id] = builder.reduce_tree(sources, HWOp.MUL)
        elif isinstance(node, SumNode):
            terms = [
                builder.const_mul(produced[c.id], w)
                for c, w in zip(node.children, node.weights)
            ]
            produced[node.id] = builder.reduce_tree(terms, HWOp.ADD)
        else:  # pragma: no cover - validation rules this out
            raise CompilerError(f"unknown node type {type(node).__name__}")
    return Datapath(builder.nodes, produced[spn.root.id], name=spn.name)
