"""Functional interpreter for compiled datapath netlists.

Executes a :class:`~repro.compiler.datapath.Datapath` directly — no
reference to the source SPN — by walking the operator list in
topological order.  Its purpose is verification: the interpreter's
output on a netlist must equal the SPN's likelihood (property-tested),
which pins down the lowering (balanced trees, shared input taps,
weight constants) independently of the code that produced it.

Supports the same number-format semantics as the hardware twin: pass
a :class:`~repro.arith.base.NumberFormat` to fold every operator
through its quantisation.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.arith.base import NumberFormat
from repro.compiler.datapath import Datapath
from repro.compiler.operators import HWOp
from repro.errors import CompilerError

__all__ = ["interpret_datapath", "LookupTables", "extract_lookup_tables"]

#: node index -> probability table indexed by the (integer) feature.
LookupTables = Dict[int, np.ndarray]


def extract_lookup_tables(datapath: Datapath, spn) -> LookupTables:
    """Build each LOOKUP node's probability table from the source SPN.

    The generator burns leaf distributions into LUTRAM at synthesis
    time; this reproduces that step.  Tables are indexed by the raw
    feature byte; out-of-range values clamp to the leaf floor, and
    the reserved all-ones byte (255) returns probability 1
    (marginalisation).
    """
    from repro.spn.nodes import LeafNode

    leaves: List[LeafNode] = [n for n in spn if hasattr(n, "log_density")]
    # The datapath emits LOOKUPs in SPN evaluation order, one per leaf.
    lookup_nodes = [n for n in datapath.nodes if n.op is HWOp.LOOKUP]
    if len(lookup_nodes) != len(leaves):
        raise CompilerError(
            f"{len(lookup_nodes)} LOOKUP ops for {len(leaves)} leaves; "
            "netlist does not belong to this SPN"
        )
    tables: LookupTables = {}
    for node, leaf in zip(lookup_nodes, leaves):
        support = np.arange(256, dtype=np.float64)
        probs = np.exp(leaf.log_density(support))
        probs[255] = 1.0  # reserved missing-feature code
        tables[node.index] = probs
    return tables


def interpret_datapath(
    datapath: Datapath,
    data: np.ndarray,
    tables: LookupTables,
    *,
    fmt: Optional[NumberFormat] = None,
) -> np.ndarray:
    """Execute the netlist on *data*; returns the root's linear value.

    Parameters
    ----------
    datapath:
        The compiled netlist.
    data:
        ``(batch, n_variables)`` integer feature matrix (byte range).
    tables:
        Per-LOOKUP probability tables (see
        :func:`extract_lookup_tables`).
    fmt:
        Optional hardware number format applied at every operator.
    """
    data = np.asarray(data)
    if data.ndim != 2:
        raise CompilerError(f"data must be 2-D, got {data.ndim}-D")
    quantize = (lambda x: x) if fmt is None else fmt.quantize
    mul = (lambda a, b: a * b) if fmt is None else fmt.mul
    add = (lambda a, b: a + b) if fmt is None else fmt.add

    values: Dict[int, np.ndarray] = {}
    for node in datapath.nodes:
        if node.op is HWOp.INPUT:
            column = np.rint(data[:, node.variable]).astype(np.int64)
            if np.any(column < 0) or np.any(column > 255):
                raise CompilerError("input features must be byte-range integers")
            values[node.index] = column.astype(np.float64)
        elif node.op is HWOp.LOOKUP:
            table = tables.get(node.index)
            if table is None:
                raise CompilerError(f"no table for LOOKUP node {node.index}")
            addresses = values[node.inputs[0]].astype(np.int64)
            values[node.index] = quantize(table[addresses])
        elif node.op is HWOp.CONST_MUL:
            coeff = quantize(np.float64(node.constant))
            values[node.index] = mul(values[node.inputs[0]], coeff)
        elif node.op is HWOp.MUL:
            values[node.index] = mul(values[node.inputs[0]], values[node.inputs[1]])
        elif node.op is HWOp.ADD:
            values[node.index] = add(values[node.inputs[0]], values[node.inputs[1]])
        else:  # pragma: no cover - exhaustive over HWOp
            raise CompilerError(f"cannot interpret op {node.op}")
    return values[datapath.output]
