"""Hardware operator library: latency and resource costs per format.

Each SPN datapath decomposes into five operator kinds (:class:`HWOp`).
An :class:`OperatorLibrary` assigns every kind a pipeline latency (in
cycles at the library's nominal frequency) and a resource cost.

Cost calibration (DESIGN.md §5)
-------------------------------
The per-operator constants below were calibrated once against the
paper's Table I (4-core designs, NIPS10..NIPS40) and the operator-cost
relationships reported in the group's prior format papers [4], [11]:

* CFP operators are far cheaper than the prior work's double-precision
  operators — Table I shows ~3x fewer DSPs and ~2.2x fewer logic LUTs
  overall, which the per-op ratios below reproduce;
* sum-node *weight* multiplications use constant-coefficient
  multipliers (KCM) built from LUTs, not DSPs;
* histogram tables map to distributed RAM (LUTs as memory), not BRAM —
  Table I's BRAM column is almost flat across benchmark sizes because
  BRAM is consumed by the per-core FIFOs/buffers, not the tables.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict

from repro.arith.base import NumberFormat
from repro.compiler.resources import ResourceVector
from repro.errors import CompilerError

__all__ = [
    "HWOp",
    "OperatorCosts",
    "OperatorLibrary",
    "CFP_LIBRARY",
    "LNS_LIBRARY",
    "FLOAT32_LIBRARY",
    "FLOAT64_LIBRARY",
    "library_for_format",
]


class HWOp(enum.Enum):
    """Hardware operator kinds the datapath builder emits."""

    #: Two-input adder.
    ADD = "add"
    #: Two-input (variable x variable) multiplier.
    MUL = "mul"
    #: Constant-coefficient multiplier (sum weights; LUT-based KCM).
    CONST_MUL = "const_mul"
    #: Histogram/categorical table lookup (distributed RAM).
    LOOKUP = "lookup"
    #: Input feature tap (no logic; a wire from the sample buffer).
    INPUT = "input"


@dataclass(frozen=True)
class OperatorCosts:
    """Latency and resources of one operator kind in one library."""

    latency: int
    resources: ResourceVector
    #: Extra LUT-as-memory cost per table *entry* (LOOKUP only).
    lutmem_per_entry: float = 0.0


class OperatorLibrary:
    """Per-format operator costs plus the format's nominal Fmax."""

    def __init__(
        self,
        name: str,
        costs: Dict[HWOp, OperatorCosts],
        nominal_fmax_mhz: float,
    ):
        missing = set(HWOp) - set(costs)
        if missing:
            raise CompilerError(f"operator library {name!r} missing {missing}")
        if nominal_fmax_mhz <= 0:
            raise CompilerError(f"nominal_fmax must be positive, got {nominal_fmax_mhz}")
        self.name = name
        self.costs = dict(costs)
        self.nominal_fmax_mhz = float(nominal_fmax_mhz)

    def latency(self, op: HWOp) -> int:
        """Pipeline latency of *op* in cycles."""
        return self.costs[op].latency

    def resources(self, op: HWOp, table_entries: int = 0) -> ResourceVector:
        """Resource cost of one *op* instance.

        For LOOKUP, *table_entries* scales the distributed-RAM cost.
        """
        base = self.costs[op].resources
        if op is HWOp.LOOKUP and table_entries:
            extra = self.costs[op].lutmem_per_entry * table_entries
            return base + ResourceVector(luts_mem=extra)
        return base


def _vec(logic=0.0, mem=0.0, regs=0.0, bram=0.0, dsp=0.0) -> ResourceVector:
    return ResourceVector(logic, mem, regs, bram, dsp)


#: Custom Floating Point (the paper's configuration from [4]).
#: Calibrated anchors: Table I DSP/logic columns; FCCM'20 reports CFP
#: adders/multipliers at roughly a third of the double-precision cost.
CFP_LIBRARY = OperatorLibrary(
    "cfp",
    {
        HWOp.ADD: OperatorCosts(3, _vec(logic=220, regs=400, dsp=1)),
        HWOp.MUL: OperatorCosts(2, _vec(logic=60, regs=110, dsp=1)),
        HWOp.CONST_MUL: OperatorCosts(2, _vec(logic=120, regs=100, dsp=0)),
        HWOp.LOOKUP: OperatorCosts(2, _vec(logic=30, regs=50), lutmem_per_entry=0.6),
        HWOp.INPUT: OperatorCosts(0, _vec()),
    },
    nominal_fmax_mhz=320.0,
)

#: Logarithmic Number System ([11]): multipliers become integer adders
#: (no DSP), the adder needs the phi table (distributed RAM) and one
#: DSP for the interpolation multiply.
LNS_LIBRARY = OperatorLibrary(
    "lns",
    {
        HWOp.ADD: OperatorCosts(4, _vec(logic=520, mem=380, regs=700, dsp=1)),
        HWOp.MUL: OperatorCosts(1, _vec(logic=60, regs=80, dsp=0)),
        HWOp.CONST_MUL: OperatorCosts(1, _vec(logic=60, regs=80, dsp=0)),
        HWOp.LOOKUP: OperatorCosts(2, _vec(logic=40, regs=60), lutmem_per_entry=0.6),
        HWOp.INPUT: OperatorCosts(0, _vec()),
    },
    nominal_fmax_mhz=300.0,
)

#: IEEE binary32 operators (Vivado floating-point IP class costs).
FLOAT32_LIBRARY = OperatorLibrary(
    "float32",
    {
        HWOp.ADD: OperatorCosts(8, _vec(logic=420, regs=620, dsp=2)),
        HWOp.MUL: OperatorCosts(6, _vec(logic=140, regs=320, dsp=3)),
        HWOp.CONST_MUL: OperatorCosts(6, _vec(logic=140, regs=320, dsp=3)),
        HWOp.LOOKUP: OperatorCosts(2, _vec(logic=40, regs=60), lutmem_per_entry=0.5),
        HWOp.INPUT: OperatorCosts(0, _vec()),
    },
    nominal_fmax_mhz=280.0,
)

#: IEEE binary64 operators — the prior work's [8] datapath format.
#: Calibrated so a same-structure datapath costs ~3x the CFP DSPs and
#: ~2.5x the logic (Table I's New-vs-[8] deltas net of infrastructure).
FLOAT64_LIBRARY = OperatorLibrary(
    "float64",
    {
        HWOp.ADD: OperatorCosts(11, _vec(logic=500, regs=700, dsp=3)),
        HWOp.MUL: OperatorCosts(9, _vec(logic=330, regs=390, dsp=3)),
        HWOp.CONST_MUL: OperatorCosts(9, _vec(logic=250, regs=300, dsp=0)),
        HWOp.LOOKUP: OperatorCosts(2, _vec(logic=60, regs=100), lutmem_per_entry=4.0),
        HWOp.INPUT: OperatorCosts(0, _vec()),
    },
    nominal_fmax_mhz=250.0,
)

#: Posit operators (PaCoGen-class cores, the third format [4]
#: evaluates).  Regime decode/encode makes posit adders and
#: multipliers larger and slower than same-width CFP — which is why
#: [4] and this paper end up on CFP.
POSIT_LIBRARY = OperatorLibrary(
    "posit",
    {
        HWOp.ADD: OperatorCosts(6, _vec(logic=640, regs=780, dsp=1)),
        HWOp.MUL: OperatorCosts(4, _vec(logic=280, regs=340, dsp=1)),
        HWOp.CONST_MUL: OperatorCosts(4, _vec(logic=280, regs=340, dsp=1)),
        HWOp.LOOKUP: OperatorCosts(2, _vec(logic=30, regs=50), lutmem_per_entry=0.6),
        HWOp.INPUT: OperatorCosts(0, _vec()),
    },
    nominal_fmax_mhz=260.0,
)

_LIBRARIES = {
    "cfp": CFP_LIBRARY,
    "lns": LNS_LIBRARY,
    "posit": POSIT_LIBRARY,
    "float32": FLOAT32_LIBRARY,
    "float64": FLOAT64_LIBRARY,
}


def library_for_format(fmt) -> OperatorLibrary:
    """Resolve an operator library from a format object or name.

    Accepts a :class:`~repro.arith.base.NumberFormat` (matched on its
    family) or one of the names ``cfp``, ``lns``, ``float32``,
    ``float64``.
    """
    if isinstance(fmt, str):
        try:
            return _LIBRARIES[fmt]
        except KeyError:
            raise CompilerError(
                f"unknown operator library {fmt!r}; choose from {sorted(_LIBRARIES)}"
            )
    if isinstance(fmt, NumberFormat):
        name = fmt.name.split("(")[0]
        if name in _LIBRARIES:
            return _LIBRARIES[name]
        raise CompilerError(f"no operator library for format {fmt.name!r}")
    raise CompilerError(f"cannot resolve an operator library from {fmt!r}")
