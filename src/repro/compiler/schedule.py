"""Pipeline scheduling of a datapath.

The generated hardware is a fully pipelined dataflow datapath with
initiation interval (II) 1: one new sample enters and one result
leaves every clock cycle; a sample's *latency* is the depth of the
pipeline.  The scheduler assigns each operator an ASAP start stage,
computes the total depth, and counts the balancing registers that must
be inserted where a value produced in an early stage is consumed in a
later one (these registers show up in Table I's kRegs column).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.compiler.datapath import Datapath
from repro.compiler.operators import HWOp, OperatorLibrary
from repro.errors import CompilerError

__all__ = ["PipelineSchedule", "schedule_datapath"]


@dataclass(frozen=True)
class PipelineSchedule:
    """The result of scheduling one datapath against one library."""

    #: Start stage of each operator (index-aligned with the datapath).
    start_stage: Tuple[int, ...]
    #: Stage at which each operator's result is available.
    ready_stage: Tuple[int, ...]
    #: Total pipeline depth in cycles (latency of one sample).
    depth: int
    #: Initiation interval — always 1 for this generator.
    initiation_interval: int
    #: Balancing registers inserted to align operator inputs, in
    #: value-stages (multiply by the word width for flip-flop bits).
    balance_registers: int

    @property
    def samples_per_cycle(self) -> float:
        """Steady-state throughput in samples per clock cycle."""
        return 1.0 / self.initiation_interval


def schedule_datapath(datapath: Datapath, library: OperatorLibrary) -> PipelineSchedule:
    """ASAP-schedule *datapath* with *library*'s operator latencies.

    ASAP is optimal for pipeline depth on a dataflow DAG (every
    operator starts as soon as its last input is ready), and the
    balancing-register count follows from the slack between each
    input's ready stage and the operator's start stage.
    """
    n = len(datapath.nodes)
    start = [0] * n
    ready = [0] * n
    balance = 0
    for node in datapath.nodes:
        if node.inputs:
            start_stage = max(ready[i] for i in node.inputs)
        else:
            start_stage = 0
        start[node.index] = start_stage
        ready[node.index] = start_stage + library.latency(node.op)
        # Each input arriving earlier than start_stage needs one
        # register per stage of slack to stay aligned (II=1).
        for source in node.inputs:
            balance += start_stage - ready[source]
    depth = ready[datapath.output]
    if depth < 0:  # pragma: no cover - latencies are non-negative
        raise CompilerError("negative pipeline depth")
    return PipelineSchedule(
        start_stage=tuple(start),
        ready_stage=tuple(ready),
        depth=depth,
        initiation_interval=1,
        balance_registers=balance,
    )
