"""SPN-to-hardware compiler.

Models the paper's automatic datapath generator: an SPN (in SPFlow
text or as a :class:`~repro.spn.graph.SPN`) is translated into a fully
pipelined dataflow datapath of two-input hardware operators
(:mod:`repro.compiler.datapath`), scheduled into pipeline stages with
initiation interval 1 (:mod:`repro.compiler.schedule`), and costed
against per-operator latency/resource tables for the configured number
format (:mod:`repro.compiler.operators`).  Whole multi-core designs —
cores plus memory interfaces plus platform infrastructure — are
composed and fitted to a device in :mod:`repro.compiler.design`, with
an achievable-clock model in :mod:`repro.compiler.frequency`.

Together these reproduce the quantities the paper's evaluation rests
on: Table I's resource utilisation, the 225 MHz operating point, and
the per-core throughput of one sample per cycle.

The package also hosts the *native CPU* compilation path
(:mod:`repro.compiler.cgen` / :mod:`repro.compiler.native_build`):
per-plan C code generation plus a runtime build cache, backing the
``backend="native"`` inference switch.
"""

from repro.compiler.operators import (
    HWOp,
    OperatorCosts,
    OperatorLibrary,
    CFP_LIBRARY,
    LNS_LIBRARY,
    FLOAT32_LIBRARY,
    FLOAT64_LIBRARY,
    library_for_format,
)
from repro.compiler.datapath import Datapath, DatapathNode, build_datapath
from repro.compiler.schedule import PipelineSchedule, schedule_datapath
from repro.compiler.resources import ResourceVector, DeviceResources, ResourceReport
from repro.compiler.frequency import achievable_frequency
from repro.compiler.design import AcceleratorDesign, CoreSpec, compile_core, compose_design
from repro.compiler.cgen import CODEGEN_VERSION, generate_kernel_source
from repro.compiler.native_build import (
    NativeKernel,
    build_kernel,
    clear_native_kernels,
    compiler_command,
    get_native_kernel,
    load_kernel,
    native_log_likelihood,
    native_or_plan_log_likelihood,
    set_native_observability,
)

__all__ = [
    "HWOp",
    "OperatorCosts",
    "OperatorLibrary",
    "CFP_LIBRARY",
    "LNS_LIBRARY",
    "FLOAT32_LIBRARY",
    "FLOAT64_LIBRARY",
    "library_for_format",
    "Datapath",
    "DatapathNode",
    "build_datapath",
    "PipelineSchedule",
    "schedule_datapath",
    "ResourceVector",
    "DeviceResources",
    "ResourceReport",
    "achievable_frequency",
    "AcceleratorDesign",
    "CoreSpec",
    "compile_core",
    "compose_design",
    "CODEGEN_VERSION",
    "generate_kernel_source",
    "NativeKernel",
    "build_kernel",
    "clear_native_kernels",
    "compiler_command",
    "get_native_kernel",
    "load_kernel",
    "native_log_likelihood",
    "native_or_plan_log_likelihood",
    "set_native_observability",
]
