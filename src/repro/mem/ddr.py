"""DDR4 memory-channel model (the prior-work F1 substrate).

The AWS F1's custom-logic region attaches up to four DDR4-2400 72-bit
channels, each behind a *soft* memory controller (consuming the logic
the paper's Table I charges it for — see
:data:`repro.platforms.specs.AWS_F1_PLATFORM`).  Unlike HBM channels,
a DDR channel is a big shared resource: multiple accelerators attached
to one controller contend for it, which is half of the prior work's
trade-off (§III-A: sacrifice controllers → lose parallel access;
sacrifice accelerators → lose concurrency).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import MemoryModelError
from repro.sim.engine import Engine, Event
from repro.sim.resource import TokenBucket
from repro.units import GIB

__all__ = ["DDRSpec", "DDR4_2400_SPEC", "DDRChannel"]


@dataclass(frozen=True)
class DDRSpec:
    """Timing/bandwidth description of one DDR channel."""

    name: str
    #: Theoretical byte rate (transfer rate x bus width).
    theoretical_bandwidth: float
    #: Practical sustained byte rate for the linear access pattern.
    practical_bandwidth: float
    #: Fixed per-request service overhead in seconds.
    request_overhead: float


#: DDR4-2400 with a 64-bit data bus (19.2 GB/s raw): the F1 channels.
#: Practical rate derated for refresh + read/write turnaround, which
#: costs DDR more than HBM's fine-grained banking.
DDR4_2400_SPEC = DDRSpec(
    name="ddr4-2400",
    theoretical_bandwidth=19.2e9,
    practical_bandwidth=13.0 * GIB,
    request_overhead=3.5e-6,
)


class DDRChannel:
    """Discrete-event model of one shared DDR channel."""

    def __init__(self, env: Engine, index: int = 0, spec: DDRSpec = DDR4_2400_SPEC):
        self.env = env
        self.index = index
        self.spec = spec
        self._bus = TokenBucket(
            env, rate=spec.practical_bandwidth, burst=64.0, name=f"ddr{index}-bus"
        )
        self.bytes_read = 0
        self.bytes_written = 0

    def transfer(self, n_bytes: int, *, is_write: bool = False) -> Event:
        """Move *n_bytes* through the channel; yields when complete."""
        if n_bytes <= 0:
            raise MemoryModelError(f"n_bytes must be positive, got {n_bytes}")
        done = Event(self.env)
        self.env.process(self._serve(n_bytes, is_write, done), name=f"ddr{self.index}-req")
        return done

    def _serve(self, n_bytes: int, is_write: bool, done: Event):
        yield self.env.timeout(self.spec.request_overhead)
        yield self._bus.consume(float(n_bytes))
        if is_write:
            self.bytes_written += n_bytes
        else:
            self.bytes_read += n_bytes
        done.succeed(None)
