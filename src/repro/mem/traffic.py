"""Traffic generators and the Fig. 2 channel microbenchmark.

:class:`LinearTrafficGenerator` reproduces the paper's "special
benchmark hardware block which generates linear memory reads and
writes in parallel" (§II-B): a read stream and a write stream of
fixed-size requests issued back to back against one channel.
:func:`run_channel_benchmark` drives it in the DES and reports the
measured combined throughput, which the Fig. 2 experiment sweeps over
request sizes and attachment configurations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MemoryModelError
from repro.mem.hbm import HBMChannel
from repro.platforms.specs import HBMSpec, HBM_XUPVVH
from repro.sim.engine import Engine

__all__ = ["LinearTrafficGenerator", "TrafficResult", "run_channel_benchmark"]


@dataclass(frozen=True)
class TrafficResult:
    """Outcome of one channel benchmark run."""

    request_bytes: int
    n_requests: int
    elapsed_seconds: float
    bytes_moved: int

    @property
    def throughput(self) -> float:
        """Combined read+write bytes/s."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.bytes_moved / self.elapsed_seconds


class LinearTrafficGenerator:
    """Parallel linear read+write request streams against one channel."""

    def __init__(
        self,
        env: Engine,
        channel: HBMChannel,
        request_bytes: int,
        n_requests: int,
    ):
        if request_bytes <= 0:
            raise MemoryModelError(f"request_bytes must be positive, got {request_bytes}")
        if n_requests <= 0:
            raise MemoryModelError(f"n_requests must be positive, got {n_requests}")
        self.env = env
        self.channel = channel
        self.request_bytes = request_bytes
        self.n_requests = n_requests

    def _stream(self, is_write: bool):
        for _ in range(self.n_requests):
            yield self.channel.transfer(self.request_bytes, is_write=is_write)

    def run(self):
        """Process body: issue both streams and wait for completion."""
        readers = self.env.process(self._stream(False), name="traffic-read")
        writers = self.env.process(self._stream(True), name="traffic-write")
        yield self.env.all_of([readers, writers])


def run_channel_benchmark(
    request_bytes: int,
    *,
    n_requests: int = 64,
    spec: HBMSpec = HBM_XUPVVH,
    use_smartconnect: bool = False,
    crossbar: bool = False,
) -> TrafficResult:
    """Measure one channel's combined R+W throughput in the DES.

    Mirrors :func:`repro.mem.hbm.channel_throughput`'s parameters; the
    two are cross-validated in the test suite.
    """
    env = Engine()
    # The benchmark block keeps one request outstanding per direction,
    # paying its turnaround on every request (see repro.mem.hbm).
    from repro.mem.hbm import BENCHMARK_TURNAROUND_SECONDS, CROSSBAR_LATENCY_SECONDS

    extra = BENCHMARK_TURNAROUND_SECONDS
    if use_smartconnect:
        extra += 100e-9
    if crossbar:
        extra += CROSSBAR_LATENCY_SECONDS
    channel = HBMChannel(env, 0, spec, extra_request_latency=extra)
    generator = LinearTrafficGenerator(env, channel, request_bytes, n_requests)
    done = env.process(generator.run(), name="traffic")
    env.run(until_event=done)
    moved = channel.bytes_read + channel.bytes_written
    return TrafficResult(
        request_bytes=request_bytes,
        n_requests=n_requests,
        elapsed_seconds=env.now,
        bytes_moved=moved,
    )
