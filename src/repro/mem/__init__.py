"""Memory-substrate models: AXI plumbing, HBM, DDR4, traffic generators.

These models are burst-granular discrete-event components (see
DESIGN.md §6) plus matching closed-form throughput functions.  The HBM
channel model reproduces the paper's Fig. 2 microbenchmark — single-
channel read+write throughput versus request size for the native
450 MHz/256-bit attachment and the SmartConnect-converted 225 MHz/
512-bit attachment — and the "half clock, double width, same
throughput" equivalence the architecture relies on (§II-B/IV-A).
"""

from repro.mem.axi import AxiPort, AxiTransaction, SmartConnect, TransferKind
from repro.mem.hbm import HBMChannel, HBMSubsystem, channel_throughput
from repro.mem.ddr import DDRChannel, DDR4_2400_SPEC, DDRSpec
from repro.mem.traffic import LinearTrafficGenerator, TrafficResult, run_channel_benchmark

__all__ = [
    "AxiPort",
    "AxiTransaction",
    "SmartConnect",
    "TransferKind",
    "HBMChannel",
    "HBMSubsystem",
    "channel_throughput",
    "DDRChannel",
    "DDRSpec",
    "DDR4_2400_SPEC",
    "LinearTrafficGenerator",
    "TrafficResult",
    "run_channel_benchmark",
]
