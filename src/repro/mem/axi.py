"""AXI interface abstractions.

The accelerator cores talk AXI4 at 225 MHz / 512 bit; the HBM exposes
AXI3 at 450 MHz / 256 bit.  An AXI SmartConnect between them performs
clock conversion, data-width conversion and protocol conversion
(§IV-A).  This module models the *rate* consequences of those
conversions — which is what the paper's Fig. 2 insight is about: the
two attachments have identical byte rates (half clock x double width),
so conversion costs only a little extra latency, not bandwidth.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro.errors import MemoryModelError
from repro.units import is_power_of_two

__all__ = ["TransferKind", "AxiTransaction", "AxiPort", "SmartConnect"]

_txn_ids = itertools.count()


class TransferKind(enum.Enum):
    """Direction of an AXI burst."""

    READ = "read"
    WRITE = "write"


@dataclass(frozen=True)
class AxiTransaction:
    """One AXI burst request.

    AXI3 limits bursts to 16 beats and 4 KiB address-boundary
    crossings; the models issue channel requests at or below that
    granularity, so a transaction here may describe a *logical*
    transfer that the port chops into protocol-legal bursts.
    """

    kind: TransferKind
    address: int
    n_bytes: int
    txn_id: int = field(default_factory=lambda: next(_txn_ids))

    def __post_init__(self):
        if self.address < 0:
            raise MemoryModelError(f"negative address {self.address:#x}")
        if self.n_bytes <= 0:
            raise MemoryModelError(f"transfer needs positive size, got {self.n_bytes}")


@dataclass(frozen=True)
class AxiPort:
    """A clocked AXI data port (one direction's data channel)."""

    name: str
    clock_hz: float
    data_width_bits: int
    protocol: str = "AXI4"

    def __post_init__(self):
        if self.clock_hz <= 0:
            raise MemoryModelError(f"port clock must be positive, got {self.clock_hz}")
        if self.data_width_bits <= 0 or self.data_width_bits % 8:
            raise MemoryModelError(
                f"data width must be a positive multiple of 8, got {self.data_width_bits}"
            )
        if not is_power_of_two(self.data_width_bits // 8):
            raise MemoryModelError(
                f"data width must be a power-of-two byte count, got {self.data_width_bits}"
            )

    @property
    def bytes_per_beat(self) -> int:
        """Bytes moved per clock edge."""
        return self.data_width_bits // 8

    @property
    def peak_bandwidth(self) -> float:
        """Raw single-direction byte rate of the port (bytes/s)."""
        return self.clock_hz * self.bytes_per_beat

    def beats(self, n_bytes: int) -> int:
        """Clock beats needed to move *n_bytes* (ceil)."""
        if n_bytes <= 0:
            raise MemoryModelError(f"n_bytes must be positive, got {n_bytes}")
        return -(-n_bytes // self.bytes_per_beat)

    def transfer_seconds(self, n_bytes: int) -> float:
        """Pure data time for *n_bytes* on this port."""
        return self.beats(n_bytes) / self.clock_hz


@dataclass(frozen=True)
class SmartConnect:
    """An AXI SmartConnect between a master and a slave port.

    Performs clock-domain crossing, width conversion and AXI4-to-AXI3
    protocol conversion.  The achievable byte rate through the bridge
    is the minimum of the two port rates; the conversions add a fixed
    latency per transaction.
    """

    master: AxiPort
    slave: AxiPort
    #: Extra one-way latency added per transaction, in seconds.  A few
    #: cycles of each clock domain; ~100 ns covers CDC FIFOs plus
    #: packing/unpacking at 225/450 MHz.
    conversion_latency: float = 100e-9

    def __post_init__(self):
        if self.conversion_latency < 0:
            raise MemoryModelError("conversion latency must be >= 0")

    @property
    def effective_bandwidth(self) -> float:
        """Byte rate sustained through the bridge (bytes/s)."""
        return min(self.master.peak_bandwidth, self.slave.peak_bandwidth)

    @property
    def rate_matched(self) -> bool:
        """True when both sides move the same bytes per second.

        This is the §II-B equivalence: 225 MHz x 512 bit matches
        450 MHz x 256 bit exactly, so conversion costs no bandwidth.
        """
        return self.master.peak_bandwidth == self.slave.peak_bandwidth

    def transfer_seconds(self, n_bytes: int) -> float:
        """Latency-inclusive time to move one transaction of *n_bytes*."""
        slowest = max(
            self.master.transfer_seconds(n_bytes),
            self.slave.transfer_seconds(n_bytes),
        )
        return slowest + self.conversion_latency
