"""HBM channel and subsystem models.

Each of the 32 pseudo-channels is an independent server: a DRAM bus
shared by the channel's read and write traffic, with

* a raw byte rate of ``channel_clock x channel_width`` (14.4 GB/s),
* a refresh/protocol efficiency derating it to the measured ~12 GiB/s
  plateau of Fig. 2, and
* a fixed per-request service overhead (command issue, row activation
  ramp, benchmark turnaround) that makes *small* requests slow — the
  rising left side of Fig. 2 — and saturates around the 1 MiB request
  size the paper reports.

Without the optional crossbar the channels share nothing, which is the
paper's architectural bet: performance scales linearly in channels
(§II-B).  The crossbar model adds latency and a shared-switch
bandwidth ceiling, reproducing why the paper leaves it disabled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import MemoryModelError
from repro.platforms.specs import HBMSpec, HBM_XUPVVH
from repro.sim.engine import Engine, Event
from repro.sim.resource import SimResource, TokenBucket
from repro.units import GIB

__all__ = ["HBMChannel", "HBMSubsystem", "channel_throughput"]

#: Fraction of raw channel bandwidth left after refresh and protocol
#: overheads.  Calibrated so the Fig. 2 plateau lands at the measured
#: ~12 GiB/s (raw 450 MHz x 32 B = 13.41 GiB/s x 0.895 = 12.0 GiB/s).
#: Decomposes as PROTOCOL_EFFICIENCY x (1 - TRFC/TREFI); the explicit
#: refresh mode applies the two factors separately.
REFRESH_PROTOCOL_EFFICIENCY = 0.895

#: Bus/protocol efficiency alone (command gaps, bank conflicts).
PROTOCOL_EFFICIENCY = 0.9781

#: Average refresh interval per pseudo-channel (DRAM tREFI).
TREFI_SECONDS = 3.9e-6

#: Refresh stall duration (per-bank refresh, tRFCpb class).  The pair
#: satisfies PROTOCOL_EFFICIENCY * (1 - TRFC/TREFI) = 0.895, so the
#: folded and explicit models agree in steady state (tested).
TRFC_SECONDS = 0.3315e-6

#: Intrinsic channel service overhead per request in seconds (command
#: issue, activation): what any master pays per request.
REQUEST_OVERHEAD_SECONDS = 0.2e-6

#: Additional turnaround of the paper's Fig. 2 benchmark block, which
#: keeps a single request outstanding per direction (issue, wait for
#: completion, re-arm).  Calibrated jointly with the intrinsic
#: overhead to place the Fig. 2 saturation knee at ~1 MiB requests.
#: The SPN Load/Store units do better: they stream bursts back to
#: back, so they only pay the intrinsic overhead.
BENCHMARK_TURNAROUND_SECONDS = 2.8e-6

#: Extra per-request latency when the optional crossbar is enabled.
CROSSBAR_LATENCY_SECONDS = 0.35e-6

#: Shared-switch ceiling of the crossbar, bytes/s.  Accessing foreign
#: channels funnels through the inter-stack switch network.
CROSSBAR_SHARED_BANDWIDTH = 96.0 * GIB


def channel_throughput(
    request_bytes: int,
    *,
    spec: HBMSpec = HBM_XUPVVH,
    use_smartconnect: bool = False,
    crossbar: bool = False,
) -> float:
    """Closed-form combined R+W throughput of one channel, bytes/s.

    This is the analytic counterpart of the DES benchmark in
    :mod:`repro.mem.traffic`; the Fig. 2 experiment runs both and they
    must agree (tested).

    Parameters
    ----------
    request_bytes:
        Size of each linear read and each linear write request.
    use_smartconnect:
        Model the 225 MHz x 512 bit attachment through a SmartConnect
        (adds conversion latency per request) instead of the native
        450 MHz x 256 bit attachment.
    crossbar:
        Route through the optional crossbar (adds latency; the shared
        ceiling is irrelevant for a single channel but modelled for
        completeness).
    """
    if request_bytes <= 0:
        raise MemoryModelError(f"request_bytes must be positive, got {request_bytes}")
    raw = spec.channel_clock_hz * (spec.channel_width_bits // 8)
    effective = raw * REFRESH_PROTOCOL_EFFICIENCY
    # The closed form models the Fig. 2 benchmark block, which pays
    # the single-outstanding turnaround on top of the channel cost.
    overhead = REQUEST_OVERHEAD_SECONDS + BENCHMARK_TURNAROUND_SECONDS
    if use_smartconnect:
        overhead += 100e-9  # CDC + width conversion (see axi.py)
    if crossbar:
        overhead += CROSSBAR_LATENCY_SECONDS
        effective = min(effective, CROSSBAR_SHARED_BANDWIDTH)
    # The channel's single command engine serialises requests: each
    # request occupies the channel for its overhead plus its data time,
    # regardless of direction (reads and writes share the DRAM bus).
    per_request = overhead + request_bytes / effective
    return request_bytes / per_request


class HBMChannel:
    """Discrete-event model of one HBM pseudo-channel.

    Requests (reads and writes) share the channel's DRAM bus, modelled
    as a FIFO token bucket at the effective byte rate plus a fixed
    per-request overhead.  Use :meth:`transfer` from a simulation
    process and yield the returned event.
    """

    def __init__(
        self,
        env: Engine,
        index: int = 0,
        spec: HBMSpec = HBM_XUPVVH,
        *,
        extra_request_latency: float = 0.0,
        explicit_refresh: bool = False,
        metrics=None,
    ):
        if not 0 <= index:
            raise MemoryModelError(f"channel index must be >= 0, got {index}")
        self.env = env
        self.index = index
        self.spec = spec
        self.explicit_refresh = explicit_refresh
        raw = spec.channel_clock_hz * (spec.channel_width_bits // 8)
        if explicit_refresh:
            # Refresh stalls are simulated as events; only the bus
            # protocol derating is folded into the data rate.
            self.effective_bandwidth = raw * PROTOCOL_EFFICIENCY
        else:
            self.effective_bandwidth = raw * REFRESH_PROTOCOL_EFFICIENCY
        self.request_overhead = REQUEST_OVERHEAD_SECONDS + extra_request_latency
        # A single command engine serves one request at a time: the
        # per-request overhead occupies the channel, it does not
        # overlap with another request's data phase.
        self._engine = SimResource(env, capacity=1, name=f"hbm{index}-engine")
        self.bytes_read = 0
        self.bytes_written = 0
        self.refresh_count = 0
        #: Optional :class:`repro.sim.trace.Tracer`; when attached
        #: (see :meth:`repro.host.device.SimulatedDevice.attach_tracer`)
        #: every request records a span on the ``hbm ch{i}`` track.
        #: Purely observational: recording only reads ``env.now``.
        self.tracer = None
        # Metrics are resolved once here and updated from the transfer
        # callbacks; with no registry every update site is one is-None
        # check (see repro.obs.metrics for the zero-perturbation rules).
        if metrics is not None:
            prefix = f"hbm.ch{index}"
            self._m_requests = metrics.counter(prefix + ".requests")
            self._m_bytes_read = metrics.counter(prefix + ".bytes_read")
            self._m_bytes_written = metrics.counter(prefix + ".bytes_written")
            self._m_busy = metrics.counter(prefix + ".busy_seconds")
            self._m_refresh_stall = metrics.counter(prefix + ".refresh_stall_seconds")
            self._m_queue = metrics.time_stat(prefix + ".queue_depth")
            # The Fig. 2 plateau this channel is judged against is the
            # refresh-derated rate even when refresh is simulated
            # explicitly (the stalls then show up as stall time).
            metrics.gauge(prefix + ".plateau_bandwidth").set(
                raw * REFRESH_PROTOCOL_EFFICIENCY
            )
        else:
            self._m_requests = None
            self._m_bytes_read = None
            self._m_bytes_written = None
            self._m_busy = None
            self._m_refresh_stall = None
            self._m_queue = None
        if explicit_refresh:
            env.process(self._refresh_loop(), name=f"hbm{index}-refresh")

    def _refresh_loop(self):
        """Periodic DRAM refresh: occupies the command engine for
        TRFC every TREFI (§V-D: "refresh cycles of the HBM also play a
        role").  Deadlines are absolute — a refresh delayed behind a
        long data burst is followed by catch-up refreshes, as the DRAM
        controller's postponed-refresh accounting requires."""
        deadline = TREFI_SECONDS
        while True:
            delay = deadline - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            grant = self._engine.request()
            yield grant
            try:
                # Catch up on every refresh that came due while the
                # engine was busy (postponed-refresh accounting).
                while True:
                    yield self.env.timeout(TRFC_SECONDS)
                    self.refresh_count += 1
                    if self._m_refresh_stall is not None:
                        self._m_refresh_stall.add(TRFC_SECONDS)
                    deadline += TREFI_SECONDS
                    if deadline > self.env.now:
                        break
            finally:
                self._engine.release()

    @property
    def capacity_bytes(self) -> int:
        """Address space behind this channel (no crossbar)."""
        return self.spec.channel_capacity_bytes

    def transfer(self, n_bytes: int, *, is_write: bool = False) -> Event:
        """Move *n_bytes* through the channel; yields when complete.

        Implemented as a callback chain rather than a spawned process:
        a request is the hottest operation in the simulator, and the
        chain needs two heap events (grant, data occupancy) instead of
        the four a generator process would cost.
        """
        if n_bytes <= 0:
            raise MemoryModelError(f"n_bytes must be positive, got {n_bytes}")
        done = Event(self.env)
        granted_at = 0.0

        def on_done(_event: Event) -> None:
            # Grant the oldest queued waiter before signalling
            # completion, so a queued request beats one issued in
            # reaction to this transfer finishing.
            self._engine.release()
            if is_write:
                self.bytes_written += n_bytes
            else:
                self.bytes_read += n_bytes
            if self._m_requests is not None:
                self._m_requests.add(1)
                (self._m_bytes_written if is_write else self._m_bytes_read).add(n_bytes)
                self._m_busy.add(
                    self.request_overhead + n_bytes / self.effective_bandwidth
                )
                self._m_queue.update(self._engine.queue_length, self.env.now)
            if self.tracer is not None:
                self.tracer.record(
                    f"hbm ch{self.index}",
                    "wr" if is_write else "rd",
                    granted_at,
                    self.env.now,
                )
            done.succeed(None)

        def on_grant(_event: Event) -> None:
            # Fixed command/activation overhead, then data occupancy.
            nonlocal granted_at
            granted_at = self.env.now
            busy = self.env.timeout(
                self.request_overhead + n_bytes / self.effective_bandwidth
            )
            # Direct append (not add_callback) keeps the timeout
            # poolable: nothing retains it past this callback.
            busy.callbacks.append(on_done)

        grant = self._engine.request()
        if self._m_queue is not None:
            self._m_queue.update(self._engine.queue_length, self.env.now)
        if grant.triggered:
            # Uncontended: the engine is ours already; schedule the data
            # phase now instead of waiting for the grant event's heap hop
            # (the absolute completion time is identical either way).
            on_grant(grant)
        else:
            grant.callbacks.append(on_grant)
        return done

    def account_fast_forward(
        self, n_reads: int, n_writes: int, bytes_read: int, bytes_written: int
    ) -> None:
        """Fold a fast-forwarded job's traffic into the channel counters.

        The steady-state fast path collapses a whole job into one
        timeout, so its requests never pass :meth:`transfer`; the core
        reports them here analytically.  Busy time is exact: every
        request costs its fixed overhead plus its data occupancy, so
        the sum telescopes to the expression below.
        """
        self.bytes_read += bytes_read
        self.bytes_written += bytes_written
        if self._m_requests is not None:
            self._m_requests.add(n_reads + n_writes)
            self._m_bytes_read.add(bytes_read)
            self._m_bytes_written.add(bytes_written)
            self._m_busy.add(
                (n_reads + n_writes) * self.request_overhead
                + (bytes_read + bytes_written) / self.effective_bandwidth
            )


class HBMSubsystem:
    """All pseudo-channels of one device, with optional crossbar.

    Without the crossbar, channel *i* can only reach its own address
    slice and channels are fully independent.  With the crossbar, any
    port reaches any address at extra latency, and all foreign-slice
    traffic shares the switch bandwidth.
    """

    def __init__(
        self,
        env: Engine,
        spec: HBMSpec = HBM_XUPVVH,
        *,
        crossbar: bool = False,
        metrics=None,
    ):
        self.env = env
        self.spec = spec
        self.crossbar = crossbar
        extra = CROSSBAR_LATENCY_SECONDS if crossbar else 0.0
        self.channels: List[HBMChannel] = [
            HBMChannel(env, index, spec, extra_request_latency=extra, metrics=metrics)
            for index in range(spec.n_channels)
        ]
        self._switch: Optional[TokenBucket] = (
            TokenBucket(env, CROSSBAR_SHARED_BANDWIDTH, 4096.0, name="hbm-xbar")
            if crossbar
            else None
        )

    def channel_for_address(self, address: int) -> int:
        """Channel index owning *address* (linear slicing)."""
        if not 0 <= address < self.spec.capacity_bytes:
            raise MemoryModelError(
                f"address {address:#x} outside HBM capacity "
                f"{self.spec.capacity_bytes:#x}"
            )
        return address // self.spec.channel_capacity_bytes

    def transfer(
        self, port: int, address: int, n_bytes: int, *, is_write: bool = False
    ) -> Event:
        """Issue a transfer from AXI *port* to *address*.

        Without the crossbar, crossing a channel boundary is a
        configuration error (the paper's architecture never does it:
        one channel per accelerator, managed by the runtime's memory
        manager).
        """
        if not 0 <= port < self.spec.n_channels:
            raise MemoryModelError(f"port {port} out of range")
        owner = self.channel_for_address(address)
        end_owner = self.channel_for_address(address + n_bytes - 1)
        if owner != end_owner:
            raise MemoryModelError(
                f"transfer {address:#x}+{n_bytes} spans channels {owner} and {end_owner}"
            )
        if owner != port and not self.crossbar:
            raise MemoryModelError(
                f"port {port} cannot reach channel {owner} without the crossbar"
            )
        if owner != port and self._switch is not None:
            done = Event(self.env)
            self.env.process(self._via_switch(owner, n_bytes, is_write, done))
            return done
        return self.channels[owner].transfer(n_bytes, is_write=is_write)

    def _via_switch(self, owner: int, n_bytes: int, is_write: bool, done: Event):
        yield self._switch.consume(float(n_bytes))
        yield self.channels[owner].transfer(n_bytes, is_write=is_write)
        done.succeed(None)
