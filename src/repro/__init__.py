"""repro — HBM-accelerated Sum-Product Network inference, reproduced.

A full-system Python reproduction of *"Exploiting High-Bandwidth
Memory for FPGA-Acceleration of Inference on Sum-Product Networks"*
(Weber, Wirth, Sommer, Koch — IPDPS-W 2022): the SPN model class and
toolflow, the hardware datapath compiler with per-format operator
models, burst-granular HBM/DDR/PCIe simulation substrates, the
multi-core accelerator and its multi-threaded host runtime, the
baseline platform models, and an experiment harness regenerating every
table and figure of the paper's evaluation.

Quick start::

    import numpy as np
    from repro import (
        nips_benchmark, compile_core, compose_design,
        XUPVVH_HBM_PLATFORM, SimulatedDevice, InferenceRuntime,
    )

    bench = nips_benchmark("NIPS10")
    core = compile_core(bench.spn, "cfp")
    design = compose_design(core, 4, XUPVVH_HBM_PLATFORM)
    device = SimulatedDevice(design)
    runtime = InferenceRuntime(device)
    data = np.random.default_rng(0).integers(0, 30, (10_000, 10))
    log_likelihoods, stats = runtime.run(data.astype(np.uint8))

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for
paper-vs-measured results.
"""

__version__ = "1.0.0"

# -- SPN core ---------------------------------------------------------------
from repro.spn import (
    SPN,
    CategoricalLeaf,
    GaussianLeaf,
    HistogramLeaf,
    LearnSPNConfig,
    NIPS_BENCHMARKS,
    ProductNode,
    SumNode,
    compute_stats,
    dumps,
    learn_spn,
    likelihood,
    loads,
    compile_plan,
    get_plan,
    log_likelihood,
    marginal_log_likelihood,
    nips_benchmark,
    nips_spn,
    random_spn,
    set_inference_backend,
)

# -- arithmetic formats -------------------------------------------------------
from repro.arith import (
    FLOAT32,
    FLOAT64,
    PAPER_CFP,
    PAPER_LNS,
    CustomFloat,
    LogNumberSystem,
    Posit,
    Rounding,
    compare_formats_on_spn,
    evaluate_spn_in_format,
)

# -- hardware compiler ----------------------------------------------------------
from repro.compiler import (
    AcceleratorDesign,
    CoreSpec,
    ResourceVector,
    build_datapath,
    compile_core,
    compose_design,
    schedule_datapath,
)

# -- platforms & memory -----------------------------------------------------------
from repro.platforms import (
    AWS_F1_PLATFORM,
    AWS_F1_SYSTEM,
    HBM_XUPVVH,
    PCIE_GEN3_X16,
    STREAMING_100G,
    TESLA_V100,
    XEON_E5_2680_V3,
    XUPVVH_HBM_PLATFORM,
)
from repro.mem import channel_throughput, run_channel_benchmark

# -- system simulation ---------------------------------------------------------------
from repro.host import (
    InferenceJobConfig,
    InferenceRuntime,
    RunStatistics,
    SimulatedDevice,
)

# -- baselines & workloads ---------------------------------------------------------
from repro.baselines import (
    ParallelPlanExecutor,
    run_cpu_baseline,
    run_sharded_cpu_baseline,
    run_threaded_cpu_baseline,
)
from repro.workloads import NipsCorpusConfig, synthesize_nips_corpus

__all__ = [
    "__version__",
    "SPN",
    "SumNode",
    "ProductNode",
    "HistogramLeaf",
    "GaussianLeaf",
    "CategoricalLeaf",
    "log_likelihood",
    "compile_plan",
    "get_plan",
    "set_inference_backend",
    "likelihood",
    "marginal_log_likelihood",
    "learn_spn",
    "LearnSPNConfig",
    "random_spn",
    "dumps",
    "loads",
    "compute_stats",
    "NIPS_BENCHMARKS",
    "nips_spn",
    "nips_benchmark",
    "CustomFloat",
    "Rounding",
    "LogNumberSystem",
    "Posit",
    "FLOAT32",
    "FLOAT64",
    "PAPER_CFP",
    "PAPER_LNS",
    "evaluate_spn_in_format",
    "compare_formats_on_spn",
    "build_datapath",
    "schedule_datapath",
    "compile_core",
    "compose_design",
    "CoreSpec",
    "AcceleratorDesign",
    "ResourceVector",
    "XUPVVH_HBM_PLATFORM",
    "AWS_F1_PLATFORM",
    "HBM_XUPVVH",
    "PCIE_GEN3_X16",
    "XEON_E5_2680_V3",
    "TESLA_V100",
    "AWS_F1_SYSTEM",
    "STREAMING_100G",
    "channel_throughput",
    "run_channel_benchmark",
    "SimulatedDevice",
    "InferenceRuntime",
    "InferenceJobConfig",
    "RunStatistics",
    "run_cpu_baseline",
    "run_threaded_cpu_baseline",
    "run_sharded_cpu_baseline",
    "ParallelPlanExecutor",
    "NipsCorpusConfig",
    "synthesize_nips_corpus",
]
