"""Performance model of the GPU baseline (Nvidia Tesla V100).

Fig. 6 shows the V100 (running TensorFlow-based SPFlow inference, per
[8]) losing to every other platform.  The reason the paper gives is
the low arithmetic intensity of SPN inference: every node value is one
cheap op on data that must stream through device memory, so the GPU is
memory/launch-bound, not compute-bound.

The model: per-sample time is an affine function of the datapath
operation mix::

    seconds_per_sample = t0 + t_lookup * lookup_ops

Lookups (gather-heavy histogram indexing) dominate; the arithmetic
tree folds into the same memory sweeps.  Constants calibrated by NNLS
against the Fig. 6 V100 series reconstructed from the paper's quoted
bounds (max speedup 8.4x on NIPS80, geometric mean 6.9x across the
five benchmarks); the fit reproduces the series within ~10% and the
resulting geomean within 3%.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.datapath import build_datapath
from repro.compiler.operators import HWOp
from repro.spn.graph import SPN

__all__ = ["GpuModel", "TESLA_V100"]


@dataclass(frozen=True)
class GpuModel:
    """An analytic GPU inference-throughput model (batch regime)."""

    name: str
    #: Per-sample fixed cost in seconds (kernel scheduling amortised
    #: over large batches plus per-sample bandwidth floor).
    base_seconds_per_sample: float
    #: Additional seconds per histogram lookup in the datapath.
    seconds_per_lookup: float

    def seconds_per_sample(self, n_lookups: int) -> float:
        """Modelled per-sample time for *n_lookups* table lookups."""
        return self.base_seconds_per_sample + self.seconds_per_lookup * n_lookups

    def samples_per_second(self, spn: SPN) -> float:
        """Peak batch-inference throughput on *spn*."""
        datapath = build_datapath(spn)
        n_lookups = datapath.count(HWOp.LOOKUP)
        return 1.0 / self.seconds_per_sample(n_lookups)


#: Calibrated against the reconstructed Fig. 6 V100 series (see
#: module docstring).
TESLA_V100 = GpuModel(
    name="tesla-v100",
    base_seconds_per_sample=2.093e-9,
    seconds_per_lookup=0.1246e-9,
)
