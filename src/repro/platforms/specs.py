"""Device, memory-system and interconnect specifications.

All constants here are either quoted directly from the paper / vendor
documentation (device budgets, HBM channel counts and clocks, PCIe
limits) or calibrated once against the paper's anchor measurements and
frozen (noted per constant; DESIGN.md §5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.compiler.design import PlatformResources
from repro.compiler.resources import DeviceResources, ResourceVector
from repro.units import GB, GIB, MHZ, MIB

__all__ = [
    "VU37P",
    "VU9P_F1",
    "XUPVVH_HBM_PLATFORM",
    "AWS_F1_PLATFORM",
    "HBMSpec",
    "HBM_XUPVVH",
    "PCIeSpec",
    "PCIE_GEN3_X16",
    "PCIE_GEN4_X16",
    "PCIE_GEN5_X16",
    "PCIE_GEN6_X16",
    "PCIE_GENERATIONS",
]

# ---------------------------------------------------------------------------
# devices — budgets from Table I's "Available" row
# ---------------------------------------------------------------------------

#: Xilinx Virtex UltraScale+ VU37P (Bittware XUP-VVH), HBM-capable.
VU37P = DeviceResources(
    name="xcvu37p",
    budget=ResourceVector(
        luts_logic=1_304_000,
        luts_mem=601_000,
        registers=2_607_000,
        bram=2016,
        dsp=9024,
    ),
)

#: Xilinx Virtex UltraScale+ VU9P as exposed on AWS F1 (no HBM).
VU9P_F1 = DeviceResources(
    name="xcvu9p-f1",
    budget=ResourceVector(
        luts_logic=1_182_000,
        luts_mem=592_000,
        registers=2_364_000,
        bram=2160,
        dsp=6840,
    ),
)

# ---------------------------------------------------------------------------
# platform resource compositions (calibrated against Table I)
# ---------------------------------------------------------------------------

#: This work's platform: TaPaSCo infrastructure, QDMA-class PCIe DMA,
#: per-core AXI SmartConnect (width/clock/protocol conversion) and
#: register slices; HBM controllers are hard IP (zero soft logic).
#: Base/infra constants calibrated so 4-core NIPS10..NIPS40 designs
#: reproduce Table I's "New" columns.
XUPVVH_HBM_PLATFORM = PlatformResources(
    device=VU37P,
    base_infrastructure=ResourceVector(
        luts_logic=90_000,
        luts_mem=8_000,
        registers=123_000,
        bram=38,
        dsp=0,
    ),
    per_core_memory_path=ResourceVector(
        luts_logic=3_000,
        luts_mem=500,
        registers=6_000,
        bram=0,
        dsp=0,
    ),
    memory_controller=ResourceVector(),  # HBM controllers are hardened
    soft_memory_controllers=False,
    target_clock_mhz=225.0,
)

#: Prior work's AWS F1 platform [8]: mandatory shell plus soft DDR4
#: controllers in the custom logic region.  Calibrated against Table
#: I's "[8]" columns; the shell + controllers dominate the base cost
#: (the paper: "all designs targeting the F1 instances have to include
#: a shell for the host interface, which also incurs a resource
#: overhead").
AWS_F1_PLATFORM = PlatformResources(
    device=VU9P_F1,
    base_infrastructure=ResourceVector(
        luts_logic=95_000,
        luts_mem=5_000,
        registers=128_000,
        bram=180,
        dsp=0,
    ),
    per_core_memory_path=ResourceVector(
        luts_logic=2_500,
        luts_mem=400,
        registers=5_000,
        bram=0,
        dsp=0,
    ),
    memory_controller=ResourceVector(
        luts_logic=28_000,
        luts_mem=1_500,
        registers=30_000,
        bram=25,
        dsp=0,
    ),
    soft_memory_controllers=True,
    target_clock_mhz=250.0,
)

#: Prior work's per-core infrastructure differs from this work's: its
#: buffers used BRAM more heavily and LUT-memory less (Table I shows
#: the old design with *fewer* LUTs-as-memory but far more BRAM).
F1_CORE_INFRASTRUCTURE = ResourceVector(
    luts_logic=9_000,
    luts_mem=3_000,
    registers=22_000,
    bram=24,
    dsp=0,
)


# ---------------------------------------------------------------------------
# HBM
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class HBMSpec:
    """Geometry and speed of an FPGA HBM subsystem (§II-B)."""

    #: Independent 256-bit pseudo-channels exposed as AXI3 ports.
    n_channels: int
    #: Stacks (each holding half the channels).
    n_stacks: int
    #: Capacity in bytes.
    capacity_bytes: int
    #: HBM-side AXI clock in Hz (the 450 MHz the paper quotes).
    channel_clock_hz: float
    #: Channel data width in bits.
    channel_width_bits: int
    #: Vendor-quoted aggregate peak bandwidth in bytes/s (460 GB/s).
    theoretical_bandwidth: float
    #: Measured practical per-channel read+write ceiling, bytes/s
    #: (Fig. 2 plateau, ~12 GiB/s) — calibration anchor.
    practical_channel_bandwidth: float
    #: Request size where throughput saturates (Fig. 2: 1 MiB).
    saturating_request_bytes: int

    @property
    def channel_capacity_bytes(self) -> int:
        """Address space behind one pseudo-channel (no crossbar)."""
        return self.capacity_bytes // self.n_channels

    @property
    def practical_total_bandwidth(self) -> float:
        """All channels at the practical ceiling (the paper's 384 GiB/s)."""
        return self.n_channels * self.practical_channel_bandwidth


#: The XUP-VVH's 8 GiB HBM2 subsystem.
HBM_XUPVVH = HBMSpec(
    n_channels=32,
    n_stacks=2,
    capacity_bytes=8 * GIB,
    channel_clock_hz=450 * MHZ,
    channel_width_bits=256,
    theoretical_bandwidth=460 * GB,
    practical_channel_bandwidth=12 * GIB,
    saturating_request_bytes=1 * MIB,
)


# ---------------------------------------------------------------------------
# PCIe / DMA
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PCIeSpec:
    """A PCIe interface generation with its DMA-practical limits.

    The shared DMA engine is modelled as a *weighted* capacity: device-
    to-host descriptors partially overlap with host-to-device traffic,
    so the sustained constraint is ``h2d_rate + d2h_weight * d2h_rate
    <= weighted_capacity``.  The Gen3 numbers are calibrated from the
    paper's two independent anchors (§V-B: NIPS10 plateau 614.65 M
    samples/s = 5.72 GiB/s out + 4.58 GiB/s back; §V-C/V-D: NIPS80
    116.57 M samples/s = 8.68 GiB/s out + 0.87 GiB/s back), which pin
    d2h_weight = 0.8 and weighted_capacity = 9.38 GiB/s.  Later
    generations scale by the paper's ~2x-per-generation projection.
    """

    name: str
    #: Theoretical one-directional bandwidth in bytes/s (payload rate,
    #: the paper's 15.754 GB/s for Gen3 x16).
    theoretical_unidirectional: float
    #: Practical single-direction DMA throughput in bytes/s (the paper
    #: quotes ~100 Gb/s = 11.64 GiB/s for QDMA/Corundum-class engines).
    practical_unidirectional: float
    #: Sustained weighted capacity of the shared engine, bytes/s.
    weighted_capacity: float
    #: Relative engine cost of device-to-host bytes (see class doc).
    d2h_weight: float
    #: Fixed per-DMA-transfer setup latency in seconds (descriptor +
    #: doorbell + completion handling).
    transfer_setup_latency: float

    def weighted_bytes(self, h2d_bytes: float, d2h_bytes: float) -> float:
        """Engine-time-equivalent bytes of a transfer pair."""
        return h2d_bytes + self.d2h_weight * d2h_bytes

    def bound_samples_per_second(self, input_bytes: int, result_bytes: int) -> float:
        """PCIe-imposed ceiling on end-to-end samples/s."""
        per_sample = self.weighted_bytes(input_bytes, result_bytes)
        return self.weighted_capacity / per_sample


PCIE_GEN3_X16 = PCIeSpec(
    name="pcie3-x16",
    theoretical_unidirectional=15.754 * GB,
    practical_unidirectional=11.64 * GIB,
    weighted_capacity=9.38 * GIB,
    d2h_weight=0.8,
    transfer_setup_latency=30e-6,
)

PCIE_GEN4_X16 = PCIeSpec(
    name="pcie4-x16",
    theoretical_unidirectional=31.508 * GB,
    practical_unidirectional=23.0 * GIB,
    weighted_capacity=2 * 9.38 * GIB,
    d2h_weight=0.8,
    transfer_setup_latency=25e-6,
)

PCIE_GEN5_X16 = PCIeSpec(
    name="pcie5-x16",
    theoretical_unidirectional=63.015 * GB,
    practical_unidirectional=46.0 * GIB,
    weighted_capacity=4 * 9.38 * GIB,
    d2h_weight=0.8,
    transfer_setup_latency=20e-6,
)

PCIE_GEN6_X16 = PCIeSpec(
    name="pcie6-x16",
    theoretical_unidirectional=126.031 * GB,
    practical_unidirectional=92.0 * GIB,
    weighted_capacity=8 * 9.38 * GIB,
    d2h_weight=0.8,
    transfer_setup_latency=15e-6,
)

#: Generations in the order of the paper's §V-C outlook.
PCIE_GENERATIONS: Dict[str, PCIeSpec] = {
    spec.name: spec
    for spec in (PCIE_GEN3_X16, PCIE_GEN4_X16, PCIE_GEN5_X16, PCIE_GEN6_X16)
}
