"""Model of the 100G in-network streaming architecture [7].

§V-D compares the HBM architecture's NIPS80 throughput against the
group's streaming design, which feeds replicated SPN cores directly
from a 100G network MAC with no memory accesses at all.  Its rate is
simply the network line rate divided by the per-sample wire bytes —
the paper derives 140,748,580 samples/s for NIPS80 from the measured
99.078 Gbit/s MAC throughput and 88 bytes per sample.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError

__all__ = ["StreamingModel", "STREAMING_100G"]


@dataclass(frozen=True)
class StreamingModel:
    """Line-rate streaming inference (network-attached cores)."""

    name: str
    #: Sustained MAC throughput in bits/s (measured in [7]).
    line_rate_bits: float

    def samples_per_second(self, bytes_per_sample: int) -> float:
        """Line-rate-bound samples/s for a given wire format."""
        if bytes_per_sample < 1:
            raise ReproError(
                f"bytes_per_sample must be >= 1, got {bytes_per_sample}"
            )
        return self.line_rate_bits / (8.0 * bytes_per_sample)


#: The measured 99.078 Gbit/s of [7].
STREAMING_100G = StreamingModel(name="streaming-100g", line_rate_bits=99.078e9)
