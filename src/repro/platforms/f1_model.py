"""System model of the prior-work AWS F1 implementation [8].

The F1 system differs from this work's HBM system in exactly the ways
the paper's §III-A motivation lists:

* **Soft DDR controllers** consume logic and degrade the clock, so
  core count trades off against controller count.  For NIPS80 only two
  accelerators fit (§V-D), versus eight on the HBM platform.
* **Per-queue DMA limits**: the F1 shell's XDMA engine exposes four
  queues of ~3 GiB/s each, so a single core's transfer stream is
  capped well below the link rate.
* **Aggregate PCIe**: the shell sustains a lower weighted capacity
  than the QDMA-class engine of the XUP-VVH host (calibrated 7.55
  GiB/s vs 9.38 GiB/s).

End-to-end throughput is the minimum of the aggregate-PCIe bound, the
sum of per-core DMA-queue bounds, and the sum of per-core compute
rates — the same structure as the HBM runtime model, with F1
constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import ReproError
from repro.units import GIB

__all__ = ["F1SystemModel", "AWS_F1_SYSTEM"]


@dataclass(frozen=True)
class F1SystemModel:
    """Analytic end-to-end model of the [8] F1 system."""

    name: str
    #: Accelerator clock in Hz after place-and-route.
    clock_hz: float
    #: Weighted aggregate DMA capacity in bytes/s (h2d + w*d2h).
    weighted_pcie_capacity: float
    #: Relative engine cost of device-to-host bytes.
    d2h_weight: float
    #: Per-DMA-queue (hence per-core) bandwidth in bytes/s.
    per_queue_bandwidth: float
    #: Cores that fit per benchmark (resource/controller trade-off,
    #: Table I context and §V-D: NIPS80 fits only two cores).
    cores_by_benchmark: Dict[str, int]

    def n_cores(self, benchmark: str) -> int:
        """Deployable core count for *benchmark*."""
        try:
            return self.cores_by_benchmark[benchmark]
        except KeyError:
            raise ReproError(
                f"no F1 core count recorded for benchmark {benchmark!r}"
            )

    def samples_per_second(
        self, benchmark: str, input_bytes: int, result_bytes: int
    ) -> float:
        """End-to-end samples/s including host transfers (Fig. 6)."""
        cores = self.n_cores(benchmark)
        weighted_per_sample = input_bytes + self.d2h_weight * result_bytes
        pcie_bound = self.weighted_pcie_capacity / weighted_per_sample
        queue_bound = cores * self.per_queue_bandwidth / input_bytes
        compute_bound = cores * self.clock_hz  # II=1 pipelines
        return min(pcie_bound, queue_bound, compute_bound)


#: Calibrated constants: the 7.55 GiB/s aggregate reproduces the
#: paper's ~1.24-1.25x HBM-vs-F1 speedups on NIPS10..NIPS40; the 3
#: GiB/s queue limit with two cores reproduces the 1.5x NIPS80 gap.
AWS_F1_SYSTEM = F1SystemModel(
    name="aws-f1",
    clock_hz=250e6,
    weighted_pcie_capacity=7.55 * GIB,
    d2h_weight=0.8,
    per_queue_bandwidth=3.0 * GIB,
    cores_by_benchmark={
        "NIPS10": 4,
        "NIPS20": 4,
        "NIPS30": 4,
        "NIPS40": 4,
        "NIPS80": 2,
    },
)
