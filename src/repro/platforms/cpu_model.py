"""Performance model of the CPU baseline (12-core Xeon E5-2680 v3).

The prior work [8] measured SPN inference on a 12-core Haswell Xeon
with an optimised vectorised code path; Fig. 6 carries those numbers
forward.  We model per-sample cost as a power law in the datapath
operation count::

    cycles_per_sample = k * (arith_ops + lookup_ops) ** p

The super-linear exponent captures the measured behaviour that large
SPNs lose vector/cache efficiency (intermediate buffers spill outward
through the cache hierarchy), which is exactly why the CPU wins the
tiny NIPS10 benchmark but falls behind from NIPS20 on.

Calibration (DESIGN.md §5): *k* and *p* are pinned by the paper's two
quoted CPU speedups — the HBM design beats the CPU by 1.21x on NIPS20
and by 2.46x on NIPS80 (§V-D) — evaluated against this repository's
benchmark structures.  Everything else (the NIPS10 crossover, the
remaining ratios, the geometric mean) is *predicted*, not fitted.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.datapath import build_datapath
from repro.compiler.operators import HWOp
from repro.errors import ReproError
from repro.spn.graph import SPN

__all__ = ["CpuModel", "XEON_E5_2680_V3"]


@dataclass(frozen=True)
class CpuModel:
    """An analytic multicore-CPU inference-throughput model."""

    name: str
    n_cores: int
    frequency_hz: float
    #: Power-law cost constants (see module docstring).
    cycles_coefficient: float
    cycles_exponent: float

    def cycles_per_sample(self, n_ops: int) -> float:
        """Modelled per-sample cost in cycles for *n_ops* datapath ops."""
        if n_ops < 1:
            raise ReproError(f"n_ops must be >= 1, got {n_ops}")
        return self.cycles_coefficient * float(n_ops) ** self.cycles_exponent

    def samples_per_second(self, spn: SPN) -> float:
        """Peak batch-inference throughput on *spn* (all cores busy)."""
        datapath = build_datapath(spn)
        n_ops = (
            datapath.count(HWOp.ADD)
            + datapath.count(HWOp.MUL)
            + datapath.count(HWOp.CONST_MUL)
            + datapath.count(HWOp.LOOKUP)
        )
        total_cycles_per_second = self.n_cores * self.frequency_hz
        return total_cycles_per_second / self.cycles_per_sample(n_ops)


#: The baseline of [8]/Fig. 6.  k and p pinned by the NIPS20 (1.21x)
#: and NIPS80 (2.46x) speedup anchors; see module docstring.
XEON_E5_2680_V3 = CpuModel(
    name="xeon-e5-2680v3",
    n_cores=12,
    frequency_hz=2.5e9,
    cycles_coefficient=0.0676,
    cycles_exponent=1.294,
)
