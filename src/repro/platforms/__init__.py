"""Target-platform models.

* :mod:`repro.platforms.specs` — device resource budgets (VU37P on the
  Bittware XUP-VVH, VU9P on AWS F1), platform resource compositions,
  memory-system and PCIe constants.
* :mod:`repro.platforms.cpu_model` — the 12-core Xeon E5-2680 v3
  baseline of [8].
* :mod:`repro.platforms.gpu_model` — the Nvidia Tesla V100 baseline.
* :mod:`repro.platforms.f1_model` — the prior-work AWS F1 FPGA system
  (DDR, soft controllers, per-benchmark core-count constraints).
* :mod:`repro.platforms.streaming_model` — the 100G in-network
  streaming architecture of [7] used for the §V-D perspective.
"""

from repro.platforms.specs import (
    VU37P,
    VU9P_F1,
    XUPVVH_HBM_PLATFORM,
    AWS_F1_PLATFORM,
    HBMSpec,
    PCIeSpec,
    HBM_XUPVVH,
    PCIE_GEN3_X16,
    PCIE_GENERATIONS,
)
from repro.platforms.cpu_model import CpuModel, XEON_E5_2680_V3
from repro.platforms.gpu_model import GpuModel, TESLA_V100
from repro.platforms.f1_model import F1SystemModel, AWS_F1_SYSTEM
from repro.platforms.streaming_model import StreamingModel, STREAMING_100G

__all__ = [
    "VU37P",
    "VU9P_F1",
    "XUPVVH_HBM_PLATFORM",
    "AWS_F1_PLATFORM",
    "HBMSpec",
    "PCIeSpec",
    "HBM_XUPVVH",
    "PCIE_GEN3_X16",
    "PCIE_GENERATIONS",
    "CpuModel",
    "XEON_E5_2680_V3",
    "GpuModel",
    "TESLA_V100",
    "F1SystemModel",
    "AWS_F1_SYSTEM",
    "StreamingModel",
    "STREAMING_100G",
]
