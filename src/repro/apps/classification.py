"""Generative SPN classification with calibrated uncertainty.

Implements the classifier pattern the paper's background highlights
(§II-A, citing Peharz et al.): one class-conditional SPN per label,
combined with class priors by Bayes' rule.  Because each SPN computes
a *real* joint likelihood, the classifier exposes two quantities a
discriminative model cannot:

* calibrated posteriors ``P(class | x)`` from the per-class joints;
* an **out-of-domain score**: the marginal data likelihood ``P(x)``.
  Inputs unlike anything seen in training get a low marginal — the
  exact "SPN is uncertain about the resulting classification"
  behaviour the paper describes for out-of-domain MNIST images.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ReproError
from repro.spn.graph import SPN
from repro.spn.inference import log_likelihood
from repro.spn.learning import LearnSPNConfig, learn_spn

__all__ = ["SPNClassifier"]


def _logsumexp(values: np.ndarray, axis: int) -> np.ndarray:
    peak = np.max(values, axis=axis, keepdims=True)
    out = peak.squeeze(axis) + np.log(
        np.sum(np.exp(values - peak), axis=axis)
    )
    return np.where(np.isneginf(peak.squeeze(axis)), -np.inf, out)


@dataclass
class SPNClassifier:
    """A Bayes classifier over class-conditional SPNs."""

    class_spns: Dict[int, SPN]
    log_priors: Dict[int, float]

    # -- construction --------------------------------------------------------
    @classmethod
    def fit(
        cls,
        data: np.ndarray,
        labels: np.ndarray,
        *,
        config: Optional[LearnSPNConfig] = None,
        seed: Optional[int] = None,
    ) -> "SPNClassifier":
        """Learn one SPN per class plus empirical class priors."""
        data = np.asarray(data, dtype=np.float64)
        labels = np.asarray(labels)
        if data.ndim != 2 or len(data) != len(labels):
            raise ReproError(
                f"need matching (rows, vars) data and labels, got "
                f"{data.shape} / {labels.shape}"
            )
        classes = np.unique(labels)
        if len(classes) < 2:
            raise ReproError("classification needs at least two classes")
        spns: Dict[int, SPN] = {}
        priors: Dict[int, float] = {}
        for offset, label in enumerate(classes):
            rows = data[labels == label]
            if len(rows) == 0:  # pragma: no cover - unique() guarantees rows
                raise ReproError(f"class {label} has no training rows")
            spns[int(label)] = learn_spn(
                rows,
                config=config,
                seed=None if seed is None else seed + offset,
                name=f"class-{label}",
            )
            priors[int(label)] = float(np.log(len(rows) / len(data)))
        return cls(class_spns=spns, log_priors=priors)

    @property
    def classes(self) -> List[int]:
        """Sorted class labels."""
        return sorted(self.class_spns)

    # -- inference -------------------------------------------------------------
    def joint_log_likelihoods(self, data: np.ndarray) -> np.ndarray:
        """``log P(x, class)`` matrix of shape (batch, n_classes)."""
        data = np.asarray(data, dtype=np.float64)
        columns = []
        for label in self.classes:
            columns.append(
                log_likelihood(self.class_spns[label], data) + self.log_priors[label]
            )
        return np.stack(columns, axis=1)

    def predict_log_proba(self, data: np.ndarray) -> np.ndarray:
        """``log P(class | x)`` matrix (rows normalised)."""
        joint = self.joint_log_likelihoods(data)
        return joint - _logsumexp(joint, axis=1)[:, np.newaxis]

    def predict_proba(self, data: np.ndarray) -> np.ndarray:
        """``P(class | x)`` matrix."""
        return np.exp(self.predict_log_proba(data))

    def predict(self, data: np.ndarray) -> np.ndarray:
        """Most probable class label per row."""
        joint = self.joint_log_likelihoods(data)
        winners = np.argmax(joint, axis=1)
        labels = np.array(self.classes)
        return labels[winners]

    def marginal_log_likelihood(self, data: np.ndarray) -> np.ndarray:
        """``log P(x)`` — the out-of-domain score (higher = in-domain)."""
        return _logsumexp(self.joint_log_likelihoods(data), axis=1)

    def out_of_domain_mask(
        self, data: np.ndarray, *, threshold_quantile: float = 0.01,
        calibration: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Flag rows whose marginal likelihood falls below the
        *threshold_quantile* of the calibration set's marginals.

        *calibration* defaults to the scored data itself only when
        explicitly given; callers normally pass held-out training data.
        """
        if calibration is None:
            raise ReproError(
                "out_of_domain_mask needs a calibration set (e.g. training data)"
            )
        if not 0.0 < threshold_quantile < 1.0:
            raise ReproError(
                f"threshold_quantile must be in (0, 1), got {threshold_quantile}"
            )
        threshold = np.quantile(
            self.marginal_log_likelihood(calibration), threshold_quantile
        )
        return self.marginal_log_likelihood(data) < threshold

    def accuracy(self, data: np.ndarray, labels: np.ndarray) -> float:
        """Fraction of rows classified correctly."""
        return float(np.mean(self.predict(data) == np.asarray(labels)))
