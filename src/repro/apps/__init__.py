"""Application layers built on the SPN library.

The paper's introduction motivates SPNs with real-world deployments:
probabilistic classification that *knows when it does not know*
(Peharz et al.'s random-SPN classifiers, cited in §II-A) and
database cardinality estimation (DeepDB, §VI).  This package provides
the classification application; the cardinality use case is covered
by :mod:`repro.spn.queries` plus ``examples/cardinality_estimation.py``.
"""

from repro.apps.classification import SPNClassifier

__all__ = ["SPNClassifier"]
