"""Thread-safe per-HBM-block device memory management.

§IV-B: "TaPaSCo currently does not support to split the device address
space into distinct memory regions, so ... our SPN runtime implements
its own thread-safe device memory manager, which allows to manage the
distinct HBM memory blocks separately.  The device memory manager in
our runtime supports allocation and freeing of memory blocks in a
specific HBM block."

:class:`MemoryBlockAllocator` is a classic first-fit free-list
allocator with coalescing over one HBM block's address slice;
:class:`DeviceMemoryManager` holds one allocator per block.  Both are
safe for concurrent use from real Python threads (one lock per block,
so allocations in different HBM blocks never contend — mirroring the
independence of the blocks themselves).
"""

from __future__ import annotations

import threading
from typing import Dict, List, Tuple

from repro.errors import AllocationError
from repro.units import align_up

__all__ = ["MemoryBlockAllocator", "DeviceMemoryManager"]

#: Allocation granularity: AXI-friendly 4 KiB alignment.
ALLOCATION_ALIGNMENT = 4096


class MemoryBlockAllocator:
    """First-fit allocator with free-list coalescing for one region."""

    def __init__(
        self,
        base: int,
        capacity: int,
        alignment: int = ALLOCATION_ALIGNMENT,
        *,
        metrics=None,
        metrics_prefix: str = "mem.block",
    ):
        if capacity <= 0:
            raise AllocationError(f"capacity must be positive, got {capacity}")
        if base < 0:
            raise AllocationError(f"base must be >= 0, got {base}")
        if alignment <= 0:
            raise AllocationError(f"alignment must be positive, got {alignment}")
        self.base = base
        self.capacity = capacity
        self.alignment = alignment
        self._lock = threading.Lock()
        self._free: List[Tuple[int, int]] = [(base, capacity)]  # (addr, size)
        self._allocated: Dict[int, int] = {}
        # Metrics (optional, see repro.obs.metrics): alloc/free counts,
        # transient failures and the allocated-bytes high-water mark.
        if metrics is not None:
            self._m_allocs = metrics.counter(metrics_prefix + ".allocs")
            self._m_frees = metrics.counter(metrics_prefix + ".frees")
            self._m_failures = metrics.counter(metrics_prefix + ".alloc_failures")
            self._m_allocated = metrics.gauge(metrics_prefix + ".allocated_bytes")
        else:
            self._m_allocs = None
            self._m_frees = None
            self._m_failures = None
            self._m_allocated = None

    def alloc(self, n_bytes: int) -> int:
        """Allocate *n_bytes* (rounded up to the alignment); returns the
        device address.  Raises :class:`AllocationError` when no free
        range fits."""
        if n_bytes <= 0:
            raise AllocationError(f"allocation size must be positive, got {n_bytes}")
        size = align_up(n_bytes, self.alignment)
        with self._lock:
            for index, (addr, free_size) in enumerate(self._free):
                if free_size >= size:
                    remainder = free_size - size
                    if remainder:
                        self._free[index] = (addr + size, remainder)
                    else:
                        del self._free[index]
                    self._allocated[addr] = size
                    if self._m_allocs is not None:
                        self._m_allocs.add(1)
                        self._m_allocated.add(size)
                    return addr
            if self._m_failures is not None:
                self._m_failures.add(1)
            raise AllocationError(
                f"no free range of {size} bytes (largest free: "
                f"{max((s for _, s in self._free), default=0)})"
            )

    def free(self, address: int) -> None:
        """Release a previous allocation, coalescing neighbours."""
        with self._lock:
            size = self._allocated.pop(address, None)
            if size is None:
                raise AllocationError(f"free of unallocated address {address:#x}")
            if self._m_frees is not None:
                self._m_frees.add(1)
                self._m_allocated.add(-size)
            # Insert sorted and coalesce with neighbours.
            self._free.append((address, size))
            self._free.sort()
            merged: List[Tuple[int, int]] = []
            for addr, sz in self._free:
                if merged and merged[-1][0] + merged[-1][1] == addr:
                    merged[-1] = (merged[-1][0], merged[-1][1] + sz)
                else:
                    merged.append((addr, sz))
            self._free = merged

    @property
    def bytes_allocated(self) -> int:
        """Currently allocated bytes (after alignment rounding)."""
        with self._lock:
            return sum(self._allocated.values())

    @property
    def bytes_free(self) -> int:
        """Currently free bytes."""
        with self._lock:
            return sum(size for _, size in self._free)

    @property
    def largest_free(self) -> int:
        """Largest single free range (fragmentation indicator)."""
        with self._lock:
            return max((size for _, size in self._free), default=0)


class DeviceMemoryManager:
    """One allocator per HBM block, addressable by block index."""

    def __init__(self, n_blocks: int, block_capacity: int, *, metrics=None):
        if n_blocks <= 0:
            raise AllocationError(f"n_blocks must be positive, got {n_blocks}")
        self.n_blocks = n_blocks
        self.block_capacity = block_capacity
        self._allocators = [
            MemoryBlockAllocator(
                base=0,
                capacity=block_capacity,
                metrics=metrics,
                metrics_prefix=f"mem.block{index}",
            )
            for index in range(n_blocks)
        ]

    def allocator(self, block: int) -> MemoryBlockAllocator:
        """The allocator managing HBM *block*."""
        if not 0 <= block < self.n_blocks:
            raise AllocationError(f"block {block} out of range 0..{self.n_blocks - 1}")
        return self._allocators[block]

    def alloc(self, block: int, n_bytes: int) -> int:
        """Allocate in a specific HBM block (the §IV-B requirement)."""
        return self.allocator(block).alloc(n_bytes)

    def free(self, block: int, address: int) -> None:
        """Free an allocation in a specific HBM block."""
        self.allocator(block).free(address)
