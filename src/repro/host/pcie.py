"""The shared PCIe DMA engine model.

All host<->device traffic funnels through one DMA engine attached to
the PCIe endpoint.  Its sustained behaviour follows the weighted-
capacity model calibrated in :class:`repro.platforms.specs.PCIeSpec`:
host-to-device bytes cost 1.0, device-to-host bytes cost
``d2h_weight``, and the engine drains weighted bytes at
``weighted_capacity``.  Each transfer additionally pays a fixed setup
latency (descriptor ring, doorbell, completion interrupt).

The engine is the paper's measured bottleneck; every end-to-end
experiment exercises this model.
"""

from __future__ import annotations

from repro.errors import RuntimeConfigError
from repro.platforms.specs import PCIE_GEN3_X16, PCIeSpec
from repro.sim.engine import Engine, Event
from repro.sim.resource import TokenBucket

__all__ = ["DmaEngine"]


class DmaEngine:
    """Discrete-event model of the shared host DMA engine."""

    def __init__(self, env: Engine, spec: PCIeSpec = PCIE_GEN3_X16, *, metrics=None):
        self.env = env
        self.spec = spec
        # Weighted engine time is metered by a token bucket; the burst
        # is one maximum TLP-ish chunk so short transfers don't see
        # artificial smoothing.
        self._bucket = TokenBucket(
            env, rate=spec.weighted_capacity, burst=4096.0, name=f"dma-{spec.name}"
        )
        self.bytes_to_device = 0
        self.bytes_from_device = 0
        # Metrics (optional, see repro.obs.metrics): resolved once, one
        # is-None check per transfer when disabled.
        if metrics is not None:
            self._m_requests_h2d = metrics.counter("dma.requests_h2d")
            self._m_requests_d2h = metrics.counter("dma.requests_d2h")
            self._m_bytes_h2d = metrics.counter("dma.bytes_h2d")
            self._m_bytes_d2h = metrics.counter("dma.bytes_d2h")
            self._m_busy = metrics.counter("dma.busy_seconds")
        else:
            self._m_requests_h2d = None
            self._m_requests_d2h = None
            self._m_bytes_h2d = None
            self._m_bytes_d2h = None
            self._m_busy = None

    def copy_to_device(self, n_bytes: int) -> Event:
        """Host-to-device transfer; yields on completion."""
        return self._transfer(n_bytes, to_device=True)

    def copy_from_device(self, n_bytes: int) -> Event:
        """Device-to-host transfer; yields on completion."""
        return self._transfer(n_bytes, to_device=False)

    def _transfer(self, n_bytes: int, to_device: bool) -> Event:
        if n_bytes <= 0:
            raise RuntimeConfigError(f"transfer needs positive size, got {n_bytes}")
        done = Event(self.env)
        self.env.process(self._serve(n_bytes, to_device, done), name="dma-xfer")
        return done

    def _serve(self, n_bytes: int, to_device: bool, done: Event):
        yield self.env.timeout(self.spec.transfer_setup_latency)
        weight = 1.0 if to_device else self.spec.d2h_weight
        yield self._bucket.consume(n_bytes * weight)
        if to_device:
            self.bytes_to_device += n_bytes
        else:
            self.bytes_from_device += n_bytes
        if self._m_busy is not None:
            if to_device:
                self._m_requests_h2d.add(1)
                self._m_bytes_h2d.add(n_bytes)
            else:
                self._m_requests_d2h.add(1)
                self._m_bytes_d2h.add(n_bytes)
            # Engine occupancy: descriptor setup plus the weighted
            # drain time of this transfer's bytes.
            self._m_busy.add(
                self.spec.transfer_setup_latency
                + n_bytes * weight / self.spec.weighted_capacity
            )
        done.succeed(None)

    @property
    def total_weighted_bytes(self) -> float:
        """Engine-time-equivalent bytes moved so far."""
        return self.bytes_to_device + self.spec.d2h_weight * self.bytes_from_device
