"""Host-side system: PCIe DMA, device API, memory manager, runtime.

* :mod:`repro.host.pcie` — the shared PCIe DMA engine model (Gen3..6).
* :mod:`repro.host.memory_manager` — the thread-safe per-HBM-block
  device memory manager the paper's runtime implements because TaPaSCo
  cannot split the device address space (§IV-B).
* :mod:`repro.host.device` — a TaPaSCo-like device façade: PE
  enumeration, register access, DMA copies, job launch.
* :mod:`repro.host.runtime` — the multi-threaded software runtime:
  block-wise sub-jobs, N control threads per accelerator, overlap of
  transfers and compute (§IV-B).
"""

from repro.host.pcie import DmaEngine
from repro.host.memory_manager import DeviceMemoryManager, MemoryBlockAllocator
from repro.host.device import SimulatedDevice
from repro.host.f1_device import F1DmaEngine, F1SimulatedDevice
from repro.host.runtime import InferenceJobConfig, InferenceRuntime, RunStatistics

__all__ = [
    "DmaEngine",
    "DeviceMemoryManager",
    "MemoryBlockAllocator",
    "SimulatedDevice",
    "F1SimulatedDevice",
    "F1DmaEngine",
    "InferenceJobConfig",
    "InferenceRuntime",
    "RunStatistics",
]
