"""DES model of the prior-work AWS F1 device [8].

The analytic :class:`repro.platforms.f1_model.F1SystemModel` answers
"what does the F1 system sustain"; this class *simulates* it with the
same machinery as the HBM device, differing in exactly the three ways
the paper contrasts (§III-A):

* cores share **DDR channels** behind soft controllers (a controller
  may serve several cores) instead of owning an HBM pseudo-channel;
* host transfers run through the shell's **XDMA** engine: one ~3 GiB/s
  queue per core, all queues sharing a lower aggregate capacity;
* the composed design runs at the F1 platform's (congestion-degraded)
  clock with the double-precision datapath.

It speaks the same device protocol as
:class:`repro.host.device.SimulatedDevice`, so the unmodified
:class:`~repro.host.runtime.InferenceRuntime` drives it — the runtime
logic is platform-independent, as in the real TaPaSCo stack.
"""

from __future__ import annotations

from typing import List, Optional

from repro.accel.core import SPNAcceleratorCore
from repro.accel.memory_store import ChannelMemory
from repro.arith.base import NumberFormat
from repro.compiler.design import AcceleratorDesign
from repro.errors import RuntimeConfigError
from repro.host.memory_manager import DeviceMemoryManager
from repro.mem.ddr import DDR4_2400_SPEC, DDRChannel, DDRSpec
from repro.platforms.f1_model import AWS_F1_SYSTEM
from repro.sim.engine import Engine, Event
from repro.sim.resource import TokenBucket
from repro.units import GIB

__all__ = ["F1DmaEngine", "F1SimulatedDevice"]

#: DDR capacity behind one F1 channel.
F1_CHANNEL_CAPACITY = 16 * GIB


class F1DmaEngine:
    """The F1 shell's XDMA: per-queue limits under an aggregate cap."""

    def __init__(
        self,
        env: Engine,
        n_queues: int,
        *,
        per_queue_bandwidth: float = AWS_F1_SYSTEM.per_queue_bandwidth,
        aggregate_weighted: float = AWS_F1_SYSTEM.weighted_pcie_capacity,
        d2h_weight: float = AWS_F1_SYSTEM.d2h_weight,
        setup_latency: float = 30e-6,
    ):
        if n_queues < 1:
            raise RuntimeConfigError(f"n_queues must be >= 1, got {n_queues}")
        self.env = env
        self.d2h_weight = d2h_weight
        self.setup_latency = setup_latency
        self._queues = [
            TokenBucket(env, per_queue_bandwidth, 4096.0, name=f"xdma-q{i}")
            for i in range(n_queues)
        ]
        self._aggregate = TokenBucket(env, aggregate_weighted, 4096.0, name="xdma-agg")
        self.bytes_to_device = 0
        self.bytes_from_device = 0

    def transfer(self, queue: int, n_bytes: int, *, to_device: bool) -> Event:
        """Move *n_bytes* through *queue*; yields on completion."""
        if not 0 <= queue < len(self._queues):
            raise RuntimeConfigError(f"queue {queue} out of range")
        if n_bytes <= 0:
            raise RuntimeConfigError(f"transfer needs positive size, got {n_bytes}")
        done = Event(self.env)
        self.env.process(self._serve(queue, n_bytes, to_device, done), name="xdma")
        return done

    def _serve(self, queue: int, n_bytes: int, to_device: bool, done: Event):
        yield self.env.timeout(self.setup_latency)
        weight = 1.0 if to_device else self.d2h_weight
        # Both constraints bind: the queue's own rate and the shared
        # engine capacity (weighted).
        queue_done = self._queues[queue].consume(float(n_bytes))
        agg_done = self._aggregate.consume(n_bytes * weight)
        yield self.env.all_of([queue_done, agg_done])
        if to_device:
            self.bytes_to_device += n_bytes
        else:
            self.bytes_from_device += n_bytes
        done.succeed(None)


class F1SimulatedDevice:
    """The composed F1 card: cores + shared DDR + XDMA queues."""

    def __init__(
        self,
        design: AcceleratorDesign,
        *,
        n_memory_controllers: Optional[int] = None,
        ddr_spec: DDRSpec = DDR4_2400_SPEC,
        compute_format: Optional[NumberFormat] = None,
    ):
        n_controllers = (
            min(design.n_cores, 4)
            if n_memory_controllers is None
            else n_memory_controllers
        )
        if n_controllers < 1:
            raise RuntimeConfigError("F1 device needs at least one DDR controller")
        if design.n_cores < 1:
            raise RuntimeConfigError("F1 device needs at least one core")
        self.design = design
        self.env = Engine()
        self.n_controllers = n_controllers
        self.ddr_channels: List[DDRChannel] = [
            DDRChannel(self.env, index, ddr_spec) for index in range(n_controllers)
        ]
        self.dma = F1DmaEngine(self.env, n_queues=design.n_cores)
        self.memory_manager = DeviceMemoryManager(
            n_blocks=n_controllers,
            block_capacity=F1_CHANNEL_CAPACITY,
        )
        self.memories: List[ChannelMemory] = [
            ChannelMemory(F1_CHANNEL_CAPACITY) for _ in range(n_controllers)
        ]
        spn = design.core.spn
        self.cores: List[SPNAcceleratorCore] = [
            SPNAcceleratorCore(
                self.env,
                index,
                spn,
                design.core,
                self.ddr_channels[index % n_controllers],
                self.memories[index % n_controllers],
                clock_hz=design.clock_mhz * 1e6,
                compute_format=compute_format,
            )
            for index in range(design.n_cores)
        ]

    # -- device protocol (mirrors SimulatedDevice) -----------------------------
    @property
    def n_pes(self) -> int:
        """Number of processing elements."""
        return len(self.cores)

    def controller_of(self, pe: int) -> int:
        """DDR controller serving *pe*."""
        return pe % self.n_controllers

    def pe_configuration(self, pe: int) -> dict:
        """Query a PE's synthesis parameters."""
        return self._core(pe).read_configuration()

    def alloc(self, pe: int, n_bytes: int) -> int:
        """Allocate in the PE's controller region (shared by its peers)."""
        return self.memory_manager.alloc(self.controller_of(pe), n_bytes)

    def free(self, pe: int, address: int) -> None:
        """Free a controller-region allocation."""
        self.memory_manager.free(self.controller_of(pe), address)

    def copy_to_device(self, pe: int, address: int, payload: bytes) -> Event:
        """DMA *payload* to the PE's DDR region via its XDMA queue."""
        done = Event(self.env)
        self.env.process(self._h2d(pe, address, payload, done), name="f1-h2d")
        return done

    def _h2d(self, pe: int, address: int, payload: bytes, done: Event):
        yield self.dma.transfer(pe, len(payload), to_device=True)
        self.memories[self.controller_of(pe)].write(address, payload)
        done.succeed(None)

    def copy_from_device(self, pe: int, address: int, n_bytes: int) -> Event:
        """DMA out of the PE's DDR region via its XDMA queue."""
        done = Event(self.env)
        self.env.process(self._d2h(pe, address, n_bytes, done), name="f1-d2h")
        return done

    def _d2h(self, pe: int, address: int, n_bytes: int, done: Event):
        yield self.dma.transfer(pe, n_bytes, to_device=False)
        done.succeed(self.memories[self.controller_of(pe)].read(address, n_bytes))

    def dma_h2d_timed(self, pe: int, n_bytes: int) -> Event:
        """Timing-only host-to-device transfer."""
        return self.dma.transfer(pe, n_bytes, to_device=True)

    def dma_d2h_timed(self, pe: int, n_bytes: int) -> Event:
        """Timing-only device-to-host transfer."""
        return self.dma.transfer(pe, n_bytes, to_device=False)

    def launch(
        self,
        pe: int,
        input_addr: int,
        result_addr: int,
        n_samples: int,
        *,
        functional: bool = True,
    ) -> Event:
        """Start a job on *pe*."""
        return self._core(pe).start_job(
            input_addr, result_addr, n_samples, functional=functional
        )

    def _core(self, pe: int) -> SPNAcceleratorCore:
        if not 0 <= pe < len(self.cores):
            raise RuntimeConfigError(f"PE {pe} out of range 0..{len(self.cores) - 1}")
        return self.cores[pe]
