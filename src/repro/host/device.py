"""A TaPaSCo-like simulated device façade.

Bundles everything the runtime needs behind one object: the DES
engine, the HBM subsystem with per-channel functional backing stores,
N accelerator PEs (one HBM channel each, §IV-A), the shared DMA
engine, and the device memory manager.  The API mirrors the TaPaSCo
operations the paper's runtime uses: enumerate PEs, query their
configuration, allocate/copy device memory, launch jobs.
"""

from __future__ import annotations

from typing import List, Optional

from repro.accel.core import SPNAcceleratorCore
from repro.accel.memory_store import ChannelMemory
from repro.arith.base import NumberFormat
from repro.compiler.design import AcceleratorDesign
from repro.errors import RuntimeConfigError
from repro.host.memory_manager import DeviceMemoryManager
from repro.host.pcie import DmaEngine
from repro.mem.hbm import HBMSubsystem
from repro.platforms.specs import HBMSpec, HBM_XUPVVH, PCIE_GEN3_X16, PCIeSpec
from repro.sim.engine import Engine, Event

__all__ = ["SimulatedDevice"]


class _CrossbarPort:
    """Adapter presenting one crossbar-routed path as a channel.

    Used by the crossbar ablation: core *i* keeps its AXI port *i* but
    its buffers live in a *different* channel's address slice, so every
    access pays the crossbar (latency + shared-switch bandwidth) —
    the configuration the paper measures §II-B's penalty against and
    deliberately avoids.
    """

    def __init__(self, subsystem: HBMSubsystem, port: int, target_channel: int):
        self._subsystem = subsystem
        self.port = port
        self.target_channel = target_channel
        self._base = target_channel * subsystem.spec.channel_capacity_bytes

    def transfer(self, n_bytes: int, *, is_write: bool = False) -> Event:
        return self._subsystem.transfer(
            self.port, self._base, n_bytes, is_write=is_write
        )


class SimulatedDevice:
    """The composed FPGA card: PEs + HBM + DMA, ready for the runtime."""

    def __init__(
        self,
        design: AcceleratorDesign,
        *,
        hbm_spec: HBMSpec = HBM_XUPVVH,
        pcie_spec: PCIeSpec = PCIE_GEN3_X16,
        compute_format: Optional[NumberFormat] = None,
        crossbar: bool = False,
        burst_granular: bool = False,
        metrics=None,
    ):
        if design.n_cores > hbm_spec.n_channels:
            raise RuntimeConfigError(
                f"{design.n_cores} cores need {design.n_cores} HBM channels; "
                f"the device has {hbm_spec.n_channels}"
            )
        self.design = design
        self.env = Engine()
        self.crossbar = crossbar
        #: Optional :class:`repro.obs.metrics.MetricsRegistry`; when
        #: set, every subsystem (HBM channels, DMA, PEs, memory
        #: manager) records its activity there without perturbing the
        #: simulated timings.
        self.metrics = metrics
        self.hbm = HBMSubsystem(self.env, hbm_spec, crossbar=crossbar, metrics=metrics)
        self.dma = DmaEngine(self.env, pcie_spec, metrics=metrics)
        self.memory_manager = DeviceMemoryManager(
            n_blocks=design.n_cores,
            block_capacity=hbm_spec.channel_capacity_bytes,
            metrics=metrics,
        )
        self.memories: List[ChannelMemory] = [
            ChannelMemory(hbm_spec.channel_capacity_bytes)
            for _ in range(design.n_cores)
        ]
        spn = design.core.spn
        if crossbar:
            # Worst-case routed mapping: core i's buffers live behind
            # channel (i+1) mod N, so all traffic crosses the switch.
            memory_paths = [
                _CrossbarPort(self.hbm, index, (index + 1) % design.n_cores)
                for index in range(design.n_cores)
            ]
        else:
            memory_paths = [self.hbm.channels[index] for index in range(design.n_cores)]
        self.cores: List[SPNAcceleratorCore] = [
            SPNAcceleratorCore(
                self.env,
                index,
                spn,
                design.core,
                memory_paths[index],
                self.memories[index],
                clock_hz=design.clock_mhz * 1e6,
                compute_format=compute_format,
                burst_granular=burst_granular,
                metrics=metrics,
            )
            for index in range(design.n_cores)
        ]

    def attach_tracer(self, tracer) -> None:
        """Attach a span tracer to the device's HBM channels.

        Each channel then records a span per request on its
        ``hbm ch{i}`` track (simulated clock), which the Perfetto
        exporter renders next to the runtime's DMA/PE tracks.  Purely
        observational — recording only reads ``env.now``, so simulated
        timings are unchanged.
        """
        for channel in self.hbm.channels:
            channel.tracer = tracer

    # -- TaPaSCo-like API -------------------------------------------------------
    @property
    def n_pes(self) -> int:
        """Number of processing elements (accelerator cores)."""
        return len(self.cores)

    def pe_configuration(self, pe: int) -> dict:
        """Query a PE's synthesis parameters via its register file."""
        return self._core(pe).read_configuration()

    def alloc(self, pe: int, n_bytes: int) -> int:
        """Allocate device memory in the PE's dedicated HBM block."""
        return self.memory_manager.alloc(pe, n_bytes)

    def free(self, pe: int, address: int) -> None:
        """Free device memory in the PE's dedicated HBM block."""
        self.memory_manager.free(pe, address)

    def copy_to_device(self, pe: int, address: int, payload: bytes) -> Event:
        """DMA *payload* into the PE's HBM block; yields on completion.

        Functional write happens on completion so that a job launched
        after yielding this event sees the data.
        """
        done = Event(self.env)
        self.env.process(self._h2d(pe, address, payload, done), name="h2d")
        return done

    def _h2d(self, pe: int, address: int, payload: bytes, done: Event):
        yield self.dma.copy_to_device(len(payload))
        self.memories[pe].write(address, payload)
        done.succeed(None)

    def dma_h2d_timed(self, pe: int, n_bytes: int) -> Event:
        """Timing-only host-to-device transfer (shared DMA engine)."""
        return self.dma.copy_to_device(n_bytes)

    def dma_d2h_timed(self, pe: int, n_bytes: int) -> Event:
        """Timing-only device-to-host transfer (shared DMA engine)."""
        return self.dma.copy_from_device(n_bytes)

    def copy_from_device(self, pe: int, address: int, n_bytes: int) -> Event:
        """DMA out of the PE's HBM block; yields with the bytes."""
        done = Event(self.env)
        self.env.process(self._d2h(pe, address, n_bytes, done), name="d2h")
        return done

    def _d2h(self, pe: int, address: int, n_bytes: int, done: Event):
        yield self.dma.copy_from_device(n_bytes)
        done.succeed(self.memories[pe].read(address, n_bytes))

    def launch(
        self,
        pe: int,
        input_addr: int,
        result_addr: int,
        n_samples: int,
        *,
        functional: bool = True,
    ) -> Event:
        """Start a job on *pe*; yields with its JobResult."""
        return self._core(pe).start_job(
            input_addr, result_addr, n_samples, functional=functional
        )

    def _core(self, pe: int) -> SPNAcceleratorCore:
        if not 0 <= pe < len(self.cores):
            raise RuntimeConfigError(f"PE {pe} out of range 0..{len(self.cores) - 1}")
        return self.cores[pe]
