"""The multi-threaded inference runtime (§IV-B).

Execution scheme, exactly as the paper describes it:

* a compute job is broken into **sub-jobs** according to a
  user-specified block size;
* each **control thread** performs the same sequence: transfer a block
  to HBM, invoke the SPN accelerator and wait, then trigger the
  result transfer back;
* assigning **multiple control threads to one accelerator** overlaps
  transfers with computation (thread B transfers block n+1 while
  thread A waits on block n);
* the runtime **queries the device and the accelerators** for their
  parameters (register-file config read-out) instead of requiring the
  user to supply them.

Control threads are modelled as DES processes so their interleaving
happens in simulated time; the device memory manager they call is the
real thread-safe allocator from :mod:`repro.host.memory_manager`.

The per-sub-job dispatch overhead (register writes, doorbell,
completion interrupt, thread wake-up) occupies the accelerator between
jobs; its value is calibrated to the paper's single-core NIPS10
end-to-end anchor of 133,139,305 samples/s (§V-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.errors import AllocationError, RuntimeConfigError
from repro.host.device import SimulatedDevice
from repro.sim.engine import Event
from repro.sim.resource import SimResource
from repro.sim.trace import Tracer
from repro.units import MIB
from repro.workloads.datasets import encode_samples

__all__ = ["InferenceJobConfig", "RunStatistics", "InferenceRuntime", "JOB_DISPATCH_OVERHEAD"]

#: Per-sub-job dispatch cost in seconds, PE-exclusive (see module doc).
JOB_DISPATCH_OVERHEAD = 86e-6


@dataclass(frozen=True)
class InferenceJobConfig:
    """User-visible knobs of a runtime execution."""

    #: Input bytes per sub-job block (the paper's block size; its
    #: benchmarks use 1 MiB blocks, matching the HBM saturation size).
    block_bytes: int = 1 * MIB
    #: Control threads per accelerator (the paper uses 1 or 2).
    threads_per_pe: int = 1
    #: Block scheduling: "static" deals blocks to PEs round-robin up
    #: front (the paper's scheme); "shared" lets control threads pull
    #: from one global queue, balancing uneven tails automatically.
    scheduling: str = "static"

    def __post_init__(self):
        if self.block_bytes < 1:
            raise RuntimeConfigError(f"block_bytes must be >= 1, got {self.block_bytes}")
        if self.threads_per_pe < 1:
            raise RuntimeConfigError(
                f"threads_per_pe must be >= 1, got {self.threads_per_pe}"
            )
        if self.scheduling not in ("static", "shared"):
            raise RuntimeConfigError(
                f"scheduling must be 'static' or 'shared', got {self.scheduling!r}"
            )


@dataclass
class RunStatistics:
    """Timing and traffic accounting of one runtime execution."""

    n_samples: int = 0
    elapsed_seconds: float = 0.0
    n_blocks: int = 0
    samples_per_pe: Dict[int, int] = field(default_factory=dict)
    bytes_to_device: int = 0
    bytes_from_device: int = 0

    @property
    def samples_per_second(self) -> float:
        """End-to-end throughput including host transfers."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.n_samples / self.elapsed_seconds


class InferenceRuntime:
    """Orchestrates block-wise batch inference on a simulated device."""

    def __init__(
        self,
        device: SimulatedDevice,
        config: Optional[InferenceJobConfig] = None,
        *,
        tracer: Optional[Tracer] = None,
    ):
        self.device = device
        self.config = config or InferenceJobConfig()
        #: Optional span tracer; when set, every DMA transfer and PE
        #: job is recorded so overlap can be inspected/rendered.
        self.tracer = tracer
        # Self-configuration: query PE 0's register file (§IV-B).
        pe_config = device.pe_configuration(0)
        self.n_variables = pe_config["n_variables"]
        self.sample_bytes = pe_config["sample_bytes"]
        self.result_bytes = pe_config["result_bytes"]
        self.samples_per_block = max(1, self.config.block_bytes // self.sample_bytes)

    # -- public API -----------------------------------------------------------------
    def run(self, data: np.ndarray) -> tuple:
        """Run inference over *data*, returning (results, statistics).

        *data* is a ``(n_samples, n_variables)`` integer matrix; the
        result is the ``(n_samples,)`` float64 log-likelihood vector in
        input order, computed by the simulated accelerators.
        """
        data = np.asarray(data)
        # Validate against the PE's *variable* count, not its encoded
        # sample byte count: a format where one variable encodes to
        # more than one byte makes the two differ.
        if data.ndim != 2 or data.shape[1] != self.n_variables:
            raise RuntimeConfigError(
                f"data must be (n, {self.n_variables}) — one column per "
                f"SPN variable — got {data.shape}"
            )
        results = np.empty(data.shape[0], dtype=np.float64)
        stats = self._execute(data.shape[0], data=data, results=results)
        return results, stats

    def run_timing_only(self, n_samples: int) -> RunStatistics:
        """Run the timing model for *n_samples* without real payloads.

        Used for paper-scale experiments (100 M samples) where
        materialising data would dominate; all timing behaviour is
        identical to :meth:`run`.
        """
        if n_samples < 1:
            raise RuntimeConfigError(f"n_samples must be >= 1, got {n_samples}")
        return self._execute(n_samples, data=None, results=None)

    def run_on_device_only(self, n_samples: int) -> RunStatistics:
        """Measure on-device execution with host transfers *excluded*.

        This is the left panel of the paper's Fig. 4: "we disregarded
        the host-to-device data-transfer times and only measured the
        on-device computation including the HBM accesses."  Jobs are
        dispatched back to back per PE with the data assumed resident
        in HBM.
        """
        if n_samples < 1:
            raise RuntimeConfigError(f"n_samples must be >= 1, got {n_samples}")
        return self._execute(n_samples, data=None, results=None, transfers=False)

    # -- orchestration ----------------------------------------------------------------
    def _execute(
        self,
        n_samples: int,
        data: Optional[np.ndarray],
        results: Optional[np.ndarray],
        transfers: bool = True,
    ) -> RunStatistics:
        device = self.device
        env = device.env
        n_pes = device.n_pes
        stats = RunStatistics(n_samples=n_samples)

        # Build the global block list and deal it to PEs round-robin.
        blocks = []  # (start_sample, n_block_samples)
        start = 0
        while start < n_samples:
            count = min(self.samples_per_block, n_samples - start)
            blocks.append((start, count))
            start += count
        stats.n_blocks = len(blocks)
        queues: List[List[tuple]] = [[] for _ in range(n_pes)]
        for index, block in enumerate(blocks):
            queues[index % n_pes].append(block)

        pe_locks = [SimResource(env, 1, name=f"pe{i}-lock") for i in range(n_pes)]
        dma_before = (device.dma.bytes_to_device, device.dma.bytes_from_device)

        tracer = self.tracer
        metrics = getattr(device, "metrics", None)
        dispatch_counters = (
            [metrics.counter(f"pe{i}.dispatch_seconds") for i in range(n_pes)]
            if metrics is not None
            else None
        )
        shared_queue = list(reversed(blocks)) if self.config.scheduling == "shared" else None

        # Allocation back-pressure: a control thread that cannot get its
        # buffers while sibling threads hold the PE's memory parks on
        # this list and is woken by the next free on the same PE.
        free_waiters: List[List[Event]] = [[] for _ in range(n_pes)]

        def free_buffer(pe: int, address: int) -> None:
            device.free(pe, address)
            waiters = free_waiters[pe]
            if waiters:
                for waiter in waiters:
                    waiter.succeed(None)
                waiters.clear()

        def block_source(pe: int, my_blocks: List[tuple]):
            """Static: iterate the dealt list; shared: pop the queue."""
            if shared_queue is None:
                yield from my_blocks
            else:
                while shared_queue:
                    yield shared_queue.pop()

        def control_thread(pe: int, my_blocks: List[tuple]):
            for block in block_source(pe, my_blocks):
                start_sample, count = block
                input_bytes = count * self.sample_bytes
                result_bytes = count * self.result_bytes
                # Allocation can fail transiently when sibling threads
                # hold the PE's memory; retiring would strand the block
                # (and, under shared scheduling, could fail the whole
                # run even though retrying after the next free would
                # succeed).  Instead the thread parks until a sibling
                # frees and retries.  Only a genuinely impossible
                # request — the allocator is empty and the buffers
                # still do not fit — fails loudly.
                while True:
                    input_addr = None
                    try:
                        input_addr = device.alloc(pe, input_bytes)
                        result_addr = device.alloc(pe, result_bytes)
                        break
                    except AllocationError:
                        if input_addr is not None:
                            free_buffer(pe, input_addr)
                        if device.memory_manager.allocator(pe).bytes_allocated == 0:
                            # No sibling holds memory, so no future
                            # free can help: the block cannot fit.
                            raise
                        waiter = Event(env)
                        free_waiters[pe].append(waiter)
                        yield waiter
                try:
                    mark = env.now
                    if data is not None:
                        payload = encode_samples(
                            data[start_sample: start_sample + count]
                        )
                        yield device.copy_to_device(pe, input_addr, payload)
                    elif transfers:
                        yield device.dma_h2d_timed(pe, input_bytes)
                    if tracer is not None and (transfers or data is not None):
                        tracer.record("dma h2d", f"pe{pe}b{start_sample}", mark, env.now)
                    # The PE is exclusive: dispatch overhead + job.
                    grant = pe_locks[pe].request()
                    yield grant
                    try:
                        mark = env.now
                        if dispatch_counters is not None:
                            dispatch_counters[pe].add(JOB_DISPATCH_OVERHEAD)
                        yield env.timeout(JOB_DISPATCH_OVERHEAD)
                        yield device.launch(
                            pe,
                            input_addr,
                            result_addr,
                            count,
                            functional=data is not None,
                        )
                        if tracer is not None:
                            tracer.record(f"pe{pe}", f"b{start_sample}", mark, env.now)
                    finally:
                        pe_locks[pe].release()
                    mark = env.now
                    if data is not None:
                        raw = yield device.copy_from_device(pe, result_addr, result_bytes)
                        results[start_sample: start_sample + count] = np.frombuffer(
                            raw, dtype=np.float64
                        )
                    elif transfers:
                        yield device.dma_d2h_timed(pe, result_bytes)
                    if tracer is not None and (transfers or data is not None):
                        tracer.record("dma d2h", f"pe{pe}b{start_sample}", mark, env.now)
                finally:
                    free_buffer(pe, input_addr)
                    free_buffer(pe, result_addr)
                stats.samples_per_pe[pe] = stats.samples_per_pe.get(pe, 0) + count

        threads = []
        for pe in range(n_pes):
            # Deal each PE's blocks across its control threads (static
            # scheduling); shared scheduling ignores the dealt share
            # and pulls from the global queue instead.
            for thread_index in range(self.config.threads_per_pe):
                share = queues[pe][thread_index:: self.config.threads_per_pe]
                if share or (shared_queue is not None and blocks):
                    threads.append(
                        env.process(
                            control_thread(pe, share),
                            name=f"ctl-pe{pe}-t{thread_index}",
                        )
                    )

        # Burst-level spans only exist when the cores advance burst by
        # burst, so a tracer forces the granular model for this run.
        forced_granular = []
        if tracer is not None:
            for core in device.cores:
                if not core.burst_granular:
                    core.burst_granular = True
                    forced_granular.append(core)
        try:
            start_time = env.now
            done = env.all_of(threads)
            env.run(until_event=done)
        finally:
            for core in forced_granular:
                core.burst_granular = False
        stats.elapsed_seconds = env.now - start_time
        stats.bytes_to_device = device.dma.bytes_to_device - dma_before[0]
        stats.bytes_from_device = device.dma.bytes_from_device - dma_before[1]
        processed = sum(stats.samples_per_pe.values())
        if processed != n_samples:
            # Should be unreachable now that control threads wait out
            # transient allocation failures, but kept as a loud
            # invariant against silently under-reporting samples.
            raise AllocationError(
                f"runtime processed {processed} of {n_samples} samples; "
                f"{len(shared_queue) if shared_queue else 0} block(s) left "
                "unclaimed after allocation failures"
            )
        return stats
