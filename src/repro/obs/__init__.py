"""Observability: metrics, tracing, telemetry export, reports, bench.

See :mod:`repro.obs.metrics` for the registry the simulated components
update (counters, gauges, time-weighted stats and log-bucketed
:class:`LogHistogram` latency histograms), :mod:`repro.obs.rtrace` for
request-scoped tracing through the serving datapath,
:mod:`repro.obs.exporter` for streaming telemetry snapshots
(Prometheus text / JSON) and SLO error-budget burn tracking,
:mod:`repro.obs.report` for the fused :class:`UtilizationReport`,
:mod:`repro.obs.trace_export` for the Chrome/Perfetto exporter
(``repro trace``) and :mod:`repro.obs.bench` for the benchmark
trajectory recorder (``repro bench``); ``docs/observability.md`` maps
every report field to the paper claim it measures.
"""

from repro.obs.bench import (
    BenchSample,
    BenchScenario,
    CheckResult,
    check_scenarios,
    env_fingerprint,
    record_scenarios,
)
from repro.obs.exporter import (
    PeriodicTelemetryWriter,
    SLOTracker,
    TelemetryServer,
    TelemetrySnapshotter,
)
from repro.obs.hist import LogHistogram
from repro.obs.metrics import Counter, Gauge, MetricsRegistry, TimeWeightedStat
from repro.obs.report import (
    ChannelUtilization,
    DmaUtilization,
    ExecutorUtilization,
    MemoryBlockStats,
    PEUtilization,
    ServingStageLatency,
    ServingUtilization,
    UtilizationReport,
    WorkerUtilization,
)
from repro.obs.rtrace import (
    RequestTrace,
    RequestTraceRecorder,
    add_request_flows,
)
from repro.obs.trace_export import (
    ChromeTraceBuilder,
    HostSpan,
    HostSpanRecorder,
    export_run_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "LogHistogram",
    "MetricsRegistry",
    "TimeWeightedStat",
    "ChannelUtilization",
    "DmaUtilization",
    "ExecutorUtilization",
    "MemoryBlockStats",
    "PEUtilization",
    "ServingStageLatency",
    "ServingUtilization",
    "UtilizationReport",
    "WorkerUtilization",
    "RequestTrace",
    "RequestTraceRecorder",
    "add_request_flows",
    "PeriodicTelemetryWriter",
    "SLOTracker",
    "TelemetryServer",
    "TelemetrySnapshotter",
    "ChromeTraceBuilder",
    "HostSpan",
    "HostSpanRecorder",
    "export_run_trace",
    "BenchSample",
    "BenchScenario",
    "CheckResult",
    "check_scenarios",
    "env_fingerprint",
    "record_scenarios",
]
