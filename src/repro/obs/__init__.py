"""Observability: metrics registry and utilization reporting.

See :mod:`repro.obs.metrics` for the registry the simulated components
update and :mod:`repro.obs.report` for the fused
:class:`UtilizationReport`; ``docs/observability.md`` maps every
report field to the paper claim it measures.
"""

from repro.obs.metrics import Counter, Gauge, MetricsRegistry, TimeWeightedStat
from repro.obs.report import (
    ChannelUtilization,
    DmaUtilization,
    ExecutorUtilization,
    MemoryBlockStats,
    PEUtilization,
    UtilizationReport,
    WorkerUtilization,
)

__all__ = [
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "TimeWeightedStat",
    "ChannelUtilization",
    "DmaUtilization",
    "ExecutorUtilization",
    "MemoryBlockStats",
    "PEUtilization",
    "UtilizationReport",
    "WorkerUtilization",
]
