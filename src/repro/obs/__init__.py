"""Observability: metrics, utilization reports, trace export, bench.

See :mod:`repro.obs.metrics` for the registry the simulated components
update, :mod:`repro.obs.report` for the fused
:class:`UtilizationReport`, :mod:`repro.obs.trace_export` for the
Chrome/Perfetto exporter (``repro trace``) and :mod:`repro.obs.bench`
for the benchmark trajectory recorder (``repro bench``);
``docs/observability.md`` maps every report field to the paper claim
it measures.
"""

from repro.obs.bench import (
    BenchSample,
    BenchScenario,
    CheckResult,
    check_scenarios,
    env_fingerprint,
    record_scenarios,
)
from repro.obs.metrics import Counter, Gauge, MetricsRegistry, TimeWeightedStat
from repro.obs.report import (
    ChannelUtilization,
    DmaUtilization,
    ExecutorUtilization,
    MemoryBlockStats,
    PEUtilization,
    UtilizationReport,
    WorkerUtilization,
)
from repro.obs.trace_export import (
    ChromeTraceBuilder,
    HostSpan,
    HostSpanRecorder,
    export_run_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "TimeWeightedStat",
    "ChannelUtilization",
    "DmaUtilization",
    "ExecutorUtilization",
    "MemoryBlockStats",
    "PEUtilization",
    "UtilizationReport",
    "WorkerUtilization",
    "ChromeTraceBuilder",
    "HostSpan",
    "HostSpanRecorder",
    "export_run_trace",
    "BenchSample",
    "BenchScenario",
    "CheckResult",
    "check_scenarios",
    "env_fingerprint",
    "record_scenarios",
]
