"""Chrome/Perfetto trace export: open simulation runs in a real viewer.

The paper's §IV-B claim — "one thread will be able to perform data
transfers for block n+1, while another thread is waiting for the FPGA
accelerator" — is a *timeline* claim, and the fixed-width text
timeline of :meth:`repro.sim.trace.Tracer.timeline` is a lossy way to
inspect it.  This module converts the observability layer's raw
material into the `Chrome Trace Event Format`_ consumed by
``chrome://tracing`` and https://ui.perfetto.dev:

* :class:`~repro.sim.trace.Tracer` spans (simulated time: DMA
  transfers, PE jobs, per-channel HBM requests) become complete
  (``ph: "X"``) duration events;
* :class:`~repro.obs.metrics.MetricsRegistry` counters and gauges
  become counter (``ph: "C"``) events, so bytes moved, busy seconds
  and queue high-water marks appear as counter tracks next to the
  spans they explain;
* host wall-clock spans (:class:`HostSpan`, recorded by a
  :class:`HostSpanRecorder` around :class:`~repro.baselines.executor.
  ParallelPlanExecutor` workers and the experiment sweep pool) become
  duration events in a *separate process group*, since they tick a
  different clock.

**Clock domains.**  Simulated time and host wall-clock time are not
comparable, so the exporter never mixes them on one track: sim events
land under pid :data:`SIM_PID` ("simulated device — sim clock") and
host events under pid :data:`HOST_PID` ("host — wall clock,
CLOCK_MONOTONIC since recorder epoch"); process metadata names the
clock domain explicitly.  Timestamps are microseconds from each
domain's own zero, the unit the trace format mandates.

**Strictly observational.**  Export runs *after* a simulation has
finished and only reads spans and metric values; simulated elapsed
times are bit-identical with and without export (test-enforced, the
same guarantee the metrics layer gives).

.. _Chrome Trace Event Format:
   https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ReproError

__all__ = [
    "SIM_PID",
    "HOST_PID",
    "HostSpan",
    "HostSpanRecorder",
    "ChromeTraceBuilder",
    "export_run_trace",
]

#: Process id of the simulated-clock process group in exported traces.
SIM_PID = 1

#: Process id of the host wall-clock process group in exported traces.
HOST_PID = 2

_SECONDS_TO_US = 1e6


@dataclass(frozen=True)
class HostSpan:
    """One wall-clock interval on a host track.

    ``begin``/``end`` are seconds since the owning recorder's epoch
    (``CLOCK_MONOTONIC`` via :func:`time.perf_counter`), so spans from
    forked worker processes and the parent share one clock domain.
    """

    track: str
    label: str
    begin: float
    end: float

    @property
    def duration(self) -> float:
        """Span length in wall-clock seconds."""
        return self.end - self.begin


class HostSpanRecorder:
    """Collects wall-clock spans against one epoch.

    The epoch is taken from :func:`time.perf_counter` at construction;
    :meth:`record` accepts absolute ``perf_counter`` stamps (including
    stamps taken inside forked worker processes — ``CLOCK_MONOTONIC``
    is system-wide) and stores them relative to the epoch.
    """

    def __init__(self, epoch: Optional[float] = None):
        self.epoch = time.perf_counter() if epoch is None else epoch
        self.spans: List[HostSpan] = []

    def record(self, track: str, label: str, begin: float, end: float) -> None:
        """Record a completed span from absolute ``perf_counter`` stamps."""
        if end < begin:
            raise ReproError(
                f"host span ends before it begins ({begin} > {end})"
            )
        self.spans.append(
            HostSpan(track, label, begin - self.epoch, end - self.epoch)
        )

    @contextmanager
    def span(self, track: str, label: str):
        """Context manager recording the wall time of its body."""
        begin = time.perf_counter()
        try:
            yield
        finally:
            self.record(track, label, begin, time.perf_counter())

    def tracks(self) -> List[str]:
        """Track names in first-appearance order."""
        seen: List[str] = []
        for span in self.spans:
            if span.track not in seen:
                seen.append(span.track)
        return seen


class ChromeTraceBuilder:
    """Accumulates Chrome Trace Event Format events and serialises them.

    Every event carries the five mandatory fields (``name``, ``ph``,
    ``ts``, ``pid``, ``tid``); tracks become threads (one ``tid`` per
    track name per process group, announced with ``thread_name``
    metadata), and process groups announce their clock domain in
    ``process_name`` metadata.
    """

    def __init__(self):
        self._events: List[dict] = []
        self._tids: Dict[Tuple[int, str], int] = {}
        self._named_processes: Dict[int, str] = {}

    # -- structure --------------------------------------------------------------
    def add_process(self, pid: int, name: str, *, clock: str) -> None:
        """Announce a process group and the clock domain it ticks."""
        if pid in self._named_processes:
            return
        self._named_processes[pid] = clock
        self._events.append(
            {
                "name": "process_name",
                "ph": "M",
                "ts": 0,
                "pid": pid,
                "tid": 0,
                "args": {"name": f"{name} [{clock}]"},
            }
        )
        self._events.append(
            {
                "name": "process_sort_index",
                "ph": "M",
                "ts": 0,
                "pid": pid,
                "tid": 0,
                "args": {"sort_index": pid},
            }
        )

    def _tid(self, pid: int, track: str) -> int:
        tid = self._tids.get((pid, track))
        if tid is None:
            tid = len([key for key in self._tids if key[0] == pid]) + 1
            self._tids[(pid, track)] = tid
            self._events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "ts": 0,
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": track},
                }
            )
            self._events.append(
                {
                    "name": "thread_sort_index",
                    "ph": "M",
                    "ts": 0,
                    "pid": pid,
                    "tid": tid,
                    "args": {"sort_index": tid},
                }
            )
        return tid

    # -- events -----------------------------------------------------------------
    def add_span(
        self,
        pid: int,
        track: str,
        label: str,
        begin_seconds: float,
        end_seconds: float,
        *,
        category: str,
    ) -> None:
        """Add one complete ("X") duration event."""
        self._events.append(
            {
                "name": label,
                "cat": category,
                "ph": "X",
                "ts": begin_seconds * _SECONDS_TO_US,
                "dur": max(0.0, (end_seconds - begin_seconds)) * _SECONDS_TO_US,
                "pid": pid,
                "tid": self._tid(pid, track),
            }
        )

    def add_counter(
        self, pid: int, name: str, value: float, *, at_seconds: float
    ) -> None:
        """Add one counter ("C") sample."""
        self._events.append(
            {
                "name": name,
                "cat": "metrics",
                "ph": "C",
                "ts": at_seconds * _SECONDS_TO_US,
                "pid": pid,
                "tid": 0,
                "args": {"value": value},
            }
        )

    def add_flow(
        self,
        pid: int,
        track: str,
        name: str,
        at_seconds: float,
        *,
        flow_id: int,
        phase: str,
        category: str = "request",
    ) -> None:
        """Add one flow event ("s" start / "t" step / "f" finish).

        Flow events with one *flow_id* draw a connected arrow between
        the slices enclosing them: viewers bind each event to the
        span covering ``at_seconds`` on ``(pid, track)``, so the
        timestamp must land inside an already-added "X" span there
        (the finish event carries ``bp: "e"`` to bind to the enclosing
        slice, per the trace format spec).
        """
        if phase not in ("s", "t", "f"):
            raise ReproError(
                f"flow phase must be 's', 't' or 'f', got {phase!r}"
            )
        event = {
            "name": name,
            "cat": category,
            "ph": phase,
            "ts": at_seconds * _SECONDS_TO_US,
            "pid": pid,
            "tid": self._tid(pid, track),
            "id": flow_id,
        }
        if phase == "f":
            event["bp"] = "e"
        self._events.append(event)

    def add_async_span(
        self,
        pid: int,
        track: str,
        name: str,
        begin_seconds: float,
        end_seconds: float,
        *,
        async_id: int,
        category: str = "request",
    ) -> None:
        """Add one async ("b"/"e") interval.

        Async events live on their own rows grouped by
        ``(category, async_id)`` — the natural shape for a request's
        end-to-end lifetime, which overlaps other requests' and so
        cannot be a nested "X" slice on a single thread track.
        """
        if end_seconds < begin_seconds:
            raise ReproError(
                f"async span ends before it begins "
                f"({begin_seconds} > {end_seconds})"
            )
        tid = self._tid(pid, track)
        for phase, at in (("b", begin_seconds), ("e", end_seconds)):
            self._events.append(
                {
                    "name": name,
                    "cat": category,
                    "ph": phase,
                    "ts": at * _SECONDS_TO_US,
                    "pid": pid,
                    "tid": tid,
                    "id": async_id,
                }
            )

    def _announce_default(self, pid: int) -> None:
        """Name a process group by convention if the caller did not."""
        if pid in self._named_processes:
            return
        if pid == HOST_PID:
            self.add_process(
                pid,
                "host",
                clock="wall clock, CLOCK_MONOTONIC since recorder epoch",
            )
        else:
            self.add_process(
                pid, "simulated device", clock="sim clock, simulated seconds"
            )

    # -- bulk adapters ----------------------------------------------------------
    def add_tracer(self, tracer, *, pid: int = SIM_PID) -> int:
        """Add every span of a :class:`~repro.sim.trace.Tracer`.

        Returns the number of span events added.  The process group is
        announced as the simulated clock domain.
        """
        self._announce_default(pid)
        for span in tracer.spans:
            self.add_span(
                pid, span.track, span.label, span.begin, span.end, category="sim"
            )
        return len(tracer.spans)

    def add_metrics(self, metrics, *, at_seconds: float, pid: int = SIM_PID) -> int:
        """Add registry counters/gauges as counter-event tracks.

        Counters get a zero sample at t=0 plus their final value at
        *at_seconds* (the run's elapsed time), so viewers draw a ramp
        over the run; gauges get their final value and, where it
        differs, their high-water mark as a separate series.
        """
        self._announce_default(pid)
        snapshot = metrics.snapshot()
        added = 0
        for name, value in snapshot["counters"].items():
            self.add_counter(pid, name, 0.0, at_seconds=0.0)
            self.add_counter(pid, name, value, at_seconds=at_seconds)
            added += 1
        for name, values in snapshot["gauges"].items():
            self.add_counter(pid, name, values["value"], at_seconds=at_seconds)
            if values["max"] != values["value"]:
                self.add_counter(
                    pid, name + ".max", values["max"], at_seconds=at_seconds
                )
            added += 1
        return added

    def add_host_spans(
        self, spans: Iterable[HostSpan], *, pid: int = HOST_PID
    ) -> int:
        """Add host wall-clock spans under the host process group."""
        self._announce_default(pid)
        added = 0
        for span in spans:
            self.add_span(
                pid, span.track, span.label, span.begin, span.end, category="host"
            )
            added += 1
        return added

    # -- serialisation ----------------------------------------------------------
    def to_dict(self) -> dict:
        """The JSON-object form of the trace (``traceEvents`` et al.)."""
        return {
            "traceEvents": list(self._events),
            "displayTimeUnit": "ms",
            "otherData": {
                "generator": "repro.obs.trace_export",
                "clock_domains": {
                    f"pid {pid}": clock
                    for pid, clock in sorted(self._named_processes.items())
                },
            },
        }

    def write(self, path: str) -> dict:
        """Serialise the trace to *path*; returns a small summary."""
        payload = self.to_dict()
        with open(path, "w") as handle:
            json.dump(payload, handle)
        events = payload["traceEvents"]
        return {
            "path": path,
            "n_events": len(events),
            "n_spans": sum(1 for e in events if e["ph"] == "X"),
            "n_counters": sum(1 for e in events if e["ph"] == "C"),
            "n_flows": sum(1 for e in events if e["ph"] in ("s", "t", "f")),
        }


def export_run_trace(
    path: str,
    *,
    tracer=None,
    metrics=None,
    elapsed_seconds: Optional[float] = None,
    host_spans: Iterable[HostSpan] = (),
) -> dict:
    """Write one run's observability data as a Chrome/Perfetto trace.

    Any subset of the sources may be supplied: *tracer* contributes
    simulated-clock spans, *metrics* (with *elapsed_seconds* as the
    counter timestamp) contributes counter tracks, *host_spans*
    contributes wall-clock spans in the host process group.  A
    host-only export (no tracer) places the metric counters in the
    host process group, since they were sampled on the host clock.
    Returns the summary dict of :meth:`ChromeTraceBuilder.write`.
    """
    spans = list(host_spans)
    if tracer is None and metrics is None and not spans:
        raise ReproError("export_run_trace needs a tracer, metrics or host spans")
    builder = ChromeTraceBuilder()
    if tracer is not None:
        builder.add_tracer(tracer)
    if metrics is not None:
        if elapsed_seconds is None:
            raise ReproError("metrics export needs elapsed_seconds for timestamps")
        metrics_pid = SIM_PID if tracer is not None or not spans else HOST_PID
        builder.add_metrics(metrics, at_seconds=elapsed_seconds, pid=metrics_pid)
    if spans:
        builder.add_host_spans(spans)
    return builder.write(path)
