"""Log-bucketed latency histograms: fixed memory, mergeable, HDR-style.

The load generator used to hoard every latency sample in a Python list
and reduce it with :func:`repro.serving.loadgen.percentile_summary` at
the end — fine for a one-second smoke run, hopeless for the ROADMAP's
"millions of users" arc where a sweep point may answer millions of
requests, and useless for *streaming* telemetry where percentiles must
be readable mid-run.  :class:`LogHistogram` replaces the sample list
with the standard serving-systems answer (HdrHistogram, Prometheus
native histograms): geometrically spaced buckets over a fixed value
range, so memory is constant regardless of sample count and two
histograms recorded independently (per lane, per rate point, per
process) merge by adding bucket counts.

Accuracy is explicit, not incidental: every bucket spans a fixed ratio
(``growth``, default ``2 ** (1/16)`` — ≤ 4.5% relative width), and
:meth:`LogHistogram.percentile` reproduces the nearest-rank
``method="higher"`` convention of ``percentile_summary`` to within one
bucket width (test-enforced across n=1, n=2, heavy-tail and all-equal
distributions).  Exact ``count``/``sum``/``min``/``max`` are kept on
the side, so degenerate samples (one observation, all equal) report
exact percentiles — the quantile is clamped to the observed range.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError

__all__ = ["LogHistogram", "DEFAULT_GROWTH", "DEFAULT_MIN_VALUE", "DEFAULT_MAX_VALUE"]

#: Default bucket growth ratio: 16 buckets per doubling, ≤ 4.5% width.
DEFAULT_GROWTH = 2.0 ** (1.0 / 16.0)

#: Default smallest resolvable value (1 µs — below it, bucket 0).
DEFAULT_MIN_VALUE = 1e-6

#: Default largest resolvable value (10 000 s — above it, last bucket).
DEFAULT_MAX_VALUE = 1e4


class LogHistogram:
    """A mergeable log-bucketed histogram of non-negative values.

    Bucket ``i`` covers ``[min_value * growth**i, min_value *
    growth**(i+1))``; values at or below ``min_value`` land in bucket
    0 and values beyond ``max_value`` clamp into the last bucket (the
    exact ``max`` is tracked separately, so clamping never hides an
    outlier).  The bucket array is allocated once at construction —
    :meth:`record` is O(1) with zero allocation, and total memory is
    ``n_buckets`` ints however many samples arrive.

    Thread safety: pass a *lock* (e.g. the owning
    :class:`~repro.obs.metrics.MetricsRegistry`'s) to make
    :meth:`record`/:meth:`merge`/readers atomic; standalone instances
    create their own.
    """

    __slots__ = (
        "name",
        "min_value",
        "max_value",
        "growth",
        "_log_growth",
        "_counts",
        "count",
        "total",
        "_min",
        "_max",
        "_lock",
    )

    def __init__(
        self,
        name: str = "",
        *,
        min_value: float = DEFAULT_MIN_VALUE,
        max_value: float = DEFAULT_MAX_VALUE,
        growth: float = DEFAULT_GROWTH,
        lock: Optional[threading.RLock] = None,
    ):
        if min_value <= 0:
            raise ReproError(f"min_value must be > 0, got {min_value}")
        if max_value <= min_value:
            raise ReproError(
                f"max_value ({max_value}) must exceed min_value ({min_value})"
            )
        if growth <= 1.0:
            raise ReproError(f"growth must be > 1, got {growth}")
        self.name = name
        self.min_value = float(min_value)
        self.max_value = float(max_value)
        self.growth = float(growth)
        self._log_growth = math.log(self.growth)
        n_buckets = (
            int(math.ceil(math.log(max_value / min_value) / self._log_growth))
            + 1
        )
        self._counts: List[int] = [0] * n_buckets
        self.count = 0
        self.total = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._lock = lock if lock is not None else threading.RLock()

    # -- geometry ---------------------------------------------------------------
    @property
    def n_buckets(self) -> int:
        """Fixed bucket count (memory footprint, set at construction)."""
        return len(self._counts)

    @property
    def relative_error(self) -> float:
        """Worst-case relative width of one bucket (``growth - 1``)."""
        return self.growth - 1.0

    def _bucket_index(self, value: float) -> int:
        if value <= self.min_value:
            return 0
        index = int(math.log(value / self.min_value) / self._log_growth)
        return min(index, len(self._counts) - 1)

    def _bucket_upper(self, index: int) -> float:
        return self.min_value * self.growth ** (index + 1)

    # -- recording --------------------------------------------------------------
    def record(self, value: float) -> None:
        """Add one observation (negative values clamp to zero)."""
        value = float(value)
        if value < 0.0:
            value = 0.0
        with self._lock:
            self._counts[self._bucket_index(value)] += 1
            self.count += 1
            self.total += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    def merge(self, other: "LogHistogram") -> None:
        """Fold *other*'s observations in (bucket layouts must match)."""
        if (
            other.min_value != self.min_value
            or other.max_value != self.max_value
            or other.growth != self.growth
        ):
            raise ReproError(
                f"cannot merge histogram {other.name!r} into {self.name!r}: "
                "bucket layouts differ (min_value/max_value/growth)"
            )
        with self._lock, other._lock:
            for i, n in enumerate(other._counts):
                self._counts[i] += n
            self.count += other.count
            self.total += other.total
            self._min = min(self._min, other._min)
            self._max = max(self._max, other._max)

    # -- reduction --------------------------------------------------------------
    @property
    def min(self) -> float:
        """Exact smallest observation (NaN while empty)."""
        return self._min if self.count else math.nan

    @property
    def max(self) -> float:
        """Exact largest observation (NaN while empty)."""
        return self._max if self.count else math.nan

    @property
    def mean(self) -> float:
        """Exact mean (NaN while empty)."""
        return self.total / self.count if self.count else math.nan

    def percentile(self, q: float) -> float:
        """Nearest-rank (higher) percentile, within one bucket width.

        Follows ``np.percentile(..., method="higher")``: the target is
        the observation at 0-based rank ``ceil((n - 1) * q / 100)``.
        The bucket holding that rank reports its upper bound, clamped
        to the exact observed ``[min, max]`` — so n=1 and all-equal
        samples are exact, and no percentile exceeds an observed value
        by more than one bucket's relative width.
        """
        if not 0.0 <= q <= 100.0:
            raise ReproError(f"percentile q must be in [0, 100], got {q}")
        with self._lock:
            if self.count == 0:
                return math.nan
            rank = math.ceil((self.count - 1) * q / 100.0)  # 0-based
            cumulative = 0
            for index, n in enumerate(self._counts):
                cumulative += n
                if cumulative >= rank + 1:
                    return float(
                        min(max(self._bucket_upper(index), self._min),
                            self._max)
                    )
            return self._max  # pragma: no cover - counts always sum up

    @property
    def p50(self) -> float:
        """Median (see :meth:`percentile`)."""
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        """95th percentile."""
        return self.percentile(95.0)

    @property
    def p99(self) -> float:
        """99th percentile."""
        return self.percentile(99.0)

    @property
    def p999(self) -> float:
        """99.9th percentile."""
        return self.percentile(99.9)

    def summary(self) -> Dict[str, float]:
        """JSON-native reduction: count/sum/mean/min/max + quantiles."""
        with self._lock:
            return {
                "count": self.count,
                "sum": self.total,
                "mean": self.mean,
                "min": self.min,
                "max": self.max,
                "p50": self.p50,
                "p95": self.p95,
                "p99": self.p99,
                "p999": self.p999,
            }

    def nonzero_buckets(self) -> List[Tuple[float, int]]:
        """``(bucket upper bound, count)`` for every occupied bucket."""
        with self._lock:
            return [
                (self._bucket_upper(i), n)
                for i, n in enumerate(self._counts)
                if n
            ]

    def to_dict(self) -> dict:
        """Full JSON-native dump: summary + sparse occupied buckets."""
        with self._lock:
            return {
                "name": self.name,
                "min_value": self.min_value,
                "max_value": self.max_value,
                "growth": self.growth,
                **self.summary(),
                "buckets": [[le, n] for le, n in self.nonzero_buckets()],
            }
