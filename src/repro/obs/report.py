"""Utilization reports: fusing metrics with tracer spans.

A :class:`UtilizationReport` condenses one runtime execution into the
quantities the paper's claims are stated in:

* **per-channel achieved vs plateau bandwidth** — bytes moved divided
  by channel busy time, against the ~12 GiB/s Fig. 2 plateau the
  channel saturates at for 1 MiB requests;
* **per-PE busy %** — compute plus dispatch occupancy over the run,
  the §IV-B dispatch-overhead discussion made measurable;
* **DMA↔compute overlap** — simulated time during which a host
  transfer and an accelerator job were in flight simultaneously, the
  §IV-B "two control threads per PE" claim (requires a
  :class:`~repro.sim.trace.Tracer` on the run);
* **DMA link busy %** — how close the shared PCIe DMA engine is to the
  §V-C scaling limit;
* **allocator health** — allocations, transient failures and the
  high-water mark of each HBM block's device memory;
* **host-CPU executor occupancy** — when the run went through the
  zero-copy :class:`~repro.baselines.executor.ParallelPlanExecutor`
  (``executor.*`` metrics present), per-worker busy fractions,
  shared-memory traffic and the pickled-payload counter that the
  zero-copy regression guard asserts stays at zero;
* **serving datapath accounting** — when the run went through the
  micro-batching broker (``serving.*`` metrics present), request/
  batch/shed counts and the per-stage latency decomposition
  (``serving.batch_form`` → ``serving.scatter``) recorded by the
  broker's log-bucketed histograms (:mod:`repro.obs.hist`).

Reports are plain frozen dataclasses of primitives: picklable (so
sweep workers can return them) and exportable as JSON for downstream
tooling.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import List, Optional, Sequence, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.units import GIB

__all__ = [
    "ChannelUtilization",
    "PEUtilization",
    "DmaUtilization",
    "MemoryBlockStats",
    "WorkerUtilization",
    "ExecutorUtilization",
    "ServingStageLatency",
    "ServingUtilization",
    "UtilizationReport",
]

#: Stage histogram names reported in the serving section, path order.
_SERVING_STAGES = (
    "batch_form", "queue_wait", "dispatch", "kernel", "scatter", "e2e",
)


def _merged_intervals(spans) -> List[Tuple[float, float]]:
    """Merge (begin, end) intervals into a disjoint sorted union."""
    out: List[Tuple[float, float]] = []
    for begin, end in sorted(spans):
        if out and begin <= out[-1][1]:
            out[-1] = (out[-1][0], max(out[-1][1], end))
        else:
            out.append((begin, end))
    return out


def _intersection_length(
    a: Sequence[Tuple[float, float]], b: Sequence[Tuple[float, float]]
) -> float:
    """Total length of the intersection of two disjoint interval lists."""
    total = 0.0
    i = j = 0
    while i < len(a) and j < len(b):
        begin = max(a[i][0], b[j][0])
        end = min(a[i][1], b[j][1])
        if end > begin:
            total += end - begin
        if a[i][1] <= b[j][1]:
            i += 1
        else:
            j += 1
    return total


@dataclass(frozen=True)
class ChannelUtilization:
    """One HBM pseudo-channel's traffic and bandwidth efficiency."""

    index: int
    requests: int
    bytes_read: int
    bytes_written: int
    busy_seconds: float
    refresh_stall_seconds: float
    #: The Fig. 2 saturation bandwidth the channel is judged against.
    plateau_bandwidth: float
    #: Bytes moved per second of channel busy time.
    achieved_bandwidth: float
    #: ``achieved_bandwidth / plateau_bandwidth``.
    plateau_fraction: float
    #: Channel busy time over the run's elapsed time.
    busy_fraction: float


@dataclass(frozen=True)
class PEUtilization:
    """One accelerator core's occupancy over the run."""

    index: int
    jobs: int
    samples: int
    compute_seconds: float
    dispatch_seconds: float
    #: (compute + dispatch) over the run's elapsed time.
    busy_fraction: float


@dataclass(frozen=True)
class DmaUtilization:
    """The shared PCIe DMA engine's occupancy over the run."""

    requests_h2d: int
    requests_d2h: int
    bytes_h2d: int
    bytes_d2h: int
    busy_seconds: float
    busy_fraction: float


@dataclass(frozen=True)
class MemoryBlockStats:
    """Device-memory-manager accounting for one HBM block."""

    block: int
    allocs: int
    frees: int
    transient_failures: int
    high_water_bytes: int


@dataclass(frozen=True)
class WorkerUtilization:
    """One host-CPU executor worker process's occupancy over the run."""

    index: int
    busy_seconds: float
    #: Worker busy time over the run's elapsed time.
    busy_fraction: float


@dataclass(frozen=True)
class ExecutorUtilization:
    """Host-CPU :class:`~repro.baselines.executor.ParallelPlanExecutor`
    accounting (see ``docs/cpu_baselines.md``)."""

    submits: int
    rows: int
    shards: int
    #: Batch bytes staged into the shared input buffer.
    bytes_in: int
    #: Result bytes collected from the shared output buffer.
    bytes_out: int
    #: Array payload bytes pickled on the hot path — zero by design;
    #: the benchmark regression guard asserts it stays that way.
    pickled_array_bytes: int
    #: Wall time not covered by the busiest worker (fan-out overhead).
    dispatch_seconds: float
    compute_seconds: float
    workers: Tuple[WorkerUtilization, ...]


@dataclass(frozen=True)
class ServingStageLatency:
    """One serving-datapath stage's latency histogram summary."""

    stage: str
    count: int
    p50_ms: float
    p99_ms: float


@dataclass(frozen=True)
class ServingUtilization:
    """Micro-batching broker accounting (see ``docs/serving.md``).

    Stage summaries come from the broker's per-stage
    :class:`~repro.obs.hist.LogHistogram` instruments; the stages
    partition the end-to-end path, so their medians sum to roughly
    the ``e2e`` median (the serving selftest gates on 10%).
    """

    requests: int
    rejected: int
    batches: int
    rows: int
    #: Mean rows coalesced per dispatched batch.
    mean_batch_rows: float
    stages: Tuple[ServingStageLatency, ...]


@dataclass(frozen=True)
class UtilizationReport:
    """Fused utilization view of one runtime execution."""

    elapsed_seconds: float
    pes: Tuple[PEUtilization, ...]
    channels: Tuple[ChannelUtilization, ...]
    dma: DmaUtilization
    memory: Tuple[MemoryBlockStats, ...]
    #: Simulated seconds during which a DMA transfer and a PE job were
    #: simultaneously in flight; ``None`` when the run had no tracer.
    dma_compute_overlap_seconds: Optional[float]
    #: Overlap over elapsed time; ``None`` without a tracer.
    dma_compute_overlap_fraction: Optional[float]
    #: Host-CPU executor accounting; ``None`` unless the run recorded
    #: ``executor.*`` metrics.
    executor: Optional[ExecutorUtilization] = None
    #: Serving-broker accounting; ``None`` unless the run recorded
    #: ``serving.*`` metrics.
    serving: Optional[ServingUtilization] = None

    # -- construction -----------------------------------------------------------
    @classmethod
    def from_run(
        cls,
        metrics: MetricsRegistry,
        elapsed_seconds: float,
        *,
        tracer=None,
    ) -> "UtilizationReport":
        """Fuse *metrics* (and optional *tracer* spans) into a report.

        PE/channel/block indices are discovered from the registry, so
        the caller only supplies what the instrumentation recorded.
        """
        window = max(elapsed_seconds, 0.0)

        def fraction(seconds: float) -> float:
            return seconds / window if window > 0 else 0.0

        pes: List[PEUtilization] = []
        index = 0
        while metrics.has(f"pe{index}.jobs"):
            compute = metrics.value(f"pe{index}.busy_seconds")
            dispatch = metrics.value(f"pe{index}.dispatch_seconds")
            pes.append(
                PEUtilization(
                    index=index,
                    jobs=int(metrics.value(f"pe{index}.jobs")),
                    samples=int(metrics.value(f"pe{index}.samples")),
                    compute_seconds=compute,
                    dispatch_seconds=dispatch,
                    busy_fraction=fraction(compute + dispatch),
                )
            )
            index += 1

        # All pseudo-channels are instrumented, but only the ones the
        # deployed cores own ever see traffic; idle channels are not
        # part of a utilization statement and are dropped.
        channels: List[ChannelUtilization] = []
        index = 0
        while metrics.has(f"hbm.ch{index}.plateau_bandwidth"):
            prefix = f"hbm.ch{index}"
            busy = metrics.value(prefix + ".busy_seconds")
            moved = metrics.value(prefix + ".bytes_read") + metrics.value(
                prefix + ".bytes_written"
            )
            if moved == 0 and busy == 0:
                index += 1
                continue
            plateau = metrics.value(prefix + ".plateau_bandwidth")
            achieved = moved / busy if busy > 0 else 0.0
            channels.append(
                ChannelUtilization(
                    index=index,
                    requests=int(metrics.value(prefix + ".requests")),
                    bytes_read=int(metrics.value(prefix + ".bytes_read")),
                    bytes_written=int(metrics.value(prefix + ".bytes_written")),
                    busy_seconds=busy,
                    refresh_stall_seconds=metrics.value(
                        prefix + ".refresh_stall_seconds"
                    ),
                    plateau_bandwidth=plateau,
                    achieved_bandwidth=achieved,
                    plateau_fraction=achieved / plateau if plateau > 0 else 0.0,
                    busy_fraction=fraction(busy),
                )
            )
            index += 1

        dma_busy = metrics.value("dma.busy_seconds")
        dma = DmaUtilization(
            requests_h2d=int(metrics.value("dma.requests_h2d")),
            requests_d2h=int(metrics.value("dma.requests_d2h")),
            bytes_h2d=int(metrics.value("dma.bytes_h2d")),
            bytes_d2h=int(metrics.value("dma.bytes_d2h")),
            busy_seconds=dma_busy,
            busy_fraction=fraction(dma_busy),
        )

        memory: List[MemoryBlockStats] = []
        index = 0
        while metrics.has(f"mem.block{index}.allocated_bytes"):
            prefix = f"mem.block{index}"
            memory.append(
                MemoryBlockStats(
                    block=index,
                    allocs=int(metrics.value(prefix + ".allocs")),
                    frees=int(metrics.value(prefix + ".frees")),
                    transient_failures=int(
                        metrics.value(prefix + ".alloc_failures")
                    ),
                    high_water_bytes=int(metrics.maximum(prefix + ".allocated_bytes")),
                )
            )
            index += 1

        executor: Optional[ExecutorUtilization] = None
        if metrics.has("executor.submits"):
            workers: List[WorkerUtilization] = []
            index = 0
            while metrics.has(f"executor.worker{index}.busy_seconds"):
                busy = metrics.value(f"executor.worker{index}.busy_seconds")
                workers.append(
                    WorkerUtilization(
                        index=index,
                        busy_seconds=busy,
                        busy_fraction=fraction(busy),
                    )
                )
                index += 1
            executor = ExecutorUtilization(
                submits=int(metrics.value("executor.submits")),
                rows=int(metrics.value("executor.rows")),
                shards=int(metrics.value("executor.shards")),
                bytes_in=int(metrics.value("executor.bytes_in")),
                bytes_out=int(metrics.value("executor.bytes_out")),
                pickled_array_bytes=int(
                    metrics.value("executor.pickled_array_bytes")
                ),
                dispatch_seconds=metrics.value("executor.dispatch_seconds"),
                compute_seconds=metrics.value("executor.compute_seconds"),
                workers=tuple(workers),
            )

        serving: Optional[ServingUtilization] = None
        if metrics.has("serving.requests"):
            batches = int(metrics.value("serving.batches"))
            rows = int(metrics.value("serving.rows"))
            stages: List[ServingStageLatency] = []
            for stage in _SERVING_STAGES:
                name = f"serving.{stage}"
                if not metrics.has(name):
                    continue
                hist = metrics.histogram(name)
                if hist.count == 0:
                    continue
                stages.append(
                    ServingStageLatency(
                        stage=stage,
                        count=hist.count,
                        p50_ms=hist.p50 * 1e3,
                        p99_ms=hist.p99 * 1e3,
                    )
                )
            serving = ServingUtilization(
                requests=int(metrics.value("serving.requests")),
                rejected=int(metrics.value("serving.rejected")),
                batches=batches,
                rows=rows,
                mean_batch_rows=rows / batches if batches else 0.0,
                stages=tuple(stages),
            )

        overlap_seconds: Optional[float] = None
        overlap_fraction: Optional[float] = None
        if tracer is not None:
            dma_spans = _merged_intervals(
                (s.begin, s.end) for s in tracer.spans if s.track.startswith("dma")
            )
            pe_spans = _merged_intervals(
                (s.begin, s.end) for s in tracer.spans if s.track.startswith("pe")
            )
            overlap_seconds = _intersection_length(dma_spans, pe_spans)
            overlap_fraction = fraction(overlap_seconds)

        return cls(
            elapsed_seconds=elapsed_seconds,
            pes=tuple(pes),
            channels=tuple(channels),
            dma=dma,
            memory=tuple(memory),
            dma_compute_overlap_seconds=overlap_seconds,
            dma_compute_overlap_fraction=overlap_fraction,
            executor=executor,
            serving=serving,
        )

    # -- export -----------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-dict (JSON-serialisable) form of the report."""
        out = asdict(self)
        for key in ("pes", "channels", "memory"):
            out[key] = list(out[key])
        if out["executor"] is not None:
            out["executor"]["workers"] = list(out["executor"]["workers"])
        if out["serving"] is not None:
            out["serving"]["stages"] = list(out["serving"]["stages"])
        return out

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The report serialised as JSON."""
        return json.dumps(self.to_dict(), indent=indent)

    def summary_line(self) -> str:
        """One-line digest (used by the fig4/fig6 output wiring)."""
        parts = []
        if self.channels:
            worst = min(self.channels, key=lambda c: c.plateau_fraction)
            parts.append(
                f"ch bw {worst.achieved_bandwidth / GIB:.2f} GiB/s "
                f"({worst.plateau_fraction:.0%} of plateau)"
            )
        if self.pes:
            mean_busy = sum(p.busy_fraction for p in self.pes) / len(self.pes)
            parts.append(f"PE busy {mean_busy:.0%}")
        if self.executor is None or self.dma.requests_h2d or self.dma.requests_d2h:
            parts.append(f"DMA busy {self.dma.busy_fraction:.0%}")
        if self.dma_compute_overlap_fraction is not None:
            parts.append(f"overlap {self.dma_compute_overlap_fraction:.0%}")
        if self.executor is not None and self.executor.workers:
            mean_busy = sum(
                w.busy_fraction for w in self.executor.workers
            ) / len(self.executor.workers)
            parts.append(
                f"host workers busy {mean_busy:.0%} "
                f"({self.executor.shards} shards)"
            )
        if self.serving is not None:
            digest = (
                f"serving {self.serving.requests} reqs "
                f"({self.serving.rejected} shed)"
            )
            e2e = next(
                (s for s in self.serving.stages if s.stage == "e2e"), None
            )
            if e2e is not None:
                digest += f", e2e p99 {e2e.p99_ms:.2f} ms"
            parts.append(digest)
        return ", ".join(parts)

    def format_text(self) -> str:
        """Render the full report as an aligned text block.

        Host-CPU-only reports (executor metrics, no device) skip the
        simulated-hardware sections instead of printing empty tables.
        """
        lines = [f"utilization report over {self.elapsed_seconds * 1e3:.3f} ms"]
        host_only = self.executor is not None and not (
            self.pes or self.channels or self.memory
        )
        if host_only:
            lines.extend(self._format_executor_lines())
            if self.serving is not None:
                lines.extend(self._format_serving_lines())
            return "\n".join(lines)
        lines.append("  PEs:")
        for pe in self.pes:
            lines.append(
                f"    pe{pe.index}: {pe.jobs} jobs, {pe.samples} samples, "
                f"busy {pe.busy_fraction:.1%} "
                f"(compute {pe.compute_seconds * 1e3:.3f} ms, "
                f"dispatch {pe.dispatch_seconds * 1e3:.3f} ms)"
            )
        lines.append("  HBM channels:")
        for ch in self.channels:
            lines.append(
                f"    ch{ch.index}: {ch.requests} reqs, "
                f"{(ch.bytes_read + ch.bytes_written) / 1e6:.2f} MB moved, "
                f"achieved {ch.achieved_bandwidth / GIB:.2f} GiB/s = "
                f"{ch.plateau_fraction:.1%} of the "
                f"{ch.plateau_bandwidth / GIB:.2f} GiB/s plateau, "
                f"busy {ch.busy_fraction:.1%}"
            )
        dma = self.dma
        lines.append(
            f"  DMA: {dma.requests_h2d}+{dma.requests_d2h} reqs, "
            f"{dma.bytes_h2d / 1e6:.2f} MB h2d / {dma.bytes_d2h / 1e6:.2f} MB d2h, "
            f"busy {dma.busy_fraction:.1%}"
        )
        if self.dma_compute_overlap_seconds is not None:
            lines.append(
                f"  DMA/compute overlap: "
                f"{self.dma_compute_overlap_seconds * 1e3:.3f} ms "
                f"({self.dma_compute_overlap_fraction:.1%} of elapsed)"
            )
        lines.append("  device memory:")
        for block in self.memory:
            lines.append(
                f"    block{block.block}: {block.allocs} allocs "
                f"({block.transient_failures} transient failures), "
                f"high water {block.high_water_bytes / 1e6:.2f} MB"
            )
        if self.executor is not None:
            lines.extend(self._format_executor_lines())
        if self.serving is not None:
            lines.extend(self._format_serving_lines())
        return "\n".join(lines)

    def _format_executor_lines(self) -> List[str]:
        """Render the host-CPU executor section of :meth:`format_text`."""
        ex = self.executor
        assert ex is not None
        lines = [
            "  host CPU executor:",
            f"    {ex.submits} submits, {ex.rows} rows in {ex.shards} shards, "
            f"{ex.bytes_in / 1e6:.2f} MB staged in / "
            f"{ex.bytes_out / 1e6:.2f} MB out via shared memory, "
            f"{ex.pickled_array_bytes} pickled payload bytes",
            f"    compute {ex.compute_seconds * 1e3:.3f} ms, "
            f"dispatch overhead {ex.dispatch_seconds * 1e3:.3f} ms",
        ]
        for worker in ex.workers:
            lines.append(
                f"    worker{worker.index}: "
                f"busy {worker.busy_seconds * 1e3:.3f} ms "
                f"({worker.busy_fraction:.1%} of elapsed)"
            )
        return lines

    def _format_serving_lines(self) -> List[str]:
        """Render the serving-broker section of :meth:`format_text`."""
        sv = self.serving
        assert sv is not None
        lines = [
            "  serving broker:",
            f"    {sv.requests} requests ({sv.rejected} shed), "
            f"{sv.rows} rows in {sv.batches} batches "
            f"(mean {sv.mean_batch_rows:.1f} rows/batch)",
        ]
        for stage in sv.stages:
            lines.append(
                f"    {stage.stage}: p50 {stage.p50_ms:.3f} ms, "
                f"p99 {stage.p99_ms:.3f} ms ({stage.count} obs)"
            )
        return lines
