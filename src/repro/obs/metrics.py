"""The metrics registry: counters, gauges, time stats and histograms.

Instrumentation backbone for the simulated system *and* the host-side
serving datapath.  A :class:`MetricsRegistry` is handed to
:class:`repro.host.device.SimulatedDevice` (and propagated to the HBM
channels, the DMA engine, the PE cores and the device memory manager)
or to the serving broker/executor; each component resolves its metric
objects **once at construction** and updates them from the callbacks
it already executes.  Three invariants make the layer safe to leave
on:

* **zero cost when disabled** — components hold ``None`` instead of
  metric objects when no registry is supplied, and every update site
  is guarded by a single ``is not None`` check;
* **strictly observational** — metrics never create simulation events
  or timeouts, only read ``env.now``, so simulated timings are
  bit-identical with and without a registry attached (asserted by the
  fast-forward equivalence suite);
* **atomic under threads** — every instrument of a registry shares
  that registry's lock, so increments from the broker's ``n_lanes``
  dispatch threads and the executor's lane submits never lose updates,
  and :meth:`MetricsRegistry.snapshot` is a consistent point-in-time
  view (a bare ``value += amount`` is a read-modify-write race under
  concurrent lane completion; the regression test hammers two lanes to
  prove updates survive).

Metric names are dotted paths (``hbm.ch0.bytes_read``,
``pe1.busy_seconds``, ``serving.queue_wait``); the
:class:`repro.obs.report.UtilizationReport` fuses them with
:class:`repro.sim.trace.Tracer` spans into the paper's utilization
claims, and :mod:`repro.obs.exporter` streams them out as
Prometheus-style text or JSON.
"""

from __future__ import annotations

import json
import threading
from typing import Dict, Iterable, Optional

from repro.errors import ReproError
from repro.obs.hist import LogHistogram

__all__ = [
    "Counter",
    "Gauge",
    "TimeWeightedStat",
    "LogHistogram",
    "MetricsRegistry",
]


class Counter:
    """A named monotonically-increasing counter (ints or seconds)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, *, lock: Optional[threading.RLock] = None):
        self.name = name
        self.value = 0.0
        self._lock = lock if lock is not None else threading.RLock()

    def add(self, amount: float = 1.0) -> None:
        """Increase the counter; *amount* must be non-negative."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease ({amount})")
        with self._lock:
            self.value += amount


class Gauge:
    """A named instantaneous value that also tracks its high-water mark."""

    __slots__ = ("name", "value", "maximum", "_lock")

    def __init__(self, name: str, *, lock: Optional[threading.RLock] = None):
        self.name = name
        self.value = 0.0
        self.maximum = 0.0
        self._lock = lock if lock is not None else threading.RLock()

    def set(self, value: float) -> None:
        """Replace the current value (high-water mark is retained)."""
        with self._lock:
            self.value = value
            if value > self.maximum:
                self.maximum = value

    def add(self, delta: float) -> None:
        """Shift the current value by *delta* (may be negative)."""
        with self._lock:
            self.set(self.value + delta)


class TimeWeightedStat:
    """Time-weighted mean/maximum of a sampled level (queue depth, ...).

    Call :meth:`update` with the *new* level whenever it changes; the
    previous level is integrated over the interval since the last
    update.  Time comes from the caller (``env.now``) so the stat never
    touches the engine.
    """

    __slots__ = (
        "name", "_level", "_since", "_area", "_observed", "maximum", "_lock"
    )

    def __init__(self, name: str, *, lock: Optional[threading.RLock] = None):
        self.name = name
        self._level = 0.0
        self._since: Optional[float] = None
        self._area = 0.0
        self._observed = 0.0
        self.maximum = 0.0
        self._lock = lock if lock is not None else threading.RLock()

    def update(self, level: float, now: float) -> None:
        """Record that the level is *level* from simulated time *now*."""
        with self._lock:
            if self._since is not None and now > self._since:
                self._area += self._level * (now - self._since)
                self._observed += now - self._since
            self._since = now
            self._level = level
            if level > self.maximum:
                self.maximum = level

    def mean(self) -> float:
        """Time-weighted mean level over the observed window."""
        with self._lock:
            if self._observed <= 0.0:
                return 0.0
            return self._area / self._observed


class MetricsRegistry:
    """Get-or-create registry of counters, gauges, time stats, histograms.

    All instruments created through one registry share one reentrant
    lock: increments are atomic across the serving broker's dispatch
    threads and executor lanes, and :meth:`snapshot` reads a consistent
    cut of every instrument.
    """

    def __init__(self):
        self._lock = threading.RLock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._stats: Dict[str, TimeWeightedStat] = {}
        self._histograms: Dict[str, LogHistogram] = {}

    # -- get-or-create ----------------------------------------------------------
    def _registered_kind(self, name: str) -> Optional[str]:
        """The instrument type *name* is registered as, if any."""
        if name in self._counters:
            return "counter"
        if name in self._gauges:
            return "gauge"
        if name in self._stats:
            return "time_stat"
        if name in self._histograms:
            return "histogram"
        return None

    def _check_collision(self, name: str, kind: str) -> None:
        """Reject registering *name* as a second instrument type."""
        existing = self._registered_kind(name)
        if existing is not None and existing != kind:
            raise ReproError(
                f"metric {name!r} is already registered as a {existing}; "
                f"cannot re-register it as a {kind}"
            )

    def counter(self, name: str) -> Counter:
        """The counter registered as *name* (created on first use)."""
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                self._check_collision(name, "counter")
                counter = self._counters[name] = Counter(name, lock=self._lock)
            return counter

    def gauge(self, name: str) -> Gauge:
        """The gauge registered as *name* (created on first use)."""
        with self._lock:
            gauge = self._gauges.get(name)
            if gauge is None:
                self._check_collision(name, "gauge")
                gauge = self._gauges[name] = Gauge(name, lock=self._lock)
            return gauge

    def time_stat(self, name: str) -> TimeWeightedStat:
        """The time-weighted stat registered as *name*."""
        with self._lock:
            stat = self._stats.get(name)
            if stat is None:
                self._check_collision(name, "time_stat")
                stat = self._stats[name] = TimeWeightedStat(
                    name, lock=self._lock
                )
            return stat

    def histogram(self, name: str, **kwargs) -> LogHistogram:
        """The log-bucketed histogram registered as *name*.

        Extra keyword arguments (``min_value``/``max_value``/
        ``growth``) configure the bucket layout on first creation and
        are ignored on later lookups of the same name.
        """
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                self._check_collision(name, "histogram")
                hist = self._histograms[name] = LogHistogram(
                    name, lock=self._lock, **kwargs
                )
            return hist

    # -- read-only access -------------------------------------------------------
    def value(self, name: str, default: float = 0.0) -> float:
        """Current value of a counter or gauge, *default* if absent."""
        counter = self._counters.get(name)
        if counter is not None:
            return counter.value
        gauge = self._gauges.get(name)
        if gauge is not None:
            return gauge.value
        return default

    def maximum(self, name: str, default: float = 0.0) -> float:
        """High-water mark of a gauge or time stat, *default* if absent."""
        gauge = self._gauges.get(name)
        if gauge is not None:
            return gauge.maximum
        stat = self._stats.get(name)
        if stat is not None:
            return stat.maximum
        return default

    def has(self, name: str) -> bool:
        """True when any metric was registered as *name*."""
        return (
            name in self._counters
            or name in self._gauges
            or name in self._stats
            or name in self._histograms
        )

    def names(self) -> Iterable[str]:
        """All registered metric names (every instrument kind)."""
        yield from self._counters
        yield from self._gauges
        yield from self._stats
        yield from self._histograms

    # -- export -----------------------------------------------------------------
    def snapshot(self) -> dict:
        """Plain-dict dump of every metric (JSON-serialisable).

        Taken under the registry lock, so concurrent lane completions
        never tear a half-applied update across the snapshot.  Empty
        histograms report ``None`` quantiles (strict-JSON safe).
        """
        def _finite(value: float):
            return value if value == value and abs(value) != float("inf") \
                else None

        with self._lock:
            return {
                "counters": {
                    name: c.value for name, c in sorted(self._counters.items())
                },
                "gauges": {
                    name: {"value": g.value, "max": g.maximum}
                    for name, g in sorted(self._gauges.items())
                },
                "time_stats": {
                    name: {"mean": s.mean(), "max": s.maximum}
                    for name, s in sorted(self._stats.items())
                },
                "histograms": {
                    name: {
                        key: (_finite(val) if key != "count" else val)
                        for key, val in h.summary().items()
                    }
                    for name, h in sorted(self._histograms.items())
                },
            }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The :meth:`snapshot` serialised as JSON."""
        return json.dumps(self.snapshot(), indent=indent)
