"""Streaming telemetry export: Prometheus text, JSON snapshots, SLOs.

The metrics registry and the per-stage latency histograms are
in-process objects; a serving deployment needs them *outside* the
process while the broker runs.  This module is the export edge:

* :class:`TelemetrySnapshotter` — one consistent cut of a
  :class:`~repro.obs.metrics.MetricsRegistry` (counters, gauges, time
  stats, histograms) plus optional SLO state, rendered either as a
  JSON document or as Prometheus text exposition (quantiles as
  ``summary`` metrics, the convention for client-side histograms);
* :class:`PeriodicTelemetryWriter` — a daemon thread rewriting the
  JSON snapshot to a file every interval (``repro serve
  --telemetry-out``), final snapshot flushed on stop, so a crashed or
  killed run still leaves its last-known state on disk;
* :class:`TelemetryServer` — a localhost-only HTTP endpoint
  (``repro serve --metrics-port``) serving ``/metrics`` (Prometheus
  text) and ``/telemetry`` (JSON) from live registry state — point a
  Prometheus scraper or ``curl`` at a running sweep;
* :class:`SLOTracker` — rolling-window error-budget accounting against
  a latency SLO: with target compliance ``target`` (default 99%), the
  error budget is the ``1 - target`` fraction of requests allowed over
  the SLO, and the **burn rate** is how many times faster than budget
  the window is consuming it (burn 1.0 = exactly on budget, > 1 =
  will exhaust it; the Google SRE workbook convention).  Shed requests
  burn budget too — a shed user is not a served user, which is exactly
  the survivorship bias the shed-visibility fix removes.

Everything here *reads* instruments; nothing on the serve hot path
blocks on export (the HTTP server and the writer run on their own
threads, snapshots take the registry lock only long enough to copy).
"""

from __future__ import annotations

import json
import re
import threading
import time
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Deque, Optional, Tuple

from repro.errors import ReproError

__all__ = [
    "SLOTracker",
    "TelemetrySnapshotter",
    "PeriodicTelemetryWriter",
    "TelemetryServer",
    "prometheus_name",
]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")

#: Quantile label → histogram-summary key, for Prometheus rendering.
_PROM_QUANTILES: Tuple[Tuple[str, str], ...] = (
    ("0.5", "p50"),
    ("0.95", "p95"),
    ("0.99", "p99"),
    ("0.999", "p999"),
)


def prometheus_name(name: str, prefix: str = "repro") -> str:
    """A dotted metric name as a legal Prometheus metric name."""
    return f"{prefix}_{_NAME_RE.sub('_', name)}"


class SLOTracker:
    """Rolling-window error-budget burn rate against a latency SLO.

    :meth:`record` each answered request's latency (and
    :meth:`record_shed` each shed one); :meth:`state` reduces the
    window to violation rate and burn rate.  The window is a deque of
    ``(stamp, violated)`` pairs pruned to *window_s* — fixed work per
    request, no sample retention beyond the window.  Stamps default to
    ``time.perf_counter()`` and can be passed explicitly for
    deterministic tests.
    """

    def __init__(
        self,
        slo_ms: float,
        *,
        target: float = 0.99,
        window_s: float = 60.0,
    ):
        if slo_ms <= 0:
            raise ReproError(f"slo_ms must be > 0, got {slo_ms}")
        if not 0.0 < target < 1.0:
            raise ReproError(
                f"target must be strictly between 0 and 1, got {target}"
            )
        if window_s <= 0:
            raise ReproError(f"window_s must be > 0, got {window_s}")
        self.slo_ms = float(slo_ms)
        self.target = float(target)
        self.window_s = float(window_s)
        self._events: Deque[Tuple[float, bool]] = deque()
        self._lock = threading.Lock()

    def _prune(self, now: float) -> None:
        horizon = now - self.window_s
        while self._events and self._events[0][0] < horizon:
            self._events.popleft()

    def record(self, latency_s: float, *, now: Optional[float] = None) -> None:
        """Record one answered request's latency (seconds)."""
        now = time.perf_counter() if now is None else now
        violated = latency_s * 1e3 > self.slo_ms
        with self._lock:
            self._events.append((now, violated))
            self._prune(now)

    def record_shed(self, *, now: Optional[float] = None) -> None:
        """Record one shed request (always an SLO violation)."""
        now = time.perf_counter() if now is None else now
        with self._lock:
            self._events.append((now, True))
            self._prune(now)

    def state(self, *, now: Optional[float] = None) -> dict:
        """The window's SLO accounting as a JSON-native dict."""
        now = time.perf_counter() if now is None else now
        with self._lock:
            self._prune(now)
            n = len(self._events)
            n_violations = sum(1 for _, violated in self._events if violated)
        violation_rate = n_violations / n if n else 0.0
        budget = 1.0 - self.target
        burn_rate = violation_rate / budget if n else 0.0
        return {
            "slo_ms": self.slo_ms,
            "target": self.target,
            "window_s": self.window_s,
            "window_requests": n,
            "window_violations": n_violations,
            "violation_rate": violation_rate,
            "error_budget": budget,
            "burn_rate": burn_rate,
            "budget_remaining": max(0.0, 1.0 - burn_rate),
        }


class TelemetrySnapshotter:
    """Consistent registry + SLO cuts, as JSON or Prometheus text."""

    def __init__(self, metrics, *, slo: Optional[SLOTracker] = None):
        self._metrics = metrics
        self._slo = slo
        self._epoch = time.perf_counter()

    def snapshot(self) -> dict:
        """One JSON-native telemetry document."""
        return {
            "schema_version": 1,
            "uptime_seconds": time.perf_counter() - self._epoch,
            "metrics": self._metrics.snapshot(),
            "slo": self._slo.state() if self._slo is not None else None,
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The snapshot serialised as JSON text."""
        return json.dumps(self.snapshot(), indent=indent)

    def to_prometheus(self) -> str:
        """The snapshot in Prometheus text exposition format.

        Counters become ``counter`` metrics, gauges ``gauge`` pairs
        (value + ``_max`` high-water), time stats gauge pairs
        (``_mean``/``_max``), histograms ``summary`` metrics with
        quantile labels plus ``_sum``/``_count``, and the SLO state a
        handful of gauges (``repro_slo_burn_rate`` is the alerting
        handle).
        """
        snap = self._metrics.snapshot()
        lines = []

        def emit(name: str, kind: str, samples) -> None:
            lines.append(f"# TYPE {name} {kind}")
            for suffix, value in samples:
                if value is None or value != value:
                    continue
                lines.append(f"{name}{suffix} {value:g}")

        for name, value in snap["counters"].items():
            emit(prometheus_name(name), "counter", [("", value)])
        for name, values in snap["gauges"].items():
            pname = prometheus_name(name)
            emit(pname, "gauge", [("", values["value"])])
            emit(pname + "_max", "gauge", [("", values["max"])])
        for name, values in snap["time_stats"].items():
            pname = prometheus_name(name)
            emit(pname + "_mean", "gauge", [("", values["mean"])])
            emit(pname + "_max", "gauge", [("", values["max"])])
        for name, values in snap["histograms"].items():
            pname = prometheus_name(name)
            emit(
                pname,
                "summary",
                [
                    ('{quantile="%s"}' % q, values[key])
                    for q, key in _PROM_QUANTILES
                ]
                + [("_sum", values["sum"]), ("_count", values["count"])],
            )
        if self._slo is not None:
            state = self._slo.state()
            for key in (
                "burn_rate",
                "violation_rate",
                "budget_remaining",
                "window_requests",
                "window_violations",
            ):
                emit(prometheus_name(f"slo.{key}"), "gauge",
                     [("", state[key])])
        return "\n".join(lines) + "\n"


class PeriodicTelemetryWriter:
    """Daemon thread rewriting the JSON snapshot to a file on a cadence.

    ``start()``/``stop()`` (or use as a context manager); *stop*
    always writes one final snapshot, so the file on disk reflects the
    run's end state even when the interval never elapsed.
    """

    def __init__(
        self,
        snapshotter: TelemetrySnapshotter,
        path: str,
        *,
        interval_s: float = 1.0,
    ):
        if interval_s <= 0:
            raise ReproError(f"interval_s must be > 0, got {interval_s}")
        self._snapshotter = snapshotter
        self.path = path
        self.interval_s = float(interval_s)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.n_writes = 0

    def _write(self) -> None:
        with open(self.path, "w") as handle:
            handle.write(self._snapshotter.to_json())
        self.n_writes += 1

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self._write()

    def start(self) -> "PeriodicTelemetryWriter":
        """Write an initial snapshot and start the cadence thread."""
        self._write()
        self._thread = threading.Thread(
            target=self._run, name="repro-telemetry", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the thread and write the final snapshot."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._write()

    def __enter__(self) -> "PeriodicTelemetryWriter":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


class TelemetryServer:
    """Localhost HTTP endpoint serving live telemetry.

    ``GET /metrics`` returns the Prometheus text exposition,
    ``GET /telemetry`` (or ``/telemetry.json``) the JSON snapshot —
    rendered from live registry state per request.  Binds
    ``127.0.0.1`` only (telemetry is not an open service); pass port 0
    to let the OS pick (the bound port is :attr:`port`).
    """

    def __init__(self, snapshotter: TelemetrySnapshotter, *, port: int = 0):
        snapshotter_ref = snapshotter

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self):  # noqa: N802 - http.server API
                if self.path in ("/metrics", "/metrics/"):
                    body = snapshotter_ref.to_prometheus().encode()
                    ctype = "text/plain; version=0.0.4; charset=utf-8"
                elif self.path in ("/telemetry", "/telemetry.json", "/"):
                    body = snapshotter_ref.to_json().encode()
                    ctype = "application/json"
                else:
                    self.send_error(404, "unknown telemetry path")
                    return
                self.send_response(200)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):  # silence per-request stderr
                pass

        self._server = ThreadingHTTPServer(("127.0.0.1", port), _Handler)
        self._server.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        """The bound TCP port (useful with ``port=0``)."""
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the endpoint."""
        return f"http://127.0.0.1:{self.port}"

    def start(self) -> "TelemetryServer":
        """Serve on a daemon thread until :meth:`stop`."""
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-telemetry-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the server down and join its thread."""
        self._server.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._server.server_close()

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
