"""Benchmark trajectory recorder (`repro bench`).

The repo's performance story is itself a claim that needs instruments:
"the executor is zero-copy", "fast-forwarding makes paper-scale sweeps
affordable" are throughput statements that silently rot as the code
grows.  This module runs a small canonical scenario suite and appends
each measurement to a per-scenario history file, so the performance of
the codebase becomes a *trajectory* committed alongside it:

* ``fig4_point`` — one fig. 4 sweep point (NIPS10, 2 cores, 1 M
  samples per core, transfers included), measured as simulated samples
  per wall-clock second — the fast-forward simulator's own speed;
* ``plan_speedup`` — the compiled-plan vs graph-walk ratio on NIPS20
  (the software analog of the paper's compile-once move);
* ``executor_throughput`` — rows/s of one 1 M-row NIPS10 batch through
  the zero-copy :class:`~repro.baselines.executor.ParallelPlanExecutor`;
* ``des_events`` — scheduled events per wall second of a burst-granular
  (traced) simulation — the discrete-event engine's raw speed;
* ``native_speedup`` — the compiled-C-kernel vs numpy-plan ratio on
  NIPS10 (single-core, best of 3) — the standing contest ROADMAP
  item 3 asks for; requires a C compiler (the scenario raises rather
  than silently measuring the fallback path);
* ``native_threads`` — the native kernel's in-process thread scaling
  on 1 M NIPS10 rows: best-of-3 single-thread time over best-of-3
  ``min(4, cpu_count)``-thread time (results bit-identical by
  construction).  Also strict about requiring a C compiler; a 1-CPU
  host honestly records ~1.0 under its own fingerprint;
* ``serving_throughput`` — burst-drain goodput (answered requests per
  wall second) of the async micro-batching broker on a single-worker
  executor with two pipelined lanes — the serve-path capacity ceiling
  the ``repro serve`` layer adds on top of raw batch evaluation;
* ``serving_latency`` — p99 answer latency (ms, lower is better) of
  the same pipelined datapath at a fixed Poisson rate well below
  capacity — the tail-latency complement to the capacity ceiling: it
  catches regressions that leave goodput intact but lengthen the
  flush-window/dispatch/scatter path.

Each sample carries a host/environment fingerprint (CPU count, python,
numpy, machine, git SHA), and ``repro bench --check`` compares the
newest sample against the *median of prior samples with the same
fingerprint key* within a per-scenario tolerance band — so a slower CI
runner or laptop trivially passes until it has accumulated its own
baseline, while a real regression on a known host exits nonzero.

History files are plain JSON (``BENCH_<scenario>.json``), schema
versioned, append-only, and small enough to commit; the default
location is ``benchmarks/trajectory/`` at the repo root.
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import subprocess
import sys
import time
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError

__all__ = [
    "SCHEMA_VERSION",
    "BenchScenario",
    "BenchSample",
    "CheckResult",
    "SCENARIOS",
    "CHEAP_SCENARIOS",
    "default_bench_dir",
    "env_fingerprint",
    "fingerprint_key",
    "history_path",
    "load_history",
    "record_scenarios",
    "check_scenarios",
    "format_record",
    "format_check",
]

#: Version of the BENCH_*.json sample schema.  Bump when the sample
#: shape changes; ``load_history`` rejects files from the future.
SCHEMA_VERSION = 1


@dataclass(frozen=True)
class BenchScenario:
    """One canonical measurement in the trajectory suite.

    ``runner`` performs the measurement and returns ``(value,
    wall_seconds)``; ``tolerance`` is the relative band ``--check``
    allows the newest sample to fall below (above, for
    lower-is-better scenarios) the fingerprint-matched baseline.
    """

    name: str
    unit: str
    higher_is_better: bool
    tolerance: float
    description: str
    runner: Callable[[], Tuple[float, float]]


@dataclass(frozen=True)
class BenchSample:
    """One recorded measurement of a scenario."""

    value: float
    wall_seconds: float
    recorded_at: str
    fingerprint: Dict[str, object]

    def to_dict(self) -> dict:
        """The JSON-object form stored in the history file."""
        return {
            "value": self.value,
            "wall_seconds": self.wall_seconds,
            "recorded_at": self.recorded_at,
            "fingerprint": dict(self.fingerprint),
        }


@dataclass(frozen=True)
class CheckResult:
    """Outcome of comparing one scenario's newest sample to baseline.

    ``skipped_fingerprint`` marks the "prior samples exist but none
    share this host's fingerprint key" case: the check passes, but the
    scenario was effectively *not gated* — CI logs surface these so a
    trajectory that silently stopped gating is diagnosable.
    """

    scenario: str
    ok: bool
    message: str
    newest: Optional[float] = None
    baseline: Optional[float] = None
    skipped_fingerprint: bool = False


# -- scenario runners ------------------------------------------------------------
#: Minimum accumulated wall time per micro-scenario measurement; the
#: fast-forward simulator finishes one run in a few ms, far below
#: timer noise, so micro-runs repeat until this much wall has elapsed.
_MIN_MEASURE_SECONDS = 0.25


def _accumulate(
    run_once: Callable[[], float],
    *,
    min_wall: float = _MIN_MEASURE_SECONDS,
    max_iters: int = 200,
) -> Tuple[float, float]:
    """Repeat a micro-run until enough wall time accumulates.

    *run_once* performs one full measurement (setup included — setup
    cost is part of the speed being tracked) and returns the number of
    units it processed; the result is ``(units_per_second,
    total_wall)`` over at least 3 and at most *max_iters* repeats.
    """
    units = 0.0
    wall = 0.0
    iters = 0
    while iters < 3 or (wall < min_wall and iters < max_iters):
        start = time.perf_counter()
        units += run_once()
        wall += time.perf_counter() - start
        iters += 1
    return units / wall, wall


def _run_fig4_point() -> Tuple[float, float]:
    from repro.compiler.design import compose_design
    from repro.experiments.cache import benchmark_core
    from repro.host.device import SimulatedDevice
    from repro.host.runtime import InferenceJobConfig, InferenceRuntime
    from repro.platforms.specs import XUPVVH_HBM_PLATFORM

    n_cores, samples_per_core = 2, 1_000_000
    core = benchmark_core("NIPS10", "cfp")

    def run_once() -> float:
        design = compose_design(core, n_cores, XUPVVH_HBM_PLATFORM)
        device = SimulatedDevice(design)
        runtime = InferenceRuntime(device, InferenceJobConfig(threads_per_pe=1))
        runtime.run_timing_only(samples_per_core * n_cores)
        return samples_per_core * n_cores

    return _accumulate(run_once)


def _run_plan_speedup() -> Tuple[float, float]:
    from repro.experiments.plan_speedup import run_plan_speedup

    start = time.perf_counter()
    rows = run_plan_speedup(("NIPS20",), n_samples=20_000, repeats=3)
    wall = time.perf_counter() - start
    return rows[0].speedup, wall


def _run_executor_throughput() -> Tuple[float, float]:
    from repro.baselines.executor import ParallelPlanExecutor
    from repro.experiments.utilization import host_cpu_batch
    from repro.spn.nips import nips_benchmark

    n_rows = 1_000_000
    bench = nips_benchmark("NIPS10")
    data = host_cpu_batch("NIPS10", n_rows)
    with ParallelPlanExecutor(bench.spn) as executor:
        start = time.perf_counter()
        executor.submit(data)
        wall = time.perf_counter() - start
    return n_rows / wall, wall


def _run_native_speedup() -> Tuple[float, float]:
    import numpy as np

    from repro.compiler.native_build import get_native_kernel
    from repro.experiments.utilization import host_cpu_batch
    from repro.spn.nips import nips_benchmark
    from repro.spn.plan import get_plan
    from repro.spn.plan_eval import plan_log_likelihood

    n_rows = 200_000
    bench = nips_benchmark("NIPS10")
    plan = get_plan(bench.spn)
    # Raise (ReproError subclass) rather than measure the fallback:
    # a silently-degraded "speedup of 1.0" would poison the trajectory.
    kernel = get_native_kernel(plan, np.float64, require=True)
    data = host_cpu_batch("NIPS10", n_rows)
    start = time.perf_counter()
    plan_best = min(
        _timed(lambda: plan_log_likelihood(plan, data)) for _ in range(3)
    )
    native_best = min(
        _timed(lambda: kernel.log_likelihood(data)) for _ in range(3)
    )
    wall = time.perf_counter() - start
    return plan_best / native_best, wall


def _run_native_threads() -> Tuple[float, float]:
    import os

    import numpy as np

    from repro.compiler.native_build import get_native_kernel
    from repro.experiments.utilization import host_cpu_batch
    from repro.spn.nips import nips_benchmark
    from repro.spn.plan import get_plan

    n_rows = 1_000_000
    bench = nips_benchmark("NIPS10")
    plan = get_plan(bench.spn)
    # Strict like native_speedup: a fallback "parallelism of 1.0"
    # measured on the numpy plan would poison the trajectory.
    kernel = get_native_kernel(plan, np.float64, require=True)
    data = host_cpu_batch("NIPS10", n_rows)
    # Scale the request to the machine so the recorded sample is
    # honest: a 1-CPU host records ~1.0 under its own fingerprint
    # (cpu_count is part of the fingerprint key), CI's 4-core runners
    # record — and gate — the real 4-thread ratio.
    n_threads = min(4, os.cpu_count() or 1)
    start = time.perf_counter()
    single_best = min(
        _timed(lambda: kernel.log_likelihood(data, threads=1))
        for _ in range(3)
    )
    threaded_best = min(
        _timed(lambda: kernel.log_likelihood(data, threads=n_threads))
        for _ in range(3)
    )
    wall = time.perf_counter() - start
    return single_best / threaded_best, wall


def _run_serving_throughput() -> Tuple[float, float]:
    import asyncio

    import numpy as np

    from repro.baselines.executor import ParallelPlanExecutor
    from repro.experiments.utilization import host_cpu_batch
    from repro.serving.broker import MicroBatchBroker
    from repro.serving.loadgen import run_open_loop
    from repro.spn.nips import nips_benchmark

    # A burst drain, not a paced run: every request arrives at t=0, so
    # goodput is requests over time-to-drain — the serve-path capacity
    # ceiling (event loop + arena coalescing + lane dispatch + kernel).
    # A paced Poisson load only measures the offered rate whenever the
    # broker keeps up, which would make the trajectory sample a
    # constant.  The queue bound exceeds the burst so nothing sheds —
    # shed requests would flatter a slow broker's goodput.  n_lanes=2
    # is the pipelined-datapath default (docs/serving.md): batch k+1
    # coalesces and dispatches while batch k still computes.
    n_requests = 20_000
    bench = nips_benchmark("NIPS10")
    data = host_cpu_batch("NIPS10", 4096)
    arrivals = np.zeros(n_requests)

    async def run() -> Tuple[float, float]:
        start = time.perf_counter()
        with ParallelPlanExecutor(
            bench.spn, n_workers=1, max_lanes=3
        ) as executor:
            async with MicroBatchBroker(
                executor,
                max_batch_rows=1024,
                max_wait_ms=2.0,
                max_queue_rows=100_000,
                n_lanes=2,
            ) as broker:
                result = await run_open_loop(broker, data, arrivals)
        if result.n_rejected or result.n_failed:
            raise ReproError(
                f"serving_throughput run shed/failed requests "
                f"({result.n_rejected}/{result.n_failed}) - the sample "
                "would not measure goodput"
            )
        return result.goodput_rps, time.perf_counter() - start

    return asyncio.run(run())


def _run_serving_latency() -> Tuple[float, float]:
    import asyncio

    from repro.baselines.executor import ParallelPlanExecutor
    from repro.experiments.utilization import host_cpu_batch
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.rtrace import RequestTraceRecorder
    from repro.serving.broker import MicroBatchBroker
    from repro.serving.loadgen import poisson_arrivals, run_open_loop
    from repro.spn.nips import nips_benchmark

    # The complement of the burst drain: p99 answer latency at a fixed
    # offered rate *well below* capacity, where latency is set by the
    # flush window + service + scatter path, not by queue growth.  The
    # trajectory gate catches regressions that leave capacity intact
    # but lengthen the tail (slower flush path, lost dispatch overlap,
    # event-loop stalls).  Lower is better.
    #
    # Telemetry (registry + default-sampled request tracing) is ON for
    # the measured run: the gated p99 bounds the observability
    # overhead too, so per-stage histograms and 1-in-16 flow sampling
    # can never quietly cost the tail what they claim to measure.
    rate_rps, duration_s = 500.0, 3.0
    bench = nips_benchmark("NIPS10")
    data = host_cpu_batch("NIPS10", 4096)
    warmup = poisson_arrivals(rate_rps, 0.3, seed=7)
    arrivals = poisson_arrivals(rate_rps, duration_s, seed=13)

    async def run() -> Tuple[float, float]:
        start = time.perf_counter()
        with ParallelPlanExecutor(
            bench.spn, n_workers=1, max_lanes=3
        ) as executor:
            async with MicroBatchBroker(
                executor,
                max_batch_rows=512,
                max_wait_ms=2.0,
                max_queue_rows=100_000,
                n_lanes=2,
                metrics=MetricsRegistry(),
                rtrace=RequestTraceRecorder(),
            ) as broker:
                # A short unrecorded pass first: the measured p99 must
                # reflect the steady-state answer path, not one-time
                # plan/evaluator warm-up on the first batches.
                await run_open_loop(broker, data, warmup)
                result = await run_open_loop(broker, data, arrivals)
        if result.n_rejected or result.n_failed:
            raise ReproError(
                f"serving_latency run shed/failed requests "
                f"({result.n_rejected}/{result.n_failed}) - p99 would "
                "not measure the answer path"
            )
        return result.p99_ms, time.perf_counter() - start

    return asyncio.run(run())


def _timed(run: Callable[[], object]) -> float:
    """Wall seconds of one call."""
    start = time.perf_counter()
    run()
    return time.perf_counter() - start


def _run_des_events() -> Tuple[float, float]:
    from repro.compiler.design import compose_design
    from repro.experiments.cache import benchmark_core
    from repro.host.device import SimulatedDevice
    from repro.host.runtime import InferenceJobConfig, InferenceRuntime
    from repro.platforms.specs import XUPVVH_HBM_PLATFORM
    from repro.sim.trace import Tracer

    n_cores, samples_per_core = 2, 200_000
    core = benchmark_core("NIPS10", "cfp")

    def run_once() -> float:
        design = compose_design(core, n_cores, XUPVVH_HBM_PLATFORM)
        device = SimulatedDevice(design)
        # A tracer forces the burst-granular core model, so the engine
        # actually schedules per-burst events instead of fast-forwarding.
        tracer = Tracer(device.env)
        runtime = InferenceRuntime(
            device, InferenceJobConfig(threads_per_pe=1), tracer=tracer
        )
        runtime.run_timing_only(samples_per_core * n_cores)
        return device.env._sequence

    return _accumulate(run_once)


#: The canonical suite, in recording order.
SCENARIOS: Dict[str, BenchScenario] = {
    scenario.name: scenario
    for scenario in (
        BenchScenario(
            name="fig4_point",
            unit="simulated samples / wall second",
            higher_is_better=True,
            tolerance=0.40,
            description="one fig. 4 sweep point (NIPS10, 2 cores, 1 M "
            "samples/core, transfers included) through the fast-forward "
            "simulator",
            runner=_run_fig4_point,
        ),
        BenchScenario(
            name="plan_speedup",
            unit="walk/plan ratio",
            higher_is_better=True,
            tolerance=0.40,
            description="compiled-plan vs graph-walk log-likelihood on "
            "NIPS20 (20 k samples, best of 3)",
            runner=_run_plan_speedup,
        ),
        BenchScenario(
            name="executor_throughput",
            unit="rows / wall second",
            higher_is_better=True,
            tolerance=0.40,
            description="1 M NIPS10 rows through the zero-copy "
            "ParallelPlanExecutor",
            runner=_run_executor_throughput,
        ),
        BenchScenario(
            name="des_events",
            unit="scheduled events / wall second",
            higher_is_better=True,
            tolerance=0.40,
            description="discrete-event engine speed on a burst-granular "
            "(traced) NIPS10 run",
            runner=_run_des_events,
        ),
        BenchScenario(
            name="native_speedup",
            unit="plan/native ratio",
            higher_is_better=True,
            tolerance=0.40,
            description="compiled-C-kernel vs numpy-plan log-likelihood "
            "on NIPS10 (200 k rows, single core, best of 3); requires a "
            "C compiler",
            runner=_run_native_speedup,
        ),
        BenchScenario(
            name="serving_throughput",
            unit="answered requests / wall second",
            higher_is_better=True,
            tolerance=0.40,
            description="burst-drain goodput of the async micro-batching "
            "broker (20 k requests arriving at once, NIPS10, "
            "single-worker executor, 2 pipelined lanes, zero shed "
            "tolerated)",
            runner=_run_serving_throughput,
        ),
        BenchScenario(
            name="serving_latency",
            unit="p99 ms",
            higher_is_better=False,
            tolerance=1.00,
            description="p99 answer latency of the pipelined serving "
            "datapath at a fixed 500 req/s Poisson load (NIPS10, "
            "single-worker executor, 2 lanes, zero shed tolerated); "
            "lower is better",
            runner=_run_serving_latency,
        ),
        BenchScenario(
            name="native_threads",
            unit="1-thread/N-thread ratio",
            higher_is_better=True,
            tolerance=0.40,
            description="in-process thread scaling of the native kernel "
            "on NIPS10 (1 M rows, min(4, cpu_count) threads vs 1, best "
            "of 3, bit-identical results); requires a C compiler",
            runner=_run_native_threads,
        ),
    )
}

#: The two cheapest scenarios — what CI's bench-trajectory step runs.
CHEAP_SCENARIOS: Tuple[str, ...] = ("fig4_point", "des_events")


# -- environment fingerprint -----------------------------------------------------
def _git_sha() -> str:
    repo_root = Path(__file__).resolve().parents[3]
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=repo_root,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def env_fingerprint() -> Dict[str, object]:
    """The host/environment identity stamped onto every sample."""
    import numpy

    return {
        "cpu_count": os.cpu_count() or 1,
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "machine": platform.machine(),
        "system": platform.system(),
        "git_sha": _git_sha(),
    }


def fingerprint_key(fingerprint: Dict[str, object]) -> Tuple[object, ...]:
    """The subset of a fingerprint that defines a comparable host.

    Samples only gate against samples with the same key: machine
    architecture, CPU count and python ``major.minor`` — a different
    CI runner or laptop starts its own baseline instead of failing
    against someone else's hardware.
    """
    python = str(fingerprint.get("python", ""))
    return (
        fingerprint.get("machine"),
        fingerprint.get("cpu_count"),
        ".".join(python.split(".")[:2]),
    )


# -- history files ---------------------------------------------------------------
def default_bench_dir() -> str:
    """``benchmarks/trajectory/`` at the repo root."""
    return str(Path(__file__).resolve().parents[3] / "benchmarks" / "trajectory")


def history_path(bench_dir: str, scenario: str) -> Path:
    """Path of one scenario's ``BENCH_<scenario>.json`` history file."""
    return Path(bench_dir) / f"BENCH_{scenario}.json"


def load_history(bench_dir: str, scenario: str) -> Optional[dict]:
    """Load one scenario's history file, validating its schema.

    Returns ``None`` when the file does not exist yet; raises
    :class:`ReproError` on malformed or future-schema files.
    """
    path = history_path(bench_dir, scenario)
    if not path.exists():
        return None
    try:
        with open(path) as handle:
            history = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"cannot read bench history {path}: {exc}") from exc
    version = history.get("schema_version")
    if not isinstance(version, int) or version > SCHEMA_VERSION:
        raise ReproError(
            f"bench history {path} has schema_version {version!r}; this "
            f"build understands <= {SCHEMA_VERSION}"
        )
    if history.get("scenario") != scenario or not isinstance(
        history.get("samples"), list
    ):
        raise ReproError(f"bench history {path} is malformed")
    return history


def _fresh_history(scenario: BenchScenario) -> dict:
    return {
        "schema_version": SCHEMA_VERSION,
        "scenario": scenario.name,
        "unit": scenario.unit,
        "higher_is_better": scenario.higher_is_better,
        "tolerance": scenario.tolerance,
        "description": scenario.description,
        "samples": [],
    }


def _resolve(names: Optional[Sequence[str]]) -> List[BenchScenario]:
    if names is None:
        return list(SCENARIOS.values())
    scenarios = []
    for name in names:
        if name not in SCENARIOS:
            raise ReproError(
                f"unknown bench scenario {name!r}; known: "
                + ", ".join(sorted(SCENARIOS))
            )
        scenarios.append(SCENARIOS[name])
    return scenarios


# -- record / check --------------------------------------------------------------
def record_scenarios(
    names: Optional[Sequence[str]] = None,
    *,
    bench_dir: Optional[str] = None,
) -> List[BenchSample]:
    """Run scenarios and append one sample each to their history files.

    Creates *bench_dir* (and fresh history files) as needed.  Returns
    the recorded samples in scenario order.
    """
    bench_dir = bench_dir or default_bench_dir()
    Path(bench_dir).mkdir(parents=True, exist_ok=True)
    fingerprint = env_fingerprint()
    samples: List[BenchSample] = []
    for scenario in _resolve(names):
        value, wall = scenario.runner()
        sample = BenchSample(
            value=value,
            wall_seconds=wall,
            recorded_at=datetime.now(timezone.utc).isoformat(),
            fingerprint=fingerprint,
        )
        history = load_history(bench_dir, scenario.name)
        if history is None:
            history = _fresh_history(scenario)
        history["samples"].append(sample.to_dict())
        path = history_path(bench_dir, scenario.name)
        with open(path, "w") as handle:
            json.dump(history, handle, indent=2)
            handle.write("\n")
        samples.append(sample)
    return samples


def _baseline(history: dict, newest_fp: Dict[str, object]) -> Optional[float]:
    """Median value of prior samples sharing the newest fingerprint key."""
    key = fingerprint_key(newest_fp)
    prior = [
        sample["value"]
        for sample in history["samples"][:-1]
        if fingerprint_key(sample.get("fingerprint", {})) == key
    ]
    return statistics.median(prior) if prior else None


def check_scenarios(
    names: Optional[Sequence[str]] = None,
    *,
    bench_dir: Optional[str] = None,
) -> List[CheckResult]:
    """Gate each scenario's newest sample against its host baseline.

    The baseline is the median of all *prior* samples with the same
    :func:`fingerprint_key`; a scenario passes when the newest value is
    within the scenario's tolerance band of that baseline, or when no
    comparable baseline exists yet (first run on this host).
    """
    bench_dir = bench_dir or default_bench_dir()
    results: List[CheckResult] = []
    for scenario in _resolve(names):
        history = load_history(bench_dir, scenario.name)
        if history is None or not history["samples"]:
            results.append(
                CheckResult(
                    scenario=scenario.name,
                    ok=False,
                    message="no samples recorded (run `repro bench --record`)",
                )
            )
            continue
        newest = history["samples"][-1]
        baseline = _baseline(history, newest.get("fingerprint", {}))
        tolerance = float(history.get("tolerance", scenario.tolerance))
        higher = bool(history.get("higher_is_better", scenario.higher_is_better))
        if baseline is None:
            n_prior = len(history["samples"]) - 1
            if n_prior:
                # Prior samples exist but none share this host's
                # fingerprint key: the gate is effectively skipped, and
                # that must be visible, not a silent pass — a CI log
                # has to distinguish "fast enough" from "not compared".
                message = (
                    f"no baseline (fingerprint changed): {n_prior} prior "
                    "sample(s) exist, none under this host's fingerprint "
                    "key - skipped, not gated"
                )
            else:
                message = (
                    "no comparable baseline yet (first sample on this "
                    "host) - pass"
                )
            results.append(
                CheckResult(
                    scenario=scenario.name,
                    ok=True,
                    message=message,
                    newest=newest["value"],
                    skipped_fingerprint=bool(n_prior),
                )
            )
            continue
        if higher:
            floor = baseline * (1.0 - tolerance)
            regressed = newest["value"] < floor
            band = f">= {floor:.6g}"
        else:
            ceiling = baseline * (1.0 + tolerance)
            regressed = newest["value"] > ceiling
            band = f"<= {ceiling:.6g}"
        verdict = "REGRESSION" if regressed else "ok"
        results.append(
            CheckResult(
                scenario=scenario.name,
                ok=not regressed,
                message=(
                    f"{verdict}: newest {newest['value']:.6g} vs baseline "
                    f"{baseline:.6g} (allowed {band}, tolerance "
                    f"{tolerance:.0%})"
                ),
                newest=newest["value"],
                baseline=baseline,
            )
        )
    return results


# -- rendering -------------------------------------------------------------------
def format_record(samples: Sequence[BenchSample], names: Sequence[str]) -> str:
    """Render recorded samples for the CLI."""
    lines = ["bench trajectory - recorded:"]
    for name, sample in zip(names, samples):
        scenario = SCENARIOS[name]
        lines.append(
            f"  {name}: {sample.value:.6g} {scenario.unit} "
            f"(measured in {sample.wall_seconds:.2f} s wall)"
        )
    fp = samples[0].fingerprint if samples else env_fingerprint()
    lines.append(
        "  fingerprint: "
        + ", ".join(f"{key}={value}" for key, value in sorted(fp.items()))
    )
    return "\n".join(lines)


def format_check(results: Sequence[CheckResult]) -> str:
    """Render check verdicts for the CLI.

    Scenarios whose gate was skipped for a fingerprint-key mismatch are
    listed on a dedicated summary line so a CI log shows exactly which
    scenarios passed *without* being compared to any baseline.
    """
    lines = ["bench trajectory - check:"]
    for result in results:
        lines.append(f"  {result.scenario}: {result.message}")
    skipped = [r.scenario for r in results if r.skipped_fingerprint]
    if skipped:
        lines.append(
            "  skipped (fingerprint-key mismatch, not gated): "
            + ", ".join(skipped)
        )
    lines.append(
        "  PASS" if all(result.ok for result in results) else "  FAIL"
    )
    return "\n".join(lines)
