"""Request-scoped tracing for the serving datapath.

Aggregate counters say *that* serving is slow; they cannot say where
one query's 4.2 ms went.  This module carries a per-request
:class:`RequestTrace` through the broker: monotonic
(``time.perf_counter``) stamps at every stage boundary of the serve
path —

``enqueue`` → ``batch_seal`` → ``dispatch`` → ``kernel_start`` →
``kernel_end`` → ``complete``

— which decompose end-to-end latency into the five additive stages the
per-stage histograms (``serving.batch_form`` / ``serving.queue_wait``
/ ``serving.dispatch`` / ``serving.kernel`` / ``serving.scatter``)
report:

* **batch_form** (enqueue → batch_seal): the coalescing window — how
  long the request sat in its forming batch (includes any wait for a
  free arena);
* **queue_wait** (batch_seal → dispatch): the sealed batch queued for
  a free dispatch lane thread;
* **dispatch** (dispatch → kernel_start): lane-thread preamble up to
  the engine call;
* **kernel** (kernel_start → kernel_end): the engine call itself;
* **scatter** (kernel_end → complete): results scattered back through
  the event loop onto the caller's future.

Tracing every request would be observer effect, not observability, so
the :class:`RequestTraceRecorder` samples 1-in-N (deterministic
round-robin, first request always sampled) into a bounded ring buffer
— fixed memory and amortised-zero cost at any request rate, the
standard tail-sampling compromise.  Completed traces export into the
existing Chrome/Perfetto trace as **flow events**
(:func:`add_request_flows`): a sampled request renders as a clickable
arrow from the load generator's wait span through the broker handoff
and its ``serving lane<k>`` batch span into the ``executor worker``
span that evaluated it, plus an async ``b``/``e`` interval for its
end-to-end lifetime.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Tuple

from repro.errors import ReproError
from repro.obs.trace_export import HOST_PID, ChromeTraceBuilder

__all__ = [
    "REQUEST_STAGES",
    "STAGE_HISTOGRAMS",
    "RequestTrace",
    "RequestTraceRecorder",
    "add_request_flows",
]

#: Stage-boundary stamps every trace carries, in path order.
REQUEST_STAGES: Tuple[str, ...] = (
    "enqueue",
    "batch_seal",
    "dispatch",
    "kernel_start",
    "kernel_end",
    "complete",
)

#: The additive per-stage histogram names (``serving.<stage>``) and the
#: stamp pair each one measures.  The five stages partition
#: ``serving.e2e`` exactly: per request,
#: ``sum(stages) == complete - enqueue``.
STAGE_HISTOGRAMS: Tuple[Tuple[str, str, str], ...] = (
    ("batch_form", "enqueue", "batch_seal"),
    ("queue_wait", "batch_seal", "dispatch"),
    ("dispatch", "dispatch", "kernel_start"),
    ("kernel", "kernel_start", "kernel_end"),
    ("scatter", "kernel_end", "complete"),
)


class RequestTrace:
    """Stage stamps of one sampled request (absolute perf_counter)."""

    __slots__ = (
        "trace_id",
        "enqueue",
        "batch_seal",
        "dispatch",
        "kernel_start",
        "kernel_end",
        "complete",
        "lane",
        "batch_id",
        "worker_track",
        "shed",
    )

    def __init__(self, trace_id: int):
        self.trace_id = trace_id
        self.enqueue: Optional[float] = None
        self.batch_seal: Optional[float] = None
        self.dispatch: Optional[float] = None
        self.kernel_start: Optional[float] = None
        self.kernel_end: Optional[float] = None
        self.complete: Optional[float] = None
        self.lane: Optional[int] = None
        self.batch_id: Optional[int] = None
        self.worker_track: Optional[str] = None
        self.shed = False

    def stamp(self, stage: str, at: float) -> None:
        """Set one stage-boundary stamp (absolute ``perf_counter``)."""
        if stage not in REQUEST_STAGES:
            raise ReproError(
                f"unknown request stage {stage!r}; stages are "
                f"{', '.join(REQUEST_STAGES)}"
            )
        setattr(self, stage, at)

    @property
    def is_complete(self) -> bool:
        """True when every stage stamp was recorded (and not shed)."""
        return not self.shed and all(
            getattr(self, stage) is not None for stage in REQUEST_STAGES
        )

    def stage_seconds(self) -> Dict[str, float]:
        """The five additive stage durations (requires all stamps)."""
        if not self.is_complete:
            raise ReproError(
                f"request trace {self.trace_id} is incomplete; "
                "stage_seconds() needs every stamp"
            )
        return {
            name: max(0.0, getattr(self, end) - getattr(self, begin))
            for name, begin, end in STAGE_HISTOGRAMS
        }

    def to_dict(self) -> dict:
        """JSON-native dump (stamps absolute, seconds)."""
        return {
            "trace_id": self.trace_id,
            **{stage: getattr(self, stage) for stage in REQUEST_STAGES},
            "lane": self.lane,
            "batch_id": self.batch_id,
            "worker_track": self.worker_track,
            "shed": self.shed,
        }


class RequestTraceRecorder:
    """1-in-N sampler + bounded ring buffer of completed traces.

    :meth:`sample` is called once per request (on the event loop) and
    returns a fresh :class:`RequestTrace` for every ``sample_every``-th
    call — the first request is always sampled, so even the shortest
    run produces at least one flow.  :meth:`add` pushes a finished
    trace into a ``deque(maxlen=capacity)`` ring: memory is bounded no
    matter how long the broker serves, and the retained traces are the
    most recent ones (the ones a live debugging session cares about).
    """

    def __init__(self, capacity: int = 1024, *, sample_every: int = 16):
        if capacity < 1:
            raise ReproError(f"capacity must be >= 1, got {capacity}")
        if sample_every < 1:
            raise ReproError(
                f"sample_every must be >= 1, got {sample_every}"
            )
        self.capacity = int(capacity)
        self.sample_every = int(sample_every)
        self.seen = 0
        self.sampled = 0
        self._ring: Deque[RequestTrace] = deque(maxlen=self.capacity)

    def sample(self) -> Optional[RequestTrace]:
        """A new trace for every N-th request, ``None`` otherwise."""
        index = self.seen
        self.seen += 1
        if index % self.sample_every:
            return None
        trace = RequestTrace(self.sampled)
        self.sampled += 1
        return trace

    def add(self, trace: RequestTrace) -> None:
        """Push one finished trace into the ring (evicts the oldest)."""
        self._ring.append(trace)

    @property
    def traces(self) -> List[RequestTrace]:
        """The retained traces, oldest first."""
        return list(self._ring)

    def completed(self) -> List[RequestTrace]:
        """Retained traces with every stage stamp (flow-exportable)."""
        return [trace for trace in self._ring if trace.is_complete]

    def __len__(self) -> int:
        return len(self._ring)


def add_request_flows(
    builder: ChromeTraceBuilder,
    traces: Iterable[RequestTrace],
    *,
    epoch: float,
    pid: int = HOST_PID,
) -> int:
    """Export sampled request traces as Perfetto flow arrows.

    For every complete trace this adds, in the host clock domain
    (stamps are absolute ``perf_counter``; *epoch* is the owning
    :class:`~repro.obs.trace_export.HostSpanRecorder`'s epoch so the
    flows line up with the broker's lane spans and the executor's
    worker spans already in *builder*):

    * a ``req<id> wait`` span on the ``loadgen`` track (enqueue →
      batch seal) and a ``req<id> handoff`` span on the
      ``serving broker`` track (batch seal → dispatch) — the two path
      segments no other track covers;
    * an async ``request <id>`` interval spanning the full e2e
      lifetime;
    * a flow chain (``s`` → ``t`` → ``t`` → ``f``) whose steps land
      *inside* those spans, the broker's ``serving lane<k>`` batch
      span, and — when the executor reported which worker evaluated
      the batch — the ``executor worker<n>`` span, so the request is
      one clickable arrow across the whole datapath.

    Shed requests get a ``req<id> SHED`` marker span on the loadgen
    track instead of a flow.  Returns the number of traces exported.
    """
    exported = 0
    for trace in traces:
        if trace.shed:
            if trace.enqueue is not None and trace.complete is not None:
                builder.add_span(
                    pid,
                    "loadgen",
                    f"req{trace.trace_id} SHED",
                    trace.enqueue - epoch,
                    trace.complete - epoch,
                    category="request",
                )
            continue
        if not trace.is_complete:
            continue
        enqueue = trace.enqueue - epoch
        seal = trace.batch_seal - epoch
        dispatch = trace.dispatch - epoch
        kernel_start = trace.kernel_start - epoch
        complete = trace.complete - epoch
        label = f"req{trace.trace_id}"
        builder.add_span(
            pid, "loadgen", f"{label} wait", enqueue, seal,
            category="request",
        )
        builder.add_span(
            pid, "serving broker", f"{label} handoff", seal, dispatch,
            category="request",
        )
        builder.add_async_span(
            pid, "requests", f"request {trace.trace_id}", enqueue, complete,
            async_id=trace.trace_id,
        )
        flow_id = trace.trace_id
        builder.add_flow(
            pid, "loadgen", label, enqueue, flow_id=flow_id, phase="s"
        )
        builder.add_flow(
            pid, "serving broker", label, seal, flow_id=flow_id, phase="t"
        )
        hops = []
        if trace.lane is not None:
            hops.append(f"serving lane{trace.lane}")
        if trace.worker_track is not None:
            hops.append(trace.worker_track)
        if not hops:  # no lane recorded: finish the arrow on the broker
            hops.append("serving broker")
        for track in hops[:-1]:
            builder.add_flow(
                pid, track, label, kernel_start, flow_id=flow_id, phase="t"
            )
        builder.add_flow(
            pid, hops[-1], label,
            kernel_start if trace.lane is not None else dispatch,
            flow_id=flow_id, phase="f",
        )
        exported += 1
    return exported
