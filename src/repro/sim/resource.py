"""Shared resources and rate limiters for simulation models.

:class:`SimResource` is a counted resource with FIFO arbitration —
used for DMA engines, memory-controller command slots and PCIe lanes.
:class:`TokenBucket` is a byte-rate limiter used to impose sustained
bandwidth caps with burst tolerance.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.errors import SimulationError
from repro.sim.engine import Engine, Event

__all__ = ["SimResource", "TokenBucket"]


class SimResource:
    """A counted resource with FIFO request queueing.

    Typical use inside a process::

        grant = resource.request()
        yield grant
        try:
            yield env.timeout(service_time)
        finally:
            resource.release()
    """

    def __init__(self, env: Engine, capacity: int = 1, name: str = "resource"):
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: Deque[Event] = deque()
        self.total_grants = 0

    @property
    def in_use(self) -> int:
        """Currently granted units."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Requests waiting for a grant."""
        return len(self._waiters)

    def request(self) -> Event:
        """Ask for one unit; the event triggers when granted."""
        event = Event(self.env)
        if self._in_use < self.capacity:
            self._in_use += 1
            self.total_grants += 1
            event.succeed(None)
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Return one unit, waking the oldest waiter if any."""
        if self._in_use <= 0:
            raise SimulationError(f"release on idle resource {self.name!r}")
        if self._waiters:
            waiter = self._waiters.popleft()
            self.total_grants += 1
            waiter.succeed(None)
        else:
            self._in_use -= 1


class TokenBucket:
    """A byte-rate limiter with burst capacity.

    Models a link that sustains ``rate`` bytes/s but can absorb bursts of
    up to ``burst`` bytes.  Consumers call :meth:`consume` and yield the
    returned event; the event triggers once enough tokens have accrued.
    Requests are served strictly in FIFO order, so the bucket also acts
    as an arbiter.
    """

    def __init__(self, env: Engine, rate: float, burst: float, name: str = "bucket"):
        if rate <= 0:
            raise SimulationError(f"rate must be positive, got {rate}")
        if burst <= 0:
            raise SimulationError(f"burst must be positive, got {burst}")
        self.env = env
        self.rate = float(rate)
        self.burst = float(burst)
        self.name = name
        self._tokens = float(burst)
        self._updated = env.now
        self._pending: Deque[tuple] = deque()  # (event, amount)
        self._draining = False
        self.total_consumed = 0.0

    def _refill(self) -> None:
        now = self.env.now
        self._tokens = min(self.burst, self._tokens + (now - self._updated) * self.rate)
        self._updated = now

    def consume(self, amount: float) -> Event:
        """Request *amount* bytes of link time.

        Amounts larger than the burst size are allowed: they simply take
        ``amount / rate`` seconds of link time to drain.
        """
        if amount < 0:
            raise SimulationError(f"negative consume amount {amount}")
        event = Event(self.env)
        self._pending.append((event, float(amount)))
        if not self._draining:
            self._draining = True
            self.env.process(self._drain(), name=f"{self.name}-drain")
        return event

    def _drain(self):
        while self._pending:
            event, amount = self._pending[0]
            self._refill()
            if self._tokens >= amount:
                self._tokens -= amount
            else:
                # Larger-than-burst (or currently unaffordable) requests
                # drain the bucket and then occupy the link for the
                # remaining bytes; the wait time itself pays for the
                # accrual, so the clock (not the capped bucket) meters it.
                deficit = amount - self._tokens
                self._tokens = 0.0
                yield self.env.timeout(deficit / self.rate)
                self._updated = self.env.now
            self.total_consumed += amount
            self._pending.popleft()
            event.succeed(None)
        self._draining = False
