"""Core event loop, events and coroutine processes.

The engine keeps a binary heap of ``(time, sequence, event)`` triples.
Events are one-shot: they are *triggered* with a value (or an exception)
exactly once, after which all registered callbacks run at the trigger
time.  Processes are Python generators that ``yield`` events; the engine
resumes them with the event's value (or throws the event's exception
into them).

This is the only place in the library where simulated time advances.

Event churn dominates simulation profiles, so the engine recycles its
short-lived bookkeeping objects: timeouts created via
:meth:`Engine.timeout` and the relay events used to resume a process
that yielded an already-processed event are returned to per-engine
free pools once their callbacks have run.  Recycling is restricted to
events that can no longer be observed: any event registered through
:meth:`Event.add_callback` (``AllOf``/``AnyOf`` members, explicit
subscriptions) or passed as ``run(until_event=...)`` is pinned and
never reused.  The contract this imposes on user code is mild and was
already true everywhere in the library: a ``Timeout`` yielded from a
process must not be inspected after the process has resumed.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, List, Optional

from repro.errors import SimulationError

__all__ = ["Engine", "Event", "Process", "Timeout", "AllOf", "AnyOf", "Interrupt"]

# Sentinel distinguishing "not yet triggered" from a triggered ``None``.
_PENDING = object()


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*; :meth:`succeed` or :meth:`fail` schedules
    it for processing at the current simulation time, at which point its
    callbacks fire.  Processes wait on events by yielding them.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_scheduled", "_reusable")

    def __init__(self, env: "Engine"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: bool = True
        self._scheduled = False
        self._reusable = False

    # -- state inspection ---------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value (it may not be processed yet)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True when the event carries a value rather than an exception."""
        return self._ok

    @property
    def value(self) -> Any:
        """The value the event was triggered with.

        Raises :class:`SimulationError` if the event is still pending.
        """
        if self._value is _PENDING:
            raise SimulationError("event value accessed before trigger")
        return self._value

    # -- triggering ----------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with *value*."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self._value = value
        self._ok = True
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception to throw into waiters."""
        if self.triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exception!r}")
        self._value = exception
        self._ok = False
        self.env._schedule(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register *callback* to run when the event is processed.

        If the event is already processed the callback runs immediately.

        Registering a callback pins the event: it will never be recycled
        into the engine's free pools, so the caller may safely retain a
        reference and inspect it later.
        """
        self._reusable = False
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)


class Timeout(Event):
    """An event that triggers itself after a fixed delay.

    When *_at* is given the event is heap-scheduled at that absolute
    time with no ``now + delay`` float round-trip (see
    :meth:`Engine.timeout_until`).
    """

    __slots__ = ("delay",)

    def __init__(self, env: "Engine", delay: float, value: Any = None, *, _at: Optional[float] = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._value = value
        self._ok = True
        if _at is None:
            env._schedule(self, delay=delay)
        else:
            env._schedule_at(self, _at)


class Process(Event):
    """A running coroutine.

    The process is itself an event that triggers with the generator's
    return value when it finishes (or fails with its unhandled
    exception), so processes can wait for each other by yielding.
    """

    __slots__ = ("_generator", "_waiting_on", "name")

    def __init__(self, env: "Engine", generator: Generator, name: str = ""):
        super().__init__(env)
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        # Kick off at the current time via an initialisation event.
        env._relay(None, True, self._resume)

    @property
    def is_alive(self) -> bool:
        """True while the coroutine has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a
        process that is waiting on an event detaches it from that event.
        """
        if self.triggered:
            raise SimulationError("cannot interrupt a finished process")
        target = self._waiting_on
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None
        self.env._relay(Interrupt(cause), False, self._resume)

    # -- engine plumbing ------------------------------------------------------
    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        try:
            if event.ok:
                target = self._generator.send(event._value)
            else:
                target = self._generator.throw(event._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt:
            # An unhandled interrupt terminates the process quietly with
            # the interrupt as its failure value.
            self.fail(SimulationError(f"process {self.name!r} killed by interrupt"))
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must yield Event objects"
            )
        if target.processed:
            # Already-processed events resume the process immediately at
            # the current time (schedule a relay to preserve ordering).
            self.env._relay(target._value, target._ok, self._resume)
        else:
            self._waiting_on = target
            target.callbacks.append(self._resume)


class AllOf(Event):
    """Triggers when every child event has triggered successfully.

    The value is the list of child values in construction order.  If any
    child fails, this event fails with that child's exception.
    """

    __slots__ = ("_children", "_remaining")

    def __init__(self, env: "Engine", events: Iterable[Event]):
        super().__init__(env)
        self._children = list(events)
        self._remaining = len(self._children)
        if self._remaining == 0:
            self.succeed([])
            return
        for child in self._children:
            child.add_callback(self._on_child)

    def _on_child(self, child: Event) -> None:
        if self.triggered:
            return
        if not child.ok:
            self.fail(child._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([c._value for c in self._children])


class AnyOf(Event):
    """Triggers with the first child event's ``(index, value)``."""

    __slots__ = ("_children",)

    def __init__(self, env: "Engine", events: Iterable[Event]):
        super().__init__(env)
        self._children = list(events)
        if not self._children:
            raise SimulationError("AnyOf needs at least one event")
        for index, child in enumerate(self._children):
            child.add_callback(lambda ev, i=index: self._on_child(i, ev))

    def _on_child(self, index: int, child: Event) -> None:
        if self.triggered:
            return
        if child.ok:
            self.succeed((index, child._value))
        else:
            self.fail(child._value)


class Engine:
    """The simulation environment: clock plus event queue.

    Use :meth:`process` to start coroutines, :meth:`timeout` to create
    delays inside them, and :meth:`run` to execute until the queue drains
    or an optional time/condition bound is reached.
    """

    def __init__(self):
        self._now: float = 0.0
        self._queue: List = []
        self._sequence: int = 0
        # Free pools for engine-internal short-lived events (see module
        # docstring for the recycling contract).
        self._timeout_pool: List[Timeout] = []
        self._relay_pool: List[Event] = []

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- factories -------------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh pending event bound to this engine."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event triggering *delay* seconds from now."""
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise SimulationError(f"negative timeout delay {delay}")
            ev = pool.pop()
            ev.callbacks = []
            ev._scheduled = False
            ev._value = value
            ev._ok = True
            ev.delay = delay
            self._schedule(ev, delay=delay)
            return ev
        ev = Timeout(self, delay, value)
        ev._reusable = True
        return ev

    def timeout_until(self, time: float, value: Any = None) -> Timeout:
        """An event triggering at the absolute simulated *time*.

        Equivalent to ``timeout(time - now)`` except that the event
        lands bit-exactly on *time*: no ``now + delay`` float addition
        is performed.  The fast-forward path uses this to reproduce the
        burst-granular model's timings without accumulating rounding
        differences.
        """
        if time < self._now:
            raise SimulationError(f"timeout_until {time} is in the past (now={self._now})")
        pool = self._timeout_pool
        if pool:
            ev = pool.pop()
            ev.callbacks = []
            ev._scheduled = False
            ev._value = value
            ev._ok = True
            ev.delay = time - self._now
        else:
            ev = Timeout(self, time - self._now, value, _at=time)
            ev._reusable = True
            return ev
        self._schedule_at(ev, time)
        return ev

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a coroutine as a simulation process."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Barrier over *events*."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """First-of-many over *events*."""
        return AnyOf(self, events)

    # -- scheduling --------------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        if event._scheduled:
            raise SimulationError("event scheduled twice")
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        event._scheduled = True
        heappush(self._queue, (self._now + delay, self._sequence, event))
        self._sequence += 1

    def _schedule_at(self, event: Event, time: float) -> None:
        """Heap-push *event* at the absolute *time* (no ``now + delay``)."""
        if event._scheduled:
            raise SimulationError("event scheduled twice")
        event._scheduled = True
        heappush(self._queue, (time, self._sequence, event))
        self._sequence += 1

    def _relay(self, value: Any, ok: bool, callback: Callable[[Event], None]) -> None:
        """Schedule a pooled single-callback event at the current time.

        Used to resume a process from an already-processed yield target
        (and for process init/interrupt wake-ups) without allocating a
        fresh Event per hop.
        """
        pool = self._relay_pool
        if pool:
            ev = pool.pop()
            ev.callbacks = [callback]
            ev._scheduled = False
        else:
            ev = Event(self)
            ev.callbacks.append(callback)
            ev._reusable = True
        ev._value = value
        ev._ok = ok
        self._schedule(ev)

    def _step(self) -> None:
        time, _, event = heappop(self._queue)
        if time < self._now:
            raise SimulationError(f"time went backwards: {time} < {self._now}")
        self._now = time
        callbacks = event.callbacks
        event.callbacks = None
        if callbacks:
            for callback in callbacks:
                callback(event)
        elif not event._ok:
            # A failed event nobody waits on would silently swallow its
            # exception; surface it instead.
            raise event._value
        if event._reusable:
            # Engine-internal event nobody can observe any more: return
            # it to its free pool instead of letting it churn the GC.
            event._value = _PENDING
            if type(event) is Timeout:
                self._timeout_pool.append(event)
            else:
                self._relay_pool.append(event)

    # -- execution ----------------------------------------------------------------
    def run(self, until: Optional[float] = None, until_event: Optional[Event] = None) -> Any:
        """Run the event loop.

        Parameters
        ----------
        until:
            Stop (with the clock set to *until*) once the next event lies
            beyond this time.
        until_event:
            Stop as soon as this event has been processed; its value is
            returned (its exception re-raised).

        Returns
        -------
        The *until_event* value when given, else ``None`` when the queue
        drains or the time bound is hit.
        """
        if until is not None and until < self._now:
            raise SimulationError(f"run until {until} is in the past (now={self._now})")
        if until_event is not None:
            # The caller holds a reference across processing: never pool it.
            until_event._reusable = False
        queue = self._queue
        step = self._step
        while queue:
            if until_event is not None and until_event.processed:
                break
            if until is not None and queue[0][0] > until:
                self._now = until
                return None
            step()
        if until_event is not None:
            if not until_event.processed:
                raise SimulationError("event queue drained before until_event triggered")
            if not until_event.ok:
                raise until_event._value
            return until_event._value
        if until is not None and self._now < until:
            self._now = until
        return None

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` when idle."""
        return self._queue[0][0] if self._queue else float("inf")
