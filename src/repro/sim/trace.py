"""Span tracing for simulation runs.

A :class:`Tracer` records named spans (begin/end in simulated time) on
named tracks — "pe0 compute", "dma h2d", ... — and renders them as a
text timeline, making overlap behaviour *visible*: the paper's §IV-B
claim ("one thread will be able to perform data transfers for block
n+1, while another thread is waiting for the FPGA accelerator") shows
up directly as overlapping spans on the DMA and PE tracks.

Tracing is strictly observational: models never change behaviour when
traced (the tracer only records timestamps it is handed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import SimulationError
from repro.sim.engine import Engine

__all__ = ["Span", "SpanHandle", "Tracer"]


@dataclass(frozen=True)
class Span:
    """One traced interval on a track."""

    track: str
    label: str
    begin: float
    end: float

    @property
    def duration(self) -> float:
        """Span length in simulated seconds."""
        return self.end - self.begin


class SpanHandle:
    """One in-flight span opened by :meth:`Tracer.begin`.

    Holding a handle (instead of relying on the ``(track, label)`` key)
    lets several same-label spans be open simultaneously — two
    in-flight DMA transfers with the same label each close their *own*
    interval.  Closing is idempotent-checked: a handle ends exactly
    once.
    """

    __slots__ = ("_tracer", "track", "label", "begin", "_closed")

    def __init__(self, tracer: "Tracer", track: str, label: str, begin: float):
        self._tracer = tracer
        self.track = track
        self.label = label
        self.begin = begin
        self._closed = False

    @property
    def closed(self) -> bool:
        """True once the span has been recorded."""
        return self._closed

    def end(self) -> Span:
        """Close this span at the tracer's current time."""
        return self._tracer._close_handle(self)


class Tracer:
    """Records spans against an engine's clock."""

    def __init__(self, env: Engine):
        self.env = env
        self.spans: List[Span] = []
        # Per-(track, label) stacks of open handles: same-label spans
        # may overlap, `end()` closes the most recently opened one.
        self._open: Dict[tuple, List[SpanHandle]] = {}

    # -- recording -----------------------------------------------------------
    def begin(self, track: str, label: str) -> SpanHandle:
        """Open a span on *track* at the current simulated time.

        Returns a :class:`SpanHandle`; overlapping spans with the same
        ``(track, label)`` key stack, so re-entrant begins are legal.
        Close via :meth:`SpanHandle.end` (exact) or :meth:`end`
        (most-recently-opened, backward compatible).
        """
        handle = SpanHandle(self, track, label, self.env.now)
        self._open.setdefault((track, label), []).append(handle)
        return handle

    def end(self, track: str, label: str) -> Span:
        """Close the most recently opened span with this key."""
        stack = self._open.get((track, label))
        if not stack:
            raise SimulationError(f"span {(track, label)} was never opened")
        return self._close_handle(stack[-1])

    def _close_handle(self, handle: SpanHandle) -> Span:
        """Record *handle*'s span and drop it from its open stack."""
        if handle._closed:
            raise SimulationError(
                f"span {(handle.track, handle.label)} already ended"
            )
        handle._closed = True
        key = (handle.track, handle.label)
        stack = self._open.get(key)
        if stack is not None:
            try:
                stack.remove(handle)
            except ValueError:  # pragma: no cover - defensive
                pass
            if not stack:
                del self._open[key]
        span = Span(handle.track, handle.label, handle.begin, self.env.now)
        self.spans.append(span)
        return span

    def record(self, track: str, label: str, begin: float, end: float) -> None:
        """Record a completed span directly."""
        if end < begin:
            raise SimulationError(f"span ends before it begins ({begin} > {end})")
        self.spans.append(Span(track, label, begin, end))

    # -- analysis ----------------------------------------------------------------
    def tracks(self) -> List[str]:
        """Track names in first-appearance order."""
        seen: List[str] = []
        for span in self.spans:
            if span.track not in seen:
                seen.append(span.track)
        return seen

    def busy_time(self, track: str) -> float:
        """Union length of all spans on *track* (overlaps merged)."""
        intervals = sorted(
            (s.begin, s.end) for s in self.spans if s.track == track
        )
        total = 0.0
        current_begin: Optional[float] = None
        current_end = 0.0
        for begin, end in intervals:
            if current_begin is None or begin > current_end:
                if current_begin is not None:
                    total += current_end - current_begin
                current_begin, current_end = begin, end
            else:
                current_end = max(current_end, end)
        if current_begin is not None:
            total += current_end - current_begin
        return total

    def overlap_time(self, track_a: str, track_b: str) -> float:
        """Simulated time during which both tracks have an open span."""
        def merged(track):
            intervals = sorted(
                (s.begin, s.end) for s in self.spans if s.track == track
            )
            out = []
            for begin, end in intervals:
                if out and begin <= out[-1][1]:
                    out[-1] = (out[-1][0], max(out[-1][1], end))
                else:
                    out.append((begin, end))
            return out

        total = 0.0
        for a0, a1 in merged(track_a):
            for b0, b1 in merged(track_b):
                total += max(0.0, min(a1, b1) - max(a0, b0))
        return total

    # -- rendering ------------------------------------------------------------------
    def timeline(self, width: int = 72, until: Optional[float] = None) -> str:
        """Render all tracks as an aligned ASCII Gantt chart."""
        if not self.spans:
            return "(no spans recorded)"
        horizon = until if until is not None else max(s.end for s in self.spans)
        if horizon <= 0:
            raise SimulationError("cannot render a zero-length timeline")
        tracks = self.tracks()
        name_width = max(len(t) for t in tracks)
        lines = [
            f"timeline 0 .. {horizon * 1e6:.1f} us "
            f"({width} columns, '#' = busy)"
        ]
        for track in tracks:
            cells = [" "] * width
            for span in self.spans:
                if span.track != track or span.begin > horizon:
                    continue
                # Clamp the start column so spans beginning exactly at
                # the horizon still land in the last cell, and always
                # paint at least one cell so zero-duration spans (and
                # spans much shorter than a column) stay visible.
                first = min(int(span.begin / horizon * width), width - 1)
                last = int(min(span.end, horizon) / horizon * width)
                for column in range(first, max(first + 1, last)):
                    if column < width:
                        cells[column] = "#"
            lines.append(f"{track.rjust(name_width)} |{''.join(cells)}|")
        return "\n".join(lines)
