"""Span tracing for simulation runs.

A :class:`Tracer` records named spans (begin/end in simulated time) on
named tracks — "pe0 compute", "dma h2d", ... — and renders them as a
text timeline, making overlap behaviour *visible*: the paper's §IV-B
claim ("one thread will be able to perform data transfers for block
n+1, while another thread is waiting for the FPGA accelerator") shows
up directly as overlapping spans on the DMA and PE tracks.

Tracing is strictly observational: models never change behaviour when
traced (the tracer only records timestamps it is handed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import SimulationError
from repro.sim.engine import Engine

__all__ = ["Span", "Tracer"]


@dataclass(frozen=True)
class Span:
    """One traced interval on a track."""

    track: str
    label: str
    begin: float
    end: float

    @property
    def duration(self) -> float:
        """Span length in simulated seconds."""
        return self.end - self.begin


class Tracer:
    """Records spans against an engine's clock."""

    def __init__(self, env: Engine):
        self.env = env
        self.spans: List[Span] = []
        self._open: Dict[tuple, float] = {}

    # -- recording -----------------------------------------------------------
    def begin(self, track: str, label: str) -> None:
        """Open a span on *track* at the current simulated time."""
        key = (track, label)
        if key in self._open:
            raise SimulationError(f"span {key} already open")
        self._open[key] = self.env.now

    def end(self, track: str, label: str) -> None:
        """Close the matching open span at the current time."""
        key = (track, label)
        begin = self._open.pop(key, None)
        if begin is None:
            raise SimulationError(f"span {key} was never opened")
        self.spans.append(Span(track, label, begin, self.env.now))

    def record(self, track: str, label: str, begin: float, end: float) -> None:
        """Record a completed span directly."""
        if end < begin:
            raise SimulationError(f"span ends before it begins ({begin} > {end})")
        self.spans.append(Span(track, label, begin, end))

    # -- analysis ----------------------------------------------------------------
    def tracks(self) -> List[str]:
        """Track names in first-appearance order."""
        seen: List[str] = []
        for span in self.spans:
            if span.track not in seen:
                seen.append(span.track)
        return seen

    def busy_time(self, track: str) -> float:
        """Union length of all spans on *track* (overlaps merged)."""
        intervals = sorted(
            (s.begin, s.end) for s in self.spans if s.track == track
        )
        total = 0.0
        current_begin: Optional[float] = None
        current_end = 0.0
        for begin, end in intervals:
            if current_begin is None or begin > current_end:
                if current_begin is not None:
                    total += current_end - current_begin
                current_begin, current_end = begin, end
            else:
                current_end = max(current_end, end)
        if current_begin is not None:
            total += current_end - current_begin
        return total

    def overlap_time(self, track_a: str, track_b: str) -> float:
        """Simulated time during which both tracks have an open span."""
        def merged(track):
            intervals = sorted(
                (s.begin, s.end) for s in self.spans if s.track == track
            )
            out = []
            for begin, end in intervals:
                if out and begin <= out[-1][1]:
                    out[-1] = (out[-1][0], max(out[-1][1], end))
                else:
                    out.append((begin, end))
            return out

        total = 0.0
        for a0, a1 in merged(track_a):
            for b0, b1 in merged(track_b):
                total += max(0.0, min(a1, b1) - max(a0, b0))
        return total

    # -- rendering ------------------------------------------------------------------
    def timeline(self, width: int = 72, until: Optional[float] = None) -> str:
        """Render all tracks as an aligned ASCII Gantt chart."""
        if not self.spans:
            return "(no spans recorded)"
        horizon = until if until is not None else max(s.end for s in self.spans)
        if horizon <= 0:
            raise SimulationError("cannot render a zero-length timeline")
        tracks = self.tracks()
        name_width = max(len(t) for t in tracks)
        lines = [
            f"timeline 0 .. {horizon * 1e6:.1f} us "
            f"({width} columns, '#' = busy)"
        ]
        for track in tracks:
            cells = [" "] * width
            for span in self.spans:
                if span.track != track or span.begin > horizon:
                    continue
                # Clamp the start column so spans beginning exactly at
                # the horizon still land in the last cell, and always
                # paint at least one cell so zero-duration spans (and
                # spans much shorter than a column) stay visible.
                first = min(int(span.begin / horizon * width), width - 1)
                last = int(min(span.end, horizon) / horizon * width)
                for column in range(first, max(first + 1, last)):
                    if column < width:
                        cells[column] = "#"
            lines.append(f"{track.rjust(name_width)} |{''.join(cells)}|")
        return "\n".join(lines)
