"""Discrete-event simulation kernel.

A minimal, dependency-free DES kernel in the style of SimPy, sized for
this project's needs: coroutine processes, one-shot events, timeouts,
bounded FIFO channels with backpressure, shared resources with FIFO
arbitration, and throughput probes.

The kernel is deliberately *burst-granular*, not cycle-granular: model
components schedule events at transaction boundaries (an AXI burst, a
DMA block, a pipeline drain), which keeps paper-scale simulations
tractable in pure Python while preserving the timing interactions the
evaluation depends on (see DESIGN.md §6).

Example
-------
>>> from repro.sim import Engine
>>> eng = Engine()
>>> log = []
>>> def proc(env):
...     yield env.timeout(1.5)
...     log.append(env.now)
>>> _ = eng.process(proc(eng))
>>> eng.run()
>>> log
[1.5]
"""

from repro.sim.engine import Engine, Event, Process, Timeout, AllOf, AnyOf
from repro.sim.channel import Channel, ClosedChannelError
from repro.sim.resource import SimResource, TokenBucket
from repro.sim.stats import Counter, ThroughputProbe, UtilizationProbe
from repro.sim.trace import Span, SpanHandle, Tracer

__all__ = [
    "Engine",
    "Event",
    "Process",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Channel",
    "ClosedChannelError",
    "SimResource",
    "TokenBucket",
    "Counter",
    "ThroughputProbe",
    "UtilizationProbe",
    "Span",
    "SpanHandle",
    "Tracer",
]
