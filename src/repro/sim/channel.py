"""Bounded FIFO channels with backpressure.

Channels are how model components (load units, memory controllers, DMA
engines) hand tokens to each other.  A bounded channel blocks producers
when full and consumers when empty — exactly the behaviour of the AXI
stream FIFOs in the hardware the models stand in for.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.errors import SimulationError
from repro.sim.engine import Engine, Event

__all__ = ["Channel", "ClosedChannelError"]


class ClosedChannelError(SimulationError):
    """Raised into getters when a channel is closed and drained."""


class Channel:
    """A bounded FIFO between simulation processes.

    ``put`` and ``get`` return events to yield on.  Items are delivered
    in FIFO order to getters in FIFO order (no overtaking).  Closing the
    channel lets producers signal end-of-stream: pending and future
    ``get`` calls fail with :class:`ClosedChannelError` once the buffer
    is drained.

    Parameters
    ----------
    env:
        The owning engine.
    capacity:
        Maximum buffered items; ``None`` means unbounded (producers never
        block).
    name:
        Label used in error messages and probes.
    """

    def __init__(self, env: Engine, capacity: Optional[int] = None, name: str = "channel"):
        if capacity is not None and capacity < 1:
            raise SimulationError(f"channel capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple] = deque()  # (event, item)
        self._closed = False
        self.total_put = 0
        self.total_got = 0

    # -- inspection -------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._items)

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has been called."""
        return self._closed

    @property
    def full(self) -> bool:
        """True when a ``put`` would block."""
        return self.capacity is not None and len(self._items) >= self.capacity

    # -- operations ----------------------------------------------------------------
    def put(self, item: Any) -> Event:
        """Enqueue *item*; the returned event triggers when accepted."""
        if self._closed:
            raise ClosedChannelError(f"put on closed channel {self.name!r}")
        event = Event(self.env)
        if self._getters:
            # Hand the item straight to the oldest waiting getter.
            getter = self._getters.popleft()
            getter.succeed(item)
            event.succeed(None)
            self.total_put += 1
            self.total_got += 1
        elif not self.full:
            self._items.append(item)
            event.succeed(None)
            self.total_put += 1
        else:
            self._putters.append((event, item))
        return event

    def get(self) -> Event:
        """Dequeue one item; the returned event triggers with it."""
        event = Event(self.env)
        if self._items:
            event.succeed(self._items.popleft())
            self.total_got += 1
            self._admit_putters()
        elif self._putters and self.capacity == 0:
            pass  # capacity 0 disallowed by constructor; kept for clarity
        elif self._closed:
            event.fail(ClosedChannelError(f"get on closed channel {self.name!r}"))
        else:
            self._getters.append(event)
        return event

    def close(self) -> None:
        """Mark end-of-stream.

        Buffered items remain retrievable; blocked and future getters
        beyond the buffered items fail with :class:`ClosedChannelError`.
        Blocked putters fail immediately.
        """
        if self._closed:
            return
        self._closed = True
        while self._putters:
            event, _ = self._putters.popleft()
            event.fail(ClosedChannelError(f"channel {self.name!r} closed under putter"))
        while self._getters:
            # No buffered items can exist while getters wait.
            getter = self._getters.popleft()
            getter.fail(ClosedChannelError(f"channel {self.name!r} closed"))

    # -- internals -----------------------------------------------------------------
    def _admit_putters(self) -> None:
        while self._putters and not self.full:
            event, item = self._putters.popleft()
            self._items.append(item)
            event.succeed(None)
            self.total_put += 1
