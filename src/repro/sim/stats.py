"""Measurement probes for simulation models.

Probes are intentionally dumb accumulators: models call them at event
boundaries and experiments read them afterwards.  Keeping measurement
out of the models themselves means a model's timing behaviour never
depends on whether it is being observed.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.sim.engine import Engine

__all__ = ["Counter", "ThroughputProbe", "UtilizationProbe"]


class Counter:
    """A named monotonically-increasing event counter."""

    def __init__(self, name: str = "counter"):
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        """Increase the counter; *amount* must be non-negative."""
        if amount < 0:
            raise ValueError(f"counter decrement not allowed ({amount})")
        self.value += amount

    def reset(self) -> None:
        """Zero the counter."""
        self.value = 0


class ThroughputProbe:
    """Accumulates (time, bytes-or-items) samples and reports rates."""

    def __init__(self, env: Engine, name: str = "throughput"):
        self.env = env
        self.name = name
        self.total = 0.0
        self._first_time: float = None  # type: ignore[assignment]
        self._last_time: float = 0.0

    def record(self, amount: float) -> None:
        """Record *amount* units transferred at the current sim time."""
        if amount < 0:
            raise ValueError(f"negative throughput sample {amount}")
        now = self.env.now
        if self._first_time is None:
            self._first_time = now
        self._last_time = now
        self.total += amount

    def rate(self) -> float:
        """Average units/second over the observation window.

        Returns 0.0 before two distinct timestamps have been seen.
        """
        if self._first_time is None:
            return 0.0
        span = self._last_time - self._first_time
        if span <= 0.0:
            return 0.0
        return self.total / span

    def rate_over(self, duration: float) -> float:
        """Units/second assuming the transfers span *duration* seconds."""
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        return self.total / duration


class UtilizationProbe:
    """Tracks busy/idle intervals of a served component."""

    def __init__(self, env: Engine, name: str = "utilization"):
        self.env = env
        self.name = name
        self._busy_since: float = None  # type: ignore[assignment]
        self._busy_total = 0.0
        self._intervals: List[Tuple[float, float]] = []

    def busy(self) -> None:
        """Mark the component busy from now (idempotent)."""
        if self._busy_since is None:
            self._busy_since = self.env.now

    def idle(self) -> None:
        """Mark the component idle from now (idempotent)."""
        if self._busy_since is not None:
            interval = (self._busy_since, self.env.now)
            self._intervals.append(interval)
            self._busy_total += interval[1] - interval[0]
            self._busy_since = None

    def utilization(self, over: float = None) -> float:  # type: ignore[assignment]
        """Busy fraction over *over* seconds (default: time since t=0)."""
        busy = self._busy_total
        if self._busy_since is not None:
            busy += self.env.now - self._busy_since
        window = over if over is not None else self.env.now
        if window <= 0:
            return 0.0
        return min(1.0, busy / window)
