"""Asyncio request broker with adaptive micro-batching.

The paper's §V analysis says delivered inference throughput is capped
by the PCIe host link, not the accelerator — a statement about *batch*
transfers.  Live traffic does not arrive in batches: it arrives as
individual queries, and something must re-create the large transfers
the bandwidth analysis assumes without holding any single query
hostage.  That something is this broker.

:class:`MicroBatchBroker` sits between an async request API and one
persistent evaluation engine (normally a
:class:`~repro.baselines.executor.ParallelPlanExecutor`, pool or
thread dispatch, numpy or native backend):

* **coalescing, write-once** — requests submitted while the engine is
  busy (or within the batching window) are grouped per *query
  signature* — the ``(marginalized, missing_value)`` pair — because
  the plan kernels apply those per batch, not per row.  Each request
  row is validated **straight into a pre-allocated batch arena slot**
  (shared-memory backed when the engine exposes executor lanes), so
  the bytes a request carries are written exactly once on the whole
  serve path: no per-request allocation, no ``np.stack`` at flush, no
  ``np.copyto`` into executor staging.  The
  ``serving.staged_bytes_copied`` metric guards this the way
  ``executor.pickled_array_bytes`` guards the executor: it stays 0
  whenever the zero-copy lane path is engaged.  A batch flushes when
  it reaches ``max_batch_rows`` or when the oldest request in it has
  waited ``max_wait_ms``, whichever comes first: the two knobs of the
  batching/latency trade-off (H2PIPE and Serpens pick their batch and
  stream widths statically for the same reason — here it adapts per
  window).
* **pipelined dispatch** — a flushed batch is handed to one of
  ``n_lanes`` dispatcher threads via
  :meth:`asyncio.loop.run_in_executor`, each driving its own reentrant
  executor lane, so up to ``n_lanes`` batches are *in flight at once*
  while the event loop keeps coalescing the next ones into the spare
  arena.  Coalescing, kernel execution and result scatter overlap —
  the software analogue of the paper's many concurrent HBM streams.
  With ``n_lanes=1`` the broker degenerates to the classic
  one-batch-in-flight queueing point whose service time grows batches
  under load; with more lanes the *arena ring* (``n_lanes + 1``
  arenas) is the queueing point instead.
* **admission control + lane-aware backpressure** — the broker bounds
  the number of rows in the system (pending + in flight + waiting for
  an arena) at ``max_queue_rows``.  Beyond it, requests are shed at
  the door with :class:`~repro.errors.ServingOverloadError` and
  counted in ``serving.rejected``.  Below that bound, a request that
  finds every arena busy *waits* (FIFO) for the next arena release
  rather than allocating — backpressure surfaces as latency first,
  shedding only past the hard bound, and
  ``serving.arena_waits``/``serving.arenas_busy`` make the distinction
  observable.
* **observability** — with a :class:`~repro.obs.metrics.MetricsRegistry`
  attached the broker records ``serving.*`` counters/gauges plus
  per-stage latency histograms (``serving.batch_form`` /
  ``queue_wait`` / ``dispatch`` / ``kernel`` / ``scatter`` / ``e2e``
  and ``serving.shed`` — the five stages partition e2e exactly); with
  a :class:`~repro.obs.trace_export.HostSpanRecorder` every dispatched
  batch records a wall-clock span on its arena's ``serving lane{k}``
  track; with a :class:`~repro.obs.rtrace.RequestTraceRecorder`
  sampled requests carry stage stamps end to end and export as
  Perfetto flow arrows, so ``repro serve --trace-out`` renders the
  overlapping batches *and* clickable per-request flows next to the
  executor's worker shards.

Results are bit-identical to calling the engine directly with the same
rows: the broker only places rows and scatters the result vector back
— it never touches the arithmetic.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ReproError, ServingError, ServingOverloadError
from repro.obs.rtrace import STAGE_HISTOGRAMS

__all__ = ["MicroBatchBroker", "BrokerStats"]

#: Query signature a pending batch coalesces under.
_Key = Tuple[Optional[Tuple[int, ...]], Optional[float]]


class BrokerStats:
    """Plain counters the broker always keeps (registry or not)."""

    __slots__ = (
        "requests",
        "rejected",
        "batches",
        "rows",
        "flush_full",
        "flush_wait",
        "flush_close",
        "arena_waits",
        "staged_bytes_copied",
    )

    def __init__(self):
        self.requests = 0
        self.rejected = 0
        self.batches = 0
        self.rows = 0
        self.flush_full = 0
        self.flush_wait = 0
        self.flush_close = 0
        self.arena_waits = 0
        self.staged_bytes_copied = 0

    @property
    def mean_batch_rows(self) -> float:
        """Mean rows per dispatched batch (0.0 before the first)."""
        return self.rows / self.batches if self.batches else 0.0

    def to_dict(self) -> dict:
        """JSON-native snapshot of all counters."""
        return {name: getattr(self, name) for name in self.__slots__} | {
            "mean_batch_rows": self.mean_batch_rows
        }


class _Arena:
    """One slot of the batch-arena ring.

    ``view`` is the writable ``(max_batch_rows, n_variables)`` buffer
    requests are validated into; ``lane`` is the backing
    :class:`~repro.baselines.executor.ExecutorLane` when the engine
    supports the zero-copy lane protocol (then ``view`` aliases the
    lane's shared-memory arena), or ``None`` for plain lane-less
    engines.
    """

    __slots__ = ("index", "view", "lane")

    def __init__(self, index: int, view: np.ndarray, lane=None):
        self.index = index
        self.view = view
        self.lane = lane


class _PendingBatch:
    """An arena filling with rows + futures toward one engine call.

    ``enqueues``/``traces`` parallel ``futures`` but are only appended
    when the broker is timing (metrics or request tracing attached) —
    with both off, a batch carries nothing beyond the PR 9 state.
    """

    __slots__ = (
        "key", "arena", "futures", "created", "timer",
        "enqueues", "traces", "sealed",
    )

    def __init__(self, key: _Key, arena: _Arena, created: float):
        self.key = key
        self.arena = arena
        self.futures: List[asyncio.Future] = []
        self.created = created
        self.timer: Optional[asyncio.TimerHandle] = None
        self.enqueues: List[float] = []
        self.traces: List[Optional[object]] = []
        self.sealed = 0.0


class MicroBatchBroker:
    """Coalesce single-row async queries into adaptive micro-batches.

    Parameters
    ----------
    engine:
        The evaluation engine.  When it implements the executor lane
        protocol (``acquire_lane(capacity_rows)`` returning objects
        with ``arena``/``submit``/``release`` —
        :class:`~repro.baselines.executor.ParallelPlanExecutor` does),
        the broker's batch arenas *are* the engine's shared-memory
        lane arenas and dispatch is fully zero-copy and reentrant.
        Anything else with the executor's
        ``submit(data, *, marginalized=None, missing_value=None)``
        contract still works: rows are staged once into broker-owned
        arenas and the filled view is handed over (the engine may
        restage internally — counted in
        ``serving.staged_bytes_copied``).  The broker *uses* the
        engine but does not own it — closing the broker never closes
        the engine.
    n_variables:
        Row width every request must match.  Defaults to the engine's
        ``n_variables`` attribute when it has one.
    max_batch_rows:
        Flush a pending batch as soon as it holds this many rows.
        Also each arena's capacity, so the ring pins
        ``(n_lanes + 1) * max_batch_rows * n_variables * 8`` bytes.
    max_wait_ms:
        Flush a pending batch once its oldest request has waited this
        long — the latency the broker itself may add, and therefore
        the knob to set from the SLO (leave headroom for the kernel).
    max_queue_rows:
        Bound on rows in the system (pending + dispatched + waiting
        for an arena, not yet answered).  Requests beyond it are shed
        with :class:`~repro.errors.ServingOverloadError`.
    n_lanes:
        Batches the broker keeps in flight concurrently (dispatch
        threads, and executor lanes when the engine has them).  The
        arena ring holds ``n_lanes + 1`` arenas so coalescing always
        has a free arena while every lane computes.  Default 1 — the
        PR 8 behaviour; serving sweeps default higher
        (:func:`~repro.serving.scenarios.run_serve`).
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` for the
        ``serving.*`` counters and the ``serving.queue_rows`` /
        ``serving.arenas_busy`` gauges.
    host_tracer:
        Optional :class:`~repro.obs.trace_export.HostSpanRecorder`;
        every batch records a span (label ``batch<N> <rows>r``) on its
        arena's ``serving lane{k}`` track, Perfetto-exportable.
    rtrace:
        Optional :class:`~repro.obs.rtrace.RequestTraceRecorder`.
        Sampled requests (1-in-N, recorder-configured) carry a
        :class:`~repro.obs.rtrace.RequestTrace` through the broker and
        land in the recorder's ring with every stage-boundary stamp —
        :func:`~repro.obs.rtrace.add_request_flows` turns them into
        Perfetto flow arrows across loadgen, broker, lane and executor
        worker tracks.  With *metrics* attached the same stamps also
        feed the per-stage latency histograms (``serving.batch_form``
        / ``queue_wait`` / ``dispatch`` / ``kernel`` / ``scatter`` /
        ``e2e``, plus ``serving.shed`` for time-to-rejection).  With
        neither attached no stamps are ever taken.

    Use ``async with`` (or call :meth:`close`) so pending requests are
    flushed and the dispatch threads are joined on shutdown.
    """

    def __init__(
        self,
        engine,
        *,
        n_variables: Optional[int] = None,
        max_batch_rows: int = 512,
        max_wait_ms: float = 2.0,
        max_queue_rows: int = 16384,
        n_lanes: int = 1,
        metrics=None,
        host_tracer=None,
        rtrace=None,
    ):
        if n_variables is None:
            n_variables = getattr(engine, "n_variables", None)
        if n_variables is None:
            raise ServingError(
                "n_variables is required when the engine does not expose "
                "one (ParallelPlanExecutor does)"
            )
        if n_variables < 1:
            raise ServingError(f"n_variables must be >= 1, got {n_variables}")
        if max_batch_rows < 1:
            raise ServingError(
                f"max_batch_rows must be >= 1, got {max_batch_rows}"
            )
        if max_wait_ms < 0:
            raise ServingError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        if max_queue_rows < max_batch_rows:
            raise ServingError(
                f"max_queue_rows ({max_queue_rows}) must be >= "
                f"max_batch_rows ({max_batch_rows}); a queue smaller than "
                "one batch can never fill one"
            )
        if n_lanes < 1:
            raise ServingError(f"n_lanes must be >= 1, got {n_lanes}")
        self._engine = engine
        self._n_variables = int(n_variables)
        self.max_batch_rows = int(max_batch_rows)
        self.max_wait_ms = float(max_wait_ms)
        self.max_queue_rows = int(max_queue_rows)
        self.n_lanes = int(n_lanes)
        self.stats = BrokerStats()
        self._pending: Dict[_Key, _PendingBatch] = {}
        self._inflight: set = set()
        self._queued_rows = 0
        self._closed = False
        self._batch_ids = itertools.count()
        # The arena ring: one spare beyond the lane count so the event
        # loop can always coalesce into a free arena while every
        # dispatch lane computes.  Arenas are allocated lazily (a
        # light-load broker over a lane engine pins one lane, not
        # n_lanes + 1) and pooled forever after.
        self._n_arenas = self.n_lanes + 1
        self._arena_free: List[_Arena] = []
        self._arena_count = 0
        self._arenas_busy = 0
        self._arena_waiters: Deque[asyncio.Future] = deque()
        self._lane_api = hasattr(engine, "acquire_lane")
        # n_lanes dispatch threads: engine lanes are reentrant, so up
        # to n_lanes engine calls may interleave; each flushed batch
        # occupies one thread (and one arena) for its service time.
        self._dispatch = ThreadPoolExecutor(
            max_workers=self.n_lanes, thread_name_prefix="repro-serve"
        )
        self._host_tracer = host_tracer
        if metrics is not None:
            self._m_requests = metrics.counter("serving.requests")
            self._m_rejected = metrics.counter("serving.rejected")
            self._m_batches = metrics.counter("serving.batches")
            self._m_rows = metrics.counter("serving.rows")
            self._m_batch_seconds = metrics.counter("serving.batch_seconds")
            self._m_flush_full = metrics.counter("serving.flush_full")
            self._m_flush_wait = metrics.counter("serving.flush_wait")
            self._m_staged = metrics.counter("serving.staged_bytes_copied")
            self._m_arena_waits = metrics.counter("serving.arena_waits")
            self._m_queue = metrics.gauge("serving.queue_rows")
            self._m_arenas_busy = metrics.gauge("serving.arenas_busy")
            self._h_e2e = metrics.histogram("serving.e2e")
            self._h_shed = metrics.histogram("serving.shed")
            self._h_stage = {
                name: metrics.histogram(f"serving.{name}")
                for name, _, _ in STAGE_HISTOGRAMS
            }
        else:
            self._m_requests = None
            self._m_queue = None
            self._h_e2e = None
            self._h_shed = None
            self._h_stage = None
        self._rtrace = rtrace
        # One flag guards every stamp site: with neither metrics nor a
        # request-trace recorder attached, the broker takes zero extra
        # perf_counter() readings on the request path.
        self._timing = metrics is not None or rtrace is not None

    # -- introspection ----------------------------------------------------------
    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run (or started running)."""
        return self._closed

    @property
    def queued_rows(self) -> int:
        """Rows currently in the system (pending + in flight)."""
        return self._queued_rows

    @property
    def n_variables(self) -> int:
        """Row width every request must match."""
        return self._n_variables

    @property
    def zero_copy(self) -> bool:
        """True when arenas are engine lanes (no restaging anywhere)."""
        return self._lane_api

    # -- the request path -------------------------------------------------------
    async def submit(
        self,
        values,
        *,
        marginalized: Optional[Sequence[int]] = None,
        missing_value: Optional[float] = None,
    ) -> float:
        """Serve one query; resolves to its float log-likelihood.

        *values* is one sample row (``n_variables`` numbers).
        *marginalized* / *missing_value* carry the query semantics of
        :func:`~repro.spn.plan_eval.plan_log_likelihood` — ``None``/
        ``None`` is a plain likelihood query, a ``marginalized`` set
        is a marginal query, a ``missing_value`` sentinel marks
        missing-data queries.  Requests with the same signature
        coalesce into the same micro-batch; the row is written exactly
        once, into the batch arena slot it will be evaluated from.

        Raises :class:`~repro.errors.ServingOverloadError` when the
        bounded queue is full (the request was shed, not queued) and
        :class:`~repro.errors.ServingError` after :meth:`close`.
        """
        if self._closed:
            raise ServingError(
                "submit() on a closed MicroBatchBroker: close() has "
                "already flushed the queue and stopped the dispatcher"
            )
        row = self._check_row(values)
        if marginalized is not None:
            marginalized = tuple(sorted(int(v) for v in marginalized))
        enqueue_t = time.perf_counter() if self._timing else 0.0
        trace = self._rtrace.sample() if self._rtrace is not None else None
        if trace is not None:
            trace.stamp("enqueue", enqueue_t)
        if self._m_requests is not None:
            self._m_requests.add(1)
        self.stats.requests += 1
        if self._queued_rows + 1 > self.max_queue_rows:
            self.stats.rejected += 1
            if self._m_requests is not None:
                self._m_rejected.add(1)
            self._record_shed(enqueue_t, trace)
            raise ServingOverloadError(
                f"request shed: {self._queued_rows} rows queued >= "
                f"max_queue_rows={self.max_queue_rows}"
            )
        self._set_queued(self._queued_rows + 1)

        loop = asyncio.get_running_loop()
        key: _Key = (marginalized, missing_value)
        try:
            batch = await self._batch_for(key, loop)
        except BaseException as exc:
            # The request was admitted (counted into the queue bound)
            # but never reached an arena slot — give its row back.
            self._set_queued(self._queued_rows - 1)
            if isinstance(exc, ServingOverloadError):
                self.stats.rejected += 1
                if self._m_requests is not None:
                    self._m_rejected.add(1)
                self._record_shed(enqueue_t, trace)
            raise
        # The single write of this request's payload on the serve
        # path: straight into the arena slot the engine evaluates.
        batch.arena.view[len(batch.futures)] = row
        future: asyncio.Future = loop.create_future()
        batch.futures.append(future)
        if self._timing:
            batch.enqueues.append(enqueue_t)
            batch.traces.append(trace)
        if len(batch.futures) >= self.max_batch_rows or self.max_wait_ms == 0:
            self._flush(key, "full")
        return await future

    async def _batch_for(self, key: _Key, loop) -> _PendingBatch:
        """The pending batch for *key*, waiting for an arena if needed.

        Lane-aware backpressure: when every arena in the ring is busy
        (all lanes computing + the spare coalescing for other
        signatures), the request parks on a FIFO waiter until an
        in-flight batch releases its arena.  Waiting rows still count
        against ``max_queue_rows``, so the hard admission bound sheds
        first at the door — the wait only reorders *admitted* work.
        """
        waited = False
        while True:
            if self._closed:
                raise ServingOverloadError(
                    "broker closed while the request waited for a batch "
                    "arena"
                )
            batch = self._pending.get(key)
            if batch is not None:
                return batch
            arena = self._take_arena()
            if arena is not None:
                batch = _PendingBatch(key, arena, loop.time())
                self._pending[key] = batch
                if self.max_wait_ms > 0:
                    batch.timer = loop.call_later(
                        self.max_wait_ms / 1e3, self._flush, key, "wait"
                    )
                return batch
            if not waited:
                waited = True
                self.stats.arena_waits += 1
                if self._m_requests is not None:
                    self._m_arena_waits.add(1)
            waiter: asyncio.Future = loop.create_future()
            self._arena_waiters.append(waiter)
            await waiter

    def _check_row(self, values) -> np.ndarray:
        try:
            row = np.asarray(values, dtype=np.float64)
        except (TypeError, ValueError) as exc:
            raise ServingError(f"request row is not numeric: {exc}") from None
        if row.shape != (self._n_variables,):
            raise ServingError(
                f"request row must have shape ({self._n_variables},), "
                f"got {row.shape}"
            )
        return row

    def _set_queued(self, value: int) -> None:
        self._queued_rows = value
        if self._m_queue is not None:
            self._m_queue.set(value)

    def _record_shed(self, enqueue_t: float, trace) -> None:
        """Account one shed request: time-to-rejection + trace marker.

        Shed requests used to vanish into a bare counter, so a sweep
        point could report a great p99 while quietly refusing a third
        of its offered load — the ``serving.shed`` histogram makes the
        shed path cost (how long a doomed request held the event loop)
        first-class next to the served-path latencies.
        """
        if not self._timing:
            return
        now = time.perf_counter()
        if self._h_shed is not None:
            self._h_shed.record(max(0.0, now - enqueue_t))
        if trace is not None:
            trace.shed = True
            trace.stamp("complete", now)
            self._rtrace.add(trace)

    # -- the arena ring ---------------------------------------------------------
    def _take_arena(self) -> Optional[_Arena]:
        """A free arena, or None when the whole ring is busy."""
        if self._arena_free:
            arena = self._arena_free.pop()
        elif self._arena_count < self._n_arenas:
            arena = self._new_arena()
            if arena is None:
                return None
            self._arena_count += 1
        else:
            return None
        self._arenas_busy += 1
        if self._m_queue is not None:
            self._m_arenas_busy.set(self._arenas_busy)
        return arena

    def _new_arena(self) -> Optional[_Arena]:
        index = self._arena_count
        if not self._lane_api:
            view = np.empty(
                (self.max_batch_rows, self._n_variables), dtype=np.float64
            )
            return _Arena(index, view)
        try:
            lane = self._engine.acquire_lane(self.max_batch_rows)
        except ReproError:
            if getattr(self._engine, "closed", False):
                # A closed engine names its close() - more actionable
                # than any lane-pool message the broker could invent.
                raise
            if self._arena_count > 0:
                # Some other lane owner exhausted the executor's lane
                # pool mid-life; run with the ring we already have.
                return None
            raise ServingError(
                "the engine has no free executor lanes for the broker's "
                "batch arenas - raise the executor's max_lanes above the "
                f"broker's n_lanes={self.n_lanes} (+1 spare) or release "
                "lanes held elsewhere"
            ) from None
        return _Arena(index, lane.arena, lane)

    def _release_arena(self, arena: _Arena) -> None:
        self._arenas_busy -= 1
        if self._m_queue is not None:
            self._m_arenas_busy.set(self._arenas_busy)
        self._arena_free.append(arena)
        # One arena can absorb at most max_batch_rows waiting rows
        # before it is full again; waking more would thundering-herd
        # straight back onto the deque.
        for _ in range(min(len(self._arena_waiters), self.max_batch_rows)):
            waiter = self._arena_waiters.popleft()
            if not waiter.done():
                waiter.set_result(None)

    # -- flush + dispatch -------------------------------------------------------
    def _flush(self, key: _Key, reason: str) -> None:
        """Move one pending batch onto a dispatch lane."""
        batch = self._pending.pop(key, None)
        if batch is None:  # timer raced a full-flush; nothing left to do
            return
        if batch.timer is not None:
            batch.timer.cancel()
        setattr(
            self.stats, f"flush_{reason}",
            getattr(self.stats, f"flush_{reason}") + 1,
        )
        if self._m_requests is not None and reason in ("full", "wait"):
            (self._m_flush_full if reason == "full"
             else self._m_flush_wait).add(1)
        if self._timing:
            # The seal: this batch's membership is final.  Everything
            # before this stamp is coalescing (batch_form), everything
            # after is the batch moving through dispatch as one unit.
            batch.sealed = time.perf_counter()
        loop = asyncio.get_running_loop()
        call = loop.run_in_executor(
            self._dispatch,
            self._run_batch,
            batch,
            len(batch.futures),
            next(self._batch_ids),
        )
        task = loop.create_task(self._finish(batch, call))
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    def _run_batch(self, batch: _PendingBatch, rows: int, batch_id: int):
        """Dispatch-lane body: one engine call, wall-clock stamped.

        Zero-copy (lane) arenas submit by row count — the engine
        evaluates the very memory the requests were written into.
        Lane-less engines get the filled view; whatever they restage
        internally is what ``staged_bytes_copied`` reports.
        """
        marginalized, missing_value = batch.key
        arena = batch.arena
        stage: Optional[dict] = None
        t0 = time.perf_counter()
        if arena.lane is not None:
            if self._timing:
                # The executor refines kernel_start/kernel_end (and
                # names the worker span) straight into this dict.
                stage = {"dispatch": t0, "batch_id": batch_id}
                out = arena.lane.submit(
                    rows,
                    marginalized=marginalized,
                    missing_value=missing_value,
                    stamps=stage,
                )
            else:
                out = arena.lane.submit(
                    rows,
                    marginalized=marginalized,
                    missing_value=missing_value,
                )
            staged_bytes = 0
        else:
            view = arena.view[:rows]
            out = self._engine.submit(
                view, marginalized=marginalized, missing_value=missing_value
            )
            staged_bytes = view.nbytes
        t1 = time.perf_counter()
        if self._timing:
            if stage is None:  # lane-less engine: the call is the kernel
                stage = {"dispatch": t0, "batch_id": batch_id}
            stage.setdefault("kernel_start", t0)
            stage.setdefault("kernel_end", t1)
        if self._host_tracer is not None:
            self._host_tracer.record(
                f"serving lane{arena.index}", f"batch{batch_id} {rows}r",
                t0, t1,
            )
        return out, t1 - t0, staged_bytes, stage

    async def _finish(self, batch: _PendingBatch, call) -> None:
        """Scatter one batch's results (or failure) onto its futures."""
        try:
            out, seconds, staged_bytes, stage = await call
        except Exception as exc:  # noqa: BLE001 - forwarded, not swallowed
            for future in batch.futures:
                if not future.done():
                    future.set_exception(
                        exc if isinstance(exc, ReproError)
                        else ServingError(f"batch evaluation failed: {exc}")
                    )
        else:
            self.stats.batches += 1
            self.stats.rows += len(batch.futures)
            self.stats.staged_bytes_copied += staged_bytes
            if self._m_requests is not None:
                self._m_batches.add(1)
                self._m_rows.add(len(batch.futures))
                self._m_batch_seconds.add(seconds)
                self._m_staged.add(staged_bytes)
            for future, value in zip(batch.futures, out):
                if not future.done():
                    future.set_result(float(value))
            if self._timing and stage is not None:
                self._record_batch_timing(batch, stage)
        finally:
            self._set_queued(self._queued_rows - len(batch.futures))
            self._release_arena(batch.arena)

    def _record_batch_timing(self, batch: _PendingBatch, stage: dict) -> None:
        """Reduce one completed batch's stamps into histograms + traces.

        ``batch_form`` and ``e2e`` are per-request (each request has
        its own enqueue stamp); ``queue_wait``/``dispatch``/``kernel``/
        ``scatter`` are batch-wide boundaries recorded once per request
        so every histogram weighs requests, not batches — that is what
        makes the five stage medians add up against the e2e median.
        """
        complete = time.perf_counter()
        sealed = batch.sealed
        dispatch = stage.get("dispatch", sealed)
        kernel_start = stage.get("kernel_start", dispatch)
        kernel_end = stage.get("kernel_end", kernel_start)
        if self._h_e2e is not None and batch.enqueues:
            hist = self._h_stage
            queue_wait = max(0.0, dispatch - sealed)
            dispatch_s = max(0.0, kernel_start - dispatch)
            kernel_s = max(0.0, kernel_end - kernel_start)
            scatter_s = max(0.0, complete - kernel_end)
            for enqueue in batch.enqueues:
                hist["batch_form"].record(max(0.0, sealed - enqueue))
                hist["queue_wait"].record(queue_wait)
                hist["dispatch"].record(dispatch_s)
                hist["kernel"].record(kernel_s)
                hist["scatter"].record(scatter_s)
                self._h_e2e.record(max(0.0, complete - enqueue))
        if self._rtrace is not None:
            for trace in batch.traces:
                if trace is None:
                    continue
                trace.stamp("batch_seal", sealed)
                trace.stamp("dispatch", dispatch)
                trace.stamp("kernel_start", kernel_start)
                trace.stamp("kernel_end", kernel_end)
                trace.stamp("complete", complete)
                trace.lane = batch.arena.index
                trace.batch_id = stage.get("batch_id")
                trace.worker_track = stage.get("worker_track")
                self._rtrace.add(trace)

    # -- lifecycle --------------------------------------------------------------
    async def close(self, *, flush: bool = True) -> None:
        """Stop accepting requests and drain the broker.

        With ``flush=True`` (default) every pending batch is dispatched
        and every in-flight batch is awaited — no request that reached
        an arena is ever dropped on shutdown (requests still *waiting*
        for an arena are shed with
        :class:`~repro.errors.ServingOverloadError`; they hold no slot
        to flush).  With ``flush=False`` pending requests are rejected
        the same way and only already-dispatched batches are awaited.
        Idempotent; the engine (and its lanes) is left open for its
        owner, though the broker releases the lanes it acquired.
        """
        if self._closed:
            return
        self._closed = True
        for key in list(self._pending):
            if flush:
                self._flush(key, "close")
            else:
                self._reject_pending(key)
        # Arena waiters wake into the closed broker and shed cleanly.
        while self._arena_waiters:
            waiter = self._arena_waiters.popleft()
            if not waiter.done():
                waiter.set_result(None)
        if self._inflight:
            await asyncio.gather(*list(self._inflight), return_exceptions=True)
        self._dispatch.shutdown(wait=True)
        for arena in self._arena_free:
            if arena.lane is not None:
                arena.lane.release()
        self._arena_free.clear()

    def _reject_pending(self, key: _Key) -> None:
        batch = self._pending.pop(key, None)
        if batch is None:
            return
        if batch.timer is not None:
            batch.timer.cancel()
        for future in batch.futures:
            if not future.done():
                future.set_exception(
                    ServingOverloadError("broker closed before dispatch")
                )
        self.stats.rejected += len(batch.futures)
        if self._m_requests is not None:
            self._m_rejected.add(len(batch.futures))
        for enqueue, trace in zip(batch.enqueues, batch.traces):
            self._record_shed(enqueue, trace)
        self._set_queued(self._queued_rows - len(batch.futures))
        self._release_arena(batch.arena)

    async def __aenter__(self) -> "MicroBatchBroker":
        """Async context entry: the broker itself."""
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        """Async context exit: always :meth:`close` (flushing)."""
        await self.close()
